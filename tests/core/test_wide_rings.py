"""Tests for non-default ring widths (the paper: "length ... and width
... can easily be scaled")."""

import numpy as np
import pytest

from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.errors import ConfigurationError


class TestWidth4Fabric:
    def geometry(self):
        return RingGeometry.ring(16, width=4)

    def test_shape(self):
        g = self.geometry()
        assert (g.layers, g.width, g.dnodes) == (4, 4, 16)

    def test_forward_routing_all_lanes(self):
        ring = Ring(self.geometry())
        for lane in range(4):
            ring.config.write_microword(0, lane, MicroWord(
                Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=10 + lane))
            ring.config.write_switch_route(1, lane, 1,
                                           PortSource.up(3 - lane))
            ring.config.write_microword(1, lane, MicroWord(
                Opcode.MOV, Source.IN1, dst=Dest.OUT))
        ring.run(2)
        # layer 1 reads layer 0 reversed
        assert [ring.dnode(1, lane).out for lane in range(4)] == \
            [13, 12, 11, 10]

    def test_feedback_pipelines_all_lanes_via_switch(self):
        """Switch routing may tap any lane's pipeline (up to the width)."""
        ring = Ring(self.geometry())
        ring.config.write_microword(0, 3, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=77))
        ring.config.write_switch_route(1, 0, 1, PortSource.rp(2, 4))
        ring.config.write_microword(1, 0, MicroWord(
            Opcode.MOV, Source.IN1, dst=Dest.OUT))
        ring.run(4)
        assert ring.dnode(1, 0).out == 77

    def test_dnode_rp_operands_limited_to_two_lanes(self):
        """Direct Rp operand codes only address lanes 1..2 (Fig. 3's
        Rp(i,j), j = 1..2); wider lanes go through switch routing."""
        with pytest.raises(ConfigurationError):
            Source.rp(1, 3)

    def test_motion_estimation_on_width_4(self, rng):
        from repro.kernels.motion_estimation import full_search_me
        from repro.kernels.reference import full_search

        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (10, 10))
        _, _, expected = full_search(ref, area)
        # dnodes=16 with the default deal still works on a width-2 ring;
        # here we check an 8-layer x 4-wide ring via a custom system
        result = full_search_me(ref, area, dnodes=16)
        assert np.array_equal(result.sad_map, expected)


class TestWidth1Fabric:
    def test_single_lane_ring(self):
        ring = Ring(RingGeometry(layers=4, width=1))
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=5))
        for k in range(1, 4):
            ring.config.write_switch_route(k, 0, 1, PortSource.up(0))
            ring.config.write_microword(k, 0, MicroWord(
                Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=1))
        ring.run(4)
        assert ring.dnode(3, 0).out == 8

    def test_area_model_handles_any_width(self):
        from repro.tech.area import core_area_mm2

        for width in (1, 2, 4, 8):
            geometry = RingGeometry.ring(16, width=width)
            report = core_area_mm2(geometry, "0.18um")
            assert report.total_mm2 > 0

    def test_wider_layers_cost_more_switch_area(self):
        from repro.tech.area import core_area_mm2

        narrow = core_area_mm2(RingGeometry.ring(16, width=2), "0.18um")
        wide = core_area_mm2(RingGeometry.ring(16, width=8), "0.18um")
        # same dnodes; the wide ring has fewer switches but each bigger,
        # and fewer layers: total should stay in the same ballpark
        assert wide.total_mm2 == pytest.approx(narrow.total_mm2, rel=0.25)
