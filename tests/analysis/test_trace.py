"""Tests for signal tracing and VCD export."""

import pytest

from repro.analysis.trace import Probe, SignalTrace, parse_vcd, write_vcd
from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.core.switch import PortSource
from repro.errors import SimulationError
from repro.host.system import RingSystem


def counting_ring():
    """D0.0 counts up by 1 every cycle (SELF + 1)."""
    ring = make_ring(4)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=1))
    ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
    ring.config.write_microword(1, 0, MicroWord(
        Opcode.MOV, Source.IN1, dst=Dest.OUT))
    return ring


class TestSignalTrace:
    def test_captures_every_cycle(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0), Probe.out(1, 0)])
        ring.run(5)
        assert trace.cycles == 5
        assert trace.samples["D0.0.out"] == [1, 2, 3, 4, 5]
        assert trace.samples["D1.0.out"] == [0, 1, 2, 3, 4]

    def test_register_probe(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MAC, Source.IMM, Source.IMM, Dest.R0, imm=2))
        trace = SignalTrace(ring, [Probe.reg(0, 0, 0)])
        ring.run(3)
        assert trace.samples["D0.0.r0"] == [4, 8, 12]

    def test_needs_probes(self):
        with pytest.raises(SimulationError):
            SignalTrace(make_ring(4), [])

    def test_probe_address_validated(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SignalTrace(make_ring(4), [Probe.out(9, 0)])

    def test_detach_stops_recording(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(2)
        trace.detach()
        ring.run(2)
        assert trace.cycles == 2

    def test_detach_leaves_foreign_observer_installed(self):
        # Regression: detach() used to call set_trace(None) unconditionally,
        # silently removing whatever observer was installed after it.
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        seen = []
        ring.add_observer(lambda r: seen.append(r.cycles))
        trace.detach()
        ring.run(3)
        assert trace.cycles == 0
        assert seen == [1, 2, 3]

    def test_detach_leaves_legacy_set_trace_hook_installed(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        seen = []
        ring.set_trace(lambda r: seen.append(r.cycles))
        trace.detach()
        ring.run(2)
        assert seen == [1, 2]

    def test_two_traces_coexist_and_detach_independently(self):
        ring = counting_ring()
        first = SignalTrace(ring, [Probe.out(0, 0)])
        second = SignalTrace(ring, [Probe.out(1, 0)])
        ring.run(2)
        first.detach()
        ring.run(2)
        assert first.samples["D0.0.out"] == [1, 2]
        assert second.samples["D1.0.out"] == [0, 1, 2, 3]

    def test_detach_is_idempotent(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        trace.detach()
        trace.detach()
        ring.run(2)
        assert trace.cycles == 0


class TestSampledTrace:
    def test_interval_samples_every_nth_cycle(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)], interval=4)
        ring.run(20)
        assert trace.sampled_at == [4, 8, 12, 16, 20]
        assert trace.samples["D0.0.out"] == [4, 8, 12, 16, 20]

    def test_interval_does_not_disable_fast_path(self):
        ring = counting_ring()
        SignalTrace(ring, [Probe.out(0, 0)], interval=8)
        ring.run(40)
        assert ring._plan is not None, \
            "a sampled trace must keep the compiled plan engaged"
        assert ring.dnode(0, 0).out == 40

    def test_sampled_matches_every_cycle_trace_decimated(self):
        dense_ring, sparse_ring = counting_ring(), counting_ring()
        dense = SignalTrace(dense_ring, [Probe.out(0, 0)])
        sparse = SignalTrace(sparse_ring, [Probe.out(0, 0)], interval=5)
        dense_ring.run(23)
        sparse_ring.run(23)
        decimated = [v for i, v in
                     enumerate(dense.samples["D0.0.out"], start=1)
                     if i % 5 == 0]
        assert sparse.samples["D0.0.out"] == decimated

    def test_window_bounds_capture(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)], start=3, stop=6)
        ring.run(10)
        assert trace.sampled_at == [3, 4, 5, 6]
        assert trace.samples["D0.0.out"] == [3, 4, 5, 6]

    def test_window_with_interval(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)], interval=3, start=5,
                            stop=14)
        ring.run(20)
        assert trace.sampled_at == [6, 9, 12]

    def test_exhausted_window_frees_the_batch(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)], stop=4)
        ring.run(50)
        assert trace.cycles == 4
        assert ring.cycles == 50

    def test_sampling_identical_when_stepping_cycle_by_cycle(self):
        batched, stepped = counting_ring(), counting_ring()
        batch_trace = SignalTrace(batched, [Probe.out(0, 0)], interval=6)
        step_trace = SignalTrace(stepped, [Probe.out(0, 0)], interval=6)
        batched.run(25)
        for _ in range(25):
            stepped.step()
        assert batch_trace.samples == step_trace.samples
        assert batch_trace.sampled_at == step_trace.sampled_at

    def test_bad_interval_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SignalTrace(counting_ring(), [Probe.out(0, 0)], interval=0)

    def test_bad_window_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SignalTrace(counting_ring(), [Probe.out(0, 0)], start=9,
                        stop=2)

    def test_render_ascii(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(3)
        diagram = trace.render()
        assert "D0.0.out" in diagram
        assert "3" in diagram

    def test_render_last_n(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(10)
        diagram = trace.render(last=2)
        assert "10" in diagram and " 5 " not in diagram

    def test_render_before_run_rejected(self):
        trace = SignalTrace(counting_ring(), [Probe.out(0, 0)])
        with pytest.raises(SimulationError):
            trace.render()


class TestVcd:
    def test_roundtrip(self, tmp_path):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0), Probe.out(1, 0)])
        ring.run(4)
        path = tmp_path / "run.vcd"
        write_vcd(trace, path)
        waves = parse_vcd(path)
        assert [v for _, v in waves["D0_0_out"]] == [1, 2, 3, 4]
        # D1.0 holds 0 initially: first dump at t=0 then changes
        assert waves["D1_0_out"][0] == (0, 0)

    def test_only_changes_dumped(self, tmp_path):
        ring = make_ring(4)  # everything idle: constant zeros
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(5)
        path = tmp_path / "idle.vcd"
        write_vcd(trace, path)
        waves = parse_vcd(path)
        assert waves["D0_0_out"] == [(0, 0)]

    def test_header_fields(self, tmp_path):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(1)
        path = tmp_path / "h.vcd"
        write_vcd(trace, path, timescale="10 ns", module="dut")
        text = path.read_text()
        assert "$timescale 10 ns $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 16" in text

    def test_empty_trace_rejected(self, tmp_path):
        trace = SignalTrace(counting_ring(), [Probe.out(0, 0)])
        with pytest.raises(SimulationError):
            write_vcd(trace, tmp_path / "x.vcd")

    def test_dumpvars_section_holds_initial_values(self, tmp_path):
        ring = make_ring(4)  # idle fabric: values never change
        trace = SignalTrace(ring, [Probe.out(0, 0), Probe.out(0, 1)])
        ring.run(3)
        path = tmp_path / "init.vcd"
        write_vcd(trace, path)
        text = path.read_text()
        dump = text[text.index("$dumpvars"):text.index("$end",
                                                       text.index("$dumpvars"))]
        # every probe gets an initial value even when it never changes
        assert dump.count("b0000000000000000") == 2

    def test_identifier_sequence_is_bijective_base94(self):
        from repro.analysis.trace import _vcd_identifier
        assert _vcd_identifier(0) == "!"
        assert _vcd_identifier(93) == "~"
        assert _vcd_identifier(94) == "!!"
        assert _vcd_identifier(94 + 93) == "!~"
        ids = [_vcd_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        assert all(all(33 <= ord(c) <= 126 for c in ident)
                   for ident in ids)

    def test_roundtrip_with_more_than_94_probes(self, tmp_path):
        # Regression: single-char identifiers chr(33+i) walk past '~'
        # (and into collisions) beyond 93 probes.
        ring = make_ring(64)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=1))
        layers = ring.geometry.layers
        width = ring.geometry.width
        probes = [Probe.out(l, p)
                  for l in range(layers) for p in range(width)]
        probes += [Probe.reg(l, p, 0)
                   for l in range(layers) for p in range(width)]
        assert len(probes) == 128
        trace = SignalTrace(ring, probes)
        ring.run(4)
        path = tmp_path / "big.vcd"
        write_vcd(trace, path)
        waves = parse_vcd(path)
        assert len(waves) == 128
        assert [v for _, v in waves["D0_0_out"]] == [1, 2, 3, 4]
        # an idle signal keeps exactly its $dumpvars entry
        assert waves[f"D{layers - 1}_{width - 1}_r0"] == [(0, 0)]


class TestBusProbe:
    def test_bus_probe_records_observed_values(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.bus()])
        for value in (5, 9, 13):
            trace.observe_bus(value)
            ring.step(bus=value)
        assert trace.samples["bus"] == [5, 9, 13]

    def test_observe_bus_validates(self):
        trace = SignalTrace(counting_ring(), [Probe.bus()])
        with pytest.raises(ValueError):
            trace.observe_bus(-1)

    def test_bus_defaults_to_zero(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.bus()])
        ring.run(2)
        assert trace.samples["bus"] == [0, 0]

    def test_bus_probe_sees_controller_busw(self):
        # Regression: the bus probe used to read a field the system never
        # wired up, so controller-driven traffic traced as constant zero.
        ring = make_ring(4)
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=42),
            Instruction(ROp.BUSW, rs=1),
            Instruction(ROp.HALT),
        ])
        system = RingSystem(ring, ctrl)
        trace = SignalTrace(ring, [Probe.bus()])
        system.run_until_halt()
        # cycle 1: LDI (bus still 0); cycle 2: BUSW drives 42; the
        # controller latches bus_out, so it stays driven at the HALT cycle.
        assert trace.samples["bus"] == [0, 42, 42]

    def test_bus_probe_sees_run_bus_argument(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.bus()], interval=2)
        ring.run(4, bus=7)
        ring.run(2, bus=9)
        assert trace.samples["bus"] == [7, 7, 9]

    def test_last_bus_survives_fast_path_batches(self):
        ring = counting_ring()
        ring.run(10, bus=3)  # compiles the plan, no trace attached
        assert ring._plan is not None
        assert ring.last_bus == 3
