"""Frequency estimation for the ring and for rival fabric topologies.

The ring's frequency is *independent of its size*: every wire is
nearest-neighbour (layer -> switch -> layer) and the feedback network is
pipelined, so the critical path stays the Dnode-internal multiplier+adder
chain.  That is the paper's core scalability argument (§4.2): mesh and
crossbar fabrics accumulate die-crossing wires as they grow, and their
achievable clock sags.  The comparative models below quantify exactly
that for the A3 ablation:

* mesh: longest routed net grows with the fabric's side length
  (``sqrt(N)``) — "die-long interconnections cause hard timing problems";
* crossbar: every output loads every input, wire and fan-out grow
  linearly in N — "routing capabilities ... but area costly" and slow.
"""

from __future__ import annotations

import math
from typing import Union

from repro.errors import TechnologyError
from repro.tech.nodes import TechNode, get_node

NodeLike = Union[str, TechNode]

#: Wire delay added per Dnode-pitch of distance a signal must cross, in
#: units of the node's FO4 delay (repeater-assisted global wiring).
WIRE_FO4_PER_PITCH = 1.6

#: Side length (in Dnode pitches) below which a mesh has no global nets.
MESH_FREE_SIDE = 3.0


def _resolve(node: NodeLike) -> TechNode:
    return get_node(node) if isinstance(node, str) else node


def estimated_frequency_hz(node: NodeLike, dnodes: int = 8) -> float:
    """Achievable ring clock (Table 3, last column).

    *dnodes* is accepted for interface symmetry with the rival-topology
    models, but does not change the result: the ring's nearest-neighbour
    wiring keeps the critical path local at any size.
    """
    if dnodes < 1:
        raise TechnologyError(f"dnodes must be >= 1, got {dnodes}")
    return _resolve(node).frequency_hz()


def mesh_frequency_hz(node: NodeLike, dnodes: int) -> float:
    """Achievable clock of a mesh fabric of the same Dnodes.

    Long-distance routes cross ``side - MESH_FREE_SIDE`` pitches of the
    ``sqrt(N) x sqrt(N)`` array; each pitch costs ``WIRE_FO4_PER_PITCH``
    FO4 of repeated wire on top of the datapath critical path.
    """
    if dnodes < 1:
        raise TechnologyError(f"dnodes must be >= 1, got {dnodes}")
    tech = _resolve(node)
    side = math.sqrt(dnodes)
    crossing = max(side - MESH_FREE_SIDE, 0.0)
    extra_ps = crossing * WIRE_FO4_PER_PITCH * tech.fo4_ps
    return tech.frequency_hz(extra_wire_ps=extra_ps)


def crossbar_frequency_hz(node: NodeLike, dnodes: int) -> float:
    """Achievable clock of a full-crossbar fabric of the same Dnodes.

    A central crossbar makes every source drive a wire spanning the whole
    fabric and a fan-out of N: wire delay grows linearly in N.
    """
    if dnodes < 1:
        raise TechnologyError(f"dnodes must be >= 1, got {dnodes}")
    tech = _resolve(node)
    extra_ps = dnodes * 0.5 * WIRE_FO4_PER_PITCH * tech.fo4_ps
    return tech.frequency_hz(extra_wire_ps=extra_ps)
