"""Stdlib-only TCP front door for a RingFarm: JSON lines over asyncio.

Protocol: one JSON object per line, one JSON reply per line, on a plain
TCP stream (``asyncio.start_server``; no third-party dependencies).

Requests::

    {"op": "ping"}
    {"op": "metrics", "format": "prometheus" | "json"}
    {"op": "submit", "job": {...job wire form...}, "migrate_at": 120}

Replies always carry ``"ok"``.  A successful submit returns the result
wire form (tap streams, state digest hex, warm/plan telemetry); a
backpressure rejection returns ``{"ok": false, "error": "rejected",
"retry_after": seconds}`` so clients can implement honest backoff — the
server never buffers beyond the farm's bounded queues.

:func:`request` is the matching one-shot client helper (used by the
server tests and the load benchmark's TCP mode).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.farm.farm import FarmRejected, RingFarm
from repro.farm.job import job_from_wire, result_to_wire


class FarmServer:
    """Serve one :class:`~repro.farm.farm.RingFarm` over TCP."""

    def __init__(self, farm: RingFarm, host: str = "127.0.0.1",
                 port: int = 0):
        self.farm = farm
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks a free
        one; :attr:`port` is updated with the bound port)."""
        await self.farm.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "FarmServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad json: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be an object"}
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "metrics":
                snapshot = self.farm.metrics()
                if request.get("format") == "json":
                    return {"ok": True,
                            "metrics": json.loads(snapshot.to_json())}
                return {"ok": True,
                        "prometheus": snapshot.to_prometheus()}
            if op == "submit":
                job = job_from_wire(request["job"])
                try:
                    result = await self.farm.submit(
                        job, migrate_at=request.get("migrate_at"))
                except FarmRejected as exc:
                    return {"ok": False, "error": "rejected",
                            "reason": exc.reason,
                            "retry_after": exc.retry_after}
                return {"ok": True, "result": result_to_wire(result)}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}


async def request(host: str, port: int, payload: dict,
                  timeout: float = 30.0) -> dict:
    """One-shot client: send *payload*, await the JSON reply."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


__all__ = ["FarmServer", "request"]
