"""Scheduling: dataflow graph -> placed operators on ring layers.

The mapping discipline (which mirrors how the paper's hand mappings
work):

* every operator occupies one Dnode; operators are *levelled* so each
  one sits exactly one layer downstream of its producers (systolic
  adjacency);
* an edge spanning more than one level gets MOV *pass nodes* inserted in
  the intermediate layers (spatial routing through the fabric, never
  global wires);
* an explicit stream delay of ``d`` cycles (1 <= d <= pipeline depth)
  costs nothing: the consumer reads the producer through the upstream
  switch's feedback tap ``Rp(d, lane)`` instead of the direct port —
  exactly the paper's "required delays ... automatically achieved";
* constants become microword immediates (at most one per operator);
* input streams may only feed level-1 consumers directly (host ports
  present the *current* sample everywhere, so deeper consumers need
  pass chains, and a *delayed* input needs one pass node first because
  the feedback pipelines only carry Dnode outputs).

The result is a :class:`Placement`: physical nodes with (level, lane)
coordinates and fully resolved operand descriptors, ready for code
generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.isa import FEEDBACK_DEPTH, Opcode
from repro.compiler.graph import CompileError, DataflowGraph, NodeKind


@dataclass
class Operand:
    """One resolved operand of a physical node."""

    kind: str                 # "node" | "input" | "const"
    producer: int = -1        # physical node index (kind == "node")
    channel: int = 0          # host channel (kind == "input")
    value: int = 0            # raw constant (kind == "const")
    delay: int = 0            # extra cycles read through Rp (kind=="node")


@dataclass
class PhysNode:
    """A physical operator: one Dnode's worth of work."""

    index: int
    op: Opcode                     # MOV for pass nodes
    operands: List[Operand] = field(default_factory=list)
    graph_node: Optional[int] = None   # original node (None for passes)
    level: int = 0
    lane: int = -1


@dataclass
class Placement:
    """The scheduled program: physical nodes + output bindings."""

    phys: List[PhysNode]
    outputs: List[Tuple[int, int]]     # (graph node index, phys index)
    levels: int                        # deepest level used
    width_needed: int                  # widest level

    def at(self, level: int) -> List[PhysNode]:
        return [p for p in self.phys if p.level == level]


def _collapse_delays(graph: DataflowGraph):
    """Resolve every operand through DELAY chains to (source, total d)."""

    def resolve(index: int) -> Tuple[int, int]:
        node = graph.node(index)
        total = 0
        while node.kind is NodeKind.DELAY:
            total += node.amount
            node = graph.node(node.operands[0])
        return node.index, total

    return resolve


#: Lane-assignment orders the scheduler understands.  Feedback taps
#: (``Rp``) only reach lanes 0..1, so *which* nodes land in the low
#: lanes decides whether a delayed-operand placement is legal at all —
#: one of the placement dimensions the autotuner searches.
LANE_ORDERS = ("index", "reverse", "delay-first")


def schedule(graph: DataflowGraph, max_levels: Optional[int] = None,
             width: int = 2, lane_order: str = "index") -> Placement:
    """Schedule *graph* onto a ``max_levels x width`` fabric.

    Args:
        graph: the dataflow graph to place.
        max_levels: fabric depth bound (None = unbounded).
        width: fabric width (Dnodes per layer).
        lane_order: per-level lane-assignment order — ``"index"``
            (creation order, the default), ``"reverse"``, or
            ``"delay-first"`` (producers read through feedback taps
            claim lanes 0..1 first, which can make an otherwise-illegal
            delayed placement legal).

    Raises:
        CompileError: when the graph needs more layers/lanes than
            available, uses a delay deeper than the feedback pipelines,
            or has an operator with two constant operands.
    """
    if lane_order not in LANE_ORDERS:
        raise CompileError(
            f"unknown lane order {lane_order!r}; expected one of "
            f"{LANE_ORDERS}"
        )
    graph.validate()
    resolve = _collapse_delays(graph)

    # ------------------------------------------------------------------
    # 1. Build physical op nodes for every OP graph node.
    # ------------------------------------------------------------------
    phys: List[PhysNode] = []
    phys_of_graph: Dict[int, int] = {}
    for node in graph.nodes():
        if node.kind is not NodeKind.OP:
            continue
        p = PhysNode(index=len(phys), op=node.op, graph_node=node.index)
        for operand_ref in node.operands:
            src_index, delay = resolve(operand_ref)
            src = graph.node(src_index)
            if delay > FEEDBACK_DEPTH:
                raise CompileError(
                    f"delay of {delay} exceeds the feedback-pipeline "
                    f"depth ({FEEDBACK_DEPTH}); split the delay across "
                    f"explicit pass operators"
                )
            if src.kind is NodeKind.CONST:
                if delay:
                    raise CompileError("delaying a constant is meaningless")
                p.operands.append(Operand("const", value=src.value))
            elif src.kind is NodeKind.INPUT:
                p.operands.append(Operand("input", channel=src.channel,
                                          delay=delay))
            else:
                p.operands.append(Operand("node", delay=delay,
                                          producer=src.index))
        consts = [o for o in p.operands if o.kind == "const"]
        if len(consts) > 1:
            raise CompileError(
                f"node n{node.index}: an operator can absorb only one "
                f"constant (one immediate field); fold the constants"
            )
        phys.append(p)
        phys_of_graph[node.index] = p.index
    # rewire producer references from graph indices to phys indices
    for p in phys:
        for o in p.operands:
            if o.kind == "node":
                if o.producer not in phys_of_graph:
                    raise CompileError(
                        f"output/operand n{o.producer} is not an operator"
                    )
                o.producer = phys_of_graph[o.producer]

    # ------------------------------------------------------------------
    # 2. Level: one layer downstream of the deepest producer.  A delayed
    #    input needs one pass node, so it contributes level 1.
    # ------------------------------------------------------------------
    levels: Dict[int, int] = {}

    def level_of(p: PhysNode) -> int:
        if p.index in levels:
            return levels[p.index]
        contributions = [0]
        for o in p.operands:
            if o.kind == "node":
                contributions.append(level_of(phys[o.producer]))
            elif o.kind == "input" and o.delay > 0:
                contributions.append(1)
        levels[p.index] = 1 + max(contributions)
        return levels[p.index]

    for p in list(phys):
        p.level = level_of(p)

    # ------------------------------------------------------------------
    # 3. Insert pass nodes for edges spanning more than one level, and
    #    for delayed inputs.
    # ------------------------------------------------------------------
    relay_cache: Dict[Tuple, int] = {}

    def make_pass(level: int, operand: Operand) -> PhysNode:
        """Create (or reuse) a pass node relaying *operand* at *level*.

        Identical relays are shared: many consumers of the same stream
        or the same producer cost one Dnode per level, not one each.
        """
        if operand.kind == "input":
            key = ("input", operand.channel, level)
        else:
            key = ("node", operand.producer, level)
        if key in relay_cache:
            return phys[relay_cache[key]]
        p = PhysNode(index=len(phys), op=Opcode.MOV,
                     operands=[operand], level=level)
        phys.append(p)
        relay_cache[key] = p.index
        return p

    def input_relay(channel: int, up_to_level: int) -> PhysNode:
        """A (shared) pass chain carrying input *channel* to a level."""
        relay = make_pass(1, Operand("input", channel=channel))
        for lvl in range(2, up_to_level + 1):
            relay = make_pass(lvl, Operand("node", producer=relay.index))
        return relay

    for p in list(phys):
        for o in p.operands:
            if o.kind == "input" and o.delay > 0:
                # the feedback pipelines only hold Dnode outputs, so a
                # delayed stream needs at least one materialising relay
                relay = input_relay(o.channel, p.level - 1)
                o.kind, o.producer = "node", relay.index
            elif o.kind == "input" and p.level > 1:
                relay = input_relay(o.channel, p.level - 1)
                o.kind, o.producer = "node", relay.index
        for o in p.operands:
            if o.kind != "node":
                continue
            gap = p.level - phys[o.producer].level - 1
            if gap < 0:
                raise CompileError("internal: negative level gap")
            relay = phys[o.producer]
            for _ in range(gap):
                relay = make_pass(relay.level + 1,
                                  Operand("node", producer=relay.index))
            o.producer = relay.index

    # ------------------------------------------------------------------
    # 4. Lane assignment per level.
    # ------------------------------------------------------------------
    if not phys:
        raise CompileError("graph has no operator nodes")
    delayed_producers = {
        o.producer for p in phys for o in p.operands
        if o.kind == "node" and o.delay > 0
    }
    if lane_order == "reverse":
        def lane_key(q):
            return -q.index
    elif lane_order == "delay-first":
        def lane_key(q):
            return (q.index not in delayed_producers, q.index)
    else:
        def lane_key(q):
            return q.index
    max_level = max(p.level for p in phys)
    width_needed = 0
    for level in range(1, max_level + 1):
        members = [p for p in phys if p.level == level]
        width_needed = max(width_needed, len(members))
        if len(members) > width:
            raise CompileError(
                f"level {level} needs {len(members)} Dnodes but the "
                f"fabric is only {width} wide"
            )
        for lane, p in enumerate(sorted(members, key=lane_key)):
            p.lane = lane
    if max_levels is not None and max_level > max_levels:
        raise CompileError(
            f"graph needs {max_level} layers, fabric has {max_levels}"
        )
    # Rp reads address lanes 1..2 only: check delayed producers' lanes.
    for p in phys:
        for o in p.operands:
            if o.kind == "node" and o.delay > 0 \
                    and phys[o.producer].lane >= 2:
                raise CompileError(
                    f"delayed operand producer sits in lane "
                    f"{phys[o.producer].lane}, but feedback taps only "
                    f"reach lanes 0..1"
                )

    outputs = []
    for out in graph.outputs:
        if out not in phys_of_graph:
            raise CompileError(
                f"output n{out} must be an operator node (wrap inputs "
                f"in `mov` if needed)"
            )
        outputs.append((out, phys_of_graph[out]))
    return Placement(phys=phys, outputs=outputs, levels=max_level,
                     width_needed=width_needed)
