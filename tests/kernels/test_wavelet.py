"""Tests for the 5/3 lifting wavelet fabric mapping (Table 2 kernel)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.kernels.reference import dwt53_2d, idwt53_2d, lifting53_forward
from repro.kernels.wavelet import (
    DNODES_USED,
    build_lifting_system,
    dwt53_2d_fabric,
    lifting53_forward_fabric,
    wavelet_cycle_model,
)

signals = st.lists(st.integers(min_value=-2000, max_value=2000),
                   min_size=2, max_size=40).filter(lambda s: len(s) % 2 == 0)


class Test1D:
    @pytest.mark.parametrize("sig", [
        [0, 0],
        [10, 13, 25, 26, 29, 21, 7, 15],
        list(range(32)),
        [100, -100] * 8,
    ])
    def test_matches_reference(self, sig):
        expected = lifting53_forward(sig)
        result = lifting53_forward_fabric(sig)
        assert (result.approx, result.detail) == expected

    def test_reconstruction_through_reference_inverse(self):
        from repro.kernels.reference import lifting53_inverse
        sig = [7, -3, 12, 8, -5, 20, 1, 0, 3, 9]
        result = lifting53_forward_fabric(sig)
        assert lifting53_inverse(result.approx, result.detail) == sig

    @given(signals)
    @settings(max_examples=20, deadline=None)
    def test_property_matches_reference(self, sig):
        expected = lifting53_forward(sig)
        result = lifting53_forward_fabric(sig)
        assert (result.approx, result.detail) == expected

    def test_odd_length_rejected(self):
        with pytest.raises(SimulationError):
            lifting53_forward_fabric([1, 2, 3])

    def test_uses_12_dnodes(self):
        """Paper: '25 % of the Ring structure remains free' on Ring-16."""
        result = lifting53_forward_fabric([1, 2, 3, 4])
        assert result.dnodes_used == DNODES_USED == 12
        assert DNODES_USED / 16 == 0.75

    def test_ring_too_small_rejected(self):
        from repro.core.ring import Ring, RingGeometry
        with pytest.raises(SimulationError, match="7 layers"):
            build_lifting_system(Ring(RingGeometry.ring(8)))

    def test_throughput_near_one_pair_per_cycle(self):
        sig = list(range(64))
        result = lifting53_forward_fabric(sig)
        # half+2 stream slots + 8 latency for 32 coefficient pairs
        assert result.cycles == len(sig) // 2 + 10


class Test2D:
    def test_matches_reference(self, rng):
        img = rng.integers(0, 256, (8, 8))
        coeffs, _ = dwt53_2d_fabric(img)
        assert np.array_equal(coeffs, dwt53_2d(img))

    def test_non_square(self, rng):
        img = rng.integers(0, 256, (6, 10))
        coeffs, _ = dwt53_2d_fabric(img)
        assert np.array_equal(coeffs, dwt53_2d(img))

    def test_perfect_reconstruction(self, rng):
        img = rng.integers(-1000, 1000, (8, 8))
        coeffs, _ = dwt53_2d_fabric(img)
        assert np.array_equal(idwt53_2d(coeffs), img)

    def test_cycle_count_matches_model(self, rng):
        img = rng.integers(0, 256, (8, 12))
        _, cycles = dwt53_2d_fabric(img)
        assert cycles == wavelet_cycle_model(8, 12)

    def test_requires_2d(self):
        with pytest.raises(SimulationError):
            dwt53_2d_fabric(np.arange(8))


class TestPaperRates:
    def test_one_pixel_per_cycle_at_scale(self):
        """Table 2: 'One pixel sample is computed each clock cycle' on
        the 1024x768 image — the model lands within 3 % of 1 px/cycle."""
        pixels = 768 * 1024
        cycles = wavelet_cycle_model(768, 1024)
        assert cycles / pixels == pytest.approx(1.0, rel=0.03)

    def test_transform_time_at_200mhz(self):
        """The full-frame transform takes ~4 ms at 200 MHz."""
        cycles = wavelet_cycle_model(768, 1024)
        assert cycles / 200e6 == pytest.approx(4.0e-3, rel=0.05)
