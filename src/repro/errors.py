"""Exception hierarchy for the Systolic Ring reproduction.

Every error raised by the package derives from :class:`ReproError`, so
applications embedding the simulator can catch one base type.  Sub-types
separate the three layers a user interacts with: the hardware model
(configuration/simulation), the toolchain (assembler/loader), and the host
interface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Invalid fabric configuration (bad microword, illegal routing, ...)."""


class SimulationError(ReproError):
    """Runtime fault inside the cycle engine (deadlock, bad state, ...)."""


class AssemblerError(ReproError):
    """Syntax or semantic error in Ring/RISC assembly source."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LoaderError(ReproError):
    """Malformed object code or image that cannot be loaded."""


class HostError(ReproError):
    """Host-interface misuse (FIFO overrun, bus contention, ...)."""


class TechnologyError(ReproError):
    """Unknown technology node or invalid silicon-model parameter."""
