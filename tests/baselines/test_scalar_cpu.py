"""Tests for the Pentium-II-class scalar CPU model (§5.1)."""

import pytest

from repro.baselines.scalar_cpu import PENTIUM_II_450, ScalarCpu
from repro.errors import SimulationError


class TestPentiumII:
    def test_paper_mips_figure(self):
        """§5.1: 'the 400 MIPS of a Pentium II 450 MHz processor'."""
        assert PENTIUM_II_450.sustained_mips == pytest.approx(400, rel=0.02)

    def test_ring8_is_4x_faster(self):
        from repro.analysis.mips import ring_peak_mips
        ratio = ring_peak_mips(8) / PENTIUM_II_450.sustained_mips
        assert ratio == pytest.approx(4.0, rel=0.02)


class TestModel:
    def test_time_for_ops(self):
        cpu = ScalarCpu("x", 100e6, 1.0)
        assert cpu.time_for_ops(100_000_000) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ScalarCpu("x", 0, 1.0)
        with pytest.raises(SimulationError):
            ScalarCpu("x", 1e6, 0)
        with pytest.raises(SimulationError):
            PENTIUM_II_450.time_for_ops(-1)
