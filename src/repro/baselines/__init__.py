"""Every comparator in the paper's evaluation, implemented as a model.

* :mod:`repro.baselines.mmx` — an instruction-level simulator of the
  Intel MMX block-matching routine (Table 1's software comparator),
  functionally exact and cycle-modelled with Pentium-MMX pairing rules;
* :mod:`repro.baselines.asic_me` — the dedicated systolic block-matching
  ASIC of [7] (Table 1's hardware comparator);
* :mod:`repro.baselines.wavelet_asics` — the wavelet ASICs of [10] and
  [11] (Table 2);
* :mod:`repro.baselines.scalar_cpu` — the Pentium-II-class scalar CPU of
  the §5.1 MIPS comparison.
"""

from repro.baselines.mmx import MmxMachine, mmx_block_match
from repro.baselines.asic_me import AsicModel, asic_block_match
from repro.baselines.wavelet_asics import WAVELET_CIRCUITS, WaveletCircuit
from repro.baselines.scalar_cpu import ScalarCpu, PENTIUM_II_450

__all__ = [
    "MmxMachine",
    "mmx_block_match",
    "AsicModel",
    "asic_block_match",
    "WAVELET_CIRCUITS",
    "WaveletCircuit",
    "ScalarCpu",
    "PENTIUM_II_450",
]
