"""ISA conformance: every opcode, corner operands, two execution paths.

For each opcode we run a directed set of corner-value operands (0, 1,
-1, extremes, alternating bits) through:

1. the combinational model (``execute_op``), checked against an
   independent Python semantic written here (not shared with the
   implementation), and
2. a real Dnode on a fabric (operands delivered via bus/immediate),
   checked to agree with (1).

This is the conformance style real ISS verification uses: the same
vector through two independent paths.
"""

import pytest

from repro import word
from repro.core.alu import execute_op
from repro.core.dnode import Dnode, DnodeInputs
from repro.core.isa import Dest, MicroWord, Opcode, Source

CORNERS = [0, 1, 2, 0x7FFF, 0x8000, 0x8001, 0xFFFF, 0xAAAA, 0x5555,
           100, 0xFF9C]  # 100 and -100


def _s(raw):
    return word.to_signed(raw)


def _u(value):
    return value & 0xFFFF


#: Independent semantics (kept deliberately separate from repro.core.alu).
SEMANTICS = {
    Opcode.MOV: lambda a, b: a,
    Opcode.ADD: lambda a, b: _u(a + b),
    Opcode.SUB: lambda a, b: _u(a - b),
    Opcode.MUL: lambda a, b: _u(_s(a) * _s(b)),
    Opcode.MULH: lambda a, b: _u((_s(a) * _s(b)) >> 16),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.NOT: lambda a, b: _u(~a),
    Opcode.NEG: lambda a, b: _u(-_s(a)),
    Opcode.SHL: lambda a, b: _u(a << (b & 15)),
    Opcode.SHR: lambda a, b: a >> (b & 15),
    Opcode.ASR: lambda a, b: _u(_s(a) >> (b & 15)),
    Opcode.ABS: lambda a, b: _u(abs(_s(a))),
    Opcode.ABSDIFF: lambda a, b: _u(abs(_s(a) - _s(b))),
    Opcode.MIN: lambda a, b: a if _s(a) <= _s(b) else b,
    Opcode.MAX: lambda a, b: a if _s(a) >= _s(b) else b,
    Opcode.ADDSAT: lambda a, b: _u(max(-32768, min(32767, _s(a) + _s(b)))),
    Opcode.SUBSAT: lambda a, b: _u(max(-32768, min(32767, _s(a) - _s(b)))),
    Opcode.CMPEQ: lambda a, b: 1 if a == b else 0,
    Opcode.CMPLT: lambda a, b: 1 if _s(a) < _s(b) else 0,
    Opcode.AVG2: lambda a, b: _u((_s(a) + _s(b)) >> 1),
}

UNARY = {Opcode.MOV, Opcode.NOT, Opcode.NEG, Opcode.ABS}


@pytest.mark.parametrize("op", sorted(SEMANTICS, key=int))
def test_alu_model_conforms(op):
    semantic = SEMANTICS[op]
    for a in CORNERS:
        for b in CORNERS:
            assert execute_op(op, a, b) == semantic(a, b), \
                f"{op.name}({a:#06x}, {b:#06x})"


@pytest.mark.parametrize("op", sorted(SEMANTICS, key=int))
def test_dnode_path_conforms(op):
    """The same vectors through a real Dnode (bus + immediate operands)."""
    semantic = SEMANTICS[op]
    dn = Dnode()
    for a in CORNERS[:6]:
        for b in CORNERS[:6]:
            mw = MicroWord(op, Source.BUS,
                           Source.ZERO if op in UNARY else Source.IMM,
                           Dest.OUT, imm=b)
            dn.configure(mw)
            dn.evaluate(DnodeInputs(bus=a))
            dn.commit()
            assert dn.out == semantic(a, b), \
                f"{op.name}({a:#06x}, {b:#06x}) on the Dnode path"


class TestAccumulatingConformance:
    @pytest.mark.parametrize("a,b,acc", [
        (0, 0, 0), (1, 1, 0xFFFF), (0x7FFF, 2, 5),
        (0x8000, 0x8000, 0), (100, 0xFF9C, 1000),
    ])
    def test_mac(self, a, b, acc):
        expected = _u(_s(a) * _s(b) + _s(acc))
        assert execute_op(Opcode.MAC, a, b, acc) == expected

    @pytest.mark.parametrize("a,b,acc", [
        (0x7FFF, 0x7FFF, 0x7FFF),     # saturate high
        (0x8000, 0x7FFF, 0x8000),     # saturate low
        (3, 4, 10),                    # in range
    ])
    def test_macs_saturation(self, a, b, acc):
        raw_sum = _s(a) * _s(b) + _s(acc)
        expected = _u(max(-32768, min(32767, raw_sum)))
        assert execute_op(Opcode.MACS, a, b, acc) == expected

    @pytest.mark.parametrize("a,b,imm", [
        (0, 0, 0), (5, 3, 7), (0xFFFF, 0xFFFF, 0xFFFF),
        (0x8000, 2, 0x7FFF),
    ])
    def test_madd_msub(self, a, b, imm):
        assert execute_op(Opcode.MADD, a, b, imm=imm) == \
            _u(_s(a) + _s(b) * _s(imm))
        assert execute_op(Opcode.MSUB, a, b, imm=imm) == \
            _u(_s(a) - _s(b) * _s(imm))


def test_every_opcode_is_covered():
    """The conformance tables cover the full opcode repertoire."""
    covered = set(SEMANTICS) | {Opcode.NOP, Opcode.MAC, Opcode.MACS,
                                Opcode.MADD, Opcode.MSUB}
    assert covered == set(Opcode)
