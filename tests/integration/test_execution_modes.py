"""Global vs local vs hybrid execution-mode equivalence.

The paper's multi-level reconfiguration claims the same computation can
run (a) entirely under RISC control with per-cycle microword rewrites
(global mode / hardware multiplexing), (b) entirely stand-alone from the
local sequencers, or (c) mixed.  These tests run one kernel — an
alternating absdiff/accumulate loop — all three ways and require
identical results, then compare the controller traffic, which is the
architectural point: local mode removes the per-cycle configuration
stream.
"""

import pytest

from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source, encode
from repro.core.ring import make_ring
from repro.host.system import RingSystem

PAIRS = [(10, 3), (200, 90), (7, 7), (50, 64), (0, 255), (31, 2)]

ABSDIFF = MicroWord(Opcode.ABSDIFF, Source.FIFO1, Source.FIFO2, Dest.R1,
                    flags=Flag.POP_FIFO1 | Flag.POP_FIFO2)
ACCUM = MicroWord(Opcode.ADD, Source.R0, Source.R1, Dest.R0)

EXPECTED = sum(abs(a - b) for a, b in PAIRS)


def _loaded_ring():
    ring = make_ring(8)
    ring.push_fifo(0, 0, 1, [a for a, _ in PAIRS])
    ring.push_fifo(0, 0, 2, [b for _, b in PAIRS])
    return ring


def test_local_mode_stand_alone():
    ring = _loaded_ring()
    ring.config.write_local_program(0, 0, [ABSDIFF, ACCUM])
    ring.config.write_mode(0, 0, DnodeMode.LOCAL)
    ring.run(2 * len(PAIRS))
    assert ring.dnode(0, 0).regs.read(0) == EXPECTED
    # no controller, no configuration traffic while running
    assert ring.config.writes == 4  # just the preload (program + mode)


def _global_mode_program(rom_nop: int = 2):
    """CFGDI per cycle, then park the Dnode on a NOP before halting —
    otherwise the last ACCUM word would stay active during the HALT
    cycle and execute once more."""
    body = []
    for _ in PAIRS:
        body.append(Instruction(ROp.CFGDI, dnode=0, cfg=0))
        body.append(Instruction(ROp.CFGDI, dnode=0, cfg=1))
    body.append(Instruction(ROp.CFGDI, dnode=0, cfg=rom_nop))
    body.append(Instruction(ROp.HALT))
    return body


def test_global_mode_hardware_multiplexing():
    """The controller rewrites the Dnode's function every cycle."""
    ring = _loaded_ring()
    rom = [encode(ABSDIFF), encode(ACCUM), encode(MicroWord())]
    system = RingSystem(ring, RiscController(_global_mode_program(),
                                             cfg_rom=rom))
    system.run_until_halt()
    assert ring.dnode(0, 0).regs.read(0) == EXPECTED
    # one configuration word per fabric cycle: the global-mode cost
    assert system.controller.state.config_commands == 2 * len(PAIRS) + 1


def test_hybrid_mode():
    """The Dnode computes stand-alone (local) while the controller waits,
    then the controller flips it to global mode to flush the accumulator
    onto OUT — the flush pattern the motion-estimation mapping uses."""
    ring = _loaded_ring()
    ring.config.write_local_program(0, 0, [ABSDIFF, ACCUM])
    ring.config.write_mode(0, 0, DnodeMode.LOCAL)
    flush = MicroWord(Opcode.MOV, Source.R0, dst=Dest.OUT)
    rom = [encode(flush)]
    program = [
        Instruction(ROp.WAITI, imm=2 * len(PAIRS)),
        Instruction(ROp.CFGMODE, dnode=0, mode=0),
        Instruction(ROp.CFGDI, dnode=0, cfg=0),
        Instruction(ROp.HALT),
    ]
    system = RingSystem(ring, RiscController(program, cfg_rom=rom))
    system.run_until_halt(drain=1)
    assert ring.dnode(0, 0).out == EXPECTED
    # far less controller traffic than pure global mode
    assert system.controller.state.config_commands < len(PAIRS)


def test_all_modes_agree():
    results = []
    for mode in ("local", "global"):
        ring = _loaded_ring()
        if mode == "local":
            ring.config.write_local_program(0, 0, [ABSDIFF, ACCUM])
            ring.config.write_mode(0, 0, DnodeMode.LOCAL)
            ring.run(2 * len(PAIRS))
        else:
            rom = [encode(ABSDIFF), encode(ACCUM), encode(MicroWord())]
            RingSystem(ring, RiscController(_global_mode_program(),
                                            cfg_rom=rom)) \
                .run_until_halt()
        results.append(ring.dnode(0, 0).regs.read(0))
    assert results[0] == results[1] == EXPECTED
