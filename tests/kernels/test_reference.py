"""Tests for the golden reference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import reference
from repro.errors import SimulationError

signals = st.lists(st.integers(min_value=-1000, max_value=1000),
                   min_size=2, max_size=64).filter(lambda s: len(s) % 2 == 0)


class TestSad:
    def test_identical_blocks_zero(self):
        block = np.arange(16).reshape(4, 4)
        assert reference.sad(block, block) == 0

    def test_known_value(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[2, 2], [1, 8]])
        assert reference.sad(a, b) == 1 + 0 + 2 + 4

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            reference.sad(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_symmetric(self, rng):
        a = rng.integers(0, 255, (8, 8))
        b = rng.integers(0, 255, (8, 8))
        assert reference.sad(a, b) == reference.sad(b, a)


class TestFullSearch:
    def test_exact_match_found(self, rng):
        area = rng.integers(0, 255, (12, 12))
        block = area[3:7, 5:9].copy()
        best, best_sad, sad_map = reference.full_search(block, area)
        assert best_sad == 0
        assert area[best[0]:best[0] + 4, best[1]:best[1] + 4].tolist() == \
            block.tolist()

    def test_map_shape(self):
        block = np.zeros((8, 8), dtype=int)
        area = np.zeros((24, 24), dtype=int)
        _, _, sad_map = reference.full_search(block, area)
        assert sad_map.shape == (17, 17)  # the paper's 289 candidates

    def test_area_too_small(self):
        with pytest.raises(SimulationError):
            reference.full_search(np.zeros((8, 8)), np.zeros((4, 4)))

    def test_best_is_minimum(self, rng):
        block = rng.integers(0, 255, (4, 4))
        area = rng.integers(0, 255, (10, 10))
        best, best_sad, sad_map = reference.full_search(block, area)
        assert best_sad == sad_map.min()
        assert sad_map[best] == best_sad


class TestLifting53:
    def test_constant_signal(self):
        approx, detail = reference.lifting53_forward([5] * 8)
        assert detail == [0] * 4        # no detail in a constant
        assert approx == [5] * 4        # DC preserved

    def test_length_validated(self):
        with pytest.raises(SimulationError):
            reference.lifting53_forward([1])
        with pytest.raises(SimulationError):
            reference.lifting53_forward([1, 2, 3])

    @given(signals)
    @settings(max_examples=60)
    def test_perfect_reconstruction(self, sig):
        approx, detail = reference.lifting53_forward(sig)
        assert reference.lifting53_inverse(approx, detail) == sig

    def test_inverse_length_mismatch(self):
        with pytest.raises(SimulationError):
            reference.lifting53_inverse([1, 2], [1])

    def test_halves_length(self):
        approx, detail = reference.lifting53_forward(list(range(10)))
        assert len(approx) == len(detail) == 5


class TestDwt2d:
    def test_perfect_reconstruction(self, rng):
        img = rng.integers(-500, 500, (8, 12))
        coeffs = reference.dwt53_2d(img)
        assert np.array_equal(reference.idwt53_2d(coeffs), img)

    def test_constant_image_energy_in_ll(self):
        img = np.full((8, 8), 100)
        coeffs = reference.dwt53_2d(img)
        assert np.all(coeffs[:4, :4] == 100)
        assert np.all(coeffs[4:, :] == 0)
        assert np.all(coeffs[:, 4:] == 0)

    def test_requires_2d(self):
        with pytest.raises(SimulationError):
            reference.dwt53_2d(np.arange(8))
        with pytest.raises(SimulationError):
            reference.idwt53_2d(np.arange(8))


class TestFilters:
    def test_fir_impulse_response_is_taps(self):
        taps = [3, -1, 2]
        out = reference.fir([1, 0, 0, 0], taps)
        assert out == [3, -1, 2, 0]

    def test_fir_matches_numpy_convolve(self, rng):
        sig = rng.integers(-50, 50, 30).tolist()
        taps = rng.integers(-5, 5, 6).tolist()
        expected = np.convolve(sig, taps)[:len(sig)].tolist()
        assert reference.fir(sig, taps) == expected

    def test_fir_needs_taps(self):
        with pytest.raises(SimulationError):
            reference.fir([1, 2], [])

    def test_iir_accumulator(self):
        out = reference.iir_first_order([1, 1, 1, 1], b0=1, a1=1)
        assert out == [1, 2, 3, 4]

    def test_iir_with_shift(self):
        out = reference.iir_first_order([4, 0, 0], b0=1, a1=1, shift=1)
        assert out == [4, 2, 1]

    def test_moving_average(self):
        out = reference.moving_average([2, 4, 6, 8], 2)
        assert out == [2, 6, 10, 14]

    def test_moving_average_window_validated(self):
        with pytest.raises(SimulationError):
            reference.moving_average([1], 0)
