"""Golden reference implementations of every kernel used in the paper.

These are plain-integer/numpy implementations with the exact arithmetic
the fabric uses (floor divisions implemented as arithmetic shifts, no
floating point), so fabric outputs can be compared bit-for-bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError

# ----------------------------------------------------------------------
# Block matching / motion estimation (Table 1)
# ----------------------------------------------------------------------


def sad(block_a: np.ndarray, block_b: np.ndarray) -> int:
    """Sum of absolute differences between two equal-shape blocks."""
    if block_a.shape != block_b.shape:
        raise SimulationError(
            f"SAD shapes differ: {block_a.shape} vs {block_b.shape}"
        )
    return int(np.abs(block_a.astype(np.int64)
                      - block_b.astype(np.int64)).sum())


def full_search(reference_block: np.ndarray, search_area: np.ndarray,
                ) -> Tuple[Tuple[int, int], int, np.ndarray]:
    """Exhaustive block matching of *reference_block* inside *search_area*.

    Every alignment of the block inside the search area is a candidate
    (for an 8x8 block in a 24x24 area this is the paper's 17x17 = 289
    candidates for +/-8 pixel displacement).

    Returns:
        ``((dy, dx), best_sad, sad_map)`` where ``(dy, dx)`` is the
        top-left offset of the best candidate and ``sad_map`` holds the
        SAD of every candidate position.
    """
    bh, bw = reference_block.shape
    sh, sw = search_area.shape
    if sh < bh or sw < bw:
        raise SimulationError(
            f"search area {search_area.shape} smaller than block "
            f"{reference_block.shape}"
        )
    ny, nx = sh - bh + 1, sw - bw + 1
    sad_map = np.zeros((ny, nx), dtype=np.int64)
    for dy in range(ny):
        for dx in range(nx):
            sad_map[dy, dx] = sad(reference_block,
                                  search_area[dy:dy + bh, dx:dx + bw])
    best = np.unravel_index(int(np.argmin(sad_map)), sad_map.shape)
    return (int(best[0]), int(best[1])), int(sad_map[best]), sad_map


# ----------------------------------------------------------------------
# 5/3 lifting wavelet (Table 2) — Le Gall, JPEG2000 reversible filter
# ----------------------------------------------------------------------


def lifting53_forward(signal: Sequence[int]) -> Tuple[List[int], List[int]]:
    """One level of the forward 5/3 lifting transform on a 1-D signal.

    Uses symmetric extension at the borders (JPEG2000 convention)::

        d[n] = x[2n+1] - floor((x[2n] + x[2n+2]) / 2)
        s[n] = x[2n]   + floor((d[n-1] + d[n] + 2) / 4)

    Args:
        signal: even-length integer sequence.

    Returns:
        ``(approximation, detail)`` coefficient lists, each half length.
    """
    x = [int(v) for v in signal]
    n = len(x)
    if n < 2 or n % 2 != 0:
        raise SimulationError(
            f"lifting needs an even-length signal of >= 2, got {n}"
        )
    half = n // 2

    def even(i: int) -> int:
        # symmetric extension: x[2*half] -> x[2*half - 2]
        return x[2 * i] if i < half else x[2 * (half - 1)]

    detail = [x[2 * i + 1] - ((even(i) + even(i + 1)) >> 1)
              for i in range(half)]

    def d_ext(i: int) -> int:
        return detail[i] if i >= 0 else detail[0]

    approx = [x[2 * i] + ((d_ext(i - 1) + detail[i] + 2) >> 2)
              for i in range(half)]
    return approx, detail


def lifting53_inverse(approx: Sequence[int],
                      detail: Sequence[int]) -> List[int]:
    """Invert :func:`lifting53_forward` exactly (reversible transform)."""
    s = [int(v) for v in approx]
    d = [int(v) for v in detail]
    if len(s) != len(d):
        raise SimulationError(
            f"approx/detail lengths differ: {len(s)} vs {len(d)}"
        )
    half = len(s)

    def d_ext(i: int) -> int:
        return d[i] if i >= 0 else d[0]

    even = [s[i] - ((d_ext(i - 1) + d[i] + 2) >> 2) for i in range(half)]

    def even_ext(i: int) -> int:
        return even[i] if i < half else even[half - 1]

    odd = [d[i] + ((even[i] + even_ext(i + 1)) >> 1) for i in range(half)]
    out = []
    for e, o in zip(even, odd):
        out.append(e)
        out.append(o)
    return out


def dwt53_2d(image: np.ndarray) -> np.ndarray:
    """One 2-D 5/3 DWT level: rows then columns, subbands packed
    ``[[LL, HL], [LH, HH]]`` (approximation top-left).
    """
    if image.ndim != 2:
        raise SimulationError(f"expected a 2-D image, got {image.shape}")
    rows, cols = image.shape
    temp = np.zeros_like(image, dtype=np.int64)
    for r in range(rows):
        approx, detail = lifting53_forward(image[r, :])
        temp[r, :cols // 2] = approx
        temp[r, cols // 2:] = detail
    out = np.zeros_like(temp)
    for c in range(cols):
        approx, detail = lifting53_forward(temp[:, c])
        out[:rows // 2, c] = approx
        out[rows // 2:, c] = detail
    return out


def idwt53_2d(coeffs: np.ndarray) -> np.ndarray:
    """Invert :func:`dwt53_2d` exactly."""
    if coeffs.ndim != 2:
        raise SimulationError(f"expected a 2-D array, got {coeffs.shape}")
    rows, cols = coeffs.shape
    temp = np.zeros_like(coeffs, dtype=np.int64)
    for c in range(cols):
        column = lifting53_inverse(coeffs[:rows // 2, c],
                                   coeffs[rows // 2:, c])
        temp[:, c] = column
    out = np.zeros_like(temp)
    for r in range(rows):
        row = lifting53_inverse(temp[r, :cols // 2], temp[r, cols // 2:])
        out[r, :] = row
    return out


def dwt53_2d_multilevel(image: np.ndarray, levels: int) -> np.ndarray:
    """A JPEG2000-style dyadic pyramid: re-transform the LL subband.

    Level *k* transforms the top-left ``(H/2^k-1) x (W/2^k-1)`` corner of
    the previous result.  Dimensions must stay even at every level.
    """
    if levels < 1:
        raise SimulationError(f"levels must be >= 1, got {levels}")
    out = np.asarray(image).astype(np.int64).copy()
    rows, cols = out.shape
    for _ in range(levels):
        if rows % 2 or cols % 2 or rows < 2 or cols < 2:
            raise SimulationError(
                f"subband {rows}x{cols} cannot be split further"
            )
        out[:rows, :cols] = dwt53_2d(out[:rows, :cols])
        rows //= 2
        cols //= 2
    return out


def idwt53_2d_multilevel(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Exact inverse of :func:`dwt53_2d_multilevel`."""
    if levels < 1:
        raise SimulationError(f"levels must be >= 1, got {levels}")
    out = np.asarray(coeffs).astype(np.int64).copy()
    rows, cols = out.shape
    sizes = [(rows >> k, cols >> k) for k in range(levels)]
    for r, c in reversed(sizes):
        out[:r, :c] = idwt53_2d(out[:r, :c])
    return out


# ----------------------------------------------------------------------
# FIR / IIR filters (the "RIF" / "RII" macro-operators)
# ----------------------------------------------------------------------


def fir(signal: Sequence[int], taps: Sequence[int]) -> List[int]:
    """Transversal FIR: ``y[n] = sum_k taps[k] * x[n-k]`` (x[<0] = 0)."""
    x = [int(v) for v in signal]
    c = [int(v) for v in taps]
    if not c:
        raise SimulationError("FIR needs at least one tap")
    out = []
    for n in range(len(x)):
        acc = 0
        for k, coeff in enumerate(c):
            if n - k >= 0:
                acc += coeff * x[n - k]
        out.append(acc)
    return out


def iir_first_order(signal: Sequence[int], b0: int, a1: int,
                    shift: int = 0) -> List[int]:
    """First-order recursive filter ``y[n] = b0*x[n] + a1*y[n-1] >> shift``.

    The optional *shift* scales the feedback term (fixed-point gain < 1),
    matching what the fabric computes with ``MADD`` + ``ASR``.
    """
    y_prev = 0
    out = []
    for v in signal:
        y = b0 * int(v) + ((a1 * y_prev) >> shift if shift else a1 * y_prev)
        out.append(y)
        y_prev = y
    return out


def moving_average(signal: Sequence[int], window: int) -> List[int]:
    """Simple boxcar filter (integer sum over the last *window* samples)."""
    if window < 1:
        raise SimulationError(f"window must be >= 1, got {window}")
    return fir(signal, [1] * window)
