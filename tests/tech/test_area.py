"""Tests for the area model: Table 3 anchors and scaling predictions."""

import pytest

from repro.core.ring import RingGeometry
from repro.tech.area import (
    core_area_mm2,
    dnode_area_mm2,
    ring_area_mm2,
    synthesis_table,
)


class TestTable3Anchors:
    """Table 3: calibrated by construction — reproduced exactly."""

    def test_dnode_area_025(self):
        assert dnode_area_mm2("0.25um") == pytest.approx(0.06, rel=1e-6)

    def test_dnode_area_018(self):
        assert dnode_area_mm2("0.18um") == pytest.approx(0.04, rel=1e-6)

    def test_core_area_025(self):
        assert ring_area_mm2(8, "0.25um") == pytest.approx(0.9, rel=1e-6)

    def test_core_area_018(self):
        assert ring_area_mm2(8, "0.18um") == pytest.approx(0.7, rel=1e-6)

    def test_synthesis_table_rows(self):
        rows = synthesis_table()
        assert [r[0] for r in rows] == ["0.25um", "0.18um"]
        assert rows[0][1:] == pytest.approx((0.06, 0.9, 180), rel=0.01)
        assert rows[1][1:] == pytest.approx((0.04, 0.7, 200), rel=0.01)


class TestPredictions:
    def test_ring64_matches_fig7(self):
        """Fig. 7's Ring-64 at 3.4 mm^2 — a genuine model prediction."""
        assert ring_area_mm2(64, "0.18um") == pytest.approx(3.4, rel=0.02)

    def test_ring16_with_line_buffers_near_table2(self):
        """Table 2's Ring-16 at 1.4 mm^2 (with wavelet line memory)."""
        area = ring_area_mm2(16, "0.18um",
                             extra_memory_bits=2 * 1024 * 16)
        assert area == pytest.approx(1.4, rel=0.15)

    def test_area_grows_linearly_in_dnodes(self):
        a8 = ring_area_mm2(8, "0.18um")
        a16 = ring_area_mm2(16, "0.18um")
        a32 = ring_area_mm2(32, "0.18um")
        # equal increments: the controller is shared
        assert (a32 - a16) == pytest.approx(2 * (a16 - a8), rel=0.05)

    def test_overhead_fraction_shrinks_with_size(self):
        """The scalability claim: non-Dnode overhead amortises."""
        fractions = [
            core_area_mm2(RingGeometry.ring(n), "0.18um")
            .overhead_fraction
            for n in (8, 16, 64, 256)
        ]
        assert fractions == sorted(fractions, reverse=True)

    def test_per_dnode_area_constant(self):
        r = core_area_mm2(RingGeometry.ring(64), "0.18um")
        assert r.per_dnode_mm2 == pytest.approx(
            dnode_area_mm2("0.18um"), rel=1e-6)


class TestReport:
    def test_breakdown_sums_to_total(self):
        r = core_area_mm2(RingGeometry.ring(8), "0.18um",
                          extra_memory_bits=1024)
        total = (r.dnodes_mm2 + r.switches_mm2 + r.controller_mm2
                 + r.memory_mm2 + r.extra_mm2)
        assert r.total_mm2 == pytest.approx(total)

    def test_str_mentions_ring_size(self):
        r = core_area_mm2(RingGeometry.ring(8), "0.18um")
        assert "Ring-8" in str(r)
