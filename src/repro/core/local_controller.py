"""Per-Dnode local control unit (stand-alone / local mode).

Paper §4.1: "each Dnode has a special control unit constituted by 9
registers, a up to 8-states counter and a 8 to 1 multiplexer which forms a
small local controller.  Each one of the 8 first registers can contain a
Dnode microinstruction code, and each clock cycle the counter increases the
value on the multiplexer address input, thus sending the content of a
register to the datapath part of the Dnode."

We model exactly that: 8 microinstruction slots, a LIMIT register (the 9th)
bounding the counter, and a modulo counter driving an 8:1 mux.  In local
mode the Dnode loops over slots ``0 .. LIMIT-1`` forever with no RISC
controller involvement — the mechanism that makes large rings scalable.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.isa import MicroWord, NOP_WORD
from repro.errors import ConfigurationError

NUM_SLOTS = 8


class LocalController:
    """The 9-register local sequencer of a Dnode."""

    __slots__ = ("_slots", "_limit", "_counter", "on_change")

    def __init__(self):
        self._slots: List[MicroWord] = [NOP_WORD] * NUM_SLOTS
        self._limit = 1
        self._counter = 0
        #: Invalidation hook: called after every *configuration* mutation
        #: (slot/LIMIT writes).  Counter movement is runtime state and does
        #: not fire it.  Wired by the owning Dnode.
        self.on_change: Optional[Callable[[], None]] = None

    @property
    def limit(self) -> int:
        """Number of active slots (1..8); the counter wraps at this value."""
        return self._limit

    @property
    def counter(self) -> int:
        """Current state of the modulo counter (0..limit-1)."""
        return self._counter

    def load_slot(self, index: int, microword: MicroWord) -> None:
        """Write one of the 8 instruction registers."""
        if not 0 <= index < NUM_SLOTS:
            raise ConfigurationError(
                f"local slot index must be 0..{NUM_SLOTS - 1}, got {index}"
            )
        if not isinstance(microword, MicroWord):
            raise ConfigurationError(
                f"local slot expects a MicroWord, got {type(microword).__name__}"
            )
        self._slots[index] = microword
        if self.on_change is not None:
            self.on_change()

    def load_program(self, program: Iterable[MicroWord]) -> None:
        """Load a whole loop body and set LIMIT to its length.

        Also resets the counter, so the loop starts from slot 0 on the next
        cycle — the normal way kernels install a local program.
        """
        words = list(program)
        if not 1 <= len(words) <= NUM_SLOTS:
            raise ConfigurationError(
                f"local program must be 1..{NUM_SLOTS} microwords, "
                f"got {len(words)}"
            )
        for i, mw in enumerate(words):
            self.load_slot(i, mw)
        for i in range(len(words), NUM_SLOTS):
            self._slots[i] = NOP_WORD
        self.set_limit(len(words))
        self.reset_counter()

    def set_limit(self, limit: int) -> None:
        """Write the LIMIT register (the 9th register of the control unit)."""
        if not 1 <= limit <= NUM_SLOTS:
            raise ConfigurationError(
                f"LIMIT must be 1..{NUM_SLOTS}, got {limit}"
            )
        self._limit = limit
        if self._counter >= limit:
            self._counter = 0
        if self.on_change is not None:
            self.on_change()

    def reset_counter(self) -> None:
        """Force the state counter back to slot 0."""
        self._counter = 0

    def current(self) -> MicroWord:
        """The microword selected by the 8:1 mux this cycle."""
        return self._slots[self._counter]

    def advance(self) -> None:
        """Clock edge: step the modulo counter."""
        self._counter = (self._counter + 1) % self._limit

    def slots(self) -> List[MicroWord]:
        """Copy of all 8 instruction registers (debug/trace helper)."""
        return list(self._slots)

    def __repr__(self) -> str:
        return (
            f"LocalController(limit={self._limit}, counter={self._counter})"
        )
