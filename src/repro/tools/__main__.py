"""CLI front end for the Systolic Ring toolchain.

Subcommands:

* ``asm``  — assemble two-level source to binary object code;
* ``dis``  — disassemble object code to a readable listing;
* ``run``  — load object code, stream data in, print tap outputs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import word
from repro.asm import assemble, load_system
from repro.asm.disasm import disassemble
from repro.asm.objcode import ObjectCode
from repro.errors import ReproError


def _cmd_asm(args: argparse.Namespace) -> int:
    source = Path(args.source).read_text()
    obj = assemble(source, layers=args.layers, width=args.width)
    out_path = Path(args.output or Path(args.source).with_suffix(".obj"))
    out_path.write_bytes(obj.to_bytes())
    print(f"{out_path}: {len(obj.program)} instructions, "
          f"{len(obj.cfg_rom)} ROM entries, {len(obj.planes)} plane(s)")
    return 0


def _cmd_dis(args: argparse.Namespace) -> int:
    obj = ObjectCode.from_bytes(Path(args.object).read_bytes())
    sys.stdout.write(disassemble(obj))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.tools.report import generate_report

    text = generate_report(seed=args.seed)
    Path(args.output).write_text(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _parse_stream(spec: str):
    """``channel:v1,v2,...`` -> (channel, [values])."""
    channel_text, _, values_text = spec.partition(":")
    values = [word.from_signed(int(v, 0))
              for v in values_text.split(",") if v]
    return int(channel_text), values


def _parse_tap(spec: str):
    """``layer.pos[:count]`` -> (layer, pos, count)."""
    place, _, count = spec.partition(":")
    layer_text, _, pos_text = place.partition(".")
    return int(layer_text), int(pos_text), int(count) if count else None


def _cmd_run(args: argparse.Namespace) -> int:
    obj = ObjectCode.from_bytes(Path(args.object).read_bytes())
    system = load_system(obj)
    if args.backend is not None:
        if args.backend == "batch" and system.controller is not None:
            print("error: --backend batch needs an uncontrolled program "
                  "(the configuration controller drives one scalar "
                  "fabric)", file=sys.stderr)
            return 1
        system.ring.set_backend(
            args.backend,
            args.batch_size if args.backend == "batch" else 1)
        # Rebuild the data controller so channels/taps match the lane
        # count (streams below are broadcast to every lane).
        from repro.host.streams import DataController
        system.data = DataController(batch=system.ring.batch_size)
    elif args.batch_size != 1:
        print("error: --batch-size requires --backend batch",
              file=sys.stderr)
        return 1
    if args.plan_cache is not None:
        system.set_plan_cache(args.plan_cache)
    if args.macro_step is not None:
        system.set_macro_step(args.macro_step)
    total = 0
    for spec in args.stream or []:
        channel, values = _parse_stream(spec)
        system.data.stream(channel, values)
        total = max(total, len(values))
    taps = []
    for spec in args.tap or []:
        layer, pos, count = _parse_tap(spec)
        taps.append((spec, system.data.add_tap(layer, pos, limit=count)))
    cycles = args.cycles if args.cycles is not None else total + 16
    if system.controller is not None and args.cycles is None:
        system.run_until_halt(max_cycles=args.max_cycles)
    else:
        system.run(cycles)
    batch = system.ring.batch_size if system.ring.backend == "batch" else 1
    if batch > 1:
        print(f"ran {system.cycles} cycles x {batch} lanes "
              f"({system.cycles * batch} lane-cycles)")
    else:
        print(f"ran {system.cycles} cycles")
    for spec, tap in taps:
        if batch > 1:
            for lane in range(batch):
                values = [word.to_signed(v) for v in tap.lane(lane)]
                print(f"tap {spec} lane {lane}: {values}")
        else:
            values = [word.to_signed(v) for v in tap.samples]
            print(f"tap {spec}: {values}")
    if args.metrics:
        snapshot = system.metrics()
        text = (snapshot.to_prometheus() if args.metrics_format == "prom"
                else snapshot.to_json() + "\n")
        Path(args.metrics).write_text(text)
        print(f"wrote metrics to {args.metrics} ({args.metrics_format})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="Systolic Ring toolchain (assembler/disassembler/runner)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble source to object code")
    p_asm.add_argument("source")
    p_asm.add_argument("-o", "--output")
    p_asm.add_argument("--layers", type=int, default=4)
    p_asm.add_argument("--width", type=int, default=2)
    p_asm.set_defaults(func=_cmd_asm)

    p_dis = sub.add_parser("dis", help="disassemble object code")
    p_dis.add_argument("object")
    p_dis.set_defaults(func=_cmd_dis)

    p_report = sub.add_parser(
        "report", help="regenerate every paper table into one report")
    p_report.add_argument("-o", "--output", default="REPORT.md")
    p_report.add_argument("--seed", type=int, default=2002)
    p_report.set_defaults(func=_cmd_report)

    p_run = sub.add_parser("run", help="execute object code")
    p_run.add_argument("object")
    p_run.add_argument("--stream", action="append",
                       help="channel:v1,v2,... (repeatable)")
    p_run.add_argument("--tap", action="append",
                       help="layer.pos[:count] (repeatable)")
    p_run.add_argument("--cycles", type=int, default=None,
                       help="run exactly N cycles instead of to HALT")
    p_run.add_argument("--max-cycles", type=int, default=1_000_000)
    p_run.add_argument("--backend",
                       choices=("interpreter", "fastpath", "batch"),
                       default=None,
                       help="execution engine (default: the ring's own; "
                            "'batch' advances --batch-size streams at "
                            "once, streams broadcast to every lane)")
    p_run.add_argument("--batch-size", type=int, default=1, metavar="N",
                       help="lane count for --backend batch")
    p_run.add_argument("--plan-cache", type=int, default=None, metavar="N",
                       help="retain up to N compiled plans keyed by "
                            "configuration fingerprint (0 disables; "
                            "default: the ring's own, normally 8)")
    p_run.add_argument("--macro-step", type=int, default=None, metavar="K",
                       help="fuse steady-state runs of >= K cycles into "
                            "generated macro kernels (0/1 disables)")
    p_run.add_argument("--metrics", default=None, metavar="PATH",
                       help="export run metrics (counters, FIFO high-water "
                            "marks, controller stalls) to PATH")
    p_run.add_argument("--metrics-format", choices=("json", "prom"),
                       default="json",
                       help="metrics format: JSON or Prometheus text")
    p_run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
