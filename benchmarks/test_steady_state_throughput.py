"""Steady-state simulation throughput: interpreter vs pre-decoded fast path.

The fast path (:mod:`repro.core.fastpath`) exists so that large rings —
the paper's Ring-64 SoC operating point — simulate at a useful speed: in
steady state the configuration is static, so per-cycle routing resolution
and microword dispatch are pure overhead.  This benchmark measures fabric
cycles per second on a representative DSP configuration (forward MADD
chains, local-mode MAC loops, feedback taps) for Ring-8/16/64 with the
fast path disabled and enabled, and asserts the tentpole target: at least
a 3x steady-state speedup on Ring-64.

Run with ``pytest -s benchmarks/test_steady_state_throughput.py`` to see
the reproduced table.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource

#: Ring-64 acceptance floor (steady-state cycles/sec, fast path over
#: interpreter).  The measured ratio is typically far higher; 3x keeps the
#: assertion robust on loaded CI machines.
TARGET_SPEEDUP = 3.0


def _configure(ring: Ring) -> None:
    """A representative always-active DSP steady state.

    Straight inter-layer routing; even positions run a global MADD on the
    forward stream (multiplier + adder every cycle), odd positions run a
    4-slot local loop mixing MAC accumulation, feedback-tap reads and a
    register move — so both execution modes, both operand planes and the
    feedback pipelines are all on the measured path.
    """
    g = ring.geometry
    for k in range(g.layers):
        for pos in range(g.width):
            ring.config.write_switch_route(k, pos, 1, PortSource.up(pos))
            ring.config.write_switch_route(k, pos, 2,
                                           PortSource.rp(2, pos + 1))
    for layer in range(g.layers):
        for pos in range(g.width):
            if pos % 2 == 0:
                ring.config.write_microword(layer, pos, MicroWord(
                    Opcode.MADD, Source.IN1, Source.SELF, dst=Dest.OUT,
                    imm=3))
            else:
                ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
                ring.config.write_local_program(layer, pos, [
                    MicroWord(Opcode.MAC, Source.IN1, Source.IN2,
                              dst=Dest.R0, flags=Flag.WRITE_OUT),
                    MicroWord(Opcode.ADD, Source.R0, Source.IN2,
                              dst=Dest.R1),
                    MicroWord(Opcode.ABSDIFF, Source.R1, Source.SELF,
                              dst=Dest.OUT),
                    MicroWord(Opcode.MOV, Source.R1, dst=Dest.R2),
                ])


def _cycles_per_second(ring: Ring, cycles: int, repeats: int = 3) -> float:
    """Best-of-*repeats* steady-state throughput of ``ring.run``."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def _measure(dnodes: int, cycles: int) -> tuple:
    results = []
    for fastpath in (False, True):
        ring = Ring(RingGeometry.ring(dnodes), fastpath=fastpath)
        _configure(ring)
        ring.run(4)  # settle + (fast path) compile outside the timed region
        if fastpath:
            assert ring._plan is not None, "fast path failed to engage"
        results.append(_cycles_per_second(ring, cycles))
    return tuple(results)


def test_ring64_steady_state_speedup():
    interp, fast = _measure(64, cycles=3_000)
    speedup = fast / interp
    emit(
        f"Ring-64 steady state: interpreter {interp:,.0f} cyc/s, "
        f"fast path {fast:,.0f} cyc/s -> {speedup:.1f}x"
    )
    assert speedup >= TARGET_SPEEDUP, (
        f"fast path delivered only {speedup:.2f}x on Ring-64 "
        f"(target {TARGET_SPEEDUP}x)"
    )


def test_throughput_scaling_table():
    rows = []
    for dnodes, cycles in ((8, 12_000), (16, 8_000), (64, 3_000)):
        interp, fast = _measure(dnodes, cycles)
        rows.append([f"Ring-{dnodes}", f"{interp:,.0f}", f"{fast:,.0f}",
                     f"{fast / interp:.1f}x"])
    emit(render_table(
        ["fabric", "interpreter cyc/s", "fast path cyc/s", "speedup"],
        rows,
        title="Steady-state simulation throughput",
    ))
    # Larger fabrics must not lose the advantage: the fast path's per-cycle
    # cost is linear in *active* Dnodes with no global re-decode, so the
    # ratio should hold (or grow) with ring size.
    assert all(float(r[3][:-1]) >= 1.5 for r in rows)
