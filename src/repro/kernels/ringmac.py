"""RingMAC: N client streams time-multiplexing one MAC Dnode.

The tiliqua ``RingMAC`` idiom (SNIPPETS.md) mapped onto the systolic
ring: a single multiply-accumulate server Dnode serves N independent
client dot products, one MAC per cycle, each request identified by its
time slot on the ring rather than by a tag word.

Layer 0 is the transport — two MOV relays carrying the interleaved
operand words (client ``t % N`` owns word ``t``) from host channels 0/1.
Layer 1 is the server: a local-mode program whose slot *s* accumulates
into the register of the client whose word arrives that cycle.  The
relay adds one cycle of transport latency and the local sequencer starts
at slot 0 on cycle 0, so slot *s* serves client ``(s - 1) mod N``; the
first server cycle consumes the switch's reset value (a harmless
``0 * 0`` into the last client's accumulator).

Each client's running partial sums appear time-multiplexed on the
server's OUT (``WRITE_OUT``), so a host tap with ``every=N`` recovers
any client's dot-product stream — bit-exact against
:func:`repro.kernels.reference.ringmac`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem
from repro.kernels.taps import tap_lane0

#: The most clients one server can carry: one accumulator register each.
MAX_CLIENTS = 4

#: Fabric cycles from a host word to its MAC commit (relay + server).
RINGMAC_LATENCY = 2


@dataclass
class RingMacResult:
    """Outcome of a RingMAC run: per-client partial-sum streams."""

    partials: List[List[int]]
    totals: List[int]
    clients: int
    cycles: int
    dnodes_used: int


def ringmac_program(clients: int) -> List[MicroWord]:
    """The server's local program: slot *s* MACs client ``(s-1) % N``."""
    if not 1 <= clients <= MAX_CLIENTS:
        raise ValueError(
            f"clients must be 1..{MAX_CLIENTS}, got {clients}")
    return [
        MicroWord(Opcode.MAC, Source.IN1, Source.IN2,
                  Dest[f"R{(slot - 1) % clients}"],
                  flags=Flag.WRITE_OUT)
        for slot in range(clients)
    ]


def build_ringmac(clients: int, ring: Optional[Ring] = None,
                  server_layer: int = 1) -> RingSystem:
    """Configure the relay + server pair for *clients* client streams."""
    if ring is None:
        ring = Ring(RingGeometry(layers=max(server_layer + 1, 2),
                                 width=2))
    relay = server_layer - 1
    if relay < 0 or server_layer >= ring.geometry.layers:
        raise ValueError(f"server layer {server_layer} needs a relay "
                         f"layer above it inside the ring")
    cfg = ring.config
    cfg.write_switch_route(relay, 0, 1, PortSource.host(0))
    cfg.write_microword(relay, 0, MicroWord(Opcode.MOV, Source.IN1,
                                            dst=Dest.OUT))
    cfg.write_switch_route(relay, 1, 1, PortSource.host(1))
    cfg.write_microword(relay, 1, MicroWord(Opcode.MOV, Source.IN1,
                                            dst=Dest.OUT))
    cfg.write_switch_route(server_layer, 0, 1, PortSource.up(0))
    cfg.write_switch_route(server_layer, 0, 2, PortSource.up(1))
    cfg.write_local_program(server_layer, 0, ringmac_program(clients))
    cfg.write_mode(server_layer, 0, DnodeMode.LOCAL)
    return RingSystem(ring)


def ringmac_fabric(a_streams: Sequence[Sequence[int]],
                   b_streams: Sequence[Sequence[int]],
                   ring: Optional[Ring] = None,
                   server_layer: int = 1) -> RingMacResult:
    """Run N client dot products through one MAC server.

    ``a_streams[c][k] * b_streams[c][k]`` accumulates (wrapping) into
    client *c*'s register; the returned ``partials[c]`` is the running
    sum after each term — bit-exact against
    :func:`repro.kernels.reference.ringmac`.
    """
    clients = len(a_streams)
    if clients != len(b_streams):
        raise ValueError(f"{clients} a-streams vs "
                         f"{len(b_streams)} b-streams")
    lengths = {len(s) for s in list(a_streams) + list(b_streams)}
    if len(lengths) != 1:
        raise ValueError("all client streams must share one length")
    (length,) = lengths
    system = build_ringmac(clients, ring=ring, server_layer=server_layer)
    a_words = [word.from_signed(int(a_streams[t % clients][t // clients]))
               for t in range(clients * length)]
    b_words = [word.from_signed(int(b_streams[t % clients][t // clients]))
               for t in range(clients * length)]
    system.data.stream(0, a_words)
    system.data.stream(1, b_words)
    taps = [system.data.add_tap(server_layer, 0,
                                skip=c + RINGMAC_LATENCY - 1,
                                every=clients, limit=length)
            for c in range(clients)]
    system.run(clients * length + RINGMAC_LATENCY)
    partials = [[word.to_signed(v) for v in tap_lane0(tap)]
                for tap in taps]
    return RingMacResult(
        partials=partials,
        totals=[p[-1] if p else 0 for p in partials],
        clients=clients, cycles=system.cycles,
        dnodes_used=3)
