"""Robustness-layer cost model: checkpoint overhead + campaign smoke.

Two numbers are pinned here:

1. **Checkpoint overhead**: running a steady-state FIR under
   ``CheckpointManager`` (interval 256) must cost no more than 15% of
   plain fast-path throughput.  Snapshots are cheap relative to the
   compiled inner loop, and this assertion keeps them that way.
2. **Campaign determinism**: a pinned-seed :class:`FaultCampaign` must
   reproduce the exact same summary every run — injected/detected/
   recovered/masked counts are recorded so a behaviour change in the
   fault models shows up as a JSON diff in CI artifacts.

Everything lands in ``BENCH_robustness.json``.  Run with
``pytest -s benchmarks/test_robustness.py`` for the tables.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.ring import Ring, RingGeometry
from repro.kernels.fir import build_spatial_fir
from repro.robustness import CheckpointManager, FaultCampaign

#: Acceptance ceiling: fractional throughput cost of interval-256
#: checkpointing on the fast path.  Measured overhead is typically ~5%;
#: 15% keeps the assertion robust on loaded CI.
MAX_CHECKPOINT_OVERHEAD = 0.15

CHECKPOINT_EVERY = 256
STEADY_CYCLES = 20_000

#: Pinned campaign shape — change these and the recorded summary moves.
CAMPAIGN_SEED = 2002  # DATE 2002
CAMPAIGN_CYCLES = 48
CAMPAIGN_TRIALS = 12

BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_robustness.json"

_TAPS = [3, -1, 4, 1, -5, 9, 2, -6]


def _fir_ring(**kwargs) -> Ring:
    ring = Ring(RingGeometry(layers=len(_TAPS), width=2), **kwargs)
    build_spatial_fir(_TAPS, ring=ring)
    return ring


def _driver(ring: Ring, cycle: int) -> None:
    ring.step(host_in=lambda channel: cycle & 0xFF)


def _plain_cycles_per_second(repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        ring = _fir_ring()
        ring.run(4, host_in=lambda ch: 0)
        start = time.perf_counter()
        for cycle in range(STEADY_CYCLES):
            _driver(ring, cycle)
        best = max(best, STEADY_CYCLES / (time.perf_counter() - start))
    return best


def _checkpointed_cycles_per_second(repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        ring = _fir_ring()
        ring.run(4, host_in=lambda ch: 0)
        manager = CheckpointManager(ring, every=CHECKPOINT_EVERY,
                                    driver=_driver, keep=2)
        start = time.perf_counter()
        manager.run(STEADY_CYCLES)
        best = max(best, STEADY_CYCLES / (time.perf_counter() - start))
        assert ring.checkpoints >= STEADY_CYCLES // CHECKPOINT_EVERY
    return best


def _campaign_factory() -> Ring:
    return _fir_ring()


def test_checkpoint_overhead_and_campaign_smoke():
    plain = _plain_cycles_per_second()
    checkpointed = _checkpointed_cycles_per_second()
    overhead = 1.0 - checkpointed / plain

    emit(render_table(
        ["mode", "cyc/s", "overhead"],
        [["fast path", f"{plain:,.0f}", "--"],
         [f"+ checkpoint/{CHECKPOINT_EVERY}", f"{checkpointed:,.0f}",
          f"{overhead * 100.0:.1f}%"]],
        title=f"steady-state {len(_TAPS)}-tap FIR checkpoint overhead",
    ))

    campaign = FaultCampaign(_campaign_factory, cycles=CAMPAIGN_CYCLES,
                             checkpoint_every=8, seed=CAMPAIGN_SEED,
                             trials=CAMPAIGN_TRIALS)
    result = campaign.run()
    summary = result.summary()

    emit(render_table(
        ["injected", "detected", "recovered", "masked"],
        [[str(summary["injected"]), str(summary["detected"]),
          str(summary["recovered"]), str(summary["masked"])]],
        title=f"fault campaign (seed {CAMPAIGN_SEED}, "
              f"{CAMPAIGN_TRIALS} trials x {CAMPAIGN_CYCLES} cycles)",
    ))

    assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
        f"interval-{CHECKPOINT_EVERY} checkpointing cost "
        f"{overhead * 100.0:.1f}% of fast-path throughput (ceiling "
        f"{MAX_CHECKPOINT_OVERHEAD * 100.0:.0f}%)"
    )
    assert result.all_recovered, "campaign left an unrecovered fault"
    assert summary["detected"] > 0, "campaign never landed a visible fault"

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "robustness",
        "fabric": f"Ring-{len(_TAPS) * 2} spatial FIR ({len(_TAPS)} taps)",
        "checkpoint_every": CHECKPOINT_EVERY,
        "steady_cycles_per_second": {
            "fastpath": round(plain),
            "checkpointed": round(checkpointed),
        },
        "checkpoint_overhead_percent": round(overhead * 100.0, 2),
        "max_checkpoint_overhead_percent":
            MAX_CHECKPOINT_OVERHEAD * 100.0,
        "campaign": {
            "seed": CAMPAIGN_SEED,
            "cycles": CAMPAIGN_CYCLES,
            "trials": CAMPAIGN_TRIALS,
            **summary,
        },
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")
