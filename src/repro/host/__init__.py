"""Host-side integration: data controller, DMA models, memories, SoC system.

The Systolic Ring "is thus not intended to be a stand-alone solution,
rather an IP core accelerator ... which would take place in a SoC"
(paper §3).  This package provides everything around the fabric:

* :mod:`repro.host.streams` — the specific input/output data controller
  (direct dedicated ports of the switches, output taps);
* :mod:`repro.host.dma` — bandwidth-limited transfer models (the 3 GB/s
  theoretical on-chip path vs the 250 MB/s PCI protocol of §5.1);
* :mod:`repro.host.memory` — word memories for the Fig. 6 prototype
  (PRG / IMAGE / VIDEO);
* :mod:`repro.host.system` — :class:`RingSystem`, wiring controller +
  fabric + data controller into one clocked SoC model.
"""

from repro.host.streams import (
    BatchOutputTap,
    BatchStreamChannel,
    DataController,
    OutputTap,
    StreamChannel,
)
from repro.host.dma import TransferModel, ONCHIP_PORTS, PCI_BUS
from repro.host.memory import WordMemory
from repro.host.system import RingSystem

__all__ = [
    "BatchOutputTap",
    "BatchStreamChannel",
    "DataController",
    "OutputTap",
    "StreamChannel",
    "TransferModel",
    "ONCHIP_PORTS",
    "PCI_BUS",
    "WordMemory",
    "RingSystem",
]
