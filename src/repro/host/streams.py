"""The specific input/output data controller of the Systolic Ring.

Paper §4.1/§4.2: the switches manage "data communications with the host
processor by direct dedicated ports", and the local mode "joined to a
specific input/output Data controller ... allows very efficient and high
bandwidth data oriented computation".

* :class:`StreamChannel` — an input stream presented on a direct port:
  one 16-bit word per fabric cycle (the head value is stable within a
  cycle; the channel advances at the clock edge).
* :class:`OutputTap` — samples a Dnode's output register every cycle
  (optionally after a pipeline-fill delay), collecting result streams.
* :class:`DataController` — the bank of channels and taps a
  :class:`~repro.host.system.RingSystem` drives each cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro import word
from repro.errors import HostError


class StreamChannel:
    """One direct host->fabric input port (a synchronous word stream).

    The value returned by :meth:`current` stays constant within a cycle;
    :meth:`advance` (called once per cycle by the data controller) moves to
    the next word.  When the stream runs dry the port presents *idle_value*
    and counts the underrun, so pipeline drain cycles are harmless but
    observable.
    """

    def __init__(self, values: Optional[Iterable[int]] = None,
                 idle_value: int = 0):
        self._queue: Deque[int] = deque()
        self.idle_value = word.check(idle_value, "idle value")
        self.delivered = 0
        self.underruns = 0
        if values is not None:
            self.push(values)

    def push(self, values) -> None:
        """Queue one word or an iterable of words for streaming."""
        if isinstance(values, int):
            values = [values]
        for v in values:
            self._queue.append(word.check(v, "stream word"))

    def current(self) -> int:
        """The word presented on the port this cycle."""
        if not self._queue:
            self.underruns += 1
            return self.idle_value
        return self._queue[0]

    def advance(self) -> None:
        """Clock edge: consume the presented word."""
        if self._queue:
            self._queue.popleft()
            self.delivered += 1

    def pending(self) -> int:
        """Words still queued."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"StreamChannel(pending={len(self._queue)}, "
            f"delivered={self.delivered})"
        )


class OutputTap:
    """Samples one Dnode's output register each cycle.

    Args:
        layer, position: which Dnode to observe.
        skip: number of initial cycles to ignore (pipeline fill).
        every: sample period — keep one sample every *every* cycles
            (1 = every cycle).
        limit: stop collecting after this many samples (None = unbounded).
    """

    def __init__(self, layer: int, position: int, skip: int = 0,
                 every: int = 1, limit: Optional[int] = None):
        if skip < 0:
            raise HostError(f"skip must be >= 0, got {skip}")
        if every < 1:
            raise HostError(f"every must be >= 1, got {every}")
        if limit is not None and limit < 0:
            raise HostError(f"limit must be >= 0, got {limit}")
        self.layer = layer
        self.position = position
        self.skip = skip
        self.every = every
        self.limit = limit
        self.samples: List[int] = []
        self._seen = 0

    def observe(self, value: int) -> None:
        """Record this cycle's post-edge output value (if selected)."""
        self._seen += 1
        if self._seen <= self.skip:
            return
        if (self._seen - self.skip - 1) % self.every != 0:
            return
        if self.limit is not None and len(self.samples) >= self.limit:
            return
        self.samples.append(value)

    @property
    def full(self) -> bool:
        """True once *limit* samples are collected."""
        return self.limit is not None and len(self.samples) >= self.limit

    def __repr__(self) -> str:
        return (
            f"OutputTap(D{self.layer}.{self.position}, "
            f"samples={len(self.samples)})"
        )


class DataController:
    """Bank of stream channels and output taps driven once per cycle."""

    def __init__(self):
        self._channels: Dict[int, StreamChannel] = {}
        self.taps: List[OutputTap] = []

    def channel(self, index: int) -> StreamChannel:
        """The stream channel behind direct-port index (created on demand)."""
        if index < 0:
            raise HostError(f"channel index must be >= 0, got {index}")
        if index not in self._channels:
            self._channels[index] = StreamChannel()
        return self._channels[index]

    def stream(self, index: int, values) -> StreamChannel:
        """Queue *values* on channel *index* (convenience)."""
        ch = self.channel(index)
        ch.push(values)
        return ch

    def add_tap(self, layer: int, position: int, **kwargs) -> OutputTap:
        """Attach an output tap to a Dnode; returns it for later reading."""
        tap = OutputTap(layer, position, **kwargs)
        self.taps.append(tap)
        return tap

    def host_in(self, index: int) -> int:
        """Resolver handed to :meth:`repro.core.ring.Ring.step`."""
        return self.channel(index).current()

    @property
    def idle(self) -> bool:
        """True when per-cycle servicing would be a no-op.

        No taps to sample and no queued stream words to advance — empty
        channels still present their idle value (and count underruns)
        through :meth:`host_in`, which needs no per-cycle bookkeeping.
        """
        return not self.taps and not any(
            ch.pending() for ch in self._channels.values()
        )

    def advance(self) -> None:
        """Clock edge: every channel moves to its next word."""
        for ch in self._channels.values():
            ch.advance()

    def collect(self, ring) -> None:
        """Sample every tap from the post-edge fabric state."""
        for tap in self.taps:
            tap.observe(ring.dnode(tap.layer, tap.position).out)

    def total_words_in(self) -> int:
        """Words actually streamed into the fabric so far."""
        return sum(ch.delivered for ch in self._channels.values())

    def total_words_out(self) -> int:
        """Samples collected across all taps so far."""
        return sum(len(tap.samples) for tap in self.taps)
