"""Technology nodes with coefficients calibrated to the paper's Table 3.

Each node carries two area coefficients (logic gate area, memory bit
area) and two delay coefficients (FO4 inverter delay, a fixed wire
penalty).  The 0.25 um and 0.18 um ST CMOS nodes are *calibrated*: their
coefficients are solved at import time so that the model reproduces the
paper's synthesis anchors exactly —

=========  ============  ===========  ==============
node       Dnode area    core area    est. frequency
=========  ============  ===========  ==============
0.25 um    0.06 mm^2     0.9 mm^2     180 MHz
0.18 um    0.04 mm^2     0.7 mm^2     200 MHz
=========  ============  ===========  ==============

(the "core" is the prototyped Ring-8 including the configuration
controller).  Everything else the model outputs — Ring-16, Ring-64,
scaling sweeps — is then a genuine prediction of the component model, not
a fit; the Ring-64 figure lands on the paper's 3.4 mm^2 within ~1 %.

The memory coefficient coming out *larger* at 0.18 um than at 0.25 um is
deliberate: it absorbs the paper's non-ideal core shrink (0.9 -> 0.7 is a
x0.78 scaling where pure feature-size scaling would give x0.52), i.e. the
routing/overhead growth the paper itself blames on deep-submicron wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tech import gates
from repro.errors import TechnologyError

#: Combinational depth of the Dnode critical path in FO4 units: the
#: hardwired multiplier chained into the ALU adder ("associated in a fully
#: combinational way"), plus operand steering.
CRITICAL_PATH_FO4 = 52

#: FO4 inverter delay rule of thumb: ~425 ps per micron of feature size.
FO4_PS_PER_UM = 425.0

#: Table 3 anchors: node -> (dnode_mm2, core_mm2, frequency_hz).
TABLE3_ANCHORS = {
    "0.25um": (0.06, 0.9, 180e6),
    "0.18um": (0.04, 0.7, 200e6),
}

#: The prototyped core used for calibration (Ring-8 = 4 layers x 2).
_CAL_DNODES, _CAL_LAYERS, _CAL_WIDTH = 8, 4, 2


@dataclass(frozen=True)
class TechNode:
    """One CMOS technology point of the area/timing model."""

    name: str
    feature_um: float
    logic_um2_per_gate: float
    mem_um2_per_bit: float
    fo4_ps: float
    wire_penalty_ps: float
    calibrated: bool = False

    def logic_area_um2(self, gate_count: float) -> float:
        """Area of *gate_count* NAND2-equivalents."""
        return gate_count * self.logic_um2_per_gate

    def memory_area_um2(self, bits: float) -> float:
        """Area of *bits* of register/SRAM storage."""
        return bits * self.mem_um2_per_bit

    def cycle_time_ps(self, extra_wire_ps: float = 0.0) -> float:
        """Dnode critical-path cycle time plus any extra wire delay."""
        return (CRITICAL_PATH_FO4 * self.fo4_ps + self.wire_penalty_ps
                + extra_wire_ps)

    def frequency_hz(self, extra_wire_ps: float = 0.0) -> float:
        """Achievable clock frequency."""
        return 1e12 / self.cycle_time_ps(extra_wire_ps)


def _core_gates_and_bits() -> tuple:
    total_gates = (
        _CAL_DNODES * gates.dnode_gate_count()
        + _CAL_LAYERS * gates.switch_gate_count(_CAL_WIDTH)
        + gates.CONTROLLER_GATES
        + gates.DATA_CONTROLLER_GATES
    )
    total_bits = gates.memory_bits(_CAL_DNODES, _CAL_LAYERS, _CAL_WIDTH)
    return total_gates, total_bits


def _calibrate(name: str, feature_um: float) -> TechNode:
    """Solve the two per-node area coefficients from the Table 3 anchors."""
    dnode_mm2, core_mm2, freq_hz = TABLE3_ANCHORS[name]
    logic_per_gate = dnode_mm2 * 1e6 / gates.dnode_gate_count()
    core_gates, core_bits = _core_gates_and_bits()
    mem_per_bit = (core_mm2 * 1e6 - core_gates * logic_per_gate) / core_bits
    if mem_per_bit <= 0:
        raise TechnologyError(
            f"{name}: calibration produced non-positive memory area"
        )
    fo4 = FO4_PS_PER_UM * feature_um
    wire = 1e12 / freq_hz - CRITICAL_PATH_FO4 * fo4
    if wire < 0:
        raise TechnologyError(
            f"{name}: calibration produced negative wire penalty"
        )
    return TechNode(name, feature_um, logic_per_gate, mem_per_bit, fo4,
                    wire, calibrated=True)


def _extrapolate(name: str, feature_um: float, base: TechNode) -> TechNode:
    """Scale a calibrated node to another feature size.

    Area scales with feature^2; the wire penalty scales *up* as features
    shrink (relative wire resistance grows), matching the paper's
    scalability discussion.
    """
    shrink = (feature_um / base.feature_um) ** 2
    wire_growth = base.feature_um / feature_um
    return TechNode(
        name=name,
        feature_um=feature_um,
        logic_um2_per_gate=base.logic_um2_per_gate * shrink,
        mem_um2_per_bit=base.mem_um2_per_bit * shrink,
        fo4_ps=FO4_PS_PER_UM * feature_um,
        wire_penalty_ps=base.wire_penalty_ps * wire_growth,
    )


_node_025 = _calibrate("0.25um", 0.25)
_node_018 = _calibrate("0.18um", 0.18)

NODES: Dict[str, TechNode] = {
    "0.35um": _extrapolate("0.35um", 0.35, _node_025),
    "0.25um": _node_025,
    "0.18um": _node_018,
    "0.13um": _extrapolate("0.13um", 0.13, _node_018),
}


def get_node(name: str) -> TechNode:
    """Look up a technology node by name (e.g. ``"0.18um"``)."""
    try:
        return NODES[name]
    except KeyError:
        known = ", ".join(sorted(NODES))
        raise TechnologyError(f"unknown node {name!r}; known: {known}")
