"""Tests for fabric checkpoint/restore."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry, make_ring
from repro.core.snapshot import capture, restore
from repro.core.switch import PortSource
from repro.errors import SimulationError


def busy_ring():
    """A ring with every kind of live state: registers, OUT values,
    pipeline contents, FIFO backlogs, a mid-loop local counter."""
    ring = make_ring(8)
    cfg = ring.config
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=3))
    cfg.write_local_program(1, 0, [
        MicroWord(Opcode.MAC, Source.FIFO1, Source.FIFO2, Dest.R0,
                  flags=Flag.POP_FIFO1 | Flag.POP_FIFO2),
        MicroWord(Opcode.MOV, Source.R0, dst=Dest.OUT),
        MicroWord(Opcode.NOP),
    ])
    cfg.write_mode(1, 0, DnodeMode.LOCAL)
    cfg.write_switch_route(2, 0, 1, PortSource.rp(2, 1))
    cfg.write_microword(2, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    ring.push_fifo(1, 0, 1, [2, 3, 4, 5, 6, 7, 8])
    ring.push_fifo(1, 0, 2, [10, 10, 10, 10, 10, 10, 10])
    ring.run(5, host_in=lambda ch: 1)
    return ring


def fabric_state(ring):
    return {
        "outs": [dn.out for dn in ring.all_dnodes()],
        "regs": [dn.regs.snapshot() for dn in ring.all_dnodes()],
        "counters": [dn.local.counter for dn in ring.all_dnodes()],
        "pipes": [[ring.switch(k).rp_read(s, l)
                   for s in range(1, 5) for l in (1, 2)]
                  for k in range(4)],
        "fifos": [list(ring.fifo(1, 0, ch)) for ch in (1, 2)],
        "cycles": ring.cycles,
    }


class TestCaptureRestore:
    def test_state_restored_exactly(self):
        source = busy_ring()
        snapshot = capture(source)
        target = make_ring(8)
        restore(target, snapshot)
        assert fabric_state(target) == fabric_state(source)

    def test_restored_ring_continues_identically(self):
        """The acid test: run the original and the restored ring forward
        and require cycle-for-cycle identical evolution."""
        source = busy_ring()
        snapshot = capture(source)
        target = make_ring(8)
        restore(target, snapshot)
        for _ in range(6):
            source.step(host_in=lambda ch: 1)
            target.step(host_in=lambda ch: 1)
            assert fabric_state(target) == fabric_state(source)

    def test_snapshot_is_independent_of_source(self):
        source = busy_ring()
        snapshot = capture(source)
        cycles_at_capture = snapshot.cycles
        source.run(3, host_in=lambda ch: 1)
        assert snapshot.cycles == cycles_at_capture

    def test_geometry_mismatch_rejected(self):
        snapshot = capture(busy_ring())
        with pytest.raises(SimulationError, match="snapshot"):
            restore(make_ring(16), snapshot)

    def test_mid_loop_local_counter_preserved(self):
        source = busy_ring()  # period-3 local loop after 5 cycles
        assert source.dnode(1, 0).local.counter == 5 % 3
        target = make_ring(8)
        restore(target, capture(source))
        assert target.dnode(1, 0).local.counter == 5 % 3

    def test_restore_over_dirty_ring(self):
        """Restoring discards whatever the target was doing."""
        source = busy_ring()
        snapshot = capture(source)
        target = busy_ring()
        target.run(7, host_in=lambda ch: 2)
        restore(target, snapshot)
        assert fabric_state(target) == fabric_state(source)


# -- property-based round-trips across every engine -------------------


from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.snapshot import state_digest  # noqa: E402

from tests.core.test_fuzz import build_ring, ring_specs  # noqa: E402

_ENGINE_KWARGS = [
    dict(backend="interpreter"),
    dict(backend="fastpath"),
    dict(backend="fastpath", macro_step=3),
    dict(backend="batch", batch_size=4),
]
_ENGINE_IDS = ["interpreter", "fastpath", "macro", "batch"]


class TestRoundTripProperty:
    """capture -> step K -> restore -> step K is bit-identical, on every
    execution engine, for arbitrary fabrics and warmup/replay windows."""

    @pytest.mark.parametrize("kwargs", _ENGINE_KWARGS, ids=_ENGINE_IDS)
    @given(spec=ring_specs(), warmup=st.integers(0, 12),
           k=st.integers(1, 16), bus=st.integers(0, 0xFFFF))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_capture_step_restore_step(self, kwargs, spec, warmup, k, bus):
        ring = build_ring(spec, **kwargs)
        ring.run(warmup, bus=bus, host_in=lambda ch: bus & 0xFF)
        snapshot = capture(ring)
        ring.run(k, bus=bus, host_in=lambda ch: bus & 0xFF)
        first = state_digest(ring)
        restore(ring, snapshot)
        assert state_digest(ring) == snapshot_digest_of(snapshot, ring)
        ring.run(k, bus=bus, host_in=lambda ch: bus & 0xFF)
        assert state_digest(ring) == first

    @given(spec=ring_specs(), warmup=st.integers(1, 12),
           k=st.integers(1, 12))
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_batch_round_trip_covers_every_lane(self, spec, warmup, k):
        """Per-lane state survives the round trip: the digest's lane
        block (not just the scalar mirror) must replay identically."""
        ring = build_ring(spec, backend="batch", batch_size=4)
        ring.run(warmup, host_in=lambda ch: (ch + 1) * 3)
        snapshot = capture(ring)
        assert snapshot.lanes is not None
        ring.run(k, host_in=lambda ch: (ch + 1) * 3)
        first = state_digest(ring)
        lanes_block = first[-1]
        assert lanes_block, "batch digest lost its per-lane block"
        restore(ring, snapshot)
        ring.run(k, host_in=lambda ch: (ch + 1) * 3)
        again = state_digest(ring)
        assert again == first
        assert again[-1] == lanes_block


def snapshot_digest_of(snapshot, ring):
    """The digest the restored ring must present for *snapshot*."""
    from repro.core.snapshot import snapshot_digest
    return snapshot_digest(snapshot)


class TestObservabilityRoundTrip:
    """Statistics and diagnostics counters are part of the snapshot."""

    def test_stats_and_diagnostics_restore(self):
        source = busy_ring()
        source.run(40, host_in=lambda ch: 1)  # drain FIFOs -> underflows
        assert source.fifo_underflows > 0
        snapshot = capture(source)
        target = make_ring(8)
        restore(target, snapshot)
        assert target.fifo_underflows == source.fifo_underflows
        assert target.fifo_high_water == source.fifo_high_water
        assert target.last_bus == source.last_bus
        for a, b in zip(target.all_dnodes(), source.all_dnodes()):
            assert (a.stats.cycles, a.stats.instructions,
                    a.stats.arithmetic_ops, a.stats.multiplies,
                    a.stats.fifo_pops) == \
                (b.stats.cycles, b.stats.instructions,
                 b.stats.arithmetic_ops, b.stats.multiplies,
                 b.stats.fifo_pops)

    def test_restore_drops_compiled_plan(self):
        """The restore-invalidation contract: a restored ring must not
        keep executing a plan compiled for its pre-restore state.  The
        active plan is dropped (invalidation listeners fire) and may only
        come back through a fingerprint-cache hit for the *restored*
        configuration."""
        source = busy_ring()
        snapshot = capture(source)
        target = busy_ring()
        target.run(4, host_in=lambda ch: 1)
        assert target._plan is not None
        invalidations = target.plan_invalidations
        restore(target, snapshot)
        assert target.plan_invalidations == invalidations + 1
        # busy_ring() twins share a configuration, so the target's cache
        # already holds the plan for the restored fingerprint and the
        # restore re-adopts it eagerly — without a recompile.
        cached = target.plan_cache.get(
            ("plan", target.config_fingerprint()))
        assert target._plan is cached is not None

    def test_restore_to_unknown_config_leaves_no_plan(self):
        """With no cached plan for the restored fingerprint, restore must
        not conjure one up (no hidden recompile)."""
        source = busy_ring()
        snapshot = capture(source)
        target = make_ring(8)
        target.config.write_microword(3, 1, MicroWord(
            Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=9))
        target.run(4, host_in=lambda ch: 1)
        compiles = target.plan_compiles
        restore(target, snapshot)
        assert target._plan is None
        assert target.plan_compiles == compiles

    def test_capture_has_no_side_effects(self):
        """capture() must not materialize FIFO queues: digests before
        and after a capture are equal, on the same ring."""
        ring = busy_ring()
        before = state_digest(ring)
        capture(ring)
        assert state_digest(ring) == before
