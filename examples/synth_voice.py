#!/usr/bin/env python
"""Synth voice: a polyphonic pipeline that context-switches the fabric.

One 13x4 ring plays a two-oscillator synth voice by time-multiplexing
two configuration planes mid-stream:

* plane A — two NCOs (phase accumulator + parabolic sine shaper), a VCA
  per oscillator driven by the streamed envelope, a 2-voice mixer and a
  master gain stage;
* plane B — a feedback echo running on the ring's own FIFO closure
  (delay = ring depth, no extra memory).

The host swaps planes every chunk with ``ConfigPlane.apply_plane``; the
plan cache re-adopts each plane by configuration fingerprint, so after
the first A/B round the churn costs **zero** recompiles and zero
interpreted cycles.  The wet output is bit-exact against the pure-NumPy
golden model regardless of chunk size.

Run:  python examples/synth_voice.py
"""

from repro.analysis import render_table
from repro.core.ring import Ring
from repro.kernels import reference
from repro.kernels.scenarios import SYNTH_GEOMETRY, run_synth_voice

FCW_A, FCW_B = 1400, 1750       # detuned oscillator pair
ECHO_GAIN = 22000               # feedback echo, ~0.67 regeneration


def main() -> None:
    # Attack/decay envelope, 96 samples.
    envelope = ([min(32767, 700 * n) for n in range(48)] +
                [max(0, 32767 - 1100 * n) for n in range(48)])

    ring = Ring(SYNTH_GEOMETRY)
    result = run_synth_voice(envelope, FCW_A, FCW_B, ECHO_GAIN, chunk=24,
                             ring=ring)

    golden = reference.synth_voice_pipeline(
        envelope, FCW_A, FCW_B, SYNTH_GEOMETRY.layers, ECHO_GAIN)
    assert result.outputs == golden, "fabric diverged from golden model"

    print(f"synth voice on a {SYNTH_GEOMETRY.layers}x"
          f"{SYNTH_GEOMETRY.width} ring, two planes, chunk=24")
    print(f"  dry (osc+VCA+mix) : {result.stage_outputs[:8]} ...")
    print(f"  wet (echo)        : {result.outputs[:8]} ...")
    print("  bit-exact vs NumPy golden: yes\n")

    print(render_table(
        ["metric", "value"],
        [["samples rendered", len(result.outputs)],
         ["fabric cycles", result.cycles],
         ["plane switches", result.switches],
         ["plan compiles", result.plan_compiles],
         ["plan cache re-adoptions", result.plan_hits]],
        title="reconfiguration churn (plan cache)"))
    print("\nTwo compiles total — one per plane; every later switch is a "
          "cache re-adoption.")


if __name__ == "__main__":
    main()
