"""Loader: object code -> a ready-to-run RingSystem.

Models the functional flow of paper §3: "The host processor first uploads
the management code to the configuration controller memory ... Once done,
our core is ready to compute."  Concretely the loader:

1. builds a :class:`~repro.core.ring.Ring` matching the object geometry,
2. decodes the controller binary and attaches a
   :class:`~repro.controller.core.RiscController` loaded with the
   configuration ROM (skipped when the program is empty — a pure
   local-mode application),
3. materialises each :class:`~repro.asm.objcode.PlaneSpec` into a
   :class:`~repro.core.config_memory.ConfigPlane`,
4. applies the initial plane, leaving the fabric configured as the
   ``.ring`` source described it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asm.objcode import ObjectCode, PlaneSpec
from repro.controller.core import RiscController
from repro.controller.isa import decode_program
from repro.core.config_memory import ConfigPlane
from repro.core.dnode import DnodeMode
from repro.core.isa import MicroWord, decode as decode_microword
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource, decode_route
from repro.errors import LoaderError
from repro.host.system import RingSystem


def _rom_entry(obj: ObjectCode, index: int) -> int:
    if not 0 <= index < len(obj.cfg_rom):
        raise LoaderError(
            f"ROM reference {index} outside 0..{len(obj.cfg_rom) - 1}"
        )
    return obj.cfg_rom[index]


def materialize_plane(obj: ObjectCode, spec: PlaneSpec) -> ConfigPlane:
    """Resolve a PlaneSpec's ROM references into a concrete ConfigPlane."""
    width = obj.width
    micro: Dict[Tuple[int, int], MicroWord] = {}
    modes: Dict[Tuple[int, int], DnodeMode] = {}
    local: Dict[Tuple[int, int], Tuple[Tuple[MicroWord, ...], int]] = {}
    routes: Dict[Tuple[int, int, int], PortSource] = {}

    for flat, rom_index in spec.dnode_words:
        addr = divmod(flat, width)
        micro[addr] = decode_microword(_rom_entry(obj, rom_index))
    for flat, mode in spec.modes:
        addr = divmod(flat, width)
        modes[addr] = DnodeMode.LOCAL if mode else DnodeMode.GLOBAL

    slots_by_dnode: Dict[Tuple[int, int], Dict[int, MicroWord]] = {}
    for flat, slot, rom_index in spec.local_slots:
        addr = divmod(flat, width)
        slots_by_dnode.setdefault(addr, {})[slot] = decode_microword(
            _rom_entry(obj, rom_index)
        )
    limits = {divmod(flat, width): limit
              for flat, limit in spec.local_limits}
    for addr, slot_map in slots_by_dnode.items():
        limit = limits.get(addr, max(slot_map) + 1)
        ordered = tuple(
            slot_map.get(i, MicroWord()) for i in range(max(limit,
                                                            max(slot_map) + 1))
        )
        local[addr] = (ordered, limit)
    for addr, limit in limits.items():
        if addr not in local:
            local[addr] = ((MicroWord(),) * limit, limit)

    for sw, pos, port, rom_index in spec.routes:
        routes[(sw, pos, port)] = decode_route(_rom_entry(obj, rom_index))

    return ConfigPlane(micro, modes, local, routes)


def load_system(obj: ObjectCode,
                strict_fifos: bool = False) -> RingSystem:
    """Instantiate and configure a full accelerator from object code."""
    geometry = RingGeometry(layers=obj.layers, width=obj.width)
    ring = Ring(geometry, strict_fifos=strict_fifos)

    planes: List[ConfigPlane] = [
        materialize_plane(obj, spec) for spec in obj.planes
    ]

    controller: Optional[RiscController] = None
    if obj.program:
        controller = RiscController(
            decode_program(obj.program), cfg_rom=list(obj.cfg_rom)
        )

    system = RingSystem(ring, controller, planes)
    if obj.initial_plane is not None:
        if not 0 <= obj.initial_plane < len(planes):
            raise LoaderError(
                f"initial plane {obj.initial_plane} outside "
                f"0..{len(planes) - 1}"
            )
        ring.config.apply_plane(planes[obj.initial_plane])
    return system
