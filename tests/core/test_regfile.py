"""Tests for the master-slave register file."""

import pytest

from repro.core.regfile import NUM_REGISTERS, RegisterFile
from repro.errors import SimulationError


class TestConstruction:
    def test_powers_on_to_zero(self):
        rf = RegisterFile()
        assert rf.snapshot() == [0, 0, 0, 0]

    def test_initial_values(self):
        rf = RegisterFile([1, 2, 3, 4])
        assert rf.snapshot() == [1, 2, 3, 4]

    def test_rejects_wrong_count(self):
        with pytest.raises(SimulationError):
            RegisterFile([1, 2])

    def test_rejects_non_canonical_init(self):
        with pytest.raises(ValueError):
            RegisterFile([0, 0, 0, -1])


class TestMasterSlave:
    def test_write_invisible_before_commit(self):
        rf = RegisterFile()
        rf.stage_write(0, 99)
        assert rf.read(0) == 0

    def test_write_visible_after_commit(self):
        rf = RegisterFile()
        rf.stage_write(0, 99)
        rf.commit()
        assert rf.read(0) == 99

    def test_read_old_value_while_staged(self):
        rf = RegisterFile([5, 0, 0, 0])
        rf.stage_write(0, 7)
        # like `add r0, r0, r0`: operands are the pre-edge value
        assert rf.read(0) == 5
        rf.commit()
        assert rf.read(0) == 7

    def test_double_stage_is_engine_bug(self):
        rf = RegisterFile()
        rf.stage_write(0, 1)
        with pytest.raises(SimulationError, match="staged"):
            rf.stage_write(1, 2)

    def test_stage_again_after_commit(self):
        rf = RegisterFile()
        rf.stage_write(0, 1)
        rf.commit()
        rf.stage_write(0, 2)
        rf.commit()
        assert rf.read(0) == 2

    def test_commit_without_stage_is_noop(self):
        rf = RegisterFile([1, 2, 3, 4])
        rf.commit()
        assert rf.snapshot() == [1, 2, 3, 4]


class TestValidation:
    @pytest.mark.parametrize("index", [-1, NUM_REGISTERS, 99])
    def test_read_bounds(self, index):
        with pytest.raises(SimulationError):
            RegisterFile().read(index)

    def test_write_bounds(self):
        with pytest.raises(SimulationError):
            RegisterFile().stage_write(4, 0)

    def test_write_value_canonical(self):
        with pytest.raises(ValueError):
            RegisterFile().stage_write(0, -1)


class TestReset:
    def test_reset_clears_values_and_pending(self):
        rf = RegisterFile([1, 2, 3, 4])
        rf.stage_write(0, 9)
        rf.reset()
        assert rf.snapshot() == [0, 0, 0, 0]
        rf.commit()  # pending write must be gone
        assert rf.read(0) == 0

    def test_repr_mentions_values(self):
        assert "r0" in repr(RegisterFile())
