"""Native tier: time-axis-vectorized macro kernels (NumPy / optional Numba).

The macro-step engine (:mod:`repro.core.macropath`) removes per-cycle
Python dispatch by unrolling one sequencer period into straight-line
Python — but every cycle of every Dnode is still a handful of Python
bytecode operations.  This module goes one axis further: it vectorizes
over **time**.  For a steady-state configuration the whole T-cycle
window is one dataflow graph per Dnode phase, so each microword becomes
a single NumPy array operation over all T/period executions at once:

* every Dnode gets a **visible-out array** ``VO`` where ``VO[D + t]``
  is the value of its OUT register visible *during* cycle ``t`` (the
  first ``D + 1`` entries seed the pre-window history: the live OUT
  latch and the downstream switch's feedback pipeline).  An OUT write
  at phase ``p`` is one strided store ``VO[D+1+p :: period] = res_p``;
  the remaining residues are forward-filled from the nearest earlier
  write, so an upstream read at any pipeline lag is a strided load;
* register and SELF reads resolve at compile time to the nearest
  previous writer within the period (same period instance, or the
  previous one — a one-slot shift of that writer's result vector);
* a single-writer MAC accumulating into its own destination register is
  a linear recurrence with the closed form ``cumsum`` (exact in int64:
  products are bounded by 2**30, so billions of terms fit);
* FIFO reads/pops are schedule-determined, so the window is clipped to
  the **safe prefix** the current occupancy can serve with no underflow
  (:meth:`NativePlan.safe_cycles`); host-port reads are pre-gathered in
  interpreter order into per-port arrays.

The generated kernel is one pure-array function ``_core``; when Numba
is importable (and not disabled via :func:`set_numba_enabled`) it is
``@njit``-compiled on first use, falling back to the NumPy version on
any compile or first-call failure.  ``_core`` only ever overwrites its
output arrays, so re-running the Python version after a failed jitted
call is safe.

Eligibility — :func:`compile_native` returns None (the ring then falls
back native → macro-step → fast path) when:

* the period exceeds :data:`~repro.core.macropath.MAX_PERIOD` or the
  unroll cap (same limits as the macro tier);
* any routed feedback tap or feedback-source operand is out of range
  (the interpreter raises at runtime; the fall-back engines reproduce
  that error exactly);
* the Dnode dependence graph over one cycle is cyclic (a ring-closing
  configuration where every layer feeds the next has no time-parallel
  order), or a within-Dnode register dependence is a non-MAC recurrence
  (e.g. a cross-phase register swap, or a saturating MACS accumulator —
  saturation is not linear, so there is no closed form).

Bit-identity: for every completed window the native tier commits
exactly the interpreter's architectural state — OUT latches, register
files, pipelines, FIFO contents and pop accounting, statistics, cycle
counters, host-read order.  Like the macro tier, an aborted window
(host reader missing / invalid word) commits nothing: divergence from
the interpreter is bounded to the error cycle itself.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro import word
from repro.core.dnode import DnodeMode, _MULTIPLY_OPS, _OP_COST
from repro.core.isa import Dest, Flag, Opcode, Source
from repro.core.macropath import MAX_PERIOD, MAX_UNROLL_CELLS, macro_period
from repro.core.switch import PortKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

#: Cap on Dnode-count x window-cycles per kernel call: windows beyond it
#: are split, bounding peak VO-array memory (~8 MB of int64 at the cap).
MAX_WINDOW_CELLS = 1 << 20

#: Sentinel: jit resolution finished, native kernel runs as plain NumPy.
_JIT_OFF = object()

_NUMBA = {"enabled": True}


def set_numba_enabled(enabled: bool) -> None:
    """Gate the optional Numba jit globally (tests force the pure-NumPy
    path with False; plans already jitted keep their compiled kernel)."""
    _NUMBA["enabled"] = bool(enabled)


def numba_available() -> bool:
    """True when Numba can be imported and is not disabled."""
    if not _NUMBA["enabled"]:
        return False
    try:
        import numba  # noqa: F401 - availability probe
    except Exception:
        return False
    return hasattr(numba, "njit")


class _Ineligible(Exception):
    """Internal: configuration cannot be time-vectorized."""


def _sgn(expr: str) -> str:
    """Branchless signed reinterpretation, elementwise on int64 arrays."""
    return f"((({expr}) ^ 32768) - 32768)"


def _clip(expr: str) -> str:
    """Saturate to signed 16-bit range, then re-encode as raw bits."""
    return f"(np.minimum(np.maximum({expr}, -32768), 32767) & 65535)"


def _vector_expr(mw, a: str, b: Optional[str], acc: Optional[str]) -> str:
    """NumPy array expression for one microword (see macropath's scalar
    twin :func:`~repro.core.macropath._compute_expr`)."""
    op = mw.op
    S = _sgn
    if op is Opcode.MOV:
        return a
    if op is Opcode.ADD:
        return f"(({a}) + ({b})) & 65535"
    if op is Opcode.SUB:
        return f"(({a}) - ({b})) & 65535"
    if op is Opcode.MUL:
        return f"({S(a)} * {S(b)}) & 65535"
    if op is Opcode.MULH:
        return f"(({S(a)} * {S(b)}) >> 16) & 65535"
    if op is Opcode.MAC:
        return f"({S(a)} * {S(b)} + {S(acc)}) & 65535"
    if op is Opcode.MACS:
        return _clip(f"{S(a)} * {S(b)} + {S(acc)}")
    if op is Opcode.MADD or op is Opcode.MSUB:
        coeff = word.to_signed(mw.imm)
        sign = "+" if op is Opcode.MADD else "-"
        return f"({S(a)} {sign} {S(b)} * ({coeff})) & 65535"
    if op is Opcode.AND:
        return f"(({a}) & ({b}))"
    if op is Opcode.OR:
        return f"(({a}) | ({b}))"
    if op is Opcode.XOR:
        return f"(({a}) ^ ({b}))"
    if op is Opcode.NOT:
        return f"(~({a})) & 65535"
    if op is Opcode.NEG:
        return f"(-{S(a)}) & 65535"
    if op is Opcode.ABS:
        return f"np.abs({S(a)}) & 65535"
    if op is Opcode.SHL:
        return f"(({a}) << (({b}) & 15)) & 65535"
    if op is Opcode.SHR:
        return f"({a}) >> (({b}) & 15)"
    if op is Opcode.ASR:
        return f"({S(a)} >> (({b}) & 15)) & 65535"
    if op is Opcode.ABSDIFF:
        return f"np.abs({S(a)} - {S(b)}) & 65535"
    if op is Opcode.MIN:
        return f"np.where({S(a)} <= {S(b)}, {a}, {b})"
    if op is Opcode.MAX:
        return f"np.where({S(a)} >= {S(b)}, {a}, {b})"
    if op is Opcode.ADDSAT:
        return _clip(f"{S(a)} + {S(b)}")
    if op is Opcode.SUBSAT:
        return _clip(f"{S(a)} - {S(b)}")
    if op is Opcode.CMPEQ:
        return f"np.where(({a}) == ({b}), 1, 0)"
    if op is Opcode.CMPLT:
        return f"np.where({S(a)} < {S(b)}, 1, 0)"
    if op is Opcode.AVG2:
        return f"(({S(a)} + {S(b)}) >> 1) & 65535"
    raise _Ineligible(f"opcode {op!r} has no native template")


class NativePlan:
    """One steady-state configuration compiled to a time-vector kernel."""

    __slots__ = ("period", "source", "_core", "_jit", "_counter_entries",
                 "_meta", "_max_periods")

    def __init__(self, period, core, source, counter_entries, meta,
                 max_periods):
        self.period = period
        self.source = source
        self._core = core
        self._jit = None
        self._counter_entries = counter_entries
        self._meta = meta
        self._max_periods = max_periods

    def matches_phase(self) -> bool:
        """True when every local counter sits at the baked entry phase."""
        for lc, c0, _limit in self._counter_entries:
            if lc._counter != c0:
                return False
        return True

    def entry_phase(self) -> tuple:
        """The baked entry counters (the ring's native cache key part)."""
        return tuple(c0 for _lc, c0, _limit in self._counter_entries)

    def safe_cycles(self, cycles: int) -> int:
        """Longest whole-period prefix of *cycles* this plan can run with
        no FIFO underflow, given the live queue occupancies.

        The schedule fixes pops-per-period and the read offsets within a
        period, so safety is a pure occupancy computation; the unsafe
        remainder falls back to the macro/fast-path tiers, which handle
        underflow (and strict-FIFO errors) cycle-exactly.
        """
        per = self.period
        n = cycles // per
        if n <= 0:
            return 0
        for queue, ppp, maxprefix in self._meta["fifo_gates"]:
            occ = len(queue)
            if ppp == 0:
                # Reads but never a pop: any occupancy serves forever.
                if occ == 0:
                    return 0
                continue
            limit = occ // ppp
            if maxprefix is not None:
                limit = min(limit, (occ - maxprefix - 1) // ppp + 1)
            n = min(n, limit)
            if n <= 0:
                return 0
        return n * per

    def jit_active(self) -> bool:
        """True when the kernel currently runs through a jitted build."""
        return self._jit is not None and self._jit is not _JIT_OFF

    def run(self, cycles: int, bus: int, host_in) -> None:
        """Advance *cycles* fabric clocks (must be a safe period multiple)."""
        n = cycles // self.period
        while n > 0:
            m = min(n, self._max_periods)
            self._window(m, bus, host_in)
            n -= m

    # ------------------------------------------------------------------

    def _resolve_kernel(self):
        jit = self._jit
        if jit is None:
            jit = _JIT_OFF
            if numba_available():
                try:
                    import numba
                    jit = numba.njit(cache=False)(self._core)
                except Exception:
                    jit = _JIT_OFF
            self._jit = jit
        return self._core if jit is _JIT_OFF else jit

    def _window(self, n: int, bus: int, host_in) -> None:
        """Run one n-period window: gather, kernel, write back."""
        meta = self._meta
        ring = meta["ring"]
        depth = meta["depth"]
        T = n * self.period
        c0 = ring.cycles

        # Host gather, in the interpreter's routed-port order (layer,
        # position, port).  ring.cycles tracks the simulated cycle so
        # cycle-dependent host closures observe exactly what they would
        # per-cycle; nothing is committed if a read raises.
        host_ports = meta["host_ports"]
        hv: List[np.ndarray] = []
        if host_ports:
            if host_in is None:
                l, p, port, ch = host_ports[0]
                raise SimulationError(
                    f"switch {l} routes port {port} of position {p} to "
                    f"host channel {ch}, but no host reader was supplied"
                )
            hv = [np.empty(T, np.int64) for _ in host_ports]
            try:
                for j in range(T):
                    ring.cycles = c0 + j
                    for slot, (_l, _p, _port, ch) in enumerate(host_ports):
                        hv[slot][j] = word.check(
                            host_in(ch), f"host channel {ch}")
            finally:
                ring.cycles = c0

        # FIFO gather: each read site gets its length-n value vector.
        fv: List[np.ndarray] = []
        for queue, prefix, ppp in meta["fifo_reads"]:
            if ppp:
                needed = prefix + (n - 1) * ppp + 1
                head = np.fromiter(
                    itertools.islice(queue, needed), np.int64, needed)
                fv.append(head[prefix::ppp][:n])
            else:
                fv.append(np.zeros(n, np.int64) + queue[0])

        init = np.empty(max(1, len(meta["init_fill"])), np.int64)
        for i, (kind, obj, idx) in enumerate(meta["init_fill"]):
            init[i] = obj[idx] if kind == "reg" else obj._out

        vos: List[np.ndarray] = []
        for dn, down_sw, p in meta["vo_seed"]:
            vo = np.empty(T + depth + 1, np.int64)
            vo[depth] = dn._out
            for s in range(1, depth + 1):
                vo[depth - s] = down_sw.rp_read(s, p + 1)
            vos.append(vo)

        fin = np.zeros(max(1, meta["fin_count"]), np.int64)
        args = (n, bus, init, fin, *vos, *hv, *fv)
        core = self._resolve_kernel()
        if core is self._core:
            core(*args)
        else:
            try:
                core(*args)
            except Exception:
                # A jitted build that fails at call time (unsupported
                # construct surfacing late) is retired permanently; the
                # kernel only overwrites its outputs, so re-running the
                # NumPy version recomputes the window exactly.
                self._jit = _JIT_OFF
                self._core(*args)

        for values, r, k in meta["fin_regs"]:
            values[r] = int(fin[k])
        for i, (dn, _sw, _p) in enumerate(meta["vo_seed"]):
            dn._out = int(vos[i][depth + T])
        for sw, lane_vo in meta["pipes"]:
            for j, vi in enumerate(lane_vo):
                vo = vos[vi]
                for s in range(1, depth + 1):
                    sw.rp_write(s, j + 1, int(vo[depth + T - s]))
        for queue, pops, stats in meta["fifo_pops"]:
            total = n * pops
            for _ in range(total):
                queue.popleft()
            stats.fifo_pops += total
        for stats in meta["all_stats"]:
            stats.cycles += T
        for stats, ti, ta, tm in meta["stat_totals"]:
            stats.instructions += n * ti
            stats.arithmetic_ops += n * ta
            if tm:
                stats.multiplies += n * tm
        # Entry phase is period-preserving (every LIMIT divides the
        # period), so local counters are already correct; only the
        # global clocks move.
        ring.cycles = c0 + T
        ring.native_cycles += T


def compile_native(ring: "Ring") -> Optional[NativePlan]:
    """Compile *ring*'s current configuration into a native plan.

    Returns None when the configuration is ineligible; the caller falls
    back to the macro-step / fast-path tiers.
    """
    try:
        return _compile(ring)
    except _Ineligible:
        return None


def _compile(ring: "Ring") -> Optional[NativePlan]:
    geometry = ring.geometry
    period = macro_period(ring)
    if period > MAX_PERIOD or period * geometry.dnodes > MAX_UNROLL_CELLS:
        return None
    layers, width = geometry.layers, geometry.width
    depth = geometry.pipeline_depth
    P = period

    def dn_index(l: int, p: int) -> int:
        return l * width + p

    # --- per-phase microword schedule (same extraction as macropath) --
    counter_entries = []
    schedule: Dict[Tuple[int, int], list] = {}
    for l in range(layers):
        for p in range(width):
            dn = ring._dnodes[l][p]
            if dn.mode is DnodeMode.LOCAL:
                lc = dn.local
                limit = lc.limit
                c0 = lc._counter
                counter_entries.append((lc, c0, limit))
                slots = lc.slots()
                schedule[(l, p)] = [slots[(c0 + j) % limit]
                                    for j in range(P)]
            else:
                schedule[(l, p)] = [dn.global_word] * P

    # --- routed-port survey -------------------------------------------
    # The interpreter resolves BOTH routed ports of every position every
    # cycle: host channels are read (in layer/position/port order) and
    # out-of-range feedback taps raise, whether or not the microword
    # uses the operand.  Host ports become pre-gathered arrays; an
    # out-of-range tap anywhere makes the window ineligible so the
    # fall-back engines surface the identical runtime error.
    host_ports: List[Tuple[int, int, int, int]] = []
    host_slot: Dict[Tuple[int, int, int], int] = {}
    port_src: Dict[Tuple[int, int, int], object] = {}
    for l in range(layers):
        sw = ring._switches[l]
        for p in range(width):
            for port in (1, 2):
                src = sw.config.source_for(p, port)
                port_src[(l, p, port)] = src
                if src.kind is PortKind.HOST:
                    host_slot[(l, p, port)] = len(host_ports)
                    host_ports.append((l, p, port, src.index))
                elif src.kind is PortKind.RP:
                    if not (1 <= src.index <= depth
                            and 1 <= src.lane <= width):
                        raise _Ineligible("out-of-range feedback tap")

    # --- operand resolution -------------------------------------------
    init_index: Dict[tuple, int] = {}
    init_fill: List[tuple] = []

    def init_of(key, accessor) -> int:
        idx = init_index.get(key)
        if idx is None:
            idx = len(init_fill)
            init_index[key] = idx
            init_fill.append(accessor)
        return idx

    fifo_slot: Dict[Tuple[int, int, int, int], int] = {}
    fifo_reads: List[tuple] = []      # (queue, prefix, pops_per_period)
    fifo_read_prefixes: Dict[Tuple[int, int, int], int] = {}
    pop_phases: Dict[Tuple[int, int, int], List[int]] = {}
    for (l, p), sched in schedule.items():
        for phase, mw in enumerate(sched):
            if mw.flags & Flag.POP_FIFO1:
                pop_phases.setdefault((l, p, 1), []).append(phase)
            if mw.flags & Flag.POP_FIFO2:
                pop_phases.setdefault((l, p, 2), []).append(phase)

    # ops[dnode index][phase] -> op record for computed results
    ops: Dict[int, Dict[int, dict]] = {i: {} for i in
                                       range(geometry.dnodes)}
    # FIFO read sites that compute nothing (Dest.NONE) still gate safety.

    for l in range(layers):
        lu = ring.upstream_layer(l)
        for p in range(width):
            dn = ring._dnodes[l][p]
            i = dn_index(l, p)
            sched = schedule[(l, p)]
            reg_writers: List[List[int]] = [[] for _ in range(4)]
            out_writers: List[int] = []
            for phase, mw in enumerate(sched):
                if mw.op is Opcode.NOP:
                    continue
                if mw.dst.is_register:
                    reg_writers[int(mw.dst)].append(phase)
                if mw.dst is Dest.OUT or mw.flags & Flag.WRITE_OUT:
                    out_writers.append(phase)

            def resolve_writers(phase, writers, init_key, accessor):
                prev = [w for w in writers if w < phase]
                if prev:
                    return ("res", max(prev))
                if writers:
                    return ("res1", max(writers),
                            init_of(init_key, accessor))
                return ("init", init_of(init_key, accessor))

            def resolve_reg(phase, r):
                return resolve_writers(
                    phase, reg_writers[r], ("reg", l, p, r),
                    ("reg", dn.regs._values, r))

            def fifo_operand(phase, ch):
                pops = pop_phases.get((l, p, ch), ())
                prefix = sum(1 for q in pops if q < phase)
                seen = fifo_read_prefixes.get((l, p, ch))
                if seen is None or prefix > seen:
                    fifo_read_prefixes[(l, p, ch)] = prefix
                key = (l, p, ch, prefix)
                slot = fifo_slot.get(key)
                if slot is None:
                    slot = len(fifo_reads)
                    fifo_slot[key] = slot
                    fifo_reads.append(
                        (ring.fifo(l, p, ch), prefix, len(pops)))
                return ("fifo", slot)

            def port_operand(phase, port):
                src = port_src[(l, p, port)]
                kind = src.kind
                if kind is PortKind.ZERO:
                    return ("const", 0)
                if kind is PortKind.UP:
                    return ("vo", lu, src.index, 0)
                if kind is PortKind.RP:
                    return ("vo", lu, src.lane - 1, src.index)
                if kind is PortKind.BUS:
                    return ("bus",)
                if kind is PortKind.HOST:
                    return ("host", host_slot[(l, p, port)])
                raise _Ineligible(f"unhandled port source {src!r}")

            def resolve_src(phase, mw, src):
                if src <= Source.R3:
                    return resolve_reg(phase, int(src))
                if src is Source.IN1:
                    return port_operand(phase, 1)
                if src is Source.IN2:
                    return port_operand(phase, 2)
                if src is Source.FIFO1:
                    return fifo_operand(phase, 1)
                if src is Source.FIFO2:
                    return fifo_operand(phase, 2)
                if src is Source.BUS:
                    return ("bus",)
                if src is Source.IMM:
                    return ("const", mw.imm)
                if src is Source.SELF:
                    return resolve_writers(
                        phase, out_writers, ("out", l, p),
                        ("out", dn, 0))
                if src is Source.ZERO:
                    return ("const", 0)
                if src.is_feedback:
                    stage = src.feedback_stage
                    lane = src.feedback_lane
                    if not (stage <= depth and lane <= width):
                        raise _Ineligible("out-of-range feedback source")
                    return ("vo", lu, lane - 1, stage)
                raise _Ineligible(f"unhandled source {src!r}")

            for phase, mw in enumerate(sched):
                if mw.op is Opcode.NOP:
                    continue
                computed = (mw.dst.is_register or mw.dst is Dest.OUT
                            or bool(mw.flags & Flag.WRITE_OUT))
                a = resolve_src(phase, mw, mw.src_a)
                b = (resolve_src(phase, mw, mw.src_b)
                     if mw.is_binary else None)
                acc = (resolve_reg(phase, int(mw.dst))
                       if mw.op in (Opcode.MAC, Opcode.MACS) else None)
                if not computed:
                    # Result discarded (Dest.NONE, no WRITE_OUT): the
                    # operand *reads* above still registered their FIFO
                    # gating; nothing to generate.
                    continue

                def dep_of(opnd):
                    if opnd is not None and opnd[0] in ("res", "res1"):
                        return opnd[1]
                    return None

                recurrent = False
                deps = set()
                for opnd in (a, b):
                    d = dep_of(opnd)
                    if d == phase:
                        raise _Ineligible("operand self-recurrence")
                    if d is not None:
                        deps.add(d)
                d = dep_of(acc)
                if d == phase:
                    # Single-writer MAC into its own register: linear
                    # recurrence with an exact cumsum closed form.
                    # MACS saturates (non-linear): no closed form.
                    if mw.op is not Opcode.MAC:
                        raise _Ineligible("saturating accumulator loop")
                    recurrent = True
                elif d is not None:
                    deps.add(d)
                ops[i][phase] = {
                    "mw": mw, "a": a, "b": b, "acc": acc,
                    "recurrent": recurrent, "deps": deps,
                    "reg_writers": reg_writers, "out_writers": out_writers,
                }
            # Stash the writer maps even for all-NOP dnodes (needed for
            # VO fill + final writeback bookkeeping).
            ops[i]["_writers"] = (reg_writers, out_writers)  # type: ignore

    # --- within-Dnode op order (Kahn; any residual cycle bails) -------
    op_order: Dict[int, List[int]] = {}
    for i, table in ops.items():
        phases = [ph for ph in table if isinstance(ph, int)]
        indeg = {ph: 0 for ph in phases}
        users: Dict[int, List[int]] = {ph: [] for ph in phases}
        for ph in phases:
            for d in table[ph]["deps"]:
                indeg[ph] += 1
                users[d].append(ph)
        ready = sorted(ph for ph in phases if indeg[ph] == 0)
        order: List[int] = []
        while ready:
            ph = ready.pop(0)
            order.append(ph)
            for u in sorted(users[ph]):
                indeg[u] -= 1
                if indeg[u] == 0:
                    ready.append(u)
        if len(order) != len(phases):
            raise _Ineligible("cyclic register dependence")
        op_order[i] = order

    # --- Dnode-level dependence graph over the window -----------------
    dn_deps: Dict[int, set] = {i: set() for i in range(geometry.dnodes)}
    for i, table in ops.items():
        for ph in op_order[i]:
            rec = table[ph]
            for opnd in (rec["a"], rec["b"], rec["acc"]):
                if opnd is not None and opnd[0] == "vo":
                    dn_deps[i].add(dn_index(opnd[1], opnd[2]))
    indeg = {i: len(dn_deps[i]) for i in dn_deps}
    users2: Dict[int, List[int]] = {i: [] for i in dn_deps}
    for i, deps in dn_deps.items():
        for d in deps:
            users2[d].append(i)
    ready = sorted(i for i in dn_deps if indeg[i] == 0)
    dn_order: List[int] = []
    while ready:
        i = ready.pop(0)
        dn_order.append(i)
        for u in sorted(users2[i]):
            indeg[u] -= 1
            if indeg[u] == 0:
                ready.append(u)
    if len(dn_order) != geometry.dnodes:
        raise _Ineligible("cross-Dnode dependence cycle")

    # --- code generation ----------------------------------------------
    lines: List[str] = []
    temp_count = [0]

    def emit(text: str) -> None:
        lines.append("    " + text)

    def operand_expr(i: int, phase: int, opnd) -> Tuple[str, bool]:
        tag = opnd[0]
        if tag == "const":
            return str(opnd[1]), False
        if tag == "bus":
            return "bus", False
        if tag == "init":
            return f"_INIT[{opnd[1]}]", False
        if tag == "vo":
            ul, up, lag = opnd[1], opnd[2], opnd[3]
            start = depth + phase - lag
            return (f"_vo_{dn_index(ul, up)}"
                    f"[{start}:{start} + n * {P}:{P}]"), True
        if tag == "res":
            return f"_r_{i}_{opnd[1]}", True
        if tag == "res1":
            psi, ii = opnd[1], opnd[2]
            temp_count[0] += 1
            t = f"_t{temp_count[0]}"
            emit(f"{t} = np.empty(n, np.int64)")
            emit(f"{t}[0] = _INIT[{ii}]")
            emit(f"{t}[1:] = _r_{i}_{psi}[:n - 1]")
            return t, True
        if tag == "host":
            return (f"_hv_{opnd[1]}[{phase}:{phase} + n * {P}:{P}]"), True
        if tag == "fifo":
            return f"_fv_{opnd[1]}", True
        raise _Ineligible(f"unhandled operand {opnd!r}")

    fin_index: Dict[tuple, int] = {}
    fin_regs: List[tuple] = []

    for i in dn_order:
        l, p = divmod(i, width)
        dn = ring._dnodes[l][p]
        table = ops[i]
        reg_writers, out_writers = table["_writers"]  # type: ignore
        for ph in op_order[i]:
            rec = table[ph]
            mw = rec["mw"]
            a, a_arr = operand_expr(i, ph, rec["a"])
            b = b_arr = None
            if rec["b"] is not None:
                b, b_arr = operand_expr(i, ph, rec["b"])
            if rec["recurrent"]:
                acc_init = rec["acc"][2]
                prod = (f"(np.zeros(n, np.int64) + "
                        f"({_sgn(a)} * {_sgn(b)}))")
                expr = (f"(np.cumsum({prod}) + "
                        f"((_INIT[{acc_init}] ^ 32768) - 32768)) & 65535")
                emit(f"_r_{i}_{ph} = {expr}")
                continue
            acc = None
            acc_arr = False
            if rec["acc"] is not None:
                acc, acc_arr = operand_expr(i, ph, rec["acc"])
            expr = _vector_expr(mw, a, b, acc)
            if not (a_arr or b_arr or acc_arr):
                expr = f"np.zeros(n, np.int64) + ({expr})"
            emit(f"_r_{i}_{ph} = {expr}")

        # Final register values: the chronologically last writer's last
        # element.
        for r in range(4):
            writers = reg_writers[r]
            if writers:
                k = len(fin_regs)
                fin_index[(i, r)] = k
                fin_regs.append((dn.regs._values, r, k))
                emit(f"_FIN[{k}] = _r_{i}_{max(writers)}[n - 1]")

        # Visible-out materialization: strided stores for write phases,
        # forward fill for the rest (sources are always write residues,
        # so fill order is irrelevant).
        wset = sorted(set(out_writers))
        if not wset:
            emit(f"_vo_{i}[{depth + 1}:] = _vo_{i}[{depth}]")
        else:
            for psi in wset:
                start = depth + 1 + psi
                emit(f"_vo_{i}[{start}:{start} + n * {P}:{P}] "
                     f"= _r_{i}_{psi}")
            for c in range(P):
                if c in wset:
                    continue
                delta = min((c - psi) % P for psi in wset)
                s = c - delta
                t0 = depth + 1 + c
                if s >= 0:
                    s0 = depth + 1 + s
                    emit(f"_vo_{i}[{t0}:{t0} + n * {P}:{P}] "
                         f"= _vo_{i}[{s0}:{s0} + n * {P}:{P}]")
                else:
                    s0 = depth + 1 + s + P
                    emit(f"_vo_{i}[{t0 + P}:{t0} + n * {P}:{P}] "
                         f"= _vo_{i}[{s0}:{s0} + (n - 1) * {P}:{P}]")
                    emit(f"_vo_{i}[{t0}] = _vo_{i}[{depth}]")

    # --- kernel assembly ----------------------------------------------
    params = ["n", "bus", "_INIT", "_FIN"]
    params += [f"_vo_{i}" for i in range(geometry.dnodes)]
    params += [f"_hv_{j}" for j in range(len(host_ports))]
    params += [f"_fv_{j}" for j in range(len(fifo_reads))]
    header = f"def _core({', '.join(params)}):"
    body = lines if lines else ["    pass"]
    source = "\n".join([header] + body) + "\n"
    env: Dict[str, object] = {"np": np}
    code = compile(source, f"<native period={P} ring={ring!r}>", "exec")
    exec(code, env)

    # --- runtime metadata ---------------------------------------------
    vo_seed = []
    for i in range(geometry.dnodes):
        l, p = divmod(i, width)
        down = ring._switches[(l + 1) % layers]
        vo_seed.append((ring._dnodes[l][p], down, p))
    pipes = []
    for k in range(layers):
        lu = ring.upstream_layer(k)
        pipes.append((ring._switches[k],
                      [dn_index(lu, j) for j in range(width)]))

    fifo_gates = []
    fifo_pops = []
    keys = set(pop_phases) | set(fifo_read_prefixes)
    for key in sorted(keys):
        l, p, ch = key
        queue = ring.fifo(l, p, ch)
        ppp = len(pop_phases.get(key, ()))
        maxprefix = fifo_read_prefixes.get(key)
        fifo_gates.append((queue, ppp, maxprefix))
        if ppp:
            fifo_pops.append((queue, ppp, ring._dnodes[l][p].stats))

    stat_totals = []
    for l in range(layers):
        for p in range(width):
            ti = ta = tm = 0
            for mw in schedule[(l, p)]:
                if mw.op is not Opcode.NOP:
                    ti += 1
                    ta += _OP_COST.get(mw.op, 1)
                    if mw.op in _MULTIPLY_OPS:
                        tm += 1
            if ti:
                stat_totals.append(
                    (ring._dnodes[l][p].stats, ti, ta, tm))

    meta = {
        "ring": ring,
        "depth": depth,
        "host_ports": host_ports,
        "fifo_reads": fifo_reads,
        "fifo_gates": fifo_gates,
        "fifo_pops": fifo_pops,
        "init_fill": init_fill,
        "vo_seed": vo_seed,
        "pipes": pipes,
        "fin_count": len(fin_regs),
        "fin_regs": fin_regs,
        "all_stats": tuple(dn.stats for dn in ring.all_dnodes()),
        "stat_totals": stat_totals,
    }
    max_periods = max(1, MAX_WINDOW_CELLS // max(1, geometry.dnodes * P))
    return NativePlan(P, env["_core"], source, tuple(counter_entries),
                      meta, max_periods)


__all__ = ["NativePlan", "compile_native", "numba_available",
           "set_numba_enabled", "MAX_WINDOW_CELLS"]
