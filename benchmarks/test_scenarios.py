"""Scenario-library benchmark: recipe throughput + reconfiguration churn.

Two measurements, recorded in ``BENCH_scenarios.json`` for CI artifacts:

* **per-kernel engine sweep** — steady-state fabric cycles/s for a
  representative slice of the scenario library (hand-mapped NCO and
  echo, compiled resampler/mixer/magnitude/CORDIC) on the interpreter,
  the compiled fast path, the native tier and the macro-stepped
  interpreter;
* **reconfiguration churn** — end-to-end samples/s of the two
  plane-switching pipelines (synth voice, effects chain) across chunk
  sizes, with the plan-cache telemetry that proves steady-state churn
  costs zero plan compiles (2 compiles total, one per plane, no matter
  how many switches).

Run with ``pytest -s benchmarks/test_scenarios.py`` for the tables.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.compiler.codegen import compile_graph
from repro.compiler.library import build_graph
from repro.core.ring import Ring, RingGeometry
from repro.kernels.effects import build_echo
from repro.kernels.nco import NCO_LAYERS, build_nco
from repro.kernels.scenarios import (EFFECTS_GEOMETRY, SYNTH_GEOMETRY,
                                     run_effects_chain, run_synth_voice)

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_scenarios.json"

#: Engine sweep for the per-kernel table (lane backends are covered by
#: ``BENCH_batch.json``/``BENCH_shard.json`` on their own terms).
ENGINES = {
    "interpreter": {"fastpath": False},
    "fastpath": {},
    "native": {"backend": "native"},
    "macro": {"macro_step": 4},
}

#: Acceptance floor: the compiled fast path over the interpreter on the
#: hand-mapped NCO.  Real ratios are far higher; the floor only guards
#: against the fast path silently falling back to interpretation.
TARGET_NCO_FASTPATH_SPEEDUP = 1.5

_MEASURE_CYCLES = 2_000


def _host_zero(channel: int) -> int:
    return 0


def _cycles_per_second(ring: Ring, cycles: int = _MEASURE_CYCLES,
                       repeats: int = 3) -> float:
    ring.run(8, host_in=_host_zero)          # engage engine, warm plans
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles, host_in=_host_zero)
        best = max(best, cycles / (time.perf_counter() - start))
    return best


def _kernel_rings():
    """name -> engine_kwargs -> configured ring, for the sweep."""
    def nco_ring(kwargs):
        ring = Ring(RingGeometry(layers=NCO_LAYERS, width=2), **kwargs)
        build_nco(1873, ring=ring)
        return ring

    def echo_ring(kwargs):
        ring = Ring(RingGeometry(layers=8, width=2), **kwargs)
        build_echo(22000, ring=ring)
        return ring

    def compiled(name):
        program = compile_graph(build_graph(name))

        def make(kwargs):
            ring = Ring(program.geometry, **kwargs)
            program.configure(ring)
            return ring
        return make

    return {
        "nco": nco_ring,
        "echo8": echo_ring,
        "up2": compiled("up2"),
        "mixer4": compiled("mixer4"),
        "cmag": compiled("cmag"),
        "cordic4": compiled("cordic4"),
    }


def test_scenario_kernel_engine_sweep_and_pipeline_churn():
    kernels = {}
    for name, make in _kernel_rings().items():
        kernels[name] = {
            engine: round(_cycles_per_second(make(dict(kwargs))))
            for engine, kwargs in ENGINES.items()
        }

    emit(render_table(
        ["kernel"] + list(ENGINES),
        [[name] + [f"{kernels[name][e]:,}" for e in ENGINES]
         for name in kernels],
        title="scenario kernels: fabric cycles/s per engine",
    ))

    nco_speedup = kernels["nco"]["fastpath"] / kernels["nco"]["interpreter"]
    assert nco_speedup >= TARGET_NCO_FASTPATH_SPEEDUP, (
        f"NCO fast path sustained only {nco_speedup:.2f}x the "
        f"interpreter (target {TARGET_NCO_FASTPATH_SPEEDUP}x)"
    )

    envelope = [min(32767, 500 * (n % 80)) for n in range(960)]
    signal = [((7 * n + 11) % 120) - 60 for n in range(960)]
    pipelines = {}
    for chunk in (32, 96, 480):
        ring = Ring(SYNTH_GEOMETRY)
        start = time.perf_counter()
        synth = run_synth_voice(envelope, chunk=chunk, ring=ring)
        synth_elapsed = time.perf_counter() - start
        assert synth.plan_compiles == 2   # one per plane, ever

        ring = Ring(EFFECTS_GEOMETRY)
        start = time.perf_counter()
        effects = run_effects_chain(signal, chunk=chunk, ring=ring)
        effects_elapsed = time.perf_counter() - start
        assert effects.plan_compiles == 2

        pipelines[str(chunk)] = {
            "synth_voice": {
                "samples_per_second": round(
                    len(envelope) / synth_elapsed),
                "switches": synth.switches,
                "plan_hits": synth.plan_hits,
                "plan_compiles": synth.plan_compiles,
            },
            "effects_chain": {
                "samples_per_second": round(
                    len(signal) / effects_elapsed),
                "switches": effects.switches,
                "plan_hits": effects.plan_hits,
                "plan_compiles": effects.plan_compiles,
            },
        }

    emit(render_table(
        ["chunk", "pipeline", "samples/s", "switches", "plan hits",
         "compiles"],
        [[chunk, name,
          f"{stats['samples_per_second']:,}", str(stats["switches"]),
          str(stats["plan_hits"]), str(stats["plan_compiles"])]
         for chunk, per in pipelines.items()
         for name, stats in per.items()],
        title="reconfiguration churn: plane-switching pipelines",
    ))

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "scenario_library",
        "measure_cycles": _MEASURE_CYCLES,
        "kernel_cycles_per_second": kernels,
        "nco_fastpath_speedup_vs_interpreter": round(nco_speedup, 2),
        "target_nco_fastpath_speedup": TARGET_NCO_FASTPATH_SPEEDUP,
        "pipeline_churn": pipelines,
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")
