"""Tests for the frequency model: ring vs mesh vs crossbar scaling."""

import pytest

from repro.tech.timing import (
    crossbar_frequency_hz,
    estimated_frequency_hz,
    mesh_frequency_hz,
)
from repro.errors import TechnologyError


class TestRingFrequency:
    def test_table3_anchors(self):
        assert estimated_frequency_hz("0.25um") == pytest.approx(180e6)
        assert estimated_frequency_hz("0.18um") == pytest.approx(200e6)

    def test_independent_of_size(self):
        """The scalability argument: nearest-neighbour wiring keeps the
        clock constant at any ring size."""
        f = [estimated_frequency_hz("0.18um", n) for n in (8, 64, 1024)]
        assert f[0] == f[1] == f[2]

    def test_dnodes_validated(self):
        with pytest.raises(TechnologyError):
            estimated_frequency_hz("0.18um", 0)


class TestRivalTopologies:
    def test_mesh_degrades_with_size(self):
        f = [mesh_frequency_hz("0.18um", n) for n in (16, 64, 256)]
        assert f[0] > f[1] > f[2]

    def test_crossbar_degrades_faster_than_mesh(self):
        mesh = mesh_frequency_hz("0.18um", 256)
        xbar = crossbar_frequency_hz("0.18um", 256)
        assert xbar < mesh

    def test_small_mesh_matches_ring(self):
        """Below the global-net threshold a mesh has no penalty."""
        assert mesh_frequency_hz("0.18um", 8) == \
            estimated_frequency_hz("0.18um", 8)

    def test_ring_beats_both_at_scale(self):
        n = 256
        ring = estimated_frequency_hz("0.18um", n)
        assert ring > mesh_frequency_hz("0.18um", n)
        assert ring > crossbar_frequency_hz("0.18um", n)

    def test_validation(self):
        with pytest.raises(TechnologyError):
            mesh_frequency_hz("0.18um", 0)
        with pytest.raises(TechnologyError):
            crossbar_frequency_hz("0.18um", -1)
