"""Lane-aware tap reading shared by every kernel run helper.

PR 8's conformance matrix surfaced a whole class of golden-reference
drift: kernel helpers that read ``tap.samples`` directly return
*lists of lanes* (not samples) the moment the ring runs a lane backend
(``batch``/``shard``), silently breaking on any engine but the scalar
ones.  :func:`tap_lane0` is the one idiom every recipe uses instead — a
scalar tap's samples, or lane 0 of a batch tap (a scalar host stream
broadcasts, so every lane computes the golden answer and lane 0 is the
canonical one).
"""

from __future__ import annotations

from typing import List


def tap_lane0(tap) -> List[int]:
    """Raw sample stream of a tap, whatever engine recorded it.

    ``OutputTap`` stores scalar words; ``BatchOutputTap`` stores one
    word per lane and exposes ``lane()`` views — this helper collapses
    both to the scalar (lane 0) stream the golden references model.
    """
    if hasattr(tap, "lane"):
        return list(tap.lane(0))
    return list(tap.samples)
