"""Cross-backend recovery proof: rollback-replay converges to
bit-identity with an uninjected golden run on every execution engine,
for every fault kind that can land in this fabric."""

import pytest

from repro.core.snapshot import state_digest
from repro.robustness import CheckpointManager, FaultInjector, FaultKind
from repro.robustness.faults import FaultEvent, FaultSite

from tests.robustness.conftest import ENGINES, make_busy_ring

#: One representative, guaranteed-to-land fault per kind (addresses
#: chosen against the busy-ring configuration).
LANDED_FAULTS = [
    FaultEvent(10, FaultSite(FaultKind.REGISTER, (0, 0, 0)), bit=5),
    FaultEvent(10, FaultSite(FaultKind.OUT, (0, 1)), bit=1),
    FaultEvent(10, FaultSite(FaultKind.PIPELINE, (0, 2, 1)), bit=9),
    FaultEvent(10, FaultSite(FaultKind.FIFO, (1, 0, 1)), bit=3, index=1),
    FaultEvent(10, FaultSite(FaultKind.CONFIG_WORD, (0, 0)), bit=4),
    FaultEvent(10, FaultSite(FaultKind.CONFIG_ROUTE, (1, 0, 1)), bit=2),
    FaultEvent(10, FaultSite(FaultKind.STUCK_DNODE, (1, 0))),
]

CYCLES = 24
CHECKPOINT_EVERY = 8


@pytest.mark.parametrize("engine,kwargs", ENGINES,
                         ids=[name for name, _ in ENGINES])
@pytest.mark.parametrize("event", LANDED_FAULTS,
                         ids=[e.site.kind.value for e in LANDED_FAULTS])
def test_single_fault_recovers_bit_identically(engine, kwargs, event):
    golden = make_busy_ring(**kwargs)
    golden_mid = None
    for _ in range(CYCLES):
        golden.step()
        if golden.cycles == 16:
            golden_mid = state_digest(golden)
    golden_final = state_digest(golden)

    ring = make_busy_ring(**kwargs)
    injector = FaultInjector(ring, seed=0)
    manager = CheckpointManager(ring, every=CHECKPOINT_EVERY)
    for cycle in range(CYCLES):
        if cycle == event.cycle:
            record = injector.inject(event)
            assert record.applied, record.describe()
        manager.step()
        if ring.cycles == 16 and state_digest(ring) != golden_mid:
            # Detected: last good checkpoint is cycle 8 (the cycle-16
            # checkpoint, if taken, holds corrupted state — drop it).
            good = [s for s in manager.checkpoints if s.cycles < 16]
            manager.checkpoints = good
            digest = manager.rollback_replay(16)
            assert digest == golden_mid, \
                f"{event.describe()}: replay diverged at detection point"
    assert state_digest(ring) == golden_final, \
        f"{event.describe()}: final state diverged after recovery"
    assert ring.faults_injected == 1
    assert ring.rollbacks >= 1, \
        f"{event.describe()}: fault was never detected"


@pytest.mark.parametrize("engine,kwargs", ENGINES,
                         ids=[name for name, _ in ENGINES])
def test_recovery_digest_matches_across_backends(engine, kwargs):
    """The *recovered* state digest is one value for all engines —
    recovery does not just work per engine, it converges to the same
    bit-exact fabric state everywhere."""
    reference = make_busy_ring()  # scalar fastpath reference
    reference.run(CYCLES)
    reference_digest = state_digest(reference)

    ring = make_busy_ring(**kwargs)
    manager = CheckpointManager(ring, every=CHECKPOINT_EVERY)
    manager.run(12)
    ring.dnode(0, 1)._out ^= 0x80
    manager.rollback_replay(CYCLES)
    digest = state_digest(ring)
    if ring._batch_engine is None:
        assert digest == reference_digest
    else:
        # A batch digest carries the per-lane block; the scalar part
        # must still match the scalar reference bit for bit.
        assert digest[:-1] == reference_digest[:-1]


def test_stream_drop_recovers_with_host_state():
    """Dropped stream words need host-side rewind too: the checkpoint
    pairs the fabric snapshot with DataController.capture_state()."""
    from repro.asm import assemble, load_system
    from repro.core.snapshot import capture, restore

    source = """
.ring boot
dnode 0.0 global
    mul out, in1, #3
switch 0
    route 0.1 <- host0
"""

    def build():
        system = load_system(assemble(source, layers=4, width=2))
        system.data.stream(0, list(range(1, 33)))
        system.data.add_tap(0, 0, limit=32)
        return system

    golden = build()
    digests = {}
    for _ in range(32):
        golden.step()
        if golden.cycles % 8 == 0:
            digests[golden.cycles] = state_digest(golden.ring)
    golden_tap = golden.data.taps[0].samples

    system = build()
    checkpoint = None
    detected = False
    for cycle in range(32):
        if system.cycles == 8:
            checkpoint = (8, capture(system.ring),
                          system.data.capture_state())
        if cycle == 10:
            assert system.data.channel(0).drop_next() == 1
        system.step()
        at = system.cycles
        if at in digests and state_digest(system.ring) != digests[at] \
                and not detected:
            detected = True
            cp_cycle, snapshot, host_state = checkpoint
            restore(system.ring, snapshot)
            system.data.restore_state(host_state)
            system.cycles = cp_cycle
            for _ in range(at - cp_cycle):
                system.step()
            assert state_digest(system.ring) == digests[at]
    assert detected, "dropped word never became visible"
    assert state_digest(system.ring) == digests[32]
    assert system.data.taps[0].samples == golden_tap
