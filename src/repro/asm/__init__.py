"""Two-level assembler for the Systolic Ring.

Paper §5.1: "To program this structure we wrote an assembling tool, which
parse both RISC level (for the control) and Ring level assembler
primitives.  It directly generates the machine object code, ready to be
executed in the architecture."

* :mod:`repro.asm.microasm` — Ring-level primitives: textual Dnode
  microinstructions <-> :class:`~repro.core.isa.MicroWord`.
* :mod:`repro.asm.parser` / :mod:`repro.asm.assembler` — the full
  two-section source language (``.ring`` fabric configuration planes,
  ``.risc`` management code) down to object code.
* :mod:`repro.asm.objcode` — the binary object-code container.
* :mod:`repro.asm.loader` — object code -> a ready-to-run
  :class:`~repro.host.system.RingSystem`.
"""

from repro.asm.microasm import format_dnode_op, parse_dnode_op, parse_route
from repro.asm.objcode import ObjectCode, PlaneSpec
from repro.asm.assembler import assemble
from repro.asm.loader import load_system

__all__ = [
    "format_dnode_op",
    "parse_dnode_op",
    "parse_route",
    "ObjectCode",
    "PlaneSpec",
    "assemble",
    "load_system",
]
