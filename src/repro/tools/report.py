"""One-command reproduction: regenerate every paper table as one report.

``python -m repro.tools report [-o REPORT.md] [--seed N]`` runs the
simulators and models behind each table/figure of the evaluation and
writes a single markdown report with the reproduced numbers, ready to
diff against EXPERIMENTS.md.  The heavyweight artefacts (Table 1's three
engines) are fully simulated; everything else is near-instant.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.analysis.mips import comparative_summary
from repro.baselines.asic_me import asic_block_match
from repro.baselines.mmx import mmx_block_match
from repro.baselines.wavelet_asics import WAVELET_CIRCUITS
from repro.core.ring import RingGeometry
from repro.host.prototype import IMAGE_SIDE, reference_kernel, \
    run_prototype
from repro.kernels.motion_estimation import full_search_me
from repro.kernels.reference import full_search
from repro.kernels.wavelet import wavelet_cycle_model
from repro.tech.area import core_area_mm2, ring_area_mm2, synthesis_table
from repro.tech.power import core_power
from repro.tech.soc import foreseeable_soc


def _table1(rng) -> str:
    block = rng.integers(0, 256, (8, 8))
    area = rng.integers(0, 256, (24, 24))
    _, _, golden = full_search(block, area)
    ring = full_search_me(block, area)
    mmx = mmx_block_match(block.astype(np.uint8), area.astype(np.uint8))
    asic = asic_block_match(block, area)
    exact = (np.array_equal(ring.sad_map, golden)
             and np.array_equal(mmx.sad_map, golden))
    body = render_table(
        ["engine", "cycles", "vs Ring"],
        [
            ["ASIC [7]", asic.cycles, f"{asic.cycles / ring.cycles:.2f}x"],
            ["Systolic Ring-16", ring.cycles, "1.00x"],
            ["Intel MMX", mmx.cycles,
             f"{mmx.cycles / ring.cycles:.2f}x"],
        ])
    note = ("all SAD maps bit-exact vs the golden search"
            if exact else "MISMATCH DETECTED")
    return (f"## Table 1 — motion estimation (8x8, 289 candidates)\n\n"
            f"```\n{body}\n```\n\n*{note}; paper: Ring 'almost 8 times "
            f"faster' than MMX.*\n")


def _table2() -> str:
    cycles = wavelet_cycle_model(768, 1024)
    ring_area = ring_area_mm2(16, "0.18um",
                              extra_memory_bits=2 * 1024 * 16)
    rows = []
    for c in WAVELET_CIRCUITS.values():
        rows.append([c.name, c.technology, c.area_mm2,
                     c.frequency_hz / 1e6,
                     c.time_for_image_s(768, 1024) * 1e3])
    rows.append(["Ring-16 (reproduced)", "0.18um", ring_area, 200.0,
                 cycles / 200e6 * 1e3])
    body = render_table(
        ["circuit", "techno", "area mm^2", "MHz", "1024x768 ms"], rows)
    return (f"## Table 2 — wavelet transform implementations\n\n"
            f"```\n{body}\n```\n\n*{cycles / (768 * 1024):.2f} cycles per "
            f"pixel on the paper's image; 12/16 Dnodes used (25% free).*\n")


def _table3() -> str:
    rows = [[name, dnode, core, mhz]
            for name, dnode, core, mhz in synthesis_table()]
    body = render_table(
        ["techno", "D-node mm^2", "core mm^2", "est. MHz"], rows,
        float_format="{:.2f}")
    ring64 = core_area_mm2(RingGeometry.ring(64), "0.18um").total_mm2
    return (f"## Table 3 — synthesis results\n\n```\n{body}\n```\n\n"
            f"*Calibration anchors reproduced exactly; predicted Ring-64 "
            f"= {ring64:.2f} mm^2 (Fig. 7 prints 3.4).*\n")


def _sec51() -> str:
    summary = comparative_summary()
    body = render_table(
        ["metric", "reproduced", "paper"],
        [
            ["Ring-8 peak MIPS", summary["ring_peak_mips"], "1600"],
            ["Pentium II 450 MIPS", summary["cpu_mips"], "~400"],
            ["theoretical bandwidth GB/s",
             summary["theoretical_bw_gb_s"], "~3"],
            ["PCI protocol GB/s", summary["pci_bw_gb_s"], "0.25"],
        ])
    return f"## SS5.1 — comparative results\n\n```\n{body}\n```\n"


def _fig6(rng) -> str:
    image = rng.integers(0, 256, (IMAGE_SIDE, IMAGE_SIDE))
    rows = []
    all_exact = True
    for operation in ("invert", "threshold", "edge"):
        result = run_prototype(image, operation)
        exact = np.array_equal(result.framebuffer,
                               reference_kernel(image, operation))
        all_exact &= exact
        rows.append([operation, result.cycles,
                     "yes" if exact else "NO"])
    body = render_table(["kernel", "fabric cycles", "bit-exact"], rows)
    return (f"## Fig. 6 — APEX prototype (64x64 image through Ring-8)\n\n"
            f"```\n{body}\n```\n")


def _fig7() -> str:
    budget = foreseeable_soc()
    power = core_power(RingGeometry.ring(64), "0.18um")
    return (f"## Fig. 7 — foreseeable SoC\n\n```\n{budget}\n```\n\n"
            f"*Ring-64 dynamic power estimate: "
            f"{power.total_w * 1e3:.0f} mW at 200 MHz (extension).*\n")


def generate_report(seed: int = 2002) -> str:
    """Build the full markdown reproduction report."""
    rng = np.random.default_rng(seed)
    sections = [
        "# Reproduction report — Systolic Ring (DATE 2002)\n",
        "Generated by `python -m repro.tools report`. Workload seed: "
        f"{seed}.\n",
        _table1(rng),
        _table2(),
        _table3(),
        _sec51(),
        _fig6(rng),
        _fig7(),
    ]
    return "\n".join(sections)
