"""Streaming matrix-vector products on the Systolic Ring.

Generalises the DCT bank: any fixed matrix ``A`` (rows x cols, cols <= 8,
rows <= layers) becomes a bank of local-mode Dnodes, one per output row.
Dnode *k* holds row *k*'s coefficients as the immediates of a
``cols``-slot MUL/MADD loop and emits ``y_k = A[k] . x`` every ``cols``
cycles, so a full product appears every ``cols`` cycles — one input
element per cycle, sustained, for any stream of vectors.

This is the workhorse shape of late-90s DSP: transforms (DCT/Haar),
polyphase filter banks, small rotations — all "identify macro-operators
... and directly map them onto Dnodes thanks to local mode" (paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.local_controller import NUM_SLOTS
from repro.core.ring import Ring, RingGeometry
from repro.errors import SimulationError
from repro.host.system import RingSystem


def row_program(coefficients: Sequence[int]) -> List[MicroWord]:
    """The local loop computing one dot product with fixed coefficients."""
    coeffs = [word.from_signed(int(c)) for c in coefficients]
    if not 1 <= len(coeffs) <= NUM_SLOTS:
        raise SimulationError(
            f"a row must have 1..{NUM_SLOTS} coefficients, "
            f"got {len(coeffs)}"
        )
    if len(coeffs) == 1:
        return [MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.OUT,
                          flags=Flag.POP_FIFO1, imm=coeffs[0])]
    program = [MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0,
                         flags=Flag.POP_FIFO1, imm=coeffs[0])]
    for i, c in enumerate(coeffs[1:], start=2):
        flags = Flag.POP_FIFO1
        if i == len(coeffs):
            flags |= Flag.WRITE_OUT
        program.append(MicroWord(Opcode.MADD, Source.R0, Source.FIFO1,
                                 Dest.R0, flags=flags, imm=c))
    return program


@dataclass
class MatVecResult:
    """Outcome of a fabric matrix-vector run."""

    products: np.ndarray      # (vectors, rows)
    cycles: int
    dnodes_used: int


def matvec_reference(matrix: np.ndarray,
                     vector: Sequence[int]) -> List[int]:
    """Golden model: 16-bit wrapping dot products (signed results)."""
    out = []
    for row in np.asarray(matrix):
        acc = 0
        for c, x in zip(row, vector):
            acc = word.to_signed(word.wrap(acc + int(c) * int(x)))
        out.append(acc)
    return out


def build_matvec_system(matrix: np.ndarray,
                        ring: Optional[Ring] = None) -> RingSystem:
    """Configure one Dnode per matrix row (lane 0 of successive layers)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise SimulationError(f"matrix must be 2-D, got {matrix.shape}")
    rows, cols = matrix.shape
    if cols > NUM_SLOTS:
        raise SimulationError(
            f"matrix has {cols} columns; the local sequencer holds "
            f"{NUM_SLOTS} slots"
        )
    if ring is None:
        ring = Ring(RingGeometry(layers=max(rows, 2), width=2))
    if rows > ring.geometry.layers:
        raise SimulationError(
            f"matrix has {rows} rows, ring only {ring.geometry.layers} "
            f"layers"
        )
    for k in range(rows):
        ring.config.write_local_program(k, 0, row_program(matrix[k]))
        ring.config.write_mode(k, 0, DnodeMode.LOCAL)
    return RingSystem(ring)


def matvec_fabric(matrix: np.ndarray, vectors: Sequence[Sequence[int]],
                  system: Optional[RingSystem] = None) -> MatVecResult:
    """Stream *vectors* through the matrix bank.

    Bit-exact against :func:`matvec_reference` per vector.
    """
    matrix = np.asarray(matrix)
    rows, cols = matrix.shape
    vectors = [list(v) for v in vectors]
    if not vectors:
        raise SimulationError("need at least one input vector")
    for v in vectors:
        if len(v) != cols:
            raise SimulationError(
                f"vector length {len(v)} != matrix columns {cols}"
            )
    if system is None:
        system = build_matvec_system(matrix)
    ring = system.ring
    stream = [word.from_signed(int(x)) for v in vectors for x in v]
    taps = []
    for k in range(rows):
        ring.push_fifo(k, 0, 1, stream)
        taps.append(system.data.add_tap(k, 0, skip=cols - 1, every=cols,
                                        limit=len(vectors)))
    system.run(len(vectors) * cols)
    products = np.zeros((len(vectors), rows), dtype=np.int64)
    for k, tap in enumerate(taps):
        products[:, k] = [word.to_signed(v) for v in tap.samples]
    return MatVecResult(products=products, cycles=system.cycles,
                        dnodes_used=rows)
