"""Tests for the bandwidth-limited transfer models (§5.1)."""

import pytest

from repro.host.dma import (
    BYTES_PER_WORD,
    ONCHIP_PORTS,
    PCI_BUS,
    TransferModel,
    onchip_ports,
)
from repro.errors import HostError


class TestTransferModel:
    def test_zero_bytes_is_free(self):
        assert PCI_BUS.transfer_time_s(0) == 0.0

    def test_time_includes_latency(self):
        model = TransferModel("x", bandwidth_bytes_per_s=1000,
                              latency_s=0.5)
        assert model.transfer_time_s(1000) == pytest.approx(1.5)

    def test_cycles_round_up(self):
        model = TransferModel("x", bandwidth_bytes_per_s=1e9)
        assert model.transfer_cycles(1, clock_hz=1e6) == 1

    def test_validation(self):
        with pytest.raises(HostError):
            TransferModel("x", bandwidth_bytes_per_s=0)
        with pytest.raises(HostError):
            TransferModel("x", bandwidth_bytes_per_s=1, latency_s=-1)
        with pytest.raises(HostError):
            PCI_BUS.transfer_time_s(-1)
        with pytest.raises(HostError):
            PCI_BUS.transfer_cycles(1, clock_hz=0)


class TestPaperNumbers:
    def test_onchip_ring8_is_about_3gb_s(self):
        """Paper: 'theoretical maximum bandwidth ... about 3 Gbytes/s'."""
        assert ONCHIP_PORTS.bandwidth_bytes_per_s == pytest.approx(3.2e9)

    def test_pci_is_250mb_s(self):
        assert PCI_BUS.bandwidth_bytes_per_s == 250e6

    def test_ratio_onchip_vs_pci(self):
        ratio = ONCHIP_PORTS.bandwidth_bytes_per_s / \
            PCI_BUS.bandwidth_bytes_per_s
        assert ratio == pytest.approx(12.8)

    def test_onchip_words_per_cycle_matches_ports(self):
        assert ONCHIP_PORTS.words_per_cycle() == pytest.approx(8.0)

    def test_onchip_scales_with_ports(self):
        assert onchip_ports(16).bandwidth_bytes_per_s == \
            2 * onchip_ports(8).bandwidth_bytes_per_s

    def test_ports_validated(self):
        with pytest.raises(HostError):
            onchip_ports(0)

    def test_image_transfer_example(self):
        """A 64x64 16-bit image over PCI takes ~33 us (paper's Fig. 6
        prototype moves such images)."""
        nbytes = 64 * 64 * BYTES_PER_WORD
        time = PCI_BUS.transfer_time_s(nbytes)
        assert time == pytest.approx(nbytes / 250e6 + 1e-6)
