"""Tests for the text table renderer."""

import pytest

from repro.analysis.report import render_table
from repro.errors import ReproError


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert lines[2].split() == ["1", "2"]

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"
        assert set(out.splitlines()[1]) == {"="}

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.14" in out and "3.14159" not in out

    def test_custom_float_format(self):
        out = render_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in out

    def test_column_width_adapts(self):
        out = render_table(["col"], [["a-very-long-cell"]])
        header, rule, row = out.splitlines()
        assert len(rule) >= len("a-very-long-cell")

    def test_row_arity_checked(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [[1]])

    def test_needs_columns(self):
        with pytest.raises(ReproError):
            render_table([], [])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
