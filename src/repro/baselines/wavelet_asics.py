"""Characteristic models of the wavelet ASICs compared in Table 2.

Table 2 compares static implementation characteristics — technology,
silicon area, clock frequency, on-chip memory — of two dedicated wavelet
circuits against the Ring-16.  Both ASICs also compute one pixel sample
per clock cycle, so the comparison is about area/flexibility, not speed:

=====================  ========  ==========  =========  ==============
circuit                techno    area        frequency  memory
=====================  ========  ==========  =========  ==============
Navarro, Mallat [10]   0.7 um    48.4 mm^2   50 MHz     (768+30)x16 b
Diou et al. [11]       0.25 um   2.2 mm^2    150 MHz    897 bytes
Ring-16 (this work)    0.18 um   1.4 mm^2    200 MHz    line buffers
=====================  ========  ==========  =========  ==============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class WaveletCircuit:
    """One row of Table 2."""

    name: str
    technology: str
    area_mm2: float
    frequency_hz: float
    memory_bits: int
    pixels_per_cycle: float = 1.0
    flexible: bool = False

    def pixel_rate_hz(self) -> float:
        """Sustained pixel throughput."""
        return self.frequency_hz * self.pixels_per_cycle

    def time_for_image_s(self, height: int, width: int) -> float:
        """Transform time for one height x width image."""
        if height < 1 or width < 1:
            raise SimulationError(
                f"image must be non-empty, got {height}x{width}"
            )
        return height * width / self.pixel_rate_hz()


#: Published characteristics of the comparators (memory column of
#: Table 2: [10] stores (768+30) 16-bit words; [11] stores 897 bytes).
WAVELET_CIRCUITS: Dict[str, WaveletCircuit] = {
    "navarro": WaveletCircuit(
        name="Navarro 2-D Mallat DWT [10]",
        technology="0.7um",
        area_mm2=48.4,
        frequency_hz=50e6,
        memory_bits=(768 + 30) * 16,
    ),
    "diou": WaveletCircuit(
        name="Diou wavelet core [11]",
        technology="0.25um",
        area_mm2=2.2,
        frequency_hz=150e6,
        memory_bits=897 * 8,
    ),
}
