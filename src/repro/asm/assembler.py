"""The assembler proper: parsed source -> machine object code.

Resolution performed here:

* Ring-level microinstructions and routes are encoded into the
  configuration ROM (deduplicated — identical words share one entry);
* each ``.ring`` section becomes a :class:`~repro.asm.objcode.PlaneSpec`;
  the first section is the initial plane applied at load time;
* RISC labels are resolved over two passes (branches are PC-relative to
  the next instruction, jumps absolute);
* ``cfgword``/``cfgroute`` pseudo-ops bind names to ROM entries usable by
  the configuration instructions;
* every address is validated against the target ring geometry, so the
  object code cannot reference a Dnode or switch that does not exist.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.asm.microasm import parse_dnode_op, parse_route
from repro.asm.objcode import ObjectCode, PlaneSpec
from repro.asm.parser import ProgramSource, RiscStmt, parse_source
from repro.controller.isa import Instruction, ROp, encode_instruction
from repro.core.isa import encode as encode_microword
from repro.core.local_controller import NUM_SLOTS
from repro.core.switch import encode_route
from repro.errors import AssemblerError

_REG_RE = re.compile(r"^r(\d+)$", re.IGNORECASE)
_DNODE_RE = re.compile(r"^d(\d+)\.(\d+)$", re.IGNORECASE)
_SWITCH_RE = re.compile(r"^s(\d+)\.(\d+)\.([12])$", re.IGNORECASE)

#: three-register ALU mnemonics, shared encoding path
_ALU3 = {
    "add": ROp.ADD, "sub": ROp.SUB, "and": ROp.AND, "or": ROp.OR,
    "xor": ROp.XOR, "shl": ROp.SHL, "shr": ROp.SHR,
    "sar": ROp.SAR, "mul": ROp.MUL,
}
_BRANCH2 = {
    "beq": ROp.BEQ, "bne": ROp.BNE, "blt": ROp.BLT, "bge": ROp.BGE,
}


class _RomBuilder:
    """Deduplicating configuration-ROM builder with a name table."""

    def __init__(self):
        self.entries: List[int] = []
        self._index: Dict[int, int] = {}
        self.names: Dict[str, int] = {}

    def add(self, entry: int) -> int:
        if entry in self._index:
            return self._index[entry]
        index = len(self.entries)
        self.entries.append(entry)
        self._index[entry] = index
        return index

    def bind(self, name: str, entry: int, line: int) -> int:
        if name in self.names:
            raise AssemblerError(f"duplicate cfg name {name!r}", line)
        index = self.add(entry)
        self.names[name] = index
        return index

    def lookup(self, name: str, line: int) -> int:
        if name not in self.names:
            raise AssemblerError(f"undefined cfg name {name!r}", line)
        return self.names[name]


def assemble(text: str, layers: int, width: int = 2) -> ObjectCode:
    """Assemble two-level source *text* for a *layers* x *width* ring.

    Returns:
        A complete :class:`~repro.asm.objcode.ObjectCode` image.

    Raises:
        AssemblerError: with line information on the first error found.
    """
    source = parse_source(text)
    rom = _RomBuilder()
    planes = _build_planes(source, rom, layers, width)
    program, symbols = _build_program(source, rom, layers, width, planes)
    return ObjectCode(
        layers=layers,
        width=width,
        cfg_rom=rom.entries,
        program=program,
        planes=planes,
        initial_plane=0 if planes else None,
        symbols=symbols,
    )


# ----------------------------------------------------------------------
# Ring sections -> planes
# ----------------------------------------------------------------------

def _build_planes(source: ProgramSource, rom: _RomBuilder,
                  layers: int, width: int) -> List[PlaneSpec]:
    planes: List[PlaneSpec] = []
    seen = set()
    for section in source.ring_sections:
        if section.name in seen:
            raise AssemblerError(
                f"duplicate plane name {section.name!r}", section.line
            )
        seen.add(section.name)
        plane = PlaneSpec(section.name)
        for stmt in section.dnodes:
            if not (0 <= stmt.layer < layers and 0 <= stmt.position < width):
                raise AssemblerError(
                    f"dnode {stmt.layer}.{stmt.position} outside "
                    f"{layers}x{width} ring",
                    stmt.line,
                )
            flat = stmt.layer * width + stmt.position
            words = [
                parse_dnode_op(op, line)
                for op, line in zip(stmt.ops, stmt.op_lines)
            ]
            if stmt.mode == "global":
                if len(words) != 1:
                    raise AssemblerError(
                        f"global-mode dnode needs exactly 1 "
                        f"microinstruction, got {len(words)}",
                        stmt.line,
                    )
                plane.dnode_words.append(
                    (flat, rom.add(encode_microword(words[0])))
                )
                plane.modes.append((flat, 0))
            else:
                if not 1 <= len(words) <= NUM_SLOTS:
                    raise AssemblerError(
                        f"local program must have 1..{NUM_SLOTS} "
                        f"microinstructions, got {len(words)}",
                        stmt.line,
                    )
                for slot, mw in enumerate(words):
                    plane.local_slots.append(
                        (flat, slot, rom.add(encode_microword(mw)))
                    )
                plane.local_limits.append((flat, len(words)))
                plane.modes.append((flat, 1))
        for route in section.routes:
            if route.position == -1:
                continue  # `switch K` header marker
            if not 0 <= route.switch < layers:
                raise AssemblerError(
                    f"switch {route.switch} outside ring of {layers} layers",
                    route.line,
                )
            if not 0 <= route.position < width:
                raise AssemblerError(
                    f"route position {route.position} outside width {width}",
                    route.line,
                )
            src = parse_route(route.source_text, route.line)
            plane.routes.append(
                (route.switch, route.position, route.port,
                 rom.add(encode_route(src)))
            )
        planes.append(plane)
    return planes


# ----------------------------------------------------------------------
# RISC section -> controller binary
# ----------------------------------------------------------------------

def _build_program(source: ProgramSource, rom: _RomBuilder,
                   layers: int, width: int,
                   planes: List[PlaneSpec]) -> tuple:
    # Pass 0: register cfgword/cfgroute names, collect real instructions.
    real_statements: List[RiscStmt] = []
    labels: Dict[str, int] = {}
    for stmt in source.risc_statements:
        if stmt.mnemonic in ("cfgword", "cfgroute"):
            # The second operand is the whole microinstruction/route text,
            # which itself contains commas: re-join the split tail.
            if len(stmt.operands) < 2:
                raise AssemblerError(
                    f"{stmt.mnemonic} expects a name and a definition",
                    stmt.line,
                )
            name, definition = stmt.operands[0], ", ".join(stmt.operands[1:])
            if stmt.mnemonic == "cfgword":
                entry = encode_microword(parse_dnode_op(definition,
                                                        stmt.line))
            else:
                entry = encode_route(parse_route(definition, stmt.line))
            rom.bind(name, entry, stmt.line)
            _bind_labels(labels, stmt, len(real_statements))
            continue
        _bind_labels(labels, stmt, len(real_statements))
        real_statements.append(stmt)

    plane_names = {plane.name: i for i, plane in enumerate(planes)}
    program: List[int] = []
    for addr, stmt in enumerate(real_statements):
        instr = _encode_statement(stmt, addr, labels, rom, layers, width,
                                  plane_names)
        program.append(encode_instruction(instr))
    return program, dict(labels)


def _bind_labels(labels: Dict[str, int], stmt: RiscStmt, addr: int) -> None:
    for label in stmt.labels:
        if label in labels:
            raise AssemblerError(f"duplicate label {label!r}", stmt.line)
        labels[label] = addr


def _require(stmt: RiscStmt, count: int) -> None:
    if len(stmt.operands) != count:
        raise AssemblerError(
            f"{stmt.mnemonic} expects {count} operand(s), "
            f"got {len(stmt.operands)}",
            stmt.line,
        )


def _reg(token: str, line: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match or int(match.group(1)) > 15:
        raise AssemblerError(f"expected register r0..r15, got {token!r}", line)
    return int(match.group(1))


def _int(token: str, line: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblerError(f"expected a number, got {token!r}", line)


def _dnode(token: str, line: int, layers: int, width: int) -> int:
    match = _DNODE_RE.match(token.strip())
    if not match:
        raise AssemblerError(
            f"expected dnode reference dL.P, got {token!r}", line
        )
    layer, pos = int(match.group(1)), int(match.group(2))
    if not (0 <= layer < layers and 0 <= pos < width):
        raise AssemblerError(
            f"dnode {layer}.{pos} outside {layers}x{width} ring", line
        )
    return layer * width + pos


def _label_or_int(token: str, labels: Dict[str, int], line: int) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    return _int(token, line)


def _cfg_word(token: str, rom: _RomBuilder, line: int) -> int:
    """Resolve a configuration-word operand to its ROM index.

    Either a name bound by ``cfgword``, or an inline bracketed
    microinstruction (``[mul out, in1, #2]``) — the form the
    disassembler emits — which is encoded and deduplicated into the ROM
    directly.
    """
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return rom.add(encode_microword(parse_dnode_op(token[1:-1], line)))
    return rom.lookup(token, line)


def _cfg_route(token: str, rom: _RomBuilder, line: int) -> int:
    """Resolve a route operand: a ``cfgroute`` name or inline ``[up0]``."""
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return rom.add(encode_route(parse_route(token[1:-1], line)))
    return rom.lookup(token, line)


def _encode_statement(stmt: RiscStmt, addr: int, labels: Dict[str, int],
                      rom: _RomBuilder, layers: int, width: int,
                      plane_names: Dict[str, int]) -> Instruction:
    m, ops, line = stmt.mnemonic, stmt.operands, stmt.line
    try:
        if m == "nop":
            _require(stmt, 0)
            return Instruction(ROp.NOP)
        if m == "halt":
            _require(stmt, 0)
            return Instruction(ROp.HALT)
        if m == "ldi":
            _require(stmt, 2)
            return Instruction(ROp.LDI, rd=_reg(ops[0], line),
                               imm=_int(ops[1], line) & 0xFFFF)
        if m == "mov":
            _require(stmt, 2)
            return Instruction(ROp.MOV, rd=_reg(ops[0], line),
                               rs=_reg(ops[1], line))
        if m in _ALU3:
            _require(stmt, 3)
            return Instruction(_ALU3[m], rd=_reg(ops[0], line),
                               rs=_reg(ops[1], line), rt=_reg(ops[2], line))
        if m == "addi":
            _require(stmt, 3)
            return Instruction(ROp.ADDI, rd=_reg(ops[0], line),
                               rs=_reg(ops[1], line), imm=_int(ops[2], line))
        if m in _BRANCH2:
            _require(stmt, 3)
            target = _label_or_int(ops[2], labels, line)
            return Instruction(_BRANCH2[m], rs=_reg(ops[0], line),
                               rt=_reg(ops[1], line), imm=target - addr - 1)
        if m in ("jmp", "jal"):
            _require(stmt, 1)
            op = ROp.JMP if m == "jmp" else ROp.JAL
            return Instruction(op, imm=_label_or_int(ops[0], labels, line))
        if m == "jr":
            _require(stmt, 1)
            return Instruction(ROp.JR, rs=_reg(ops[0], line))
        if m == "lw":
            _require(stmt, 3)
            return Instruction(ROp.LW, rd=_reg(ops[0], line),
                               rs=_reg(ops[1], line), imm=_int(ops[2], line))
        if m == "sw":
            _require(stmt, 3)
            return Instruction(ROp.SW, rt=_reg(ops[0], line),
                               rs=_reg(ops[1], line), imm=_int(ops[2], line))
        if m == "cfgdi":
            _require(stmt, 2)
            return Instruction(ROp.CFGDI,
                               dnode=_dnode(ops[0], line, layers, width),
                               cfg=_cfg_word(ops[1], rom, line))
        if m == "cfgd":
            _require(stmt, 2)
            return Instruction(ROp.CFGD, rs=_reg(ops[0], line),
                               rt=_reg(ops[1], line))
        if m == "cfgl":
            _require(stmt, 3)
            return Instruction(ROp.CFGL,
                               dnode=_dnode(ops[0], line, layers, width),
                               slot=_int(ops[1], line),
                               cfg=_cfg_word(ops[2], rom, line))
        if m == "cfglim":
            _require(stmt, 2)
            return Instruction(ROp.CFGLIM,
                               dnode=_dnode(ops[0], line, layers, width),
                               limit=_int(ops[1], line))
        if m == "cfgmode":
            _require(stmt, 2)
            mode = ops[1].strip().lower()
            if mode not in ("global", "local"):
                raise AssemblerError(
                    f"cfgmode expects global|local, got {ops[1]!r}", line
                )
            return Instruction(ROp.CFGMODE,
                               dnode=_dnode(ops[0], line, layers, width),
                               mode=1 if mode == "local" else 0)
        if m == "cfgs":
            _require(stmt, 2)
            match = _SWITCH_RE.match(ops[0].strip())
            if not match:
                raise AssemblerError(
                    f"expected switch target sK.P.Q, got {ops[0]!r}", line
                )
            sw, pos, port = (int(match.group(1)), int(match.group(2)),
                             int(match.group(3)))
            if sw >= layers or pos >= width:
                raise AssemblerError(
                    f"switch target {ops[0]} outside {layers}x{width} ring",
                    line,
                )
            return Instruction(ROp.CFGS, sw=sw, pos=pos, port=port,
                               cfg=_cfg_route(ops[1], rom, line))
        if m == "cfgimm":
            _require(stmt, 3)
            return Instruction(ROp.CFGIMM,
                               dnode=_dnode(ops[0], line, layers, width),
                               cfg=_cfg_word(ops[1], rom, line),
                               rs=_reg(ops[2], line))
        if m == "rdd":
            _require(stmt, 2)
            return Instruction(ROp.RDD, rd=_reg(ops[0], line),
                               dnode=_dnode(ops[1], line, layers, width))
        if m == "cfgplane":
            _require(stmt, 1)
            name = ops[0].strip()
            if name not in plane_names:
                raise AssemblerError(f"unknown plane {name!r}", line)
            return Instruction(ROp.CFGPLANE, plane=plane_names[name])
        if m == "busw":
            _require(stmt, 1)
            return Instruction(ROp.BUSW, rs=_reg(ops[0], line))
        if m == "inw":
            _require(stmt, 2)
            return Instruction(ROp.INW, rd=_reg(ops[0], line),
                               ch=_int(ops[1], line))
        if m == "outw":
            _require(stmt, 2)
            return Instruction(ROp.OUTW, ch=_int(ops[0], line),
                               rs=_reg(ops[1], line))
        if m == "bfe":
            _require(stmt, 2)
            target = _label_or_int(ops[1], labels, line)
            return Instruction(ROp.BFE, ch=_int(ops[0], line),
                               imm=target - addr - 1)
        if m == "waiti":
            _require(stmt, 1)
            return Instruction(ROp.WAITI, imm=_int(ops[0], line))
    except AssemblerError:
        raise
    except Exception as exc:
        raise AssemblerError(str(exc), line)
    raise AssemblerError(f"unknown mnemonic {m!r}", line)


__all__ = ["assemble", "parse_source"]
