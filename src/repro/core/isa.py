"""Dnode microinstruction set architecture.

The paper (§4.1) describes the Dnode as "configured by a microinstruction
code" coming either from the configuration layer (global mode) or from the
local control unit (local mode).  This module defines that microinstruction
word precisely:

* :class:`Opcode` — the operation repertoire.  Every opcode performs at most
  two chained arithmetic operations per cycle, matching the paper's "able to
  compute up to two arithmetic operations each clock cycle, as the adder and
  multiplier operators can be associated in a fully combinational way"
  (e.g. ``MAC`` = multiply then add, ``ABSDIFF`` = subtract then absolute
  value).
* :class:`Source` — the operand routing repertoire listed in Fig. 3:
  ``In(1,2), fifo(1,2), bus, Rp(i,j) (i=1..4, j=1..2)`` plus the register
  file, an immediate from the configuration word, and the Dnode's own
  output register.
* :class:`Dest` — register file entries, the output register, or no write.
* :class:`MicroWord` — the assembled instruction, with a packed 40-bit
  binary encoding (:func:`encode` / :func:`decode`) used by the
  configuration memory, the assembler and the loader.

Binary layout (40 bits)::

    [39:35] opcode      (5 bits)
    [34:30] source A    (5 bits)
    [29:25] source B    (5 bits)
    [24:22] destination (3 bits)
    [21:16] flags       (6 bits)
    [15:0]  immediate   (16 bits)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import word
from repro.errors import ConfigurationError

MICROWORD_BITS = 40
MICROWORD_BYTES = 5

#: Depth of each feedback pipeline (``Rp(i, j)`` with ``i = 1..4``).
FEEDBACK_DEPTH = 4
#: Number of feedback pipelines addressable from a Dnode (``j = 1..2``).
FEEDBACK_LANES = 2


class Opcode(enum.IntEnum):
    """Dnode operations.

    Single-operator ops use the ALU or the multiplier alone; dual ops chain
    the two hardwired operators combinationally within one clock cycle.
    """

    NOP = 0        # no operation, no write
    MOV = 1        # result = A
    ADD = 2        # result = A + B            (wrapping)
    SUB = 3        # result = A - B            (wrapping)
    MUL = 4        # result = (A * B) low 16 bits (signed)
    MULH = 5       # result = (A * B) high 16 bits (signed)
    MAC = 6        # result = A * B + R[dst]   (dual op: mult -> adder)
    AND = 7
    OR = 8
    XOR = 9
    NOT = 10       # result = ~A
    NEG = 11       # result = -A
    SHL = 12       # result = A << (B & 15)
    SHR = 13       # logical right shift
    ASR = 14       # arithmetic right shift
    ABS = 15       # result = |A| (signed)
    ABSDIFF = 16   # result = |A - B|          (dual op: sub -> abs)
    MIN = 17       # signed minimum
    MAX = 18       # signed maximum
    ADDSAT = 19    # saturating signed add
    SUBSAT = 20    # saturating signed subtract
    CMPEQ = 21     # result = 1 if A == B else 0
    CMPLT = 22     # result = 1 if A < B (signed) else 0
    AVG2 = 23      # result = (A + B) >> 1 (signed average, video op)
    MACS = 24      # saturating MAC: sat(A * B + R[dst])
    MADD = 25      # result = A + B * imm  (dual op: mult -> adder; the
                   # coefficient comes from the configuration word)
    MSUB = 26      # result = A - B * imm


class Source(enum.IntEnum):
    """Operand sources available to the Dnode datapath (Fig. 3)."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    IN1 = 4       # forward input port 1 (routed by the upstream switch)
    IN2 = 5       # forward input port 2
    FIFO1 = 6     # data-controller stream FIFO 1
    FIFO2 = 7     # data-controller stream FIFO 2
    BUS = 8       # shared bus driven by the configuration controller
    IMM = 9       # immediate field of the microword
    SELF = 10     # the Dnode's own output register (tight feedback)
    ZERO = 11     # hardwired zero
    # Feedback-pipeline taps Rp(i, j): stage i (delay, 1-based) of the
    # upstream switch's pipeline for lane j.  Codes 16..23.
    RP11 = 16
    RP21 = 17
    RP31 = 18
    RP41 = 19
    RP12 = 20
    RP22 = 21
    RP32 = 22
    RP42 = 23

    @property
    def is_feedback(self) -> bool:
        """True for the ``Rp(i, j)`` pipeline taps."""
        return Source.RP11 <= self <= Source.RP42

    @property
    def feedback_stage(self) -> int:
        """Delay stage ``i`` (1-based) of an ``Rp`` source."""
        if not self.is_feedback:
            raise ConfigurationError(f"{self.name} is not a feedback tap")
        return (self - Source.RP11) % FEEDBACK_DEPTH + 1

    @property
    def feedback_lane(self) -> int:
        """Pipeline lane ``j`` (1-based) of an ``Rp`` source."""
        if not self.is_feedback:
            raise ConfigurationError(f"{self.name} is not a feedback tap")
        return (self - Source.RP11) // FEEDBACK_DEPTH + 1

    @classmethod
    def rp(cls, stage: int, lane: int) -> "Source":
        """Build the ``Rp(stage, lane)`` source (both 1-based)."""
        if not 1 <= stage <= FEEDBACK_DEPTH:
            raise ConfigurationError(
                f"feedback stage must be 1..{FEEDBACK_DEPTH}, got {stage}"
            )
        if not 1 <= lane <= FEEDBACK_LANES:
            raise ConfigurationError(
                f"feedback lane must be 1..{FEEDBACK_LANES}, got {lane}"
            )
        return cls(cls.RP11 + (lane - 1) * FEEDBACK_DEPTH + (stage - 1))


class Dest(enum.IntEnum):
    """Result destinations."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    OUT = 4    # output register, visible to the next layer via the switch
    NONE = 5   # discard (still pops FIFOs if requested)

    @property
    def is_register(self) -> bool:
        return self <= Dest.R3


class Flag(enum.IntFlag):
    """Modifier flags of a microword."""

    NONE = 0
    WRITE_OUT = 1    # mirror the result to OUT in addition to `dst`
    POP_FIFO1 = 2    # consume the FIFO1 head this cycle
    POP_FIFO2 = 4    # consume the FIFO2 head this cycle


#: Opcodes whose second operand participates in the computation.
_BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.MULH,
        Opcode.MAC,
        Opcode.MACS,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.ASR,
        Opcode.ABSDIFF,
        Opcode.MIN,
        Opcode.MAX,
        Opcode.ADDSAT,
        Opcode.SUBSAT,
        Opcode.CMPEQ,
        Opcode.CMPLT,
        Opcode.AVG2,
        Opcode.MADD,
        Opcode.MSUB,
    }
)

#: Opcodes that read the destination register as an implicit accumulator.
ACCUMULATING_OPS = frozenset({Opcode.MAC, Opcode.MACS})


def is_binary_op(op: Opcode) -> bool:
    """True when *op* consumes two source operands."""
    return op in _BINARY_OPS


@dataclass(frozen=True)
class MicroWord:
    """One Dnode microinstruction.

    Attributes:
        op: operation to perform.
        src_a: first operand routing.
        src_b: second operand routing (ignored by unary ops).
        dst: where the result is written.
        flags: modifier flags (OUT mirroring, FIFO pops).
        imm: 16-bit immediate available through ``Source.IMM``.
    """

    op: Opcode = Opcode.NOP
    src_a: Source = Source.ZERO
    src_b: Source = Source.ZERO
    dst: Dest = Dest.NONE
    flags: Flag = Flag.NONE
    imm: int = 0

    def __post_init__(self) -> None:
        word.check(self.imm, "immediate")
        if self.op in ACCUMULATING_OPS and not self.dst.is_register:
            raise ConfigurationError(
                f"{self.op.name} accumulates into its destination register; "
                f"dst must be R0..R3, got {self.dst.name}"
            )

    @property
    def is_binary(self) -> bool:
        """True when the opcode consumes both operands."""
        return self.op in _BINARY_OPS

    def sources(self) -> tuple[Source, ...]:
        """Operand sources actually read by this instruction."""
        if self.op is Opcode.NOP:
            return ()
        if self.is_binary:
            return (self.src_a, self.src_b)
        return (self.src_a,)

    def with_flags(self, extra: Flag) -> "MicroWord":
        """Return a copy with *extra* flags OR-ed in."""
        return MicroWord(
            op=self.op,
            src_a=self.src_a,
            src_b=self.src_b,
            dst=self.dst,
            flags=self.flags | extra,
            imm=self.imm,
        )

    def __str__(self) -> str:
        parts = [self.op.name.lower()]
        if self.dst is not Dest.NONE:
            parts.append(self.dst.name.lower())
        if self.op is not Opcode.NOP:
            parts.append(self.src_a.name.lower())
            if self.is_binary:
                parts.append(self.src_b.name.lower())
        text = " ".join(parts[:1]) + " " + ", ".join(parts[1:])
        if Source.IMM in self.sources():
            text += f" #{word.to_signed(self.imm)}"
        if self.flags:
            text += f" [{self.flags!r}]"
        return text.strip()


#: The canonical "do nothing" microword.
NOP_WORD = MicroWord()

_OP_SHIFT = 35
_SRCA_SHIFT = 30
_SRCB_SHIFT = 25
_DST_SHIFT = 22
_FLAGS_SHIFT = 16
_FIELD5 = 0x1F
_FIELD3 = 0x7
_FIELD6 = 0x3F


def encode(mw: MicroWord) -> int:
    """Pack a :class:`MicroWord` into its 40-bit binary form."""
    return (
        (int(mw.op) << _OP_SHIFT)
        | (int(mw.src_a) << _SRCA_SHIFT)
        | (int(mw.src_b) << _SRCB_SHIFT)
        | (int(mw.dst) << _DST_SHIFT)
        | (int(mw.flags) << _FLAGS_SHIFT)
        | mw.imm
    )


def decode(raw: int) -> MicroWord:
    """Unpack a 40-bit binary word into a :class:`MicroWord`.

    Raises:
        ConfigurationError: if any field holds an illegal code.
    """
    if not isinstance(raw, int) or raw < 0 or raw >= (1 << MICROWORD_BITS):
        raise ConfigurationError(f"microword must fit in 40 bits, got {raw!r}")
    try:
        op = Opcode((raw >> _OP_SHIFT) & _FIELD5)
        src_a = Source((raw >> _SRCA_SHIFT) & _FIELD5)
        src_b = Source((raw >> _SRCB_SHIFT) & _FIELD5)
        dst = Dest((raw >> _DST_SHIFT) & _FIELD3)
        flags = Flag((raw >> _FLAGS_SHIFT) & _FIELD6)
    except ValueError as exc:
        raise ConfigurationError(f"illegal microword field: {exc}") from exc
    return MicroWord(op=op, src_a=src_a, src_b=src_b, dst=dst, flags=flags,
                     imm=raw & word.MASK)


def encode_bytes(mw: MicroWord) -> bytes:
    """Encode a microword as 5 big-endian bytes (object-file form)."""
    return encode(mw).to_bytes(MICROWORD_BYTES, "big")


def decode_bytes(blob: bytes) -> MicroWord:
    """Decode 5 big-endian bytes into a microword."""
    if len(blob) != MICROWORD_BYTES:
        raise ConfigurationError(
            f"microword blob must be {MICROWORD_BYTES} bytes, got {len(blob)}"
        )
    return decode(int.from_bytes(blob, "big"))
