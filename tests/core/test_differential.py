"""Differential fuzzing: every backend, bit-identical, per lane.

The batch backend's whole claim is *bit-identity*: B lanes advanced by
NumPy kernels must be indistinguishable from B scalar rings run one
after another, which in turn must match the interpreter.  These property
tests draw random fabric shapes, microprograms, routes, FIFO loads and
host streams (reusing the spec generators of ``test_fuzz.py``), run the
same configuration on the interpreter, the compiled fast path and one
batch engine, and compare the complete architectural state per lane:
Dnode outputs and register files, switch feedback pipelines, FIFO
contents and pop/underflow accounting, and the activity statistics.

The suite is derandomized (pinned example sequence, no deadline) so CI
runs are reproducible; the classes together exercise 200+ examples.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import word
from repro.core import alu
from repro.core.batchpath import LANE_DTYPE, batch_execute_op
from repro.core.dnode import DnodeMode
from repro.core.isa import ACCUMULATING_OPS, Opcode
from repro.core.ring import Ring, RingGeometry

from tests.core.test_fuzz import apply_spec, build_ring, ring_specs

_SETTINGS = dict(deadline=None, derandomize=True)


def _host_value(seed: int, channel: int, cycle: int, lane: int) -> int:
    """Deterministic per-channel, per-cycle, per-lane host stimulus."""
    return (seed + 131 * channel + 7 * cycle + 1009 * lane) & 0xFFFF


def _lane_fifo_extra(seed: int, layer: int, pos: int, channel: int,
                     lane: int):
    """A small lane-specific FIFO load (so lanes genuinely diverge)."""
    base = seed ^ (7919 * lane + 131 * layer + 17 * pos + channel)
    return [(base + i * 257) & 0xFFFF for i in range(lane % 3)]


def _state(ring: Ring) -> dict:
    """The complete observable architectural state of a scalar ring."""
    g = ring.geometry
    return {
        "cycles": ring.cycles,
        "outs": [dn.out for dn in ring.all_dnodes()],
        "regs": [dn.regs.snapshot() for dn in ring.all_dnodes()],
        "pipes": [[ring.switch(k).rp_read(stage, lane)
                   for stage in range(1, 5)
                   for lane in range(1, g.width + 1)]
                  for k in range(g.layers)],
        # Empty deques are created lazily on first touch, so their mere
        # presence in the dict differs across engines; only contents are
        # architectural.
        "fifos": {key: list(queue)
                  for key, queue in sorted(ring._fifos.items()) if queue},
        "underflows": ring.fifo_underflows,
        "stats": [(dn.stats.cycles, dn.stats.instructions,
                   dn.stats.arithmetic_ops, dn.stats.multiplies,
                   dn.stats.fifo_pops) for dn in ring.all_dnodes()],
    }


def _scalar_lane_ring(spec: dict, seed: int, lane: int,
                      fastpath: bool) -> Ring:
    ring = build_ring(spec, fastpath=fastpath)
    for layer, pos, _mw, _local, _routes, loads in spec["cells"]:
        for channel in loads:
            ring.push_fifo(layer, pos, channel,
                           _lane_fifo_extra(seed, layer, pos, channel,
                                            lane))
    return ring


def _batch_ring(spec: dict, seed: int, batch: int) -> Ring:
    ring = build_ring(spec, backend="batch", batch_size=batch)
    engine = ring.batch
    for layer, pos, _mw, _local, _routes, loads in spec["cells"]:
        for channel in loads:
            for lane in range(batch):
                engine.push_fifo(
                    layer, pos, channel,
                    _lane_fifo_extra(seed, layer, pos, channel, lane),
                    lane=lane)
    return ring


def _run_lane_scalar(spec, seed, lane, cycles, bus, fastpath):
    ring = _scalar_lane_ring(spec, seed, lane, fastpath=fastpath)
    ring.run(cycles, bus=bus,
             host_in=lambda ch: _host_value(seed, ch, ring.cycles, lane))
    return ring


def _batch_host_in(ring: Ring, seed: int, batch: int):
    def host_in(channel: int) -> np.ndarray:
        return np.array(
            [_host_value(seed, channel, ring.cycles, lane)
             for lane in range(batch)], dtype=np.int64)
    return host_in


def _extract_lane(batch_ring: Ring, lane: int) -> dict:
    target = Ring(batch_ring.geometry)
    batch_ring._lane_engine().store_lane(lane, target)
    return _state(target)


class TestDifferentialBackends:
    """interpreter == fastpath == every batch lane, full state."""

    @given(spec=ring_specs(min_layers=2, max_layers=5, min_width=1,
                           max_width=2, max_local=6),
           batch=st.integers(min_value=1, max_value=3),
           cycles=st.integers(min_value=1, max_value=20),
           seed=st.integers(min_value=0, max_value=0xFFFF),
           bus=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=120, **_SETTINGS)
    def test_full_state_identity(self, spec, batch, cycles, seed, bus):
        bring = _batch_ring(spec, seed, batch)
        bring.run(cycles, bus=bus,
                  host_in=_batch_host_in(bring, seed, batch))
        for lane in range(batch):
            interp = _run_lane_scalar(spec, seed, lane, cycles, bus,
                                      fastpath=False)
            fast = _run_lane_scalar(spec, seed, lane, cycles, bus,
                                    fastpath=True)
            want = _state(interp)
            assert _state(fast) == want, f"fastpath diverged on {lane}"
            assert _extract_lane(bring, lane) == want, (
                f"batch lane {lane} diverged"
            )

    @given(spec=ring_specs(min_layers=2, max_layers=4, min_width=1,
                           max_width=2, max_local=4),
           batch=st.integers(min_value=2, max_value=3),
           chunks=st.lists(st.integers(min_value=1, max_value=8),
                           min_size=2, max_size=4),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60, **_SETTINGS)
    def test_chunked_runs_match_one_shot(self, spec, batch, chunks, seed):
        """run()/step() interleaving never perturbs lane state.

        The batch engine syncs lane 0 back to the scalar ring between
        chunks; a writeback or resync bug would compound across chunk
        boundaries and show up against the single uninterrupted run.
        """
        total = sum(chunks)
        one_shot = _batch_ring(spec, seed, batch)
        one_shot.run(total, host_in=_batch_host_in(one_shot, seed, batch))

        chunked = _batch_ring(spec, seed, batch)
        host_in = _batch_host_in(chunked, seed, batch)
        for chunk in chunks:
            chunked.run(chunk - 1, host_in=host_in)
            chunked.step(host_in=host_in)
        for lane in range(batch):
            assert (_extract_lane(chunked, lane)
                    == _extract_lane(one_shot, lane)), (
                f"chunked run diverged on lane {lane}"
            )


def _apply_config_only(ring: Ring, spec: dict) -> None:
    """Apply a spec's *configuration* (no FIFO loads): a context switch."""
    for layer, pos, mw, local, routes, _loads in spec["cells"]:
        ring.config.write_microword(layer, pos, mw)
        if local is not None:
            ring.config.write_local_program(layer, pos, local)
            ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
        else:
            ring.config.write_mode(layer, pos, DnodeMode.GLOBAL)
        for port, route in routes.items():
            ring.config.write_switch_route(layer, pos, port, route)


class TestDifferentialCachedAndMacro:
    """Cache-hit and macro-fused execution == interpreter, full state.

    Extends the backend identity fuzz to the plan-cache layer: the same
    random configuration churn (context A / context B / back to A) is
    driven through an interpreter ring, a cache-enabled fast-path ring
    (which re-adopts plans on the A/B/A returns), a cache-disabled ring
    (fresh compile every switch), a macro-stepping ring, and the batch
    backend with its kernel cache.  Any fingerprint collision, stale
    plan adoption, phase-mismatched macro kernel, or missed invalidation
    shows up as state divergence.
    """

    @given(spec=ring_specs(min_layers=2, max_layers=5, min_width=1,
                           max_width=2, max_local=6),
           k=st.sampled_from([2, 8, 64]),
           chunks=st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=4),
           seed=st.integers(min_value=0, max_value=0xFFFF),
           bus=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50, **_SETTINGS)
    def test_macro_stepped_full_state_identity(self, spec, k, chunks,
                                               seed, bus):
        interp = build_ring(spec, fastpath=False)
        fused = build_ring(spec, macro_step=k)
        for chunk in chunks:
            interp.run(chunk, bus=bus,
                       host_in=lambda ch: _host_value(seed, ch,
                                                      interp.cycles, 0))
            fused.run(chunk, bus=bus,
                      host_in=lambda ch: _host_value(seed, ch,
                                                     fused.cycles, 0))
            assert _state(fused) == _state(interp)

    # Context A and context B share one geometry (3x2) so either
    # configuration is legal on the same fabric — the churn is a pure
    # context switch, exactly the paper's multiplexing pattern.
    @given(spec_a=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4),
           spec_b=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4, fifo_loads=False),
           cycles=st.integers(min_value=1, max_value=12),
           rounds=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40, **_SETTINGS)
    def test_reconfiguration_churn_cached_vs_fresh(self, spec_a, spec_b,
                                                   cycles, rounds, seed):
        """A/B/A context churn: cache-hit plans == fresh compiles ==
        interpreter, at every switch boundary."""
        interp = build_ring(spec_a, fastpath=False)
        cached = build_ring(spec_a, plan_cache=8)
        fresh = build_ring(spec_a, plan_cache=0)
        fused = build_ring(spec_a, plan_cache=8, macro_step=2)
        rings = (interp, cached, fresh, fused)
        for round_no in range(rounds):
            for spec in (spec_b, spec_a):
                for ring in rings:
                    _apply_config_only(ring, spec)
                    ring.run(cycles,
                             host_in=lambda ch, _r=ring:
                             _host_value(seed, ch, _r.cycles, 0))
                want = _state(interp)
                assert _state(cached) == want, "cached plan diverged"
                assert _state(fresh) == want, "fresh compile diverged"
                assert _state(fused) == want, "macro kernel diverged"
        if cycles >= 3:
            # Long enough per context for the uncached ring's deferred
            # compile to trigger at every switch: the cached ring pays
            # at most one compile per *distinct* context instead.
            assert cached.plan_compiles <= fresh.plan_compiles

    @given(spec_a=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4),
           spec_b=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4, fifo_loads=False),
           batch=st.integers(min_value=2, max_value=3),
           cycles=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=25, **_SETTINGS)
    def test_batch_kernel_cache_churn_per_lane(self, spec_a, spec_b,
                                               batch, cycles, seed):
        """The batch engine's kernel cache under the same A/B/A churn:
        every lane must keep matching per-lane scalar reruns."""
        bring = _batch_ring(spec_a, seed, batch)
        host_in = _batch_host_in(bring, seed, batch)
        plan = [spec_b, spec_a, spec_b, spec_a]
        for spec in plan:
            _apply_config_only(bring, spec)
            bring.run(cycles, host_in=host_in)
        assert bring._batch_engine.plan_cache.hits > 0, (
            "churn back to a seen context must hit the kernel cache"
        )
        for lane in range(batch):
            scalar = _scalar_lane_ring(spec_a, seed, lane, fastpath=True)
            for spec in plan:
                _apply_config_only(scalar, spec)
                scalar.run(cycles,
                           host_in=lambda ch: _host_value(
                               seed, ch, scalar.cycles, lane))
            assert _extract_lane(bring, lane) == _state(scalar), (
                f"batch lane {lane} diverged under churn"
            )


def _shard_ring(spec: dict, seed: int, batch: int, workers: int) -> Ring:
    ring = build_ring(spec, backend="shard", batch_size=batch,
                      shard_workers=workers)
    engine = ring.shard
    for layer, pos, _mw, _local, _routes, loads in spec["cells"]:
        for channel in loads:
            for lane in range(batch):
                engine.push_fifo(
                    layer, pos, channel,
                    _lane_fifo_extra(seed, layer, pos, channel, lane),
                    lane=lane)
    return ring


def _shard_chunk_words(channel: int, cycle: int, seed: int = 0,
                       batch: int = 1):
    """Module-level (hence picklable) full-batch chunk stimulus: the
    exact per-lane words ``_batch_host_in`` presents live."""
    return [_host_value(seed, channel, cycle, lane)
            for lane in range(batch)]


class TestDifferentialSharded:
    """The sharded engine joins the bit-identity net: every lane, across
    worker counts, both stimulus modes, through mid-run reconfiguration
    and checkpoint rollback."""

    @given(spec=ring_specs(min_layers=2, max_layers=4, min_width=1,
                           max_width=2, max_local=4),
           batch=st.integers(min_value=2, max_value=4),
           workers=st.sampled_from([1, 2, 4]),
           cycles=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=0xFFFF),
           bus=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=15, **_SETTINGS)
    def test_sharded_full_state_identity(self, spec, batch, workers,
                                         cycles, seed, bus):
        bring = _batch_ring(spec, seed, batch)
        bring.run(cycles, bus=bus,
                  host_in=_batch_host_in(bring, seed, batch))
        sring = _shard_ring(spec, seed, batch, workers)
        try:
            sring.run(cycles, bus=bus,
                      host_in=_batch_host_in(sring, seed, batch))
            for lane in range(batch):
                assert (_extract_lane(sring, lane)
                        == _extract_lane(bring, lane)), (
                    f"shard lane {lane} diverged at {workers} workers"
                )
        finally:
            sring.shard.close()

    @given(spec_a=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4),
           spec_b=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4, fifo_loads=False),
           batch=st.integers(min_value=2, max_value=4),
           cycles=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=10, **_SETTINGS)
    def test_sharded_chunk_mode_reconfig_and_rollback(self, spec_a,
                                                      spec_b, batch,
                                                      cycles, seed):
        """Chunk-mode (picklable) stimulus under A/B/A context churn,
        then a checkpoint rollback-replay — both against the in-process
        batch engine per lane."""
        from repro.core.shardpath import CycleStimulus
        from repro.core.snapshot import capture, restore, state_digest

        stim = CycleStimulus(partial(_shard_chunk_words, seed=seed,
                                     batch=batch))
        bring = _batch_ring(spec_a, seed, batch)
        sring = _shard_ring(spec_a, seed, batch, 2)
        try:
            for spec in (spec_b, spec_a):
                for ring in (bring, sring):
                    _apply_config_only(ring, spec)
                bring.run(cycles,
                          host_in=_batch_host_in(bring, seed, batch))
                sring.run(cycles, host_in=stim)
                for lane in range(batch):
                    assert (_extract_lane(sring, lane)
                            == _extract_lane(bring, lane)), (
                        f"shard lane {lane} diverged under churn"
                    )
            snap = capture(sring)
            sring.run(cycles, host_in=stim)
            after = state_digest(sring)
            restore(sring, snap)
            sring.run(cycles, host_in=stim)
            assert state_digest(sring) == after, (
                "rollback-replay diverged on the sharded engine"
            )
        finally:
            if sring._shard_engine is not None:
                sring._shard_engine.close()


class TestLaneInvariantLocalCounters:
    """Satellite audit pin: the local-sequencer phase is configuration-
    driven, never data-driven.  ``Dnode.commit()`` advances the sequencer
    unconditionally, so even lanes whose *data* diverges hard (distinct
    FIFO loads, per-lane underflows) keep bit-identical local counters —
    the contract ``store_lane``'s lane-invariant scalar mirror and the
    shard protocol's single broadcast counter both rely on."""

    @given(spec=ring_specs(min_layers=2, max_layers=5, min_width=1,
                           max_width=2, max_local=6),
           batch=st.integers(min_value=2, max_value=4),
           cycles=st.integers(min_value=1, max_value=24),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40, **_SETTINGS)
    def test_local_counters_identical_across_lanes(self, spec, batch,
                                                   cycles, seed):
        bring = _batch_ring(spec, seed, batch)
        bring.run(cycles, host_in=_batch_host_in(bring, seed, batch))
        mirror = [dn.local.counter for dn in bring.all_dnodes()]
        for lane in range(batch):
            target = Ring(bring.geometry)
            bring.batch.store_lane(lane, target)
            got = [dn.local.counter for dn in target.all_dnodes()]
            assert got == mirror, (
                f"lane {lane} local counters diverged from the "
                f"lane-invariant mirror"
            )


_BOUNDARY = [0x0000, 0x0001, 0x7FFE, 0x7FFF, 0x8000, 0x8001, 0xFFFF]
_words = st.one_of(st.sampled_from(_BOUNDARY),
                   st.integers(min_value=0, max_value=0xFFFF))


class TestSignedOverflowAudit:
    """Scalar ALU vs NumPy batch kernels at the INT16 boundaries."""

    @given(op=st.sampled_from(list(Opcode)), a=_words, b=_words,
           acc=_words, imm=_words)
    @settings(max_examples=150, **_SETTINGS)
    def test_batch_kernel_matches_scalar_alu(self, op, a, b, acc, imm):
        expected = alu.execute_op(op, a, b, acc=acc, imm=imm)
        lanes = np.array([a, a, a], dtype=LANE_DTYPE)
        got = batch_execute_op(op, lanes,
                               np.full(3, b, dtype=LANE_DTYPE),
                               acc=np.full(3, acc, dtype=LANE_DTYPE),
                               imm=imm)
        got = np.asarray(got)
        assert got.shape == (3,)
        assert (got == expected).all(), (
            f"{op.name}(a={a:#06x}, b={b:#06x}, acc={acc:#06x}, "
            f"imm={imm:#06x}): scalar {expected:#06x}, batch {got}"
        )
        for value in got.tolist():
            assert word.is_valid(value)

    @pytest.mark.parametrize("op", [Opcode.ADD, Opcode.SUB, Opcode.MUL,
                                    Opcode.MAC])
    def test_exhaustive_boundary_sweep(self, op):
        """Every boundary-value combination, element-wise in one array."""
        grid = [(a, b, acc) for a in _BOUNDARY for b in _BOUNDARY
                for acc in (_BOUNDARY if op in ACCUMULATING_OPS
                            else [0])]
        a = np.array([g[0] for g in grid], dtype=LANE_DTYPE)
        b = np.array([g[1] for g in grid], dtype=LANE_DTYPE)
        acc = np.array([g[2] for g in grid], dtype=LANE_DTYPE)
        got = np.asarray(batch_execute_op(op, a, b, acc=acc))
        for i, (av, bv, accv) in enumerate(grid):
            expected = alu.execute_op(op, av, bv, acc=accv)
            assert int(got[i]) == expected, (
                f"{op.name}(a={av:#06x}, b={bv:#06x}, acc={accv:#06x}): "
                f"scalar {expected:#06x}, batch {int(got[i]):#06x}"
            )


class TestFaultRecoveryDifferential:
    """Fault-injection recovery is backend-invariant: for an arbitrary
    fabric, the same seeded campaign must plan the same faults, detect
    them at the same checkpoint boundaries, and recover to the same
    verdicts on every execution engine (see ``tests/robustness`` for
    the directed suite; this is the property-based net over random
    configurations)."""

    @given(spec=ring_specs(), seed=st.integers(0, 2**16))
    @settings(max_examples=10, **_SETTINGS)
    def test_campaign_trace_is_backend_invariant(self, spec, seed):
        from repro.robustness import FaultCampaign

        def trace_for(**kwargs):
            campaign = FaultCampaign(
                lambda: build_ring(spec, **kwargs),
                cycles=24, checkpoint_every=8, seed=seed, trials=3)
            result = campaign.run()
            assert result.all_recovered
            return result.trace()

        reference = trace_for(backend="interpreter")
        assert trace_for(backend="fastpath") == reference
        assert trace_for(backend="fastpath", macro_step=2) == reference
        assert trace_for(backend="native") == reference
        assert trace_for(backend="batch", batch_size=3) == reference

    @given(spec=ring_specs(), seed=st.integers(0, 2**16),
           cut=st.integers(4, 20))
    @settings(max_examples=15, **_SETTINGS)
    def test_rollback_replay_matches_golden_per_backend(self, spec, seed,
                                                        cut):
        """Corrupt one random site mid-run, roll back, replay: the
        recovered digest equals the uninjected golden digest for every
        backend, on random fabrics."""
        from repro.core.snapshot import capture, state_digest
        from repro.robustness import FaultInjector
        from repro.robustness.checkpoint import (default_driver,
                                                 rollback_replay)

        for kwargs in (dict(backend="interpreter"),
                       dict(backend="fastpath"),
                       dict(backend="fastpath", macro_step=2),
                       dict(backend="native"),
                       dict(backend="batch", batch_size=3)):
            golden = build_ring(spec, **kwargs)
            for cycle in range(24):
                default_driver(golden, cycle)
            golden_final = state_digest(golden)

            ring = build_ring(spec, **kwargs)
            injector = FaultInjector(ring, seed=seed)
            event = injector.random_event(cut)
            snapshot = capture(ring)  # cycle 0 is clean by construction
            for cycle in range(24):
                if cycle == event.cycle:
                    injector.inject(event)
                default_driver(ring, cycle)
                # The fault lands *before* cycle `cut` executes, so any
                # boundary at or before `cut` snapshots clean state.
                if ring.cycles % 8 == 0 and ring.cycles <= event.cycle:
                    snapshot = capture(ring)
            digest = rollback_replay(ring, snapshot, 24)
            assert digest == golden_final, (
                f"{kwargs}: {event.site.describe()} recovery diverged")


class TestDifferentialNative:
    """The native macro-kernel tier under the same property net.

    Random fabrics hit every branch of the tier: eligible
    configurations vectorize (and must be bit-identical to the
    interpreter after write-back), ineligible ones ride the fallback
    ladder (and must be bit-identical *trivially* but still exercise
    the dispatch), FIFO-gated windows split between both.  The suite
    runs with Numba forced absent, so it pins the pure-NumPy core —
    the jit wrapper has its own directed tests in
    ``tests/core/test_nativepath.py``.
    """

    @pytest.fixture(autouse=True)
    def _no_numba(self, monkeypatch):
        import sys
        monkeypatch.setitem(sys.modules, "numba", None)
        from repro.core import nativepath
        assert not nativepath.numba_available()

    @given(spec=ring_specs(min_layers=2, max_layers=5, min_width=1,
                           max_width=2, max_local=6),
           chunks=st.lists(st.integers(min_value=1, max_value=40),
                           min_size=1, max_size=4),
           seed=st.integers(min_value=0, max_value=0xFFFF),
           bus=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50, **_SETTINGS)
    def test_native_full_state_identity(self, spec, chunks, seed, bus):
        interp = build_ring(spec, fastpath=False)
        native = build_ring(spec, backend="native")
        for chunk in chunks:
            interp.run(chunk, bus=bus,
                       host_in=lambda ch: _host_value(seed, ch,
                                                      interp.cycles, 0))
            native.run(chunk, bus=bus,
                       host_in=lambda ch: _host_value(seed, ch,
                                                      native.cycles, 0))
            assert _state(native) == _state(interp)
        # Every cycle is accounted to exactly one rung of the ladder
        # (the interpreted warm-up cycles before the first plan adoption
        # are the remainder).
        assert native.native_cycles + native.native_fallback_cycles \
            <= native.cycles

    @given(spec_a=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4),
           spec_b=ring_specs(min_layers=3, max_layers=3, min_width=2,
                             max_width=2, max_local=4, fifo_loads=False),
           cycles=st.integers(min_value=1, max_value=12),
           rounds=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40, **_SETTINGS)
    def test_native_reconfiguration_churn(self, spec_a, spec_b, cycles,
                                          rounds, seed):
        """Mid-run A/B/A context churn on the native backend: cached
        native plans re-adopted across switches == interpreter."""
        interp = build_ring(spec_a, fastpath=False)
        native = build_ring(spec_a, backend="native")
        for _round in range(rounds):
            for spec in (spec_b, spec_a):
                for ring in (interp, native):
                    _apply_config_only(ring, spec)
                    ring.run(cycles,
                             host_in=lambda ch, _r=ring:
                             _host_value(seed, ch, _r.cycles, 0))
                assert _state(native) == _state(interp), (
                    "native plan diverged after context switch"
                )

    @given(spec=ring_specs(min_layers=2, max_layers=4, min_width=1,
                           max_width=2, max_local=4),
           seed=st.integers(min_value=0, max_value=0xFFFF),
           cut=st.integers(min_value=4, max_value=30),
           total=st.integers(min_value=10, max_value=48))
    @settings(max_examples=30, **_SETTINGS)
    def test_native_checkpoint_rollback_replay(self, spec, seed, cut,
                                               total):
        """capture -> run on -> restore -> replay on the native backend
        reproduces the interpreter's forward run bit-for-bit.

        Native plans are keyed by entry phase, so a cut landing mid
        sequencer-period may legitimately compile one extra phase
        variant; the replay must nonetheless re-enter through the plan
        cache (bounded compiles), and the recovered state must equal
        the interpreter's uninterrupted forward run.  (The strict
        zero-recompile property is pinned by the phase-aligned directed
        test in ``test_nativepath.py``.)"""
        from repro.core.snapshot import capture, restore, state_digest
        cut = min(cut, total)
        interp = build_ring(spec, fastpath=False)
        interp.run(total, host_in=lambda ch: _host_value(
            seed, ch, interp.cycles, 0))

        native = build_ring(spec, backend="native")
        host_in = lambda ch: _host_value(seed, ch, native.cycles, 0)
        native.run(cut, host_in=host_in)
        snapshot = capture(native)
        compiles = native.native_compiles
        native.run(total - cut, host_in=host_in)  # run past the cut ...
        restore(native, snapshot)                 # ... roll back ...
        native.run(total - cut, host_in=host_in)  # ... and replay.
        # One phase variant per post-cut run() call at the very most.
        assert native.native_compiles <= compiles + 2
        assert state_digest(native) == state_digest(interp)
