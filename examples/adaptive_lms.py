#!/usr/bin/env python
"""Adaptive filtering: LMS system identification, fabric + controller.

The conclusion's point — efficient *dynamical* reconfiguration enables
algorithms a static fabric cannot run — taken to its logical end: an
adaptive filter whose coefficient lives in a Dnode's configuration
immediate and is retuned by the RISC controller **every sample**.

The fabric computes ``y = c * x`` (one Dnode, coefficient = microword
immediate).  The controller closes the LMS loop in eleven instructions
per sample: read the fabric output over the shared bus (``rdd``),
compute the error against the desired response from the host mailbox,
scale (``sar``), update ``c`` and write it back with ``cfgimm``.  After
~60 samples the fabric has *learned* the unknown plant gain.

Everything is expressed in the two-level assembly language and runs
through the full toolchain.

Run:  python examples/adaptive_lms.py
"""

import numpy as np

from repro import word
from repro.asm import assemble, load_system

SOURCE = """
; adaptive one-tap filter: fabric y = c*x, controller runs LMS on c
.ring boot
dnode 0.0 global
    mul out, bus, #0          ; c starts at 0

.risc
    cfgword gain, mul out, bus, #0   ; template: cfgimm patches the #imm
    ldi  r7, 8                 ; mu as a right-shift (step size 1/256)
    ldi  r0, 0
loop:   bfe  0, done           ; all samples consumed?
    inw  r2, 0                 ; x_n
    inw  r4, 1                 ; d_n (the unknown plant's response)
    busw r2                    ; fabric computes y = c * x_n this cycle
    rdd  r3, d0.0              ; read y back over the shared bus
    sub  r5, r4, r3            ; e = d - y
    mul  r6, r5, r2            ; e * x
    sar  r6, r6, r7            ; * mu
    add  r1, r1, r6            ; c += mu * e * x
    cfgimm d0.0, gain, r1      ; retune the Dnode immediately
    jmp  loop
done:   outw 0, r1             ; report the learned coefficient
    halt
"""

TRUE_GAIN = 23
SAMPLES = 60


def main() -> None:
    rng = np.random.default_rng(4)
    xs = [int(v) for v in rng.integers(-12, 13, SAMPLES)]
    noise = [int(v) for v in rng.integers(-1, 2, SAMPLES)]
    ds = [TRUE_GAIN * x + n for x, n in zip(xs, noise)]

    system = load_system(assemble(SOURCE, layers=4, width=2))
    ctrl = system.controller
    for x, d in zip(xs, ds):
        ctrl.host_send(0, word.from_signed(x))
        ctrl.host_send(1, word.from_signed(d))

    system.run_until_halt(max_cycles=50_000)
    learned = word.to_signed(ctrl.host_receive(0))
    print(f"unknown plant gain : {TRUE_GAIN}")
    print(f"learned coefficient: {learned} "
          f"(after {SAMPLES} samples, {system.cycles} cycles, "
          f"{system.cycles / SAMPLES:.0f} cycles/sample)")
    assert abs(learned - TRUE_GAIN) <= 1, "LMS did not converge"

    # verification pass: the learned fabric predicts the plant
    errors = [d - learned * x for x, d in zip(xs, ds)]
    print(f"residual error on the training set: max |e| = "
          f"{max(abs(e) for e in errors)} (noise level +-1 scaled by x)")
    print("the Dnode's function was rewritten "
          f"{ctrl.state.config_commands} times - one cfgimm per sample")


if __name__ == "__main__":
    main()
