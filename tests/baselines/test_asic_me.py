"""Tests for the dedicated block-matching ASIC model ([7], Table 1)."""

import numpy as np

from repro.baselines.asic_me import AsicModel, asic_block_match
from repro.kernels.reference import full_search


class TestCycleModel:
    def test_one_candidate_per_cycle_dominates(self):
        model = AsicModel()
        c100 = model.match_cycles(100)
        c200 = model.match_cycles(200)
        assert c200 - c100 == 100

    def test_fill_is_small_constant(self):
        model = AsicModel()
        fill = model.fill_cycles(8, 8)
        assert 0 < fill < 64

    def test_paper_workload(self):
        model = AsicModel()
        cycles = model.match_cycles(289)
        assert 289 < cycles < 400


class TestFunctional:
    def test_exact_search(self, rng):
        ref = rng.integers(0, 256, (8, 8))
        area = rng.integers(0, 256, (16, 16))
        expected_best, expected_sad, expected_map = full_search(ref, area)
        result = asic_block_match(ref, area)
        assert np.array_equal(result.sad_map, expected_map)
        assert result.best == expected_best
        assert result.best_sad == expected_sad

    def test_much_faster_than_ring(self, rng):
        """Table 1's shape: 'The ASIC implementation is much faster
        than our solution at the price of flexibility'."""
        from repro.kernels.motion_estimation import cycle_model

        ref = rng.integers(0, 256, (8, 8))
        area = rng.integers(0, 256, (24, 24))
        result = asic_block_match(ref, area)
        assert cycle_model() / result.cycles > 4
