"""Checkpoint manager, rollback-replay, and graceful degradation."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import NOP_WORD
from repro.core.snapshot import state_digest
from repro.core.switch import PortKind
from repro.errors import ConfigurationError, SimulationError
from repro.robustness import (
    CheckpointManager,
    degradation_report,
    disable_dnode,
    remap_around,
    rollback_replay,
    throughput,
)

from tests.robustness.conftest import make_busy_ring


class TestCheckpointManager:
    def test_baseline_checkpoint_at_construction(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=8)
        assert len(manager.checkpoints) == 1
        assert manager.latest.cycles == 0
        assert ring.checkpoints == 1

    def test_periodic_capture(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=8, keep=10)
        manager.run(24)
        assert [s.cycles for s in manager.checkpoints] == [0, 8, 16, 24]
        assert ring.checkpoints == 4

    def test_retention_bound(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=4, keep=2)
        manager.run(20)
        assert [s.cycles for s in manager.checkpoints] == [16, 20]

    def test_rollback_restores_latest(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=8)
        manager.run(8)
        at_checkpoint = state_digest(ring)
        manager.run(5)  # off-interval tail
        assert state_digest(ring) != at_checkpoint
        manager.rollback()
        assert state_digest(ring) == at_checkpoint
        assert ring.rollbacks == 1

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ConfigurationError, match="interval"):
            CheckpointManager(make_busy_ring(), every=0)
        with pytest.raises(ConfigurationError, match="keep"):
            CheckpointManager(make_busy_ring(), every=4, keep=0)


class TestRollbackReplay:
    def test_converges_to_golden(self, engine_kwargs):
        golden = make_busy_ring(**engine_kwargs)
        golden.run(20)
        target_digest = state_digest(golden)

        ring = make_busy_ring(**engine_kwargs)
        manager = CheckpointManager(ring, every=8)
        manager.run(14)
        ring.dnode(0, 0).regs._values[0] ^= 0x40  # corrupt mid-interval
        digest = manager.rollback_replay(20)
        assert digest == target_digest
        assert ring.rollbacks == 1
        assert ring.recovery_cycles == 12  # cycle 8 -> 20

    def test_counts_recovery_cycles(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=4)
        manager.run(4)
        manager.rollback_replay(10)
        manager.rollback_replay(10)
        assert ring.recovery_cycles == 12
        assert ring.rollbacks == 2

    def test_replay_backwards_rejected(self):
        ring = make_busy_ring()
        manager = CheckpointManager(ring, every=4)
        manager.run(8)
        with pytest.raises(SimulationError, match="backwards"):
            rollback_replay(ring, manager.latest, 3)


class TestGracefulDegradation:
    def test_disable_parks_on_nop_and_invalidates(self):
        ring = make_busy_ring(backend="fastpath")
        ring.run(6)
        assert ring._plan is not None
        disable_dnode(ring, 0, 0)
        assert ring._plan is None
        dn = ring.dnode(0, 0)
        assert dn.mode is DnodeMode.LOCAL
        assert dn.local.slots()[0] == NOP_WORD

    def test_remap_repoints_consumers(self):
        ring = make_busy_ring()
        # Switch 1 routes 0.1 <- up0: d1.0 consumes d0.0.
        remapped = remap_around(ring, 0, 0)
        assert [(sw, pos, port) for sw, pos, port, _ in remapped] == \
            [(1, 0, 1)]
        after = ring.switch(1).config.source_for(0, 1)
        assert after.kind is PortKind.UP and after.index == 1

    def test_remap_needs_a_spare_column(self):
        from repro.core.ring import Ring, RingGeometry

        ring = Ring(RingGeometry(layers=3, width=1))
        with pytest.raises(ConfigurationError, match="width-1"):
            remap_around(ring, 0, 0)

    def test_degradation_is_measured(self):
        baseline_ring = make_busy_ring()
        baseline = throughput(baseline_ring, 64)
        degraded_ring = make_busy_ring()
        disable_dnode(degraded_ring, 1, 0)  # the MAC worker
        remap_around(degraded_ring, 1, 0)
        degraded = throughput(degraded_ring, 64)
        report = degradation_report(baseline, degraded)
        assert report["degraded_ops_per_cycle"] < \
            report["baseline_ops_per_cycle"]
        assert 0.0 < report["throughput_ratio"] < 1.0
        assert report["throughput_loss_percent"] > 0

    def test_degraded_fabric_still_runs(self):
        ring = make_busy_ring(backend="fastpath")
        ring.run(10)
        disable_dnode(ring, 0, 0)
        remap_around(ring, 0, 0)
        ring.run(20)  # must not raise; plan recompiles around the hole
        assert ring.cycles == 30
