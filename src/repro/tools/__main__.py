"""CLI front end for the Systolic Ring toolchain.

Subcommands:

* ``asm``      — assemble two-level source to binary object code;
* ``dis``      — disassemble object code to a readable listing;
* ``run``      — load object code, stream data in, print tap outputs;
* ``serve``    — run the RingFarm TCP serving front door;
* ``autotune`` — search the mapping space for a library kernel graph
  (measured-throughput scoring, bit-identity verification, memoized by
  graph+fabric fingerprint), optionally followed by the cross-engine
  configuration fuzzer.

Exit codes: 0 success, 1 usage/load errors and failed fault recovery,
2 a simulation abort (strict-FIFO underflow) — the abort cycle and
message go to stderr so CI and load generators can detect failed runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import word
from repro.asm import assemble, load_system
from repro.asm.disasm import disassemble
from repro.asm.objcode import ObjectCode
from repro.core.ring import Ring
from repro.errors import ReproError, SimulationError

#: Exit code for general errors (bad flags, unreadable files, a fault
#: campaign that failed to recover bit-identically).
EXIT_FAILURE = 1
#: Exit code for a simulation abort mid-run (strict-FIFO underflow).
EXIT_ABORT = 2


def _cmd_asm(args: argparse.Namespace) -> int:
    source = Path(args.source).read_text()
    obj = assemble(source, layers=args.layers, width=args.width)
    out_path = Path(args.output or Path(args.source).with_suffix(".obj"))
    out_path.write_bytes(obj.to_bytes())
    print(f"{out_path}: {len(obj.program)} instructions, "
          f"{len(obj.cfg_rom)} ROM entries, {len(obj.planes)} plane(s)")
    return 0


def _cmd_dis(args: argparse.Namespace) -> int:
    obj = ObjectCode.from_bytes(Path(args.object).read_bytes())
    sys.stdout.write(disassemble(obj))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.tools.report import generate_report

    text = generate_report(seed=args.seed)
    Path(args.output).write_text(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def _parse_stream(spec: str):
    """``channel:v1,v2,...`` -> (channel, [values])."""
    channel_text, _, values_text = spec.partition(":")
    values = [word.from_signed(int(v, 0))
              for v in values_text.split(",") if v]
    return int(channel_text), values


def _parse_tap(spec: str):
    """``layer.pos[:count]`` -> (layer, pos, count)."""
    place, _, count = spec.partition(":")
    layer_text, _, pos_text = place.partition(".")
    return int(layer_text), int(pos_text), int(count) if count else None


#: ``--inject`` spec -> the fault kinds it draws from (resolved lazily so
#: plain asm/dis invocations never import the robustness layer).
_INJECT_SPECS = ("seu", "config", "stuck", "drop", "all")


def _inject_kinds(spec: str):
    from repro.robustness.faults import FaultKind

    return {
        "seu": (FaultKind.REGISTER, FaultKind.OUT, FaultKind.PIPELINE,
                FaultKind.FIFO),
        "config": (FaultKind.CONFIG_WORD, FaultKind.CONFIG_ROUTE),
        "stuck": (FaultKind.STUCK_DNODE,),
        "drop": (FaultKind.STREAM_DROP,),
        "all": tuple(FaultKind),
    }[spec]


def _run_with_injection(build, args, cycles: int) -> int:
    """Golden run, then a faulted run with checkpoint/rollback recovery.

    The golden system records state digests at every checkpoint boundary;
    the faulted system compares against them, and on divergence restores
    the last good checkpoint (fabric snapshot + host stream/tap state)
    and replays.  Returns the faulted system (for tap/metric reporting)
    plus an exit status.
    """
    from repro.core.snapshot import capture, restore, state_digest
    from repro.robustness.faults import FaultInjector

    every = args.checkpoint_every
    golden = build()
    digests = {0: state_digest(golden.ring)}
    for _ in range(cycles):
        golden.step()
        if golden.cycles % every == 0 or golden.cycles == cycles:
            digests[golden.cycles] = state_digest(golden.ring)

    system = build()
    injector = FaultInjector(system.ring, seed=args.fault_seed,
                             kinds=_inject_kinds(args.inject),
                             data=system.data)
    fault_cycle = (args.fault_cycle if args.fault_cycle is not None
                   else cycles // 2)
    event = injector.random_event(fault_cycle)
    checkpoint = (0, capture(system.ring), system.data.capture_state())
    system.ring.checkpoints += 1
    record = None
    detected_at = None
    rolled_back_to = None
    recovered = True
    for cycle in range(cycles):
        if cycle == event.cycle:
            record = injector.inject(event)
        system.step()
        if not (system.cycles % every == 0 or system.cycles == cycles):
            continue
        if state_digest(system.ring) == digests[system.cycles]:
            if system.cycles % every == 0:
                checkpoint = (system.cycles, capture(system.ring),
                              system.data.capture_state())
                system.ring.checkpoints += 1
            continue
        if detected_at is not None:
            continue
        detected_at = system.cycles
        rolled_back_to, snapshot, host_state = checkpoint
        restore(system.ring, snapshot)
        system.data.restore_state(host_state)
        system.ring.rollbacks += 1
        system.cycles = rolled_back_to
        for _ in range(detected_at - rolled_back_to):
            system.step()
        system.ring.recovery_cycles += detected_at - rolled_back_to
        recovered = state_digest(system.ring) == digests[detected_at]
        if not recovered:
            break
    recovered = recovered and state_digest(system.ring) == digests[cycles]
    print(f"injected: {record.describe() if record else event.describe()}")
    if detected_at is None:
        print(f"fault masked: every checkpoint matched the golden run "
              f"(interval {every})")
    else:
        verdict = ("recovered, bit-identical with golden run"
                   if recovered else "RECOVERY FAILED")
        print(f"detected at cycle {detected_at}; rolled back to cycle "
              f"{rolled_back_to}; replayed "
              f"{detected_at - rolled_back_to} cycles; {verdict}")
    return system, (0 if recovered else 1)


def _cmd_run(args: argparse.Namespace) -> int:
    obj = ObjectCode.from_bytes(Path(args.object).read_bytes())
    lane_backend = args.backend in Ring.LANE_BACKENDS
    if lane_backend and load_system(obj).controller is not None:
        print(f"error: --backend {args.backend} needs an uncontrolled "
              "program (the configuration controller drives one scalar "
              "fabric)", file=sys.stderr)
        return 1
    if not lane_backend and args.batch_size != 1:
        print("error: --batch-size requires --backend batch or shard",
              file=sys.stderr)
        return 1
    if args.shard_workers is not None and args.backend != "shard":
        print("error: --shard-workers requires --backend shard",
              file=sys.stderr)
        return 1

    total = max((len(_parse_stream(spec)[1])
                 for spec in args.stream or []), default=0)
    tap_specs = list(args.tap or [])

    def build():
        """One fully wired system; injection runs build golden + faulted
        twins, so every run-affecting option must be applied here."""
        system = load_system(obj, strict_fifos=args.strict_fifos)
        if args.backend is not None:
            system.ring.set_backend(
                args.backend,
                args.batch_size if lane_backend else 1,
                shard_workers=args.shard_workers)
            # Rebuild the data controller so channels/taps match the
            # lane count (streams are broadcast to every lane).
            from repro.host.streams import DataController
            system.data = DataController(batch=system.ring.batch_size)
        if args.plan_cache is not None:
            system.set_plan_cache(args.plan_cache)
        if args.macro_step is not None:
            system.set_macro_step(args.macro_step)
        for spec in args.stream or []:
            channel, values = _parse_stream(spec)
            system.data.stream(channel, values)
        for spec in tap_specs:
            layer, pos, count = _parse_tap(spec)
            system.data.add_tap(layer, pos, limit=count)
        return system

    cycles = args.cycles if args.cycles is not None else total + 16
    status = 0
    try:
        if args.inject is not None:
            if args.checkpoint_every is None:
                args.checkpoint_every = max(1, cycles // 8)
            if args.checkpoint_every < 1:
                print("error: --checkpoint-every must be >= 1",
                      file=sys.stderr)
                return EXIT_FAILURE
            system = build()
            if system.controller is not None:
                print("error: --inject supports uncontrolled programs "
                      "only (controller state is not checkpointed)",
                      file=sys.stderr)
                return EXIT_FAILURE
            system, status = _run_with_injection(build, args, cycles)
        else:
            system = build()
            if system.controller is not None and args.cycles is None:
                system.run_until_halt(max_cycles=args.max_cycles)
            else:
                system.run(cycles)
    except SimulationError as exc:
        # A strict-FIFO underflow (or any other mid-run abort) must not
        # exit 0: CI and load generators key off the exit code.  The
        # abort message carries the offending Dnode/FIFO and cycle.
        print(f"abort: {exc}", file=sys.stderr)
        return EXIT_ABORT
    taps = list(zip(tap_specs, system.data.taps))
    batch = (system.ring.batch_size
             if system.ring.backend in Ring.LANE_BACKENDS else 1)
    if batch > 1:
        print(f"ran {system.cycles} cycles x {batch} lanes "
              f"({system.cycles * batch} lane-cycles)")
    else:
        print(f"ran {system.cycles} cycles")
    for spec, tap in taps:
        if batch > 1:
            for lane in range(batch):
                values = [word.to_signed(v) for v in tap.lane(lane)]
                print(f"tap {spec} lane {lane}: {values}")
        else:
            values = [word.to_signed(v) for v in tap.samples]
            print(f"tap {spec}: {values}")
    if args.metrics:
        snapshot = system.metrics()
        text = (snapshot.to_prometheus() if args.metrics_format == "prom"
                else snapshot.to_json() + "\n")
        Path(args.metrics).write_text(text)
        print(f"wrote metrics to {args.metrics} ({args.metrics_format})")
    return status


def _cmd_autotune(args: argparse.Namespace) -> int:
    import json

    from repro.compiler.autotune import autotune_graph, fuzz_conformance
    from repro.compiler.library import GRAPH_LIBRARY, build_graph

    if args.list:
        for name in sorted(GRAPH_LIBRARY):
            print(name)
        return 0
    if args.graph is None:
        print("error: name a library graph (or use --list)",
              file=sys.stderr)
        return EXIT_FAILURE

    graph = build_graph(args.graph)
    result = autotune_graph(graph, score_cycles=args.cycles,
                            repeats=args.repeats, seed=args.seed,
                            memo=not args.no_memo)
    if args.json:
        payload = {
            "graph": args.graph,
            "mapping": result.mapping.describe(),
            "cycles_per_second": result.cycles_per_second,
            "baseline_cycles_per_second":
                result.baseline_cycles_per_second,
            "speedup": result.speedup,
            "search_ms": result.search_ms,
            "cache_hit": result.cache_hit,
            "candidates": len(result.candidates),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.report())
        print(result.program.resource_report())
    if args.fuzz:
        report = fuzz_conformance(rounds=args.fuzz, seed=args.seed)
        print(report.summary())
        for line in report.mismatches:
            print(f"  MISMATCH {line}", file=sys.stderr)
        if not report.ok:
            return EXIT_FAILURE
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.farm import RingFarm
    from repro.farm.server import FarmServer

    async def _serve() -> None:
        farm = RingFarm(workers=args.workers,
                        queue_depth=args.queue_depth,
                        tenant_quota=args.tenant_quota,
                        plan_cache=args.plan_cache,
                        use_processes=not args.inline)
        server = FarmServer(farm, host=args.host, port=args.port)
        async with farm:
            await server.start()
            print(f"ringfarm serving on {server.host}:{server.port} "
                  f"({args.workers} workers, "
                  f"{'inline' if args.inline else 'processes'})")
            try:
                await server.serve_forever()
            finally:
                await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("ringfarm stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The complete toolchain argument parser (inspectable by tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="Systolic Ring toolchain (assembler/disassembler/runner)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble source to object code")
    p_asm.add_argument("source")
    p_asm.add_argument("-o", "--output")
    p_asm.add_argument("--layers", type=int, default=4)
    p_asm.add_argument("--width", type=int, default=2)
    p_asm.set_defaults(func=_cmd_asm)

    p_dis = sub.add_parser("dis", help="disassemble object code")
    p_dis.add_argument("object")
    p_dis.set_defaults(func=_cmd_dis)

    p_report = sub.add_parser(
        "report", help="regenerate every paper table into one report")
    p_report.add_argument("-o", "--output", default="REPORT.md")
    p_report.add_argument("--seed", type=int, default=2002)
    p_report.set_defaults(func=_cmd_report)

    p_run = sub.add_parser("run", help="execute object code")
    p_run.add_argument("object")
    p_run.add_argument("--stream", action="append",
                       help="channel:v1,v2,... (repeatable)")
    p_run.add_argument("--tap", action="append",
                       help="layer.pos[:count] (repeatable)")
    p_run.add_argument("--cycles", type=int, default=None,
                       help="run exactly N cycles instead of to HALT")
    p_run.add_argument("--max-cycles", type=int, default=1_000_000)
    p_run.add_argument("--backend",
                       choices=Ring.BACKENDS,
                       default=None,
                       help="execution engine (default: the ring's own; "
                            "'native' fuses steady state into "
                            "time-vectorized NumPy kernels; "
                            "'batch' advances --batch-size streams at "
                            "once, streams broadcast to every lane; "
                            "'shard' splits those lanes across worker "
                            "processes over shared memory)")
    p_run.add_argument("--batch-size", type=int, default=1, metavar="N",
                       help="lane count for --backend batch/shard")
    p_run.add_argument("--shard-workers", type=int, default=None,
                       metavar="W",
                       help="worker-process count for --backend shard "
                            "(default: one per CPU core, capped at the "
                            "lane count)")
    p_run.add_argument("--plan-cache", type=int, default=None, metavar="N",
                       help="retain up to N compiled plans keyed by "
                            "configuration fingerprint (0 disables; "
                            "default: the ring's own, normally 8)")
    p_run.add_argument("--macro-step", type=int, default=None, metavar="K",
                       help="fuse steady-state runs of >= K cycles into "
                            "generated macro kernels (0/1 disables)")
    p_run.add_argument("--strict-fifos", action="store_true",
                       help="abort the run (exit code 2, cycle + message "
                            "on stderr) on any FIFO underflow instead of "
                            "reading zero")
    p_run.add_argument("--inject", choices=_INJECT_SPECS, default=None,
                       help="inject one seeded fault and recover by "
                            "checkpoint rollback-replay, verified "
                            "bit-identical against an uninjected golden "
                            "run (uncontrolled programs only)")
    p_run.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="checkpoint/detection interval in cycles "
                            "for --inject (default: cycles // 8)")
    p_run.add_argument("--fault-cycle", type=int, default=None, metavar="C",
                       help="inject at cycle C (default: mid-run)")
    p_run.add_argument("--fault-seed", type=int, default=2002, metavar="S",
                       help="seed selecting the fault site and bit")
    p_run.add_argument("--metrics", default=None, metavar="PATH",
                       help="export run metrics (counters, FIFO high-water "
                            "marks, controller stalls) to PATH")
    p_run.add_argument("--metrics-format", choices=("json", "prom"),
                       default="json",
                       help="metrics format: JSON or Prometheus text")
    p_run.set_defaults(func=_cmd_run)

    p_tune = sub.add_parser(
        "autotune",
        help="search the mapping space for a library kernel graph")
    p_tune.add_argument("graph", nargs="?", default=None,
                        help="library graph name (see --list)")
    p_tune.add_argument("--list", action="store_true",
                        help="list the kernel-graph library and exit")
    p_tune.add_argument("--cycles", type=int, default=1500, metavar="N",
                        help="timed cycles per candidate measurement")
    p_tune.add_argument("--repeats", type=int, default=2, metavar="R",
                        help="measurement repeats per candidate (best-of)")
    p_tune.add_argument("--seed", type=int, default=2002, metavar="S",
                        help="verification-stream / fuzzer seed")
    p_tune.add_argument("--no-memo", action="store_true",
                        help="skip the best-known-mapping memo cache")
    p_tune.add_argument("--json", action="store_true",
                        help="print the winner as JSON instead of a table")
    p_tune.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="afterwards run N rounds of the cross-engine "
                             "configuration fuzzer (exit 1 on mismatch)")
    p_tune.set_defaults(func=_cmd_autotune)

    p_serve = sub.add_parser(
        "serve", help="serve compiled-plan jobs over TCP (RingFarm)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8372)
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker-process pool size")
    p_serve.add_argument("--queue-depth", type=int, default=16,
                         metavar="N",
                         help="bounded per-worker queue depth (full "
                              "queues reject with retry-after)")
    p_serve.add_argument("--tenant-quota", type=int, default=8,
                         metavar="N",
                         help="max queued + running jobs per tenant")
    p_serve.add_argument("--plan-cache", type=int, default=8, metavar="N",
                         help="per-worker compiled-plan cache capacity")
    p_serve.add_argument("--inline", action="store_true",
                         help="run workers in-process (no worker "
                              "processes; for tests and tiny hosts)")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    sys.exit(main())
