"""Word-addressed memories for the Fig. 6 prototype emulation.

The APEX prototype preloads a program memory (PRG), reads a 16-bit coded
image from an IMAGE memory, and writes results into a VIDEO memory scanned
out by a VGA controller.  :class:`WordMemory` models those as flat 16-bit
word arrays with image import/export helpers, so the prototype example can
check the framebuffer content directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro import word
from repro.errors import HostError


class WordMemory:
    """A flat memory of 16-bit words (PRG / IMAGE / VIDEO in Fig. 6)."""

    def __init__(self, size: int, name: str = "mem"):
        if size < 1:
            raise HostError(f"memory size must be >= 1 word, got {size}")
        self.size = size
        self.name = name
        self._words: List[int] = [0] * size

    def read(self, address: int) -> int:
        """Read the word at *address*."""
        self._check(address)
        return self._words[address]

    def write(self, address: int, value: int) -> None:
        """Write one word at *address*."""
        self._check(address)
        self._words[address] = word.check(value, f"{self.name} write")

    def load(self, values: Iterable[int], base: int = 0) -> int:
        """Bulk-load *values* starting at *base*; returns words written."""
        count = 0
        for offset, value in enumerate(values):
            self.write(base + offset, value)
            count += 1
        return count

    def dump(self, base: int = 0, count: Optional[int] = None) -> List[int]:
        """Copy *count* words starting at *base* (to the end by default)."""
        self._check(base)
        if count is None:
            count = self.size - base
        if count < 0 or base + count > self.size:
            raise HostError(
                f"{self.name}: dump of {count} words at {base} exceeds "
                f"size {self.size}"
            )
        return self._words[base:base + count]

    # -- image helpers (16-bit coded images, Fig. 6) ---------------------

    def load_image(self, image: np.ndarray, base: int = 0) -> int:
        """Store a 2-D image row-major as raw 16-bit words."""
        if image.ndim != 2:
            raise HostError(
                f"{self.name}: expected a 2-D image, got shape {image.shape}"
            )
        flat = [word.from_signed(int(v)) for v in image.reshape(-1)]
        return self.load(flat, base)

    def read_image(self, shape: Tuple[int, int], base: int = 0,
                   signed: bool = True) -> np.ndarray:
        """Reassemble a 2-D image previously stored row-major."""
        rows, cols = shape
        raw = self.dump(base, rows * cols)
        if signed:
            values = [word.to_signed(v) for v in raw]
            return np.array(values, dtype=np.int32).reshape(rows, cols)
        return np.array(raw, dtype=np.uint16).reshape(rows, cols)

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise HostError(
                f"{self.name}: address {address} outside 0..{self.size - 1}"
            )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"WordMemory({self.name}, {self.size} words)"
