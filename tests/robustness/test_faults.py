"""Fault-model unit tests: sites, determinism, injection mechanics."""

import pytest

from repro.core.dnode import DnodeMode
from repro.core.isa import NOP_WORD
from repro.core.regfile import NUM_REGISTERS
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import state_digest
from repro.errors import ConfigurationError
from repro.robustness import FaultInjector, FaultKind, enumerate_sites
from repro.robustness.faults import CONFIG_KINDS, RUNTIME_KINDS, FaultSite

from tests.robustness.conftest import make_busy_ring


class TestEnumerateSites:
    def test_deterministic_order(self):
        a = enumerate_sites(make_busy_ring())
        b = enumerate_sites(make_busy_ring())
        assert a == b

    def test_register_sites_cover_every_register(self):
        sites = enumerate_sites(make_busy_ring(),
                                kinds=[FaultKind.REGISTER])
        assert len(sites) == 3 * 2 * NUM_REGISTERS
        assert all(s.kind is FaultKind.REGISTER for s in sites)

    def test_route_sites_only_cover_routed_ports(self):
        ring = make_busy_ring()  # exactly 3 routed ports
        sites = enumerate_sites(ring, kinds=[FaultKind.CONFIG_ROUTE])
        assert len(sites) == 3

    def test_kind_filter(self):
        sites = enumerate_sites(make_busy_ring(),
                                kinds=[FaultKind.OUT,
                                       FaultKind.STUCK_DNODE])
        assert {s.kind for s in sites} == {FaultKind.OUT,
                                           FaultKind.STUCK_DNODE}

    def test_no_sites_is_an_error(self):
        ring = make_busy_ring()
        with pytest.raises(ConfigurationError, match="no injectable"):
            FaultInjector(ring, seed=1, kinds=[FaultKind.STREAM_DROP])


class TestDeterminism:
    def test_same_seed_same_plan(self):
        plan_a = FaultInjector(make_busy_ring(), seed=42).plan(10, 0, 99)
        plan_b = FaultInjector(make_busy_ring(), seed=42).plan(10, 0, 99)
        assert plan_a == plan_b

    def test_different_seed_different_plan(self):
        plan_a = FaultInjector(make_busy_ring(), seed=1).plan(10, 0, 99)
        plan_b = FaultInjector(make_busy_ring(), seed=2).plan(10, 0, 99)
        assert plan_a != plan_b

    def test_plan_sorted_by_cycle(self):
        plan = FaultInjector(make_busy_ring(), seed=7).plan(20, 0, 999)
        assert [e.cycle for e in plan] == sorted(e.cycle for e in plan)


class TestRuntimeInjection:
    def test_register_flip_lands_and_counts(self):
        ring = make_busy_ring()
        inj = FaultInjector(ring, seed=0)
        event = _event(inj, FaultKind.REGISTER, (0, 0, 0), bit=3)
        before = ring.dnode(0, 0).regs.read(0)
        record = inj.inject(event)
        assert record.applied
        assert ring.dnode(0, 0).regs.read(0) == before ^ 0b1000
        assert ring.faults_injected == 1

    def test_out_flip_changes_digest(self):
        ring = make_busy_ring()
        ring.run(4)
        baseline = state_digest(ring)
        inj = FaultInjector(ring, seed=0)
        inj.inject(_event(inj, FaultKind.OUT, (0, 1), bit=0))
        assert state_digest(ring) != baseline

    def test_pipeline_flip(self):
        ring = make_busy_ring()
        ring.run(4)
        before = ring.switch(0).rp_read(2, 1)
        inj = FaultInjector(ring, seed=0)
        inj.inject(_event(inj, FaultKind.PIPELINE, (0, 2, 1), bit=5))
        assert ring.switch(0).rp_read(2, 1) == before ^ (1 << 5)

    def test_fifo_flip(self):
        ring = make_busy_ring()
        inj = FaultInjector(ring, seed=0)
        before = list(ring.fifo(1, 0, 1))
        inj.inject(_event(inj, FaultKind.FIFO, (1, 0, 1), bit=1, index=2))
        after = list(ring.fifo(1, 0, 1))
        assert after[2] == before[2] ^ 0b10
        assert after[:2] + after[3:] == before[:2] + before[3:]

    def test_fifo_flip_on_empty_queue_is_masked(self):
        ring = make_busy_ring()
        ring.fifo(2, 1, 2)  # materialize an empty queue -> a valid site
        inj = FaultInjector(ring, seed=0)
        record = inj.inject(_event(inj, FaultKind.FIFO, (2, 1, 2)))
        assert not record.applied
        assert ring.faults_injected == 1  # attempts still count

    def test_batch_flip_hits_every_lane(self):
        ring = make_busy_ring(backend="batch", batch_size=4)
        ring.run(4)
        engine = ring._batch_engine
        assert engine is not None
        before = engine.regs[0, 0, 0, :].copy()
        inj = FaultInjector(ring, seed=0)
        inj.inject(_event(inj, FaultKind.REGISTER, (0, 0, 0), bit=2))
        assert list(engine.regs[0, 0, 0, :]) == [v ^ 4 for v in before]
        # ... and the scalar mirror moved with lane 0.
        assert ring.dnode(0, 0).regs.read(0) == before[0] ^ 4


class TestConfigInjection:
    def test_config_word_flip_drops_compiled_plan(self):
        ring = make_busy_ring(backend="fastpath")
        ring.run(6)  # compile + adopt a plan
        assert ring._plan is not None
        invalidations = ring.plan_invalidations
        inj = FaultInjector(ring, seed=0)
        record = inj.inject(_event(inj, FaultKind.CONFIG_WORD, (0, 0)))
        assert record.applied
        assert ring._plan is None
        assert ring.plan_invalidations > invalidations

    def test_config_word_flip_changes_word(self):
        ring = make_busy_ring()
        before = ring.dnode(0, 0).global_word
        inj = FaultInjector(ring, seed=0)
        inj.inject(_event(inj, FaultKind.CONFIG_WORD, (0, 0), bit=7))
        assert ring.dnode(0, 0).global_word != before

    def test_local_mode_flip_targets_a_slot(self):
        ring = make_busy_ring()
        before = ring.dnode(1, 0).local.slots()
        inj = FaultInjector(ring, seed=0)
        record = inj.inject(
            _event(inj, FaultKind.CONFIG_WORD, (1, 0), index=0))
        assert record.applied
        assert ring.dnode(1, 0).local.slots() != before

    def test_route_flip_yields_runnable_route(self):
        ring = make_busy_ring()
        before = ring.switch(1).config.source_for(0, 1)
        inj = FaultInjector(ring, seed=0)
        record = inj.inject(
            _event(inj, FaultKind.CONFIG_ROUTE, (1, 0, 1), bit=3))
        assert record.applied
        after = ring.switch(1).config.source_for(0, 1)
        assert after != before
        ring.run(8)  # corrupted-but-valid route must still execute

    def test_stuck_dnode_parks_on_nop(self):
        ring = make_busy_ring()
        inj = FaultInjector(ring, seed=0)
        inj.inject(_event(inj, FaultKind.STUCK_DNODE, (0, 0)))
        dn = ring.dnode(0, 0)
        assert dn.mode is DnodeMode.LOCAL
        assert dn.local.slots()[0] == NOP_WORD
        assert dn.local.limit == 1


class TestKindGroups:
    def test_every_kind_is_classified(self):
        assert set(RUNTIME_KINDS) | set(CONFIG_KINDS) == set(FaultKind)
        assert not set(RUNTIME_KINDS) & set(CONFIG_KINDS)


def _event(injector, kind, address, bit=0, index=0):
    """A targeted FaultEvent at an enumerated site (cycle 0)."""
    from repro.robustness.faults import FaultEvent

    site = FaultSite(kind, tuple(address))
    assert site in injector.sites, f"{site} not enumerable"
    return FaultEvent(cycle=0, site=site, bit=bit, index=index)
