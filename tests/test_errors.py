"""Exception hierarchy contract tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigurationError,
        errors.SimulationError,
        errors.AssemblerError,
        errors.LoaderError,
        errors.HostError,
        errors.TechnologyError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestAssemblerError:
    def test_line_annotation(self):
        err = errors.AssemblerError("bad token", line=42)
        assert "line 42" in str(err)
        assert err.line == 42

    def test_without_line(self):
        err = errors.AssemblerError("bad token")
        assert err.line is None
        assert str(err) == "bad token"
