"""Batched multi-stream throughput: one fabric, B independent streams.

The batch backend (:mod:`repro.core.batchpath`) amortises Python
dispatch across a lane axis: every compiled kernel computes one Dnode's
result for all B streams with a handful of NumPy array operations, so
aggregate lane-cycles per second grow far faster than the per-lane cost.
This benchmark measures a steady-state 8-tap spatial FIR (the paper's
canonical data-oriented kernel) on the interpreter, the scalar fast
path, and the batch backend at B = 1/8/32, asserts the acceptance
target — batch-32 sustains at least 4x the scalar fast path's aggregate
throughput — and records everything in ``BENCH_batch.json`` so CI
archives a perf data point per PR.

Run with ``pytest -s benchmarks/test_batch_throughput.py`` for the table.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.ring import Ring, RingGeometry
from repro.kernels.fir import build_spatial_fir

#: Acceptance floor: batch-32 aggregate lane-cycles/s over the scalar
#: fast path's cycles/s on the same FIR configuration.  Measured ratios
#: are typically far higher; 4x keeps the assertion robust on loaded CI.
TARGET_BATCH_SPEEDUP = 4.0

#: The headline batch width.
BATCH = 32

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch.json"

_TAPS = [3, -1, 4, 1, -5, 9, 2, -6]


def _fir_ring(**kwargs) -> Ring:
    ring = Ring(RingGeometry(layers=len(_TAPS), width=2), **kwargs)
    build_spatial_fir(_TAPS, ring=ring)
    return ring


def _host_zero(channel: int) -> int:
    return 0


def _cycles_per_second(ring: Ring, cycles: int, repeats: int = 3) -> float:
    """Best-of-*repeats* steady-state throughput of ``ring.run``."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles, host_in=_host_zero)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def _measure() -> dict:
    cycles = 3_000
    points = {}

    ring = _fir_ring(fastpath=False)
    ring.run(4, host_in=_host_zero)
    points["interpreter"] = (_cycles_per_second(ring, cycles), 1)

    ring = _fir_ring()
    ring.run(4, host_in=_host_zero)
    assert ring._plan is not None
    points["fastpath"] = (_cycles_per_second(ring, cycles), 1)

    for batch in (1, 8, BATCH):
        ring = _fir_ring(backend="batch", batch_size=batch)
        if batch == 1:
            # B=1 now rides the scalar fast path unless the vector engine
            # is explicitly engaged; this point measures the engine's
            # per-lane overhead, so engage it.
            ring.batch
        ring.run(4, host_in=_host_zero)
        assert ring._batch_engine is not None
        assert ring._batch_engine._kernels is not None
        points[f"batch_{batch}"] = (_cycles_per_second(ring, cycles), batch)
    return points


def test_batch32_beats_scalar_fastpath_aggregate():
    points = _measure()
    fastpath_rate = points["fastpath"][0] * points["fastpath"][1]

    def lane_rate(name: str) -> float:
        rate, lanes = points[name]
        return rate * lanes

    emit(render_table(
        ["operating point", "cyc/s", "lanes", "lane-cyc/s", "vs fastpath"],
        [[name, f"{rate:,.0f}", str(lanes), f"{rate * lanes:,.0f}",
          f"{rate * lanes / fastpath_rate:.1f}x"]
         for name, (rate, lanes) in points.items()],
        title="8-tap FIR multi-stream throughput",
    ))

    speedup = lane_rate(f"batch_{BATCH}") / fastpath_rate
    assert speedup >= TARGET_BATCH_SPEEDUP, (
        f"batch-{BATCH} sustained only {speedup:.2f}x the scalar fast "
        f"path's aggregate throughput (target {TARGET_BATCH_SPEEDUP}x)"
    )

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "batch_throughput",
        "fabric": f"Ring-{len(_TAPS) * 2} spatial FIR ({len(_TAPS)} taps)",
        "batch": BATCH,
        "cycles_per_second": {
            name: round(rate) for name, (rate, _) in points.items()},
        "lane_cycles_per_second": {
            name: round(rate * lanes)
            for name, (rate, lanes) in points.items()},
        "batch32_aggregate_speedup_vs_fastpath": round(speedup, 2),
        "target_speedup": TARGET_BATCH_SPEEDUP,
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")
