"""Directed tests of the native macro-kernel tier.

Covers what the fuzz and conformance suites pin only indirectly: the
eligibility rules and the fallback ladder (native -> macro-step ->
fastpath), phase-keyed plan caching and snapshot re-adoption, the
safe-cycle FIFO gating formulas, the optional-Numba ladder (absent /
working / broken), and the single-registry backend contract shared by
``Ring.set_backend``, the CLI and the documentation.
"""

from __future__ import annotations

import re
import sys
import types
from pathlib import Path

import pytest

from repro import word
from repro.core import nativepath
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import capture, restore, state_digest
from repro.core.switch import PortSource
from repro.errors import ConfigurationError

REPO = Path(__file__).resolve().parent.parent.parent


@pytest.fixture
def no_numba(monkeypatch):
    """Force the pure-NumPy core: ``import numba`` raises ImportError."""
    monkeypatch.setitem(sys.modules, "numba", None)
    yield
    pass


def _feedforward_chain(ring: Ring) -> None:
    """An eligible global-mode MADD chain (no ring-wrap cycle)."""
    layers = ring.geometry.layers
    width = ring.geometry.width
    for p in range(width):
        ring.config.write_microword(0, p, MicroWord(
            Opcode.MUL, Source.BUS, Source.IMM, Dest.OUT,
            imm=3 + p))
    for k in range(1, layers):
        for p in range(width):
            ring.config.write_switch_route(k, p, 1, PortSource.up(p))
            ring.config.write_microword(k, p, MicroWord(
                Opcode.MADD, Source.IN1, Source.IN2, Dest.OUT, imm=2))
            ring.config.write_switch_route(
                k, p, 2, PortSource.rp(2, p + 1))


def _mac_program(ring: Ring, layer=0, pos=0) -> None:
    """Local-mode MAC dot-product loop, FIFO-fed (eligible, gated)."""
    ring.config.write_local_program(layer, pos, [MicroWord(
        Opcode.MAC, Source.FIFO1, Source.FIFO2, Dest.R0,
        flags=Flag.POP_FIFO1 | Flag.POP_FIFO2 | Flag.WRITE_OUT)])
    ring.config.write_mode(layer, pos, DnodeMode.LOCAL)


def _twin(build, cycles, **run_kwargs):
    """Run *build* on native and interpreter rings; return both."""
    rn = build(backend="native")
    ri = build(fastpath=False)
    rn.run(cycles, **run_kwargs)
    for _ in range(cycles):
        ri.step(**run_kwargs)
    return rn, ri


class TestEligibility:
    def test_feedforward_chain_compiles(self):
        ring = Ring(RingGeometry.ring(16), backend="native")
        _feedforward_chain(ring)
        plan = nativepath.compile_native(ring)
        assert plan is not None
        assert plan.period == 1

    def test_self_recurrence_is_ineligible(self):
        """MADD IN1,SELF -> OUT (first-order IIR) falls back."""
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
        ring.config.write_microword(1, 0, MicroWord(
            Opcode.MADD, Source.IN1, Source.SELF, Dest.OUT, imm=3))
        assert nativepath.compile_native(ring) is None

    def test_saturating_accumulator_is_ineligible(self):
        """MACS has no closed form (saturation breaks the cumsum)."""
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        ring.config.write_local_program(0, 0, [MicroWord(
            Opcode.MACS, Source.FIFO1, Source.FIFO2, Dest.R0,
            flags=Flag.POP_FIFO1 | Flag.POP_FIFO2)])
        ring.config.write_mode(0, 0, DnodeMode.LOCAL)
        assert nativepath.compile_native(ring) is None

    def test_wrapping_accumulator_is_eligible(self):
        """Plain MAC accumulation has the cumsum closed form."""
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        _mac_program(ring)
        assert nativepath.compile_native(ring) is not None

    def test_cross_dnode_ring_cycle_is_ineligible(self):
        """A full wrap-around dataflow cycle cannot be vectorized."""
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        for k in range(2):
            ring.config.write_switch_route(k, 0, 1, PortSource.up(0))
            ring.config.write_microword(k, 0, MicroWord(
                Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=1))
        assert nativepath.compile_native(ring) is None

    def test_cross_phase_register_cycle_is_ineligible(self):
        """R0 <-> R1 swap across phases (biquad shape) falls back."""
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        ring.config.write_local_program(0, 0, [
            MicroWord(Opcode.MOV, Source.R1, dst=Dest.R0),
            MicroWord(Opcode.MOV, Source.R0, dst=Dest.R1),
        ])
        ring.config.write_mode(0, 0, DnodeMode.LOCAL)
        assert nativepath.compile_native(ring) is None

    def test_long_period_is_ineligible(self):
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        _mac_program(ring)
        plan = nativepath.compile_native(ring)
        assert plan is not None
        # The limit itself is part of the contract.
        assert nativepath.MAX_WINDOW_CELLS == 1 << 20

    def test_out_of_range_feedback_tap_is_ineligible(self):
        """An Rp stage deeper than the pipeline must fall back (the
        interpreter raises at runtime; the fallback reproduces it)."""
        ring = Ring(RingGeometry(layers=2, width=2, pipeline_depth=2),
                    backend="native")
        ring.config.write_microword(1, 0, MicroWord(
            Opcode.MOV, Source.rp(3, 1), dst=Dest.OUT))
        assert nativepath.compile_native(ring) is None


class TestFallbackLadder:
    def test_ineligible_config_counts_fallback_cycles(self):
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
        ring.config.write_microword(1, 0, MicroWord(
            Opcode.MADD, Source.IN1, Source.SELF, Dest.OUT, imm=3))
        twin = Ring(RingGeometry(layers=2, width=2), fastpath=False)
        twin.config.write_switch_route(1, 0, 1, PortSource.up(0))
        twin.config.write_microword(1, 0, MicroWord(
            Opcode.MADD, Source.IN1, Source.SELF, Dest.OUT, imm=3))
        ring.run(20, bus=5)
        for _ in range(20):
            twin.step(bus=5)
        assert ring.native_cycles == 0
        assert ring.native_fallback_cycles > 0
        assert state_digest(ring) == state_digest(twin)

    def test_eligible_config_runs_native_after_warmup(self):
        def build(**kw):
            ring = Ring(RingGeometry.ring(16), **kw)
            _feedforward_chain(ring)
            return ring
        rn, ri = _twin(build, 40, bus=7)
        assert rn.native_cycles > 0
        assert rn.native_fallback_cycles == 0
        assert rn.native_compiles == 1
        assert state_digest(rn) == state_digest(ri)

    def test_fifo_gated_window_splits_native_and_fallback(self):
        """Exactly occ//pops periods run native; the starved tail falls
        back to the per-cycle engines and still matches bit-for-bit."""
        def build(**kw):
            ring = Ring(RingGeometry(layers=2, width=2), **kw)
            _mac_program(ring)
            ring.push_fifo(0, 0, 1, list(range(1, 11)))
            ring.push_fifo(0, 0, 2, list(range(11, 21)))
            return ring
        rn, ri = _twin(build, 16)
        assert rn.native_cycles == 8      # 10 loads - 2 warm-up cycles
        assert rn.native_fallback_cycles == 6
        assert state_digest(rn) == state_digest(ri)

    def test_empty_fifo_blocks_the_window_entirely(self):
        def build(**kw):
            ring = Ring(RingGeometry(layers=2, width=2), **kw)
            _mac_program(ring)
            return ring
        rn, ri = _twin(build, 10)
        assert rn.native_cycles == 0
        assert rn.native_fallback_cycles > 0
        assert state_digest(rn) == state_digest(ri)

    def test_step_never_engages_native(self):
        ring = Ring(RingGeometry.ring(16), backend="native")
        _feedforward_chain(ring)
        for _ in range(10):
            ring.step(bus=3)
        assert ring.native_cycles == 0

    def test_observer_chunks_keep_plan_engaged(self):
        def build(**kw):
            ring = Ring(RingGeometry.ring(16), **kw)
            _feedforward_chain(ring)
            return ring
        seen = []
        rn = build(backend="native")
        rn.add_observer(lambda r: seen.append(r.cycles), interval=8)
        ri = build(fastpath=False)
        rn.run(40, bus=7)
        for _ in range(40):
            ri.step(bus=7)
        assert rn.native_cycles > 0
        assert seen == [8, 16, 24, 32, 40]
        assert state_digest(rn) == state_digest(ri)


class TestPlanCacheAndSnapshots:
    def _build(self, **kw):
        ring = Ring(RingGeometry.ring(16), **kw)
        _feedforward_chain(ring)
        return ring

    def test_plans_are_phase_keyed(self):
        """A local-mode plan only re-engages at its entry phase."""
        def build(**kw):
            ring = Ring(RingGeometry(layers=2, width=2), **kw)
            _mac_program(ring)
            ring.push_fifo(0, 0, 1, list(range(1, 31)))
            ring.push_fifo(0, 0, 2, list(range(31, 61)))
            return ring
        rn, ri = _twin(build, 30)
        plan = rn._native
        assert plan is not None and plan.matches_phase()
        assert state_digest(rn) == state_digest(ri)

    def test_reconfiguration_churn_reuses_cached_plans(self):
        ring = self._build(backend="native")
        ring.run(20, bus=7)
        assert ring.native_compiles == 1
        # Touch the config: plan dropped, fingerprint changed ...
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MUL, Source.BUS, Source.IMM, Dest.OUT, imm=9))
        ring.run(20, bus=7)
        assert ring.native_compiles == 2
        # ... and back: the original plan comes from the cache.
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MUL, Source.BUS, Source.IMM, Dest.OUT, imm=3))
        ring.run(20, bus=7)
        assert ring.native_compiles == 2

    def test_snapshot_restore_readopts_without_recompiling(self):
        ring = self._build(backend="native")
        ring.run(20, bus=7)
        snap = capture(ring)
        compiles = ring.native_compiles
        native_before = ring.native_cycles
        restore(ring, snap)
        ring.run(12, bus=7)
        assert ring.native_compiles == compiles
        # Re-adoption skips the interpreted warm-up: all 12 post-restore
        # cycles run on the native plan.
        assert ring.native_cycles == native_before + 12
        twin = self._build(fastpath=False)
        for _ in range(32):
            twin.step(bus=7)
        assert state_digest(ring) == state_digest(twin)

    def test_set_backend_away_and_back_is_identical(self):
        ring = self._build(backend="native")
        ring.run(10, bus=7)
        ring.set_backend("interpreter")
        ring.run(10, bus=7)
        ring.set_backend("native")
        ring.run(10, bus=7)
        twin = self._build(fastpath=False)
        for _ in range(30):
            twin.step(bus=7)
        assert state_digest(ring) == state_digest(twin)


class TestNumbaLadder:
    def _run_pair(self):
        def build(**kw):
            ring = Ring(RingGeometry.ring(16), **kw)
            _feedforward_chain(ring)
            return ring
        rn, ri = _twin(build, 30, bus=7)
        assert rn.native_cycles > 0
        assert state_digest(rn) == state_digest(ri)
        return rn

    def test_numba_absent_uses_python_core(self, no_numba):
        assert not nativepath.numba_available()
        ring = self._run_pair()
        assert not ring._native.jit_active()

    def test_numba_disabled_by_switch(self, monkeypatch):
        fake = types.ModuleType("numba")
        fake.njit = lambda *a, **kw: (lambda fn: fn)
        monkeypatch.setitem(sys.modules, "numba", fake)
        nativepath.set_numba_enabled(False)
        try:
            assert not nativepath.numba_available()
            ring = self._run_pair()
            assert not ring._native.jit_active()
        finally:
            nativepath.set_numba_enabled(True)

    def test_working_numba_is_adopted(self, monkeypatch):
        wrapped = []
        fake = types.ModuleType("numba")

        def njit(*args, **kwargs):
            def deco(fn):
                wrapped.append(fn.__name__)
                return fn
            return deco

        fake.njit = njit
        monkeypatch.setitem(sys.modules, "numba", fake)
        assert nativepath.numba_available()
        ring = self._run_pair()
        assert ring._native.jit_active()
        assert wrapped  # the core really went through @njit

    def test_broken_numba_falls_back_to_python_core(self, monkeypatch):
        fake = types.ModuleType("numba")

        def njit(*args, **kwargs):
            raise RuntimeError("no LLVM in this container")

        fake.njit = njit
        monkeypatch.setitem(sys.modules, "numba", fake)
        ring = self._run_pair()  # bit-identity asserted inside
        assert not ring._native.jit_active()


class TestBackendRegistry:
    """One registry: constructor, set_backend, CLI and docs agree."""

    def test_unknown_backend_error_enumerates_registry(self):
        ring = Ring(RingGeometry(layers=2, width=2))
        with pytest.raises(ConfigurationError) as err:
            ring.set_backend("turbo")
        for name in Ring.BACKEND_REGISTRY:
            assert name in str(err.value)

    def test_constructor_uses_the_same_registry(self):
        with pytest.raises(ConfigurationError) as err:
            Ring(RingGeometry(layers=2, width=2), backend="turbo")
        for name in Ring.BACKEND_REGISTRY:
            assert name in str(err.value)

    def test_cli_choices_match_registry(self):
        from repro.tools.__main__ import build_parser
        parser = build_parser()
        run_parser = None
        for action in parser._subparsers._group_actions:
            run_parser = action.choices.get("run")
        assert run_parser is not None
        backend_action = next(a for a in run_parser._actions
                              if a.dest == "backend")
        assert tuple(backend_action.choices) == Ring.BACKENDS

    def test_docs_table_matches_registry(self):
        """docs/architecture.md's engine table lists every backend."""
        text = (REPO / "docs" / "architecture.md").read_text()
        rows = re.findall(r"^\|\s*`([a-z]+)`\s*\|", text, re.MULTILINE)
        assert set(Ring.BACKEND_REGISTRY) <= set(rows), (
            "docs/architecture.md engine table is missing backends: "
            f"{set(Ring.BACKEND_REGISTRY) - set(rows)}"
        )

    def test_conformance_matrix_covers_every_backend(self):
        from tests.kernels.conftest import ENGINES
        backends = set()
        for kwargs in ENGINES.values():
            ring = Ring(RingGeometry(layers=2, width=2), **kwargs)
            backends.add(ring.backend)
        assert backends == set(Ring.BACKEND_REGISTRY)

    def test_lane_backends_subset(self):
        assert set(Ring.LANE_BACKENDS) < set(Ring.BACKEND_REGISTRY)


class TestHostStreams:
    def test_host_gather_sees_per_cycle_values(self):
        """host_in closures that read ring.cycles stay bit-exact."""
        sig = [word.from_signed(((7 * i) % 100) - 50) for i in range(64)]

        def build(**kw):
            ring = Ring(RingGeometry(layers=3, width=2), **kw)
            ring.config.write_switch_route(0, 0, 1, PortSource.host(0))
            ring.config.write_microword(0, 0, MicroWord(
                Opcode.MOV, Source.IN1, dst=Dest.OUT))
            ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
            ring.config.write_microword(1, 0, MicroWord(
                Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=5))
            return ring

        def host_of(ring):
            return lambda ch: sig[ring.cycles % len(sig)]

        rn = build(backend="native")
        ri = build(fastpath=False)
        rn.run(40, host_in=host_of(rn))
        for _ in range(40):
            ri.step(host_in=host_of(ri))
        assert rn.native_cycles > 0
        assert state_digest(rn) == state_digest(ri)

    def test_missing_host_reader_is_ineligible_not_wrong(self):
        """No host_in + routed host port: the fallback raises the same
        SimulationError the interpreter raises."""
        from repro.errors import SimulationError
        ring = Ring(RingGeometry(layers=2, width=2), backend="native")
        ring.config.write_switch_route(0, 0, 1, PortSource.host(2))
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IN1, dst=Dest.OUT))
        with pytest.raises(SimulationError, match="host channel 2"):
            ring.run(10)


class TestMetrics:
    def test_native_counters_surface_in_metrics(self):
        from repro.analysis.metrics import collect_metrics
        ring = Ring(RingGeometry.ring(16), backend="native")
        _feedforward_chain(ring)
        ring.run(30, bus=7)
        report = collect_metrics(ring)
        assert report.value("native_cycles_total") == \
            ring.native_cycles > 0
        assert report.value("native_plan_compiles_total") == 1
        assert report.value("native_fallback_cycles_total") == 0
