"""Cycle-accurate simulator of the RISC configuration controller.

The controller executes one instruction per system clock (the same clock
that drives the ring).  Its architectural state is 16 x 16-bit registers,
a program counter, a word-addressed data memory, and two mailbox FIFO
banks towards the host CPU.

Configuration side effects are returned from :meth:`RiscController.step`
as :class:`ConfigCommand` objects; the enclosing system
(:class:`repro.host.system.RingSystem`) applies them to the ring's
configuration memory *before* stepping the fabric, so a configuration
written at cycle *t* governs the fabric from cycle *t* on — the paper's
one-instruction-per-cycle hardware-multiplexing rate.

Blocking behaviour: ``INW`` on an empty mailbox stalls (the instruction
retries every cycle until data arrives); ``WAITI n`` occupies the
controller for *n* cycles.  Both model real handshaking without any
callback magic.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.isa import MicroWord, decode as decode_microword
from repro.core.switch import PortSource, decode_route
from repro.controller.isa import Instruction, ROp, REG_MASK, NUM_REGISTERS
from repro.errors import SimulationError

DEFAULT_DMEM_WORDS = 4096


class ConfigTargetKind(enum.Enum):
    """What a :class:`ConfigCommand` writes."""

    DNODE_WORD = "dnode_word"
    LOCAL_SLOT = "local_slot"
    LOCAL_LIMIT = "local_limit"
    MODE = "mode"
    SWITCH_ROUTE = "switch_route"
    PLANE = "plane"


@dataclass(frozen=True)
class ConfigCommand:
    """One configuration write emitted by the controller.

    ``dnode`` is a flat Dnode index (``layer * width + position``); the
    system maps it onto the ring geometry.  ``microword`` / ``route`` are
    already resolved from the configuration ROM.
    """

    kind: ConfigTargetKind
    dnode: int = 0
    slot: int = 0
    limit: int = 1
    mode: int = 0
    sw: int = 0
    pos: int = 0
    port: int = 1
    plane: int = 0
    microword: Optional[MicroWord] = None
    route: Optional[PortSource] = None


@dataclass
class ControllerState:
    """Observable controller statistics.

    ``stalls`` counts every lost cycle; ``wait_stalls`` and
    ``mailbox_stalls`` split it by cause (``WAITI`` delay vs. ``INW``
    retrying an empty mailbox) so the metrics layer can tell a
    deliberately-paced program from one starved by the host.
    """

    cycles: int = 0
    retired: int = 0
    stalls: int = 0
    wait_stalls: int = 0
    mailbox_stalls: int = 0
    config_commands: int = 0
    bus_writes: int = 0


def _to_signed16(value: int) -> int:
    value &= REG_MASK
    return value - 0x10000 if value & 0x8000 else value


class RiscController:
    """The configuration controller core.

    Args:
        program: controller instructions (management code).
        cfg_rom: configuration ROM — 40-bit entries produced by the
            assembler; microword entries for ``CFGDI/CFGD/CFGL`` targets,
            16-bit route entries for ``CFGS`` targets.
        dmem_words: size of the data memory.
        mailbox_channels: number of host mailbox channels in each
            direction.
    """

    def __init__(self, program: List[Instruction],
                 cfg_rom: Optional[List[int]] = None,
                 dmem_words: int = DEFAULT_DMEM_WORDS,
                 mailbox_channels: int = 4):
        if not program:
            raise SimulationError("controller program must not be empty")
        self.program = list(program)
        self.cfg_rom: List[int] = list(cfg_rom or [])
        #: Resolver for RDD (reads a Dnode's OUT register over the shared
        #: bus); installed by the enclosing RingSystem.
        self.fabric_reader = None
        self.regs = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self.bus_out = 0
        self.dmem = [0] * dmem_words
        self.state = ControllerState()
        self._wait_remaining = 0
        self.in_box: Dict[int, Deque[int]] = {
            ch: deque() for ch in range(mailbox_channels)
        }
        self.out_box: Dict[int, Deque[int]] = {
            ch: deque() for ch in range(mailbox_channels)
        }

    # ------------------------------------------------------------------
    # Host-side mailbox access
    # ------------------------------------------------------------------

    def host_send(self, channel: int, value: int) -> None:
        """Host pushes a word into the controller's inbound mailbox."""
        self._check_channel(channel, self.in_box)
        self.in_box[channel].append(value & REG_MASK)

    def host_receive(self, channel: int) -> Optional[int]:
        """Host pops a word from the outbound mailbox (None when empty)."""
        self._check_channel(channel, self.out_box)
        box = self.out_box[channel]
        return box.popleft() if box else None

    @staticmethod
    def _check_channel(channel: int, bank: Dict[int, Deque[int]]) -> None:
        if channel not in bank:
            raise SimulationError(f"mailbox channel {channel} does not exist")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> List[ConfigCommand]:
        """Execute one controller cycle; return configuration commands."""
        self.state.cycles += 1
        if self.halted:
            return []
        if self._wait_remaining > 0:
            self._wait_remaining -= 1
            self.state.stalls += 1
            self.state.wait_stalls += 1
            return []
        if not 0 <= self.pc < len(self.program):
            raise SimulationError(
                f"controller PC {self.pc} outside program "
                f"(0..{len(self.program) - 1})"
            )
        instr = self.program[self.pc]
        commands = self._execute(instr)
        self.state.config_commands += len(commands)
        return commands

    def run_until_halt(self, max_cycles: int = 1_000_000) -> int:
        """Free-run (no fabric attached) until HALT; returns cycles used."""
        start = self.state.cycles
        while not self.halted:
            self.step()
            if self.state.cycles - start > max_cycles:
                raise SimulationError(
                    f"controller did not halt within {max_cycles} cycles"
                )
        return self.state.cycles - start

    # ------------------------------------------------------------------

    def _execute(self, instr: Instruction) -> List[ConfigCommand]:
        op = instr.op
        next_pc = self.pc + 1
        commands: List[ConfigCommand] = []

        if op is ROp.NOP:
            pass
        elif op is ROp.HALT:
            self.halted = True
            next_pc = self.pc
        elif op is ROp.LDI:
            self.regs[instr.rd] = instr.imm & REG_MASK
        elif op is ROp.MOV:
            self.regs[instr.rd] = self.regs[instr.rs]
        elif op in (ROp.ADD, ROp.SUB, ROp.AND, ROp.OR, ROp.XOR,
                    ROp.SHL, ROp.SHR, ROp.SAR, ROp.MUL):
            self.regs[instr.rd] = self._alu(op, self.regs[instr.rs],
                                            self.regs[instr.rt])
        elif op is ROp.ADDI:
            self.regs[instr.rd] = (self.regs[instr.rs] + instr.imm) & REG_MASK
        elif op in (ROp.BEQ, ROp.BNE, ROp.BLT, ROp.BGE):
            if self._branch_taken(op, self.regs[instr.rs],
                                  self.regs[instr.rt]):
                next_pc = self.pc + 1 + instr.imm
        elif op is ROp.JMP:
            next_pc = instr.imm
        elif op is ROp.JAL:
            self.regs[15] = (self.pc + 1) & REG_MASK
            next_pc = instr.imm
        elif op is ROp.JR:
            next_pc = self.regs[instr.rs]
        elif op is ROp.LW:
            self.regs[instr.rd] = self.dmem[self._dmem_addr(instr)]
        elif op is ROp.SW:
            self.dmem[self._dmem_addr(instr)] = self.regs[instr.rt]
        elif op is ROp.CFGDI:
            commands.append(ConfigCommand(
                ConfigTargetKind.DNODE_WORD, dnode=instr.dnode,
                microword=self._rom_microword(instr.cfg)))
        elif op is ROp.CFGD:
            commands.append(ConfigCommand(
                ConfigTargetKind.DNODE_WORD, dnode=self.regs[instr.rs],
                microword=self._rom_microword(self.regs[instr.rt])))
        elif op is ROp.CFGL:
            commands.append(ConfigCommand(
                ConfigTargetKind.LOCAL_SLOT, dnode=instr.dnode,
                slot=instr.slot, microword=self._rom_microword(instr.cfg)))
        elif op is ROp.CFGLIM:
            commands.append(ConfigCommand(
                ConfigTargetKind.LOCAL_LIMIT, dnode=instr.dnode,
                limit=instr.limit))
        elif op is ROp.CFGMODE:
            commands.append(ConfigCommand(
                ConfigTargetKind.MODE, dnode=instr.dnode, mode=instr.mode))
        elif op is ROp.CFGS:
            commands.append(ConfigCommand(
                ConfigTargetKind.SWITCH_ROUTE, sw=instr.sw, pos=instr.pos,
                port=instr.port, route=self._rom_route(instr.cfg)))
        elif op is ROp.CFGPLANE:
            commands.append(ConfigCommand(
                ConfigTargetKind.PLANE, plane=instr.plane))
        elif op is ROp.CFGIMM:
            template = self._rom_microword(instr.cfg)
            patched = MicroWord(
                op=template.op, src_a=template.src_a,
                src_b=template.src_b, dst=template.dst,
                flags=template.flags, imm=self.regs[instr.rs])
            commands.append(ConfigCommand(
                ConfigTargetKind.DNODE_WORD, dnode=instr.dnode,
                microword=patched))
        elif op is ROp.RDD:
            if self.fabric_reader is None:
                raise SimulationError(
                    "RDD executed with no fabric attached (the shared "
                    "bus read path is wired by RingSystem)"
                )
            self.regs[instr.rd] = self.fabric_reader(instr.dnode) \
                & REG_MASK
        elif op is ROp.BUSW:
            self.bus_out = self.regs[instr.rs]
            self.state.bus_writes += 1
        elif op is ROp.INW:
            box = self.in_box.get(instr.ch)
            if box is None:
                raise SimulationError(f"INW: no mailbox channel {instr.ch}")
            if not box:
                # Stall: retry this instruction next cycle.
                self.state.stalls += 1
                self.state.mailbox_stalls += 1
                return []
            self.regs[instr.rd] = box.popleft()
        elif op is ROp.OUTW:
            box = self.out_box.get(instr.ch)
            if box is None:
                raise SimulationError(f"OUTW: no mailbox channel {instr.ch}")
            box.append(self.regs[instr.rs])
        elif op is ROp.BFE:
            box = self.in_box.get(instr.ch)
            if box is None:
                raise SimulationError(f"BFE: no mailbox channel {instr.ch}")
            if not box:
                next_pc = self.pc + 1 + instr.imm
        elif op is ROp.WAITI:
            self._wait_remaining = max(instr.imm - 1, 0)
        else:  # pragma: no cover - every opcode is handled above
            raise SimulationError(f"unimplemented opcode {op!r}")

        self.state.retired += 1
        self.pc = next_pc
        return commands

    @staticmethod
    def _alu(op: ROp, a: int, b: int) -> int:
        if op is ROp.ADD:
            return (a + b) & REG_MASK
        if op is ROp.SUB:
            return (a - b) & REG_MASK
        if op is ROp.AND:
            return a & b
        if op is ROp.OR:
            return a | b
        if op is ROp.XOR:
            return a ^ b
        if op is ROp.SHL:
            return (a << (b & 15)) & REG_MASK
        if op is ROp.SHR:
            return (a & REG_MASK) >> (b & 15)
        if op is ROp.SAR:
            return (_to_signed16(a) >> (b & 15)) & REG_MASK
        if op is ROp.MUL:
            return (_to_signed16(a) * _to_signed16(b)) & REG_MASK
        raise SimulationError(f"not an ALU op: {op!r}")

    @staticmethod
    def _branch_taken(op: ROp, a: int, b: int) -> bool:
        if op is ROp.BEQ:
            return a == b
        if op is ROp.BNE:
            return a != b
        if op is ROp.BLT:
            return _to_signed16(a) < _to_signed16(b)
        if op is ROp.BGE:
            return _to_signed16(a) >= _to_signed16(b)
        raise SimulationError(f"not a branch op: {op!r}")

    def _dmem_addr(self, instr: Instruction) -> int:
        addr = (self.regs[instr.rs] + instr.imm) & REG_MASK
        if addr >= len(self.dmem):
            raise SimulationError(
                f"data-memory access at {addr:#06x} outside "
                f"{len(self.dmem)}-word memory"
            )
        return addr

    def _rom_entry(self, index: int) -> int:
        if not 0 <= index < len(self.cfg_rom):
            raise SimulationError(
                f"configuration ROM index {index} outside "
                f"0..{len(self.cfg_rom) - 1}"
            )
        return self.cfg_rom[index]

    def _rom_microword(self, index: int) -> MicroWord:
        return decode_microword(self._rom_entry(index))

    def _rom_route(self, index: int) -> PortSource:
        return decode_route(self._rom_entry(index))

    def __repr__(self) -> str:
        status = "halted" if self.halted else f"pc={self.pc}"
        return f"RiscController({status}, cycle={self.state.cycles})"


__all__ = [
    "ConfigCommand",
    "ConfigTargetKind",
    "ControllerState",
    "RiscController",
]
