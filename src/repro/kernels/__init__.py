"""The paper's application kernels, as reference code and fabric mappings.

Each kernel module provides (a) a bit-exact reference implementation and
(b) a mapping that configures a :class:`~repro.core.ring.Ring` /
:class:`~repro.host.system.RingSystem` to compute the same function,
returning both results and cycle counts:

* :mod:`repro.kernels.reference` — numpy/integer golden models;
* :mod:`repro.kernels.fir` — transversal FIR, spatial (one tap per layer,
  1 sample/cycle) and resource-shared (one Dnode, local mode);
* :mod:`repro.kernels.iir` — recursive filters using the SELF feedback
  path (the "RII" macro-operator of the conclusion) and the MAC
  macro-operator;
* :mod:`repro.kernels.wavelet` — the 5/3 lifting DWT of Table 2;
* :mod:`repro.kernels.motion_estimation` — the full-search block matcher
  of Table 1;
* :mod:`repro.kernels.fifo_emulation` — Dnode-as-FIFO (local mode), one
  of the paper's stand-alone macro-operators.

The DSP scenario library extends the set with audio/modem-style recipes,
each golden-modelled in :mod:`repro.kernels.reference` and registered in
the compiler's :data:`~repro.compiler.library.GRAPH_LIBRARY`:

* :mod:`repro.kernels.cordic` — shift-add CORDIC rotation/vectoring
  (branch-free sign-mask form, no multiplier);
* :mod:`repro.kernels.nco` — numerically-controlled oscillator: SELF
  phase accumulator + parabolic sine shaper, or a CORDIC backend;
* :mod:`repro.kernels.resampler` — polyphase 2x/3x integer up/down
  resamplers;
* :mod:`repro.kernels.mixer` — VCA and N-input gain mixer;
* :mod:`repro.kernels.effects` — chorus voice (feedback-pipeline delays)
  and recirculating echo through the ring closure;
* :mod:`repro.kernels.complex_ops` — same-cycle complex multiply and
  alpha-max-beta-min magnitude;
* :mod:`repro.kernels.ringmac` — one MAC Dnode time-multiplexed across N
  client dot-product streams (the RingMAC idiom);
* :mod:`repro.kernels.scenarios` — full streaming pipelines (synth
  voice, effects chain) context-switching fabric planes mid-stream;
* :mod:`repro.kernels.taps` — lane-aware tap reading shared by the
  hand-mapped kernels (correct on batch/shard rings).
"""

from repro.kernels import reference
from repro.kernels.fir import (
    FirResult,
    build_spatial_fir,
    shared_fir,
    shared_fir_program,
    spatial_fir,
)
from repro.kernels.iir import (
    IirResult,
    biquad,
    biquad_program,
    build_first_order_iir,
    first_order_iir,
    mac_accumulate,
    reference_biquad,
)
from repro.kernels.wavelet import (
    WaveletResult,
    build_lifting_system,
    dwt53_2d_fabric,
    dwt53_2d_multilevel_fabric,
    lifting53_forward_fabric,
    wavelet_cycle_model,
)
from repro.kernels.motion_estimation import (
    FrameMotionResult,
    MotionEstimationResult,
    build_me_system,
    cycle_model as me_cycle_model,
    estimate_frame_motion,
    full_search_me,
)
from repro.kernels.dct import (
    DctResult,
    build_dct_system,
    dct8_fabric,
    dct8_float,
    dct8_reference,
)
from repro.kernels.matrix import (
    MatVecResult,
    build_matvec_system,
    matvec_fabric,
    matvec_reference,
    row_program,
)
from repro.kernels.fifo_emulation import (
    FifoPlan,
    build_delay_line,
    delay_line,
    plan_delay,
)
from repro.kernels.taps import tap_lane0
from repro.kernels.cordic import (
    CordicResult,
    compile_cordic,
    cordic_rotate_fabric,
    cordic_vector_fabric,
    rotation_graph,
    vectoring_graph,
)
from repro.kernels.nco import (
    NcoResult,
    build_nco,
    cordic_backend_graph,
    nco_fabric,
    shaper_graph,
)
from repro.kernels.resampler import (
    RESAMPLERS,
    ResampleResult,
    downsample2_fabric,
    downsample2_graph,
    downsample3_fabric,
    downsample3_graph,
    upsample2_fabric,
    upsample2_graph,
    upsample3_fabric,
    upsample3_graph,
)
from repro.kernels.mixer import (
    MIXER4_GAINS,
    MixResult,
    mixer_fabric,
    mixer_graph,
    vca_fabric,
    vca_graph,
)
from repro.kernels.effects import (
    EffectResult,
    build_echo,
    chorus_fabric,
    chorus_graph,
    echo_fabric,
)
from repro.kernels.complex_ops import (
    ComplexResult,
    cmag_fabric,
    cmag_graph,
    cmul4_graph,
    cmul_fabric,
)
from repro.kernels.ringmac import (
    RingMacResult,
    build_ringmac,
    ringmac_fabric,
    ringmac_program,
)
from repro.kernels.scenarios import (
    ScenarioResult,
    run_effects_chain,
    run_synth_voice,
)

__all__ = [
    "reference",
    "FirResult",
    "build_spatial_fir",
    "shared_fir",
    "shared_fir_program",
    "spatial_fir",
    "IirResult",
    "biquad",
    "biquad_program",
    "build_first_order_iir",
    "first_order_iir",
    "mac_accumulate",
    "reference_biquad",
    "WaveletResult",
    "build_lifting_system",
    "dwt53_2d_fabric",
    "dwt53_2d_multilevel_fabric",
    "lifting53_forward_fabric",
    "wavelet_cycle_model",
    "FrameMotionResult",
    "MotionEstimationResult",
    "build_me_system",
    "me_cycle_model",
    "estimate_frame_motion",
    "full_search_me",
    "DctResult",
    "build_dct_system",
    "dct8_fabric",
    "dct8_float",
    "dct8_reference",
    "MatVecResult",
    "build_matvec_system",
    "matvec_fabric",
    "matvec_reference",
    "row_program",
    "FifoPlan",
    "build_delay_line",
    "delay_line",
    "plan_delay",
    "tap_lane0",
    "CordicResult",
    "compile_cordic",
    "cordic_rotate_fabric",
    "cordic_vector_fabric",
    "rotation_graph",
    "vectoring_graph",
    "NcoResult",
    "build_nco",
    "cordic_backend_graph",
    "nco_fabric",
    "shaper_graph",
    "RESAMPLERS",
    "ResampleResult",
    "downsample2_fabric",
    "downsample2_graph",
    "downsample3_fabric",
    "downsample3_graph",
    "upsample2_fabric",
    "upsample2_graph",
    "upsample3_fabric",
    "upsample3_graph",
    "MIXER4_GAINS",
    "MixResult",
    "mixer_fabric",
    "mixer_graph",
    "vca_fabric",
    "vca_graph",
    "EffectResult",
    "build_echo",
    "chorus_fabric",
    "chorus_graph",
    "echo_fabric",
    "ComplexResult",
    "cmag_fabric",
    "cmag_graph",
    "cmul4_graph",
    "cmul_fabric",
    "RingMacResult",
    "build_ringmac",
    "ringmac_fabric",
    "ringmac_program",
    "ScenarioResult",
    "run_effects_chain",
    "run_synth_voice",
]
