"""Hypothesis property suite for the scenario-library golden models.

The goldens in :mod:`repro.kernels.reference` are the bit-exact spec the
fabric is tested against, so their *mathematical* properties are pinned
here once, against floats and big-integer arithmetic:

* CORDIC rotation/vectoring track the real rotation within tight
  absolute bounds (gain included), and the vectoring residual collapses;
* the half-band resampler's even phase is a perfect-reconstruction
  identity, the odd phase a bounded midpoint on band-limited signals,
  and all four factors are DC-exact after their warm-ups;
* complex multiply is the exact big-integer product wrapped mod 2^16 —
  including both INT16 boundaries;
* the NCO's parabolic shaper stays within ~5.7% of a true sine and the
  phase accumulator is exactly ``fcw * (n+1)`` wrapped.
"""

from __future__ import annotations

import math

from hypothesis import example, given, settings, strategies as st

from repro import word
from repro.kernels import reference

int16 = st.integers(min_value=-32768, max_value=32767)

#: Rotation-mode convergence region with comfortable margin (the mode
#: converges for |angle| <= ~18189 units of 2^16/turn).
angles = st.integers(min_value=-16000, max_value=16000)
coords = st.integers(min_value=-9000, max_value=9000)


def _wrap(v: int) -> int:
    return word.to_signed(word.from_signed(v & 0xFFFF))


class TestCordicProperties:
    @given(x=coords, y=coords, z=angles)
    @settings(max_examples=200)
    def test_rotation_tracks_float_rotation(self, x, y, z):
        xr, yr, _ = reference.cordic_rotate(x, y, z, iterations=12)
        theta = 2 * math.pi * z / 65536
        k = reference.CORDIC_GAIN
        xf = k * (x * math.cos(theta) - y * math.sin(theta))
        yf = k * (x * math.sin(theta) + y * math.cos(theta))
        assert abs(xr - xf) <= 26
        assert abs(yr - yf) <= 26

    @given(x=st.integers(min_value=500, max_value=9000), y=coords)
    @settings(max_examples=200)
    def test_vectoring_magnitude_and_angle(self, x, y):
        xr, yr, zr = reference.cordic_vector(x, y, 0, iterations=12)
        magnitude = reference.CORDIC_GAIN * math.hypot(x, y)
        angle = math.atan2(y, x) * 65536 / (2 * math.pi)
        assert abs(xr - magnitude) <= 16
        assert abs(yr) <= 24          # the residual collapses to ~0
        delta = abs(zr - angle) % 65536
        assert min(delta, 65536 - delta) <= 48

    @given(x=coords, y=coords, z=angles)
    @settings(max_examples=100)
    def test_zero_iterations_region_monotone(self, x, y, z):
        # More iterations never worsen the angle residual in rotation
        # mode: |z_out| shrinks (or wraps equal) as stages are added.
        _, _, z4 = reference.cordic_rotate(x, y, z, iterations=4)
        _, _, z12 = reference.cordic_rotate(x, y, z, iterations=12)
        assert abs(z12) <= abs(z4)


class TestResamplerProperties:
    @given(st.lists(int16, min_size=1, max_size=48))
    @settings(max_examples=150)
    def test_up2_even_phase_perfect_reconstruction(self, signal):
        up = reference.upsample2(signal)
        assert len(up) == 2 * len(signal)
        assert up[0::2] == [0] + signal[:-1]

    @given(st.lists(st.integers(min_value=-32, max_value=32),
                    min_size=6, max_size=48))
    @settings(max_examples=150)
    def test_up2_odd_phase_bounded_midpoint(self, deltas):
        # Band-limited (small-step) signal: the half-band interpolant
        # stays within a few LSBs of the true midpoint after warm-up.
        signal, x = [], 0
        for d in deltas:
            x = max(-20000, min(20000, x + d))
            signal.append(x)
        odd = reference.upsample2(signal)[1::2]
        for n in range(4, len(signal)):
            midpoint = (signal[n - 1] + signal[n]) / 2
            assert abs(odd[n] - midpoint) <= 48

    @given(st.integers(min_value=-2047, max_value=2047))
    def test_up2_dc_exact(self, level):
        up = reference.upsample2([level] * 12)
        assert all(v == level for v in up[6:])

    @given(st.integers(min_value=-8191, max_value=8191))
    def test_down2_dc_exact(self, level):
        down = reference.downsample2([level] * 12)
        assert all(v == level for v in down[1:])

    @given(st.integers(min_value=-127, max_value=127))
    def test_up3_down3_dc_exact(self, level):
        up = reference.upsample3([level] * 12)
        assert all(v == level for v in up[6:])
        down = reference.downsample3([level] * 12)
        assert all(v == level for v in down)

    @given(st.lists(int16, min_size=1, max_size=30))
    def test_lengths(self, signal):
        assert len(reference.upsample3(signal)) == 3 * len(signal)
        assert len(reference.downsample2(signal)) == len(signal) // 2
        assert len(reference.downsample3(signal)) == len(signal) // 3


class TestComplexWrapProperties:
    @given(a=int16, b=int16, c=int16, d=int16)
    @example(a=-32768, b=-32768, c=-32768, d=-32768)
    @example(a=32767, b=32767, c=32767, d=32767)
    @example(a=-32768, b=32767, c=-32768, d=32767)
    @settings(max_examples=300)
    def test_cmul_is_exact_product_wrapped(self, a, b, c, d):
        (re,), (im,) = reference.complex_multiply([a], [b], [c], [d])
        assert re == _wrap(_wrap(a * c) - _wrap(b * d))
        assert im == _wrap(_wrap(a * d) + _wrap(b * c))

    @given(re=int16, im=int16)
    @example(re=-32768, im=-32768)
    @settings(max_examples=300)
    def test_cmag_bounds(self, re, im):
        (mag,) = reference.complex_magnitude([re], [im])
        # alpha-max-beta-min: never low by more than ~4%, never more
        # than ~12% high (exact for |z| on an axis) — on non-wrapping
        # magnitudes.  ABS wraps INT16_MIN to itself, so exclude it.
        if re == -32768 or im == -32768:
            return
        hi = max(abs(re), abs(im))
        lo = min(abs(re), abs(im))
        if hi + (lo >> 1) > 32767:
            # The final ADD wraps like every fabric ADD — spec, not bug.
            assert mag == _wrap(hi + (lo >> 1))
            return
        true = math.hypot(re, im)
        assert mag >= hi
        if true:
            assert mag / true <= 1.12

    @given(a=int16, b=int16)
    def test_cmul_by_one_is_identity(self, a, b):
        (re,), (im,) = reference.complex_multiply([a], [b], [1], [0])
        assert (re, im) == (a, b)


class TestNcoProperties:
    @given(fcw=int16, length=st.integers(min_value=1, max_value=40))
    @settings(max_examples=150)
    def test_phase_accumulator_exact(self, fcw, length):
        phases = reference.nco_phases(fcw, length)
        assert phases == [_wrap(fcw * (n + 1)) for n in range(length)]

    @given(p=int16)
    @example(p=-32768)
    @example(p=32767)
    @example(p=0)
    @settings(max_examples=300)
    def test_shaper_tracks_sine(self, p):
        if p == -32768:
            # ABS wrap: the fabric's |INT16_MIN| = INT16_MIN is spec.
            assert reference.sine_shape(p) == \
                reference.sine_shape(-32768)
            return
        value = reference.sine_shape(p)
        ideal = 16384 * math.sin(math.pi * p / 32768)
        assert abs(value - ideal) <= 1200

    @given(fcw=st.integers(min_value=-8000, max_value=8000),
           length=st.integers(min_value=1, max_value=32))
    def test_nco_is_shaped_phase(self, fcw, length):
        phases = reference.nco_phases(fcw, length)
        assert reference.nco(fcw, length) == \
            [reference.sine_shape(p) for p in phases]


class TestRingMacProperties:
    @given(st.lists(st.tuples(
        st.lists(st.integers(min_value=-100, max_value=100),
                 min_size=3, max_size=8),
        st.lists(st.integers(min_value=-100, max_value=100),
                 min_size=3, max_size=8)),
        min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_partials_are_wrapped_dot_products(self, pairs):
        length = min(min(len(a), len(b)) for a, b in pairs)
        a = [pair[0][:length] for pair in pairs]
        b = [pair[1][:length] for pair in pairs]
        partials = reference.ringmac(a, b)
        for c, stream in enumerate(partials):
            acc = 0
            for k, got in enumerate(stream):
                acc = _wrap(acc + _wrap(a[c][k] * b[c][k]))
                assert got == acc
