"""Instruction-level model of the Intel MMX block-matching routine.

Table 1 compares the Systolic Ring against "Intel MMX instructions [8]"
for matching an 8x8 reference block against a +/-8-pixel search area.
This module rebuilds that comparator honestly:

* a functional simulator of the MMX subset the routine needs (64-bit
  ``mm`` registers, unsigned-saturating byte subtract, unpack, word
  add...), executing on real pixel data so its SADs can be checked
  bit-for-bit against the reference model;
* a cycle model with Pentium-MMX issue rules: two adjacent instructions
  pair into the U/V pipes unless they conflict (data dependency, two
  memory operands, or a non-pairable opcode), plus a misalignment
  penalty on search-window loads.

The routine itself is the classic absolute-difference kernel from
Intel's application notes (``psubusb`` twice + ``por`` — MMX has no
``psadbw``; that arrived with SSE), unrolled over the eight block rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class MmxInstr:
    """One instruction of the modelled subset."""

    mnemonic: str
    dst: str = ""
    src: str = ""
    imm: int = 0
    address: Optional[int] = None   # memory operand (byte address)
    pairable: bool = True
    is_mem: bool = False


def _split_bytes(value: int) -> List[int]:
    return [(value >> (8 * i)) & 0xFF for i in range(8)]


def _join_bytes(parts: List[int]) -> int:
    out = 0
    for i, b in enumerate(parts):
        out |= (b & 0xFF) << (8 * i)
    return out


def _split_words(value: int) -> List[int]:
    return [(value >> (16 * i)) & 0xFFFF for i in range(4)]


def _join_words(parts: List[int]) -> int:
    out = 0
    for i, w in enumerate(parts):
        out |= (w & 0xFFFF) << (16 * i)
    return out


class MmxMachine:
    """Functional + cycle model of the MMX subset.

    Cycle accounting: the instruction stream is scanned in order; each
    step issues one instruction in the U pipe and pairs the next one
    into the V pipe when allowed.  Misaligned quadword loads cost
    ``unaligned_penalty`` extra cycles (the search-window rows are
    almost never 8-byte aligned).
    """

    def __init__(self, memory_size: int = 1 << 16,
                 unaligned_penalty: int = 1):
        self.mm: Dict[str, int] = {f"mm{i}": 0 for i in range(8)}
        self.scalar: Dict[str, int] = {"eax": 0}
        self.memory = np.zeros(memory_size, dtype=np.uint8)
        self.unaligned_penalty = unaligned_penalty
        self.cycles = 0
        self.instructions = 0

    # -- functional execution -------------------------------------------

    def _read_reg(self, name: str) -> int:
        if name in self.mm:
            return self.mm[name]
        raise SimulationError(f"unknown MMX register {name!r}")

    def _load_qword(self, address: int) -> int:
        if address + 8 > len(self.memory):
            raise SimulationError(f"load at {address} out of memory")
        return int.from_bytes(self.memory[address:address + 8].tobytes(),
                              "little")

    def execute(self, instr: MmxInstr) -> None:
        """Run one instruction functionally (no cycle accounting)."""
        m = instr.mnemonic
        if m == "movq":
            if instr.address is not None:
                self.mm[instr.dst] = self._load_qword(instr.address)
            else:
                self.mm[instr.dst] = self._read_reg(instr.src)
        elif m == "pxor":
            self.mm[instr.dst] ^= self._read_reg(instr.src)
        elif m == "psubusb":
            a = _split_bytes(self.mm[instr.dst])
            b = _split_bytes(self._read_reg(instr.src))
            self.mm[instr.dst] = _join_bytes(
                [max(x - y, 0) for x, y in zip(a, b)])
        elif m == "por":
            self.mm[instr.dst] |= self._read_reg(instr.src)
        elif m == "punpcklbw":
            a = _split_bytes(self.mm[instr.dst])[:4]
            b = _split_bytes(self._read_reg(instr.src))[:4]
            inter = []
            for x, y in zip(a, b):
                inter += [x, y]
            self.mm[instr.dst] = _join_bytes(inter)
        elif m == "punpckhbw":
            a = _split_bytes(self.mm[instr.dst])[4:]
            b = _split_bytes(self._read_reg(instr.src))[4:]
            inter = []
            for x, y in zip(a, b):
                inter += [x, y]
            self.mm[instr.dst] = _join_bytes(inter)
        elif m == "paddw":
            a = _split_words(self.mm[instr.dst])
            b = _split_words(self._read_reg(instr.src))
            self.mm[instr.dst] = _join_words(
                [(x + y) & 0xFFFF for x, y in zip(a, b)])
        elif m == "psrlq":
            self.mm[instr.dst] = (self.mm[instr.dst] >> instr.imm) & MASK64
        elif m == "movd":
            self.scalar["eax"] = self.mm[instr.src] & 0xFFFFFFFF
        elif m in ("add", "cmp", "jnz", "dec", "mov"):
            pass  # scalar bookkeeping: cycle cost only
        else:
            raise SimulationError(f"unmodelled MMX instruction {m!r}")
        self.instructions += 1

    # -- cycle model -----------------------------------------------------

    @staticmethod
    def _regs_of(instr: MmxInstr) -> Tuple[set, set]:
        reads = set()
        writes = set()
        if instr.mnemonic in ("movq", "pxor", "psubusb", "por", "punpcklbw",
                              "punpckhbw", "paddw"):
            if instr.src:
                reads.add(instr.src)
            if instr.address is None and instr.mnemonic != "movq":
                reads.add(instr.dst)
            writes.add(instr.dst)
        elif instr.mnemonic == "psrlq":
            reads.add(instr.dst)
            writes.add(instr.dst)
        elif instr.mnemonic == "movd":
            reads.add(instr.src)
            writes.add("eax")
        return reads, writes

    def _can_pair(self, first: MmxInstr, second: MmxInstr) -> bool:
        if not (first.pairable and second.pairable):
            return False
        if first.is_mem and second.is_mem:
            return False
        r1, w1 = self._regs_of(first)
        r2, w2 = self._regs_of(second)
        return not (w1 & (r2 | w2))

    def run(self, program: List[MmxInstr]) -> None:
        """Execute *program*, accounting cycles with pairing."""
        i = 0
        while i < len(program):
            first = program[i]
            self.execute(first)
            cost = 1
            if first.is_mem and first.address is not None \
                    and first.address % 8 != 0:
                cost += self.unaligned_penalty
            if i + 1 < len(program) and self._can_pair(first,
                                                       program[i + 1]):
                second = program[i + 1]
                self.execute(second)
                if second.is_mem and second.address is not None \
                        and second.address % 8 != 0:
                    cost += self.unaligned_penalty
                i += 2
            else:
                i += 1
            self.cycles += cost


def _sad_routine(ref_base: int, cand_base: int, cand_stride: int,
                 rows: int = 8) -> List[MmxInstr]:
    """The per-candidate SAD routine (mm7 must already be zero).

    Fully unrolled over the block rows, as the Intel application-note
    code is — loop bookkeeping only survives at the candidate level.
    """
    program = [MmxInstr("pxor", "mm5", "mm5")]
    for r in range(rows):
        ref_addr = ref_base + r * 8
        cand_addr = cand_base + r * cand_stride
        program += [
            MmxInstr("movq", "mm0", address=ref_addr, is_mem=True),
            MmxInstr("movq", "mm1", address=cand_addr, is_mem=True),
            MmxInstr("movq", "mm2", "mm0"),
            MmxInstr("psubusb", "mm0", "mm1"),
            MmxInstr("psubusb", "mm1", "mm2"),
            MmxInstr("por", "mm0", "mm1"),
            MmxInstr("movq", "mm2", "mm0"),
            MmxInstr("punpcklbw", "mm2", "mm7"),
            MmxInstr("punpckhbw", "mm0", "mm7"),
            MmxInstr("paddw", "mm5", "mm2"),
            MmxInstr("paddw", "mm5", "mm0"),
        ]
    # horizontal sum of the four word accumulators
    program += [
        MmxInstr("movq", "mm0", "mm5"),
        MmxInstr("psrlq", "mm0", imm=32),
        MmxInstr("paddw", "mm5", "mm0"),
        MmxInstr("movq", "mm0", "mm5"),
        MmxInstr("psrlq", "mm0", imm=16),
        MmxInstr("paddw", "mm5", "mm0"),
        MmxInstr("movd", "eax", "mm5", pairable=False),
        # candidate bookkeeping: next address, best-SAD compare/branch
        MmxInstr("cmp"),
        MmxInstr("jnz", pairable=False),
        MmxInstr("mov"),
    ]
    return program


@dataclass
class MmxResult:
    """Outcome of the MMX block-matching run."""

    best: Tuple[int, int]
    best_sad: int
    sad_map: np.ndarray
    cycles: int
    instructions: int


def mmx_block_match(reference_block: np.ndarray,
                    search_area: np.ndarray) -> MmxResult:
    """Full-search block matching with the MMX routine.

    The SAD map is computed by actually executing the MMX instructions
    on the pixel data, so it is bit-exact against
    :func:`repro.kernels.reference.full_search`; the cycle count comes
    from the pairing model.
    """
    reference_block = np.asarray(reference_block, dtype=np.uint8)
    search_area = np.asarray(search_area, dtype=np.uint8)
    bh, bw = reference_block.shape
    if bw != 8:
        raise SimulationError(
            f"the MMX routine processes 8-pixel rows, block width {bw}"
        )
    sh, sw = search_area.shape
    ny, nx = sh - bh + 1, sw - bw + 1

    machine = MmxMachine()
    ref_base = 0
    area_base = 512
    machine.memory[ref_base:ref_base + bh * bw] = \
        reference_block.reshape(-1)
    for r in range(sh):
        machine.memory[area_base + r * sw:
                       area_base + r * sw + sw] = search_area[r, :]
    machine.mm["mm7"] = 0

    sad_map = np.zeros((ny, nx), dtype=np.int64)
    for dy in range(ny):
        for dx in range(nx):
            cand_base = area_base + dy * sw + dx
            machine.run(_sad_routine(ref_base, cand_base, sw, rows=bh))
            sad_map[dy, dx] = machine.scalar["eax"] & 0xFFFF
    best = np.unravel_index(int(np.argmin(sad_map)), sad_map.shape)
    return MmxResult(
        best=(int(best[0]), int(best[1])),
        best_sad=int(sad_map[best]),
        sad_map=sad_map,
        cycles=machine.cycles,
        instructions=machine.instructions,
    )
