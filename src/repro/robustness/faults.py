"""Seeded, deterministic fault models for the ring fabric.

Two families of fault, mirroring where state lives in the architecture:

* **Runtime faults** corrupt datapath state directly — a single-event
  upset (SEU) flips one bit of a register-file word, an OUT register, a
  switch feedback-pipeline word or a queued FIFO word; a dropped stream
  word removes one element from a host input queue.  On a ring with a
  live batch engine the same flip is applied to *every* lane (and the
  scalar lane-0 mirror), so the lanes stay in lockstep with a scalar
  golden run and recovery can be verified per lane.
* **Configuration faults** corrupt the configuration plane — one bit of
  an encoded microword or switch-route word, or a whole Dnode stuck
  disabled (NOP local program).  These are applied through
  :class:`~repro.core.config_memory.ConfigMemory` write paths, so the
  ring's invalidation-listener hooks fire exactly as for a legitimate
  reconfiguration and every compiled plan/kernel for the old
  configuration is dropped.  A flipped bit that does not decode to a
  valid word scans deterministically to the next bit that does.

Everything is driven by :class:`FaultInjector`, which owns a
``random.Random(seed)``: the same seed over the same configuration
enumerates the same sites and plans the same :class:`FaultEvent` list,
making whole campaigns reproducible.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import MICROWORD_BITS, NOP_WORD
from repro.core.isa import decode as decode_microword
from repro.core.isa import encode as encode_microword
from repro.core.regfile import NUM_REGISTERS
from repro.core.ring import Ring
from repro.core.switch import PortKind, PortSource, decode_route, encode_route
from repro.errors import ConfigurationError, SimulationError


class FaultKind(enum.Enum):
    """Where a fault lands."""

    REGISTER = "register"          # SEU in a register-file word
    OUT = "out"                    # SEU in an OUT register
    PIPELINE = "pipeline"          # SEU in a feedback-pipeline word
    FIFO = "fifo"                  # SEU in a queued FIFO word
    CONFIG_WORD = "config-word"    # SEU in a configuration microword
    CONFIG_ROUTE = "config-route"  # SEU in a switch-route word
    STUCK_DNODE = "stuck-dnode"    # Dnode disabled (NOP local program)
    STREAM_DROP = "stream-drop"    # dropped host stream word


#: Runtime-state kinds: recoverable by rollback alone (no reconfiguration).
RUNTIME_KINDS = (FaultKind.REGISTER, FaultKind.OUT, FaultKind.PIPELINE,
                 FaultKind.FIFO, FaultKind.STREAM_DROP)
#: Configuration-plane kinds: applied through ConfigMemory write paths.
CONFIG_KINDS = (FaultKind.CONFIG_WORD, FaultKind.CONFIG_ROUTE,
                FaultKind.STUCK_DNODE)


@dataclass(frozen=True)
class FaultSite:
    """One injectable location; ``address`` is kind-specific:

    REGISTER ``(layer, pos, reg)`` · OUT ``(layer, pos)`` ·
    PIPELINE ``(switch, stage, lane)`` (1-based stage/lane) ·
    FIFO ``(layer, pos, channel)`` · CONFIG_WORD ``(layer, pos)`` ·
    CONFIG_ROUTE ``(switch, pos, port)`` · STUCK_DNODE ``(layer, pos)`` ·
    STREAM_DROP ``(channel,)``.
    """

    kind: FaultKind
    address: Tuple[int, ...]

    def describe(self) -> str:
        return f"{self.kind.value}@{'.'.join(map(str, self.address))}"


@dataclass(frozen=True)
class FaultEvent:
    """A planned injection: *site* at fabric cycle *cycle*.

    ``bit`` selects the flipped bit for SEU kinds (0..15); ``index``
    selects the FIFO word / local-program slot where one applies.
    """

    cycle: int
    site: FaultSite
    bit: int = 0
    index: int = 0

    def describe(self) -> str:
        return f"{self.site.describe()} bit={self.bit} @cycle {self.cycle}"


def enumerate_sites(ring: Ring,
                    kinds: Optional[Sequence[FaultKind]] = None,
                    stream_channels: Sequence[int] = ()) -> List[FaultSite]:
    """Every injectable site of *ring*, in deterministic order.

    FIFO sites cover the queues that exist at enumeration time;
    CONFIG_ROUTE sites cover the ports that are actually routed (an
    unrouted port holds no configuration word to upset).
    """
    wanted = tuple(kinds) if kinds is not None else tuple(FaultKind)
    g = ring.geometry
    sites: List[FaultSite] = []
    for layer in range(g.layers):
        for pos in range(g.width):
            if FaultKind.REGISTER in wanted:
                sites.extend(
                    FaultSite(FaultKind.REGISTER, (layer, pos, r))
                    for r in range(NUM_REGISTERS))
            if FaultKind.OUT in wanted:
                sites.append(FaultSite(FaultKind.OUT, (layer, pos)))
            if FaultKind.CONFIG_WORD in wanted:
                sites.append(FaultSite(FaultKind.CONFIG_WORD, (layer, pos)))
            if FaultKind.STUCK_DNODE in wanted:
                sites.append(FaultSite(FaultKind.STUCK_DNODE, (layer, pos)))
    if FaultKind.PIPELINE in wanted:
        for k in range(g.layers):
            for stage in range(1, g.pipeline_depth + 1):
                for lane in range(1, g.width + 1):
                    sites.append(
                        FaultSite(FaultKind.PIPELINE, (k, stage, lane)))
    if FaultKind.FIFO in wanted:
        sites.extend(FaultSite(FaultKind.FIFO, key)
                     for key in sorted(ring._fifos))
    if FaultKind.CONFIG_ROUTE in wanted:
        for k in range(g.layers):
            cfg = ring.switch(k).config
            for pos in range(g.width):
                for port in (1, 2):
                    if cfg.source_for(pos, port).kind is not PortKind.ZERO:
                        sites.append(
                            FaultSite(FaultKind.CONFIG_ROUTE,
                                      (k, pos, port)))
    if FaultKind.STREAM_DROP in wanted:
        sites.extend(FaultSite(FaultKind.STREAM_DROP, (ch,))
                     for ch in stream_channels)
    return sites


@dataclass
class InjectionRecord:
    """What one :meth:`FaultInjector.inject` actually did."""

    event: FaultEvent
    applied: bool
    detail: str = ""

    def describe(self) -> str:
        status = "applied" if self.applied else "masked"
        tail = f" ({self.detail})" if self.detail else ""
        return f"{self.event.describe()}: {status}{tail}"


class FaultInjector:
    """Deterministic fault source for one ring.

    Args:
        ring: the target fabric.
        seed: drives site/bit/cycle selection — same seed, same
            configuration and same call sequence give the same faults.
        kinds: restrict to a subset of :class:`FaultKind`.
        data: a :class:`~repro.host.streams.DataController` for
            STREAM_DROP faults (its channels become injectable sites).
    """

    def __init__(self, ring: Ring, seed: int,
                 kinds: Optional[Sequence[FaultKind]] = None,
                 data=None):
        self.ring = ring
        self.seed = seed
        self.rng = random.Random(seed)
        self.data = data
        channels = ()
        if data is not None:
            channels = tuple(sorted(data._channels))
        self.sites = enumerate_sites(ring, kinds=kinds,
                                     stream_channels=channels)
        if not self.sites:
            raise ConfigurationError(
                "no injectable fault sites for the requested kinds")
        self.log: List[InjectionRecord] = []

    # -- planning ------------------------------------------------------

    def plan(self, count: int, first_cycle: int,
             last_cycle: int) -> List[FaultEvent]:
        """Draw *count* events over ``[first_cycle, last_cycle]``.

        Sorted by cycle (stable), so a campaign replays them in
        injection order.
        """
        if count < 0:
            raise ConfigurationError(f"fault count must be >= 0, got {count}")
        if last_cycle < first_cycle:
            raise ConfigurationError(
                f"empty injection window [{first_cycle}, {last_cycle}]")
        events = [self.random_event(
            self.rng.randint(first_cycle, last_cycle))
            for _ in range(count)]
        return sorted(events, key=lambda e: e.cycle)

    def random_event(self, cycle: int) -> FaultEvent:
        """One event at *cycle*: random site, bit and index."""
        site = self.rng.choice(self.sites)
        return FaultEvent(cycle=cycle, site=site,
                          bit=self.rng.randrange(word.WIDTH),
                          index=self.rng.randrange(256))

    # -- injection -----------------------------------------------------

    def inject(self, event: FaultEvent) -> InjectionRecord:
        """Apply *event* to the ring now; returns what happened.

        Counts toward :attr:`~repro.core.ring.Ring.faults_injected` and
        appends to :attr:`log` (the campaign's recovery trace) whether or
        not the fault landed (an SEU aimed at an empty FIFO is masked).
        """
        handler = _HANDLERS[event.site.kind]
        applied, detail = handler(self, event)
        self.ring.faults_injected += 1
        record = InjectionRecord(event=event, applied=applied, detail=detail)
        self.log.append(record)
        return record

    # -- per-kind handlers --------------------------------------------

    def _flip_register(self, event: FaultEvent):
        layer, pos, reg = event.site.address
        mask = 1 << event.bit
        dn = self.ring.dnode(layer, pos)
        dn.regs._values[reg] ^= mask
        engine = self.ring._batch_engine
        if engine is not None:
            engine.regs[layer, pos, reg, :] ^= mask
        return True, f"R{reg} -> {dn.regs._values[reg]:#06x}"

    def _flip_out(self, event: FaultEvent):
        layer, pos = event.site.address
        mask = 1 << event.bit
        dn = self.ring.dnode(layer, pos)
        dn._out ^= mask
        engine = self.ring._batch_engine
        if engine is not None:
            engine.outs[layer, pos, :] ^= mask
        return True, f"OUT -> {dn._out:#06x}"

    def _flip_pipeline(self, event: FaultEvent):
        k, stage, lane = event.site.address
        mask = 1 << event.bit
        sw = self.ring.switch(k)
        sw.rp_write(stage, lane, sw.rp_read(stage, lane) ^ mask)
        engine = self.ring._batch_engine
        if engine is not None:
            depth = self.ring.geometry.pipeline_depth
            slot = (engine._head + stage - 1) % depth
            engine.pipes[k, lane - 1, slot, :] ^= mask
        return True, f"Rp({stage},{lane}) of switch {k}"

    def _flip_fifo(self, event: FaultEvent):
        key = event.site.address
        mask = 1 << event.bit
        queue = self.ring._fifos.get(key)
        applied = False
        if queue:
            idx = event.index % len(queue)
            queue[idx] ^= mask
            applied = True
        engine = self.ring._batch_engine
        if engine is not None:
            fifo = engine._fifos.get(key)
            if fifo is not None:
                for lane in range(engine.batch):
                    count = int(fifo.count[lane])
                    if count:
                        idx = event.index % count
                        slot = (int(fifo.head[lane]) + idx) % fifo.capacity
                        fifo.data[slot, lane] ^= mask
                        applied = True
        detail = "" if applied else "FIFO empty"
        return applied, detail

    def _flip_config_word(self, event: FaultEvent):
        layer, pos = event.site.address
        dn = self.ring.dnode(layer, pos)
        cfg = self.ring.config
        if dn.mode is DnodeMode.LOCAL:
            slot = event.index % dn.local.limit
            current = dn.local.slots()[slot]
        else:
            slot = None
            current = dn.global_word
        flipped = _flip_valid_microword(current, event.bit)
        if flipped is None:
            return False, "no valid single-bit corruption"
        bit, new_word = flipped
        if slot is None:
            cfg.write_microword(layer, pos, new_word)
            return True, f"global word bit {bit}"
        cfg.write_local_slot(layer, pos, slot, new_word)
        return True, f"local slot {slot} bit {bit}"

    def _flip_config_route(self, event: FaultEvent):
        k, pos, port = event.site.address
        sw = self.ring.switch(k)
        current = sw.config.source_for(pos, port)
        raw = encode_route(current)
        g = self.ring.geometry
        for offset in range(16):
            bit = (event.bit + offset) % 16
            try:
                src = decode_route(raw ^ (1 << bit))
            except ConfigurationError:
                continue
            if src == current or not _route_is_runnable(src, g):
                continue
            try:
                self.ring.config.write_switch_route(k, pos, port, src)
            except ConfigurationError:
                continue
            return True, f"route {pos}.{port} bit {bit} -> {src}"
        return False, "no valid single-bit corruption"

    def _stick_dnode(self, event: FaultEvent):
        layer, pos = event.site.address
        cfg = self.ring.config
        cfg.write_local_program(layer, pos, [NOP_WORD])
        cfg.write_mode(layer, pos, DnodeMode.LOCAL)
        return True, "forced NOP local program"

    def _drop_stream(self, event: FaultEvent):
        if self.data is None:
            return False, "no data controller attached"
        (channel,) = event.site.address
        ch = self.data.channel(channel)
        dropped = ch.drop_next()
        return dropped > 0, f"dropped {dropped} word(s)"


def _flip_valid_microword(current, start_bit: int):
    """First single-bit corruption of *current* that decodes validly.

    Scans bits deterministically from *start_bit* upward (mod the
    encoded width) and skips flips that decode back to an equivalent
    word.  Returns ``(bit, MicroWord)`` or None.
    """
    raw = encode_microword(current)
    for offset in range(MICROWORD_BITS):
        bit = (start_bit + offset) % MICROWORD_BITS
        try:
            candidate = decode_microword(raw ^ (1 << bit))
        except (ConfigurationError, SimulationError, ValueError):
            continue
        if candidate != current:
            return bit, candidate
    return None


def _route_is_runnable(src: PortSource, geometry) -> bool:
    """Would the fabric execute with this route (vs crash on resolve)?

    ``decode_route`` accepts any in-range field encoding, but the
    interpreter raises on out-of-range UP positions and Rp taps; a
    *runnable* corruption keeps the simulation going so detection
    happens through state divergence, as on real hardware.
    """
    if src.kind is PortKind.UP:
        return src.index < geometry.width
    if src.kind is PortKind.RP:
        return (1 <= src.index <= geometry.pipeline_depth
                and 1 <= src.lane <= geometry.width)
    return True


_HANDLERS = {
    FaultKind.REGISTER: FaultInjector._flip_register,
    FaultKind.OUT: FaultInjector._flip_out,
    FaultKind.PIPELINE: FaultInjector._flip_pipeline,
    FaultKind.FIFO: FaultInjector._flip_fifo,
    FaultKind.CONFIG_WORD: FaultInjector._flip_config_word,
    FaultKind.CONFIG_ROUTE: FaultInjector._flip_config_route,
    FaultKind.STUCK_DNODE: FaultInjector._stick_dnode,
    FaultKind.STREAM_DROP: FaultInjector._drop_stream,
}


__all__ = [
    "CONFIG_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSite",
    "InjectionRecord",
    "RUNTIME_KINDS",
    "enumerate_sites",
]
