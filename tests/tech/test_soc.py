"""Tests for the Fig. 7 SoC floor-plan budget."""

import pytest

from repro.tech.soc import ARM7TDMI_MM2, SocBudget, foreseeable_soc
from repro.errors import TechnologyError


class TestBudget:
    def test_die_area(self):
        budget = SocBudget(4.0, 3.0)
        assert budget.die_mm2 == 12.0

    def test_add_and_sum(self):
        budget = SocBudget(4.0, 3.0)
        budget.add("a", 2.0)
        budget.add("b", 3.0)
        assert budget.used_mm2 == 5.0
        assert budget.free_mm2 == 7.0
        assert budget.fits

    def test_overflow_detected(self):
        budget = SocBudget(1.0, 1.0)
        budget.add("huge", 2.0)
        assert not budget.fits

    def test_negative_area_rejected(self):
        with pytest.raises(TechnologyError):
            SocBudget(1, 1).add("x", -0.5)

    def test_block_lookup(self):
        budget = SocBudget(4, 3)
        budget.add("cpu", 0.5)
        assert budget.block_area("cpu") == 0.5
        with pytest.raises(TechnologyError):
            budget.block_area("gpu")

    def test_str_report(self):
        budget = SocBudget(4, 3)
        budget.add("cpu", 0.5)
        assert "cpu" in str(budget)
        assert "fits" in str(budget)


class TestForeseeableSoc:
    """Fig. 7: a 12 mm^2 0.18 um die with ARM7 + Ring-64."""

    def test_fits(self):
        assert foreseeable_soc().fits

    def test_arm7_area_as_printed(self):
        budget = foreseeable_soc()
        assert budget.block_area("arm7tdmi") == ARM7TDMI_MM2 == 0.54

    def test_ring64_near_paper_value(self):
        budget = foreseeable_soc()
        assert budget.block_area("ring-64") == pytest.approx(3.4, rel=0.02)

    def test_ring128_overflows_the_sketch(self):
        """Doubling the ring (6.5 mm^2) breaks the 12 mm^2 budget — the
        paper's Ring-64 choice is near the sweet spot, not arbitrary."""
        budget = foreseeable_soc(ring_dnodes=128)
        assert not budget.fits
        assert budget.free_mm2 > -1.0  # but only just

    def test_ring96_fits_with_headroom(self):
        assert foreseeable_soc(ring_dnodes=96).fits

    def test_custom_peripherals(self):
        budget = foreseeable_soc(peripherals={"dsp": 1.0})
        assert budget.block_area("dsp") == 1.0
