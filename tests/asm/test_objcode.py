"""Tests for the binary object-code container."""

import pytest
from hypothesis import given, strategies as st

from repro.asm.objcode import ObjectCode, PlaneSpec
from repro.errors import LoaderError


def sample_object():
    plane = PlaneSpec(
        name="boot",
        dnode_words=[(0, 0), (3, 1)],
        modes=[(0, 0), (3, 1)],
        local_slots=[(3, 0, 1), (3, 1, 2)],
        local_limits=[(3, 2)],
        routes=[(0, 0, 1, 3)],
    )
    return ObjectCode(
        layers=4, width=2,
        cfg_rom=[0x12345, 0xABCDE, 0x00001, 0x2001],
        program=[0xDEADBEEF, 0x04000000],
        planes=[plane],
        initial_plane=0,
        symbols={"start": 0, "loop": 1},
    )


class TestSerialization:
    def test_roundtrip(self):
        obj = sample_object()
        back = ObjectCode.from_bytes(obj.to_bytes())
        assert back.layers == obj.layers
        assert back.width == obj.width
        assert back.cfg_rom == obj.cfg_rom
        assert back.program == obj.program
        assert back.initial_plane == obj.initial_plane
        assert back.symbols == obj.symbols
        plane = back.planes[0]
        assert plane.name == "boot"
        assert [tuple(t) for t in plane.dnode_words] == [(0, 0), (3, 1)]
        assert [tuple(t) for t in plane.local_slots] == [(3, 0, 1),
                                                         (3, 1, 2)]
        assert [tuple(t) for t in plane.routes] == [(0, 0, 1, 3)]

    def test_no_initial_plane(self):
        obj = sample_object()
        obj.initial_plane = None
        assert ObjectCode.from_bytes(obj.to_bytes()).initial_plane is None

    def test_empty_object(self):
        obj = ObjectCode(layers=2, width=1)
        back = ObjectCode.from_bytes(obj.to_bytes())
        assert back.cfg_rom == [] and back.planes == []

    def test_bad_magic(self):
        with pytest.raises(LoaderError, match="magic"):
            ObjectCode.from_bytes(b"NOPE" + b"\x00" * 20)

    def test_truncated(self):
        blob = sample_object().to_bytes()
        with pytest.raises(LoaderError, match="truncated"):
            ObjectCode.from_bytes(blob[:10])

    def test_bad_version(self):
        blob = bytearray(sample_object().to_bytes())
        blob[4] = 99
        with pytest.raises(LoaderError, match="version"):
            ObjectCode.from_bytes(bytes(blob))

    def test_rom_entry_width_checked(self):
        obj = ObjectCode(layers=2, width=1, cfg_rom=[1 << 40])
        with pytest.raises(LoaderError, match="40 bits"):
            obj.to_bytes()

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 40) - 1),
                    max_size=20),
           st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    max_size=20))
    def test_rom_and_program_roundtrip(self, rom, program):
        obj = ObjectCode(layers=3, width=2, cfg_rom=rom, program=program)
        back = ObjectCode.from_bytes(obj.to_bytes())
        assert back.cfg_rom == rom and back.program == program


class TestPlaneLookup:
    def test_by_name(self):
        assert sample_object().plane_index("boot") == 0

    def test_missing_name(self):
        with pytest.raises(LoaderError, match="no plane"):
            sample_object().plane_index("ghost")
