"""Signal tracing: per-cycle waveform capture from a running fabric.

Debugging a systolic mapping needs the same tool RTL designers use — a
waveform view.  :class:`SignalTrace` hooks a :class:`~repro.core.ring.Ring`
(or :class:`~repro.host.system.RingSystem`) and records selected signals
every cycle:

* ``out``  — a Dnode's output register,
* ``r0..r3`` — a Dnode's register-file entries,
* the shared ``bus``.

The capture can be rendered as an ASCII timing diagram
(:meth:`SignalTrace.render`) or exported as an IEEE-1364 VCD file
(:func:`write_vcd`) loadable in GTKWave and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import word
from repro.core.ring import Ring
from repro.errors import SimulationError


@dataclass(frozen=True)
class Probe:
    """One traced signal."""

    name: str
    layer: int = -1       # -1 for the bus probe
    position: int = 0
    register: Optional[int] = None   # None = the OUT register

    @classmethod
    def out(cls, layer: int, position: int) -> "Probe":
        return cls(f"D{layer}.{position}.out", layer, position)

    @classmethod
    def reg(cls, layer: int, position: int, index: int) -> "Probe":
        return cls(f"D{layer}.{position}.r{index}", layer, position,
                   register=index)

    @classmethod
    def bus(cls) -> "Probe":
        return cls("bus")


class SignalTrace:
    """Records probe values after every fabric cycle."""

    def __init__(self, ring: Ring, probes: List[Probe]):
        if not probes:
            raise SimulationError("trace needs at least one probe")
        self.ring = ring
        self.probes = list(probes)
        self.samples: Dict[str, List[int]] = {p.name: [] for p in probes}
        self._last_bus = 0
        for probe in probes:
            if probe.layer >= 0:
                ring.dnode(probe.layer, probe.position)  # validate address
        ring.set_trace(self._capture)

    def detach(self) -> None:
        """Stop recording (removes the ring hook)."""
        self.ring.set_trace(None)

    def _capture(self, ring: Ring) -> None:
        for probe in self.probes:
            if probe.layer < 0:
                value = self._last_bus
            else:
                dn = ring.dnode(probe.layer, probe.position)
                value = dn.out if probe.register is None \
                    else dn.regs.read(probe.register)
            self.samples[probe.name].append(value)

    def observe_bus(self, value: int) -> None:
        """Tell the trace what the bus carries (systems call this)."""
        self._last_bus = word.check(value, "bus")

    @property
    def cycles(self) -> int:
        return len(next(iter(self.samples.values())))

    def render(self, signed: bool = True, last: Optional[int] = None,
               ) -> str:
        """ASCII timing diagram: one row per signal, one column per cycle."""
        if self.cycles == 0:
            raise SimulationError("nothing traced yet")
        names = [p.name for p in self.probes]
        name_w = max(len(n) for n in names)
        count = self.cycles if last is None else min(last, self.cycles)
        start = self.cycles - count
        cell = 7
        header = " " * name_w + " |" + "".join(
            str(start + i).rjust(cell) for i in range(count))
        lines = [header, "-" * len(header)]
        for name in names:
            values = self.samples[name][start:]
            rendered = "".join(
                (str(word.to_signed(v)) if signed else f"{v:04x}")
                .rjust(cell)
                for v in values)
            lines.append(f"{name.ljust(name_w)} |{rendered}")
        return "\n".join(lines)


def write_vcd(trace: SignalTrace, path, timescale: str = "5 ns",
              module: str = "systolic_ring") -> None:
    """Export a trace as an IEEE-1364 VCD file (GTKWave-loadable).

    One VCD time unit per fabric cycle (the default 5 ns = 200 MHz).
    Only value *changes* are dumped, per the format.
    """
    if trace.cycles == 0:
        raise SimulationError("nothing traced yet")
    identifiers = {}
    for i, probe in enumerate(trace.probes):
        # printable VCD id characters start at '!'
        identifiers[probe.name] = chr(33 + i)
    lines = [
        "$date reproduction run $end",
        "$version repro systolic-ring tracer $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for probe in trace.probes:
        safe = probe.name.replace(".", "_")
        lines.append(
            f"$var wire 16 {identifiers[probe.name]} {safe} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]

    previous: Dict[str, Optional[int]] = {p.name: None
                                          for p in trace.probes}
    for t in range(trace.cycles):
        changes = []
        for probe in trace.probes:
            value = trace.samples[probe.name][t]
            if value != previous[probe.name]:
                changes.append(
                    f"b{value:016b} {identifiers[probe.name]}")
                previous[probe.name] = value
        if changes:
            lines.append(f"#{t}")
            lines.extend(changes)
    lines.append(f"#{trace.cycles}")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)


def parse_vcd(path) -> Dict[str, List[Tuple[int, int]]]:
    """Minimal VCD reader: signal name -> [(time, value), ...].

    Exists so tests (and users) can verify exported waveforms without an
    external viewer; handles exactly the subset :func:`write_vcd` emits.
    """
    names: Dict[str, str] = {}
    changes: Dict[str, List[Tuple[int, int]]] = {}
    time = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("$var"):
                parts = line.split()
                names[parts[3]] = parts[4]
                changes[parts[4]] = []
            elif line.startswith("#"):
                time = int(line[1:])
            elif line.startswith("b"):
                value_text, ident = line[1:].split()
                changes[names[ident]].append((time, int(value_text, 2)))
    return changes
