"""Tests for the word-addressable configuration space."""

import pytest

from repro.core.address_map import AddressMap, DNODE_STRIDE
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.core.switch import PortSource, encode_route
from repro.errors import ConfigurationError


def configured_ring():
    ring = make_ring(8)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=5))
    ring.config.write_local_program(1, 1, [
        MicroWord(Opcode.MUL, Source.FIFO1, Source.IMM, Dest.R0, imm=3),
        MicroWord(Opcode.MOV, Source.R0, dst=Dest.OUT),
    ])
    ring.config.write_mode(1, 1, DnodeMode.LOCAL)
    ring.config.write_switch_route(2, 0, 1, PortSource.rp(3, 2))
    return ring


class TestAddressing:
    def test_size_covers_all_state(self):
        ring = make_ring(8)
        amap = AddressMap(ring)
        assert amap.size == 8 * DNODE_STRIDE + 4 * 2 * 2

    def test_symbolic_addresses_distinct(self):
        amap = AddressMap(make_ring(8))
        addrs = set()
        for layer in range(4):
            for pos in range(2):
                addrs.add(amap.global_word_addr(layer, pos))
                addrs.add(amap.mode_addr(layer, pos))
                addrs.add(amap.limit_addr(layer, pos))
                for slot in range(8):
                    addrs.add(amap.slot_addr(layer, pos, slot))
        for sw in range(4):
            for pos in range(2):
                for port in (1, 2):
                    addrs.add(amap.route_addr(sw, pos, port))
        assert len(addrs) == 8 * (3 + 8) + 16

    def test_bounds_checked(self):
        amap = AddressMap(make_ring(8))
        with pytest.raises(ConfigurationError):
            amap.read(amap.size)
        with pytest.raises(ConfigurationError):
            amap.write(-1, 0)
        with pytest.raises(ConfigurationError):
            amap.slot_addr(0, 0, 8)
        with pytest.raises(ConfigurationError):
            amap.route_addr(0, 0, 3)


class TestReadback:
    def test_global_word_readback(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        base = amap.global_word_addr(0, 0)
        words = [amap.read(base + i) for i in range(3)]
        from repro.core.isa import encode
        raw = encode(ring.dnode(0, 0).global_word)
        assert words == [(raw >> 32) & 0xFF, (raw >> 16) & 0xFFFF,
                         raw & 0xFFFF]

    def test_mode_and_limit_readback(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        assert amap.read(amap.mode_addr(1, 1)) == 1
        assert amap.read(amap.limit_addr(1, 1)) == 2
        assert amap.read(amap.mode_addr(0, 0)) == 0

    def test_route_readback(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        value = amap.read(amap.route_addr(2, 0, 1))
        assert value == encode_route(PortSource.rp(3, 2))


class TestWrite:
    def test_write_immediate_field(self):
        """The low word of a microword is its immediate: writable alone."""
        ring = configured_ring()
        amap = AddressMap(ring)
        base = amap.global_word_addr(0, 0)
        amap.write(base + 2, 99)
        assert ring.dnode(0, 0).global_word.imm == 99
        assert ring.dnode(0, 0).global_word.op is Opcode.ADD

    def test_write_mode(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        amap.write(amap.mode_addr(0, 0), 1)
        assert ring.dnode(0, 0).mode is DnodeMode.LOCAL

    def test_write_route(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        amap.write(amap.route_addr(0, 1, 2),
                   encode_route(PortSource.host(3)))
        assert ring.switch(0).config.source_for(1, 2) == PortSource.host(3)

    def test_write_local_slot_word(self):
        ring = configured_ring()
        amap = AddressMap(ring)
        addr = amap.slot_addr(1, 1, 0) + 2  # immediate of slot 0
        amap.write(addr, 42)
        assert ring.dnode(1, 1).local.slots()[0].imm == 42

    def test_illegal_intermediate_state_rejected(self):
        """Writing a word that makes the microword undecodable fails."""
        ring = configured_ring()
        amap = AddressMap(ring)
        base = amap.global_word_addr(0, 0)
        with pytest.raises(ConfigurationError):
            amap.write(base, 0xFF)  # opcode bits -> illegal code

    def test_padding_write_rejected(self):
        amap = AddressMap(make_ring(8))
        with pytest.raises(ConfigurationError, match="padding"):
            amap.write(29, 0)  # inside dnode 0 stride, past the slots

    def test_value_range_checked(self):
        amap = AddressMap(make_ring(8))
        with pytest.raises(ConfigurationError):
            amap.write(3, 0x10000)


class TestImage:
    def test_dump_restore_roundtrip(self):
        source = configured_ring()
        image = AddressMap(source).dump()

        target = make_ring(8)
        AddressMap(target).restore(image)
        assert target.dnode(0, 0).global_word == \
            source.dnode(0, 0).global_word
        assert target.dnode(1, 1).mode is DnodeMode.LOCAL
        assert target.dnode(1, 1).local.slots()[0].imm == 3
        assert target.switch(2).config.source_for(0, 1) == \
            PortSource.rp(3, 2)

    def test_restored_fabric_behaves_identically(self):
        source = configured_ring()
        image = AddressMap(source).dump()
        target = make_ring(8)
        AddressMap(target).restore(image)

        for ring in (source, target):
            ring.config.write_switch_route(0, 0, 1, PortSource.host(0))
        values = [7, 11, 13]
        for ring in (source, target):
            stream = iter(values + [0, 0])
            ring.run(3, host_in=lambda ch: next(stream))
        assert source.dnode(0, 0).out == target.dnode(0, 0).out

    def test_image_length_checked(self):
        amap = AddressMap(make_ring(8))
        with pytest.raises(ConfigurationError, match="words"):
            amap.restore([0] * 3)
