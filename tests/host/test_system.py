"""Tests for the RingSystem orchestrator."""

import pytest

from repro.controller.core import RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.config_memory import ConfigPlane
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, MicroWord, Opcode, Source, encode
from repro.core.ring import make_ring
from repro.core.switch import PortSource, encode_route
from repro.host.system import RingSystem
from repro.errors import SimulationError


def mov_bus():
    return MicroWord(Opcode.MOV, Source.BUS, dst=Dest.OUT)


class TestUncontrolled:
    def test_runs_without_controller(self):
        system = RingSystem(make_ring(4))
        system.run(3)
        assert system.cycles == 3
        assert system.ring.cycles == 3

    def test_run_until_halt_needs_controller(self):
        with pytest.raises(SimulationError, match="controller"):
            RingSystem(make_ring(4)).run_until_halt()

    def test_negative_cycles(self):
        with pytest.raises(SimulationError):
            RingSystem(make_ring(4)).run(-2)


class TestControlled:
    def test_bus_value_reaches_fabric_same_cycle(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, mov_bus())
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=66),
            Instruction(ROp.BUSW, rs=1),
            Instruction(ROp.HALT),
        ])
        system = RingSystem(ring, ctrl)
        system.run_until_halt()
        assert ring.dnode(0, 0).out == 66

    def test_config_command_applied_same_cycle(self):
        ring = make_ring(4)
        rom = [encode(MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT,
                                imm=7))]
        ctrl = RiscController([
            Instruction(ROp.CFGDI, dnode=0, cfg=0),
            Instruction(ROp.HALT),
        ], cfg_rom=rom)
        system = RingSystem(ring, ctrl)
        system.step()
        # the configuration write governs this same fabric cycle
        assert ring.dnode(0, 0).out == 7

    def test_switch_route_command(self):
        ring = make_ring(4)
        rom = [encode_route(PortSource.host(1))]
        ctrl = RiscController(
            [Instruction(ROp.CFGS, sw=0, pos=0, port=1, cfg=0),
             Instruction(ROp.HALT)], cfg_rom=rom)
        RingSystem(ring, ctrl).run_until_halt()
        assert ring.switch(0).config.source_for(0, 1) == PortSource.host(1)

    def test_mode_command(self):
        ring = make_ring(4)
        ctrl = RiscController([Instruction(ROp.CFGMODE, dnode=3, mode=1),
                               Instruction(ROp.HALT)])
        RingSystem(ring, ctrl).run_until_halt()
        assert ring.dnode(1, 1).mode is DnodeMode.LOCAL

    def test_plane_command(self):
        ring = make_ring(4)
        plane = ConfigPlane(microwords={
            (0, 0): MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=3)
        })
        ctrl = RiscController([Instruction(ROp.CFGPLANE, plane=0),
                               Instruction(ROp.HALT)])
        system = RingSystem(ring, ctrl, planes=[plane])
        system.run_until_halt()
        assert ring.dnode(0, 0).out == 3

    def test_missing_plane_raises(self):
        ring = make_ring(4)
        ctrl = RiscController([Instruction(ROp.CFGPLANE, plane=2)])
        system = RingSystem(ring, ctrl)
        with pytest.raises(SimulationError, match="plane"):
            system.step()

    def test_run_until_halt_with_drain(self):
        ring = make_ring(4)
        ctrl = RiscController([Instruction(ROp.HALT)])
        system = RingSystem(ring, ctrl)
        system.run_until_halt(drain=3)
        assert system.cycles == 4

    def test_halt_timeout(self):
        ring = make_ring(4)
        ctrl = RiscController([Instruction(ROp.JMP, imm=0)])
        system = RingSystem(ring, ctrl)
        with pytest.raises(SimulationError, match="halt"):
            system.run_until_halt(max_cycles=10)


class TestTaps:
    def test_run_until_taps_full(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=1))
        system = RingSystem(ring)
        tap = system.data.add_tap(0, 0, limit=5)
        cycles = system.run_until_taps_full()
        assert cycles == 5
        assert tap.samples == [1] * 5

    def test_taps_full_requires_limited_tap(self):
        system = RingSystem(make_ring(4))
        system.data.add_tap(0, 0)  # unlimited
        with pytest.raises(SimulationError, match="limit"):
            system.run_until_taps_full()

    def test_taps_full_timeout(self):
        system = RingSystem(make_ring(4))
        system.data.add_tap(0, 0, limit=5, skip=100)
        with pytest.raises(SimulationError, match="taps"):
            system.run_until_taps_full(max_cycles=10)

    def test_streams_advance_each_cycle(self):
        ring = make_ring(4)
        ring.config.write_switch_route(0, 0, 1, PortSource.host(0))
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IN1, dst=Dest.OUT))
        system = RingSystem(ring)
        system.data.stream(0, [5, 6, 7])
        tap = system.data.add_tap(0, 0)
        system.run(3)
        assert tap.samples == [5, 6, 7]
