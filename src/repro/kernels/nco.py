"""Numerically controlled oscillator: phase accumulator + sine shaper.

The oscillator splits naturally across the two halves the fabric offers:

* the **phase accumulator** is one global-mode Dnode — ``ADD SELF, #fcw``
  — the tightest recurrence the architecture has (the frequency control
  word lives in the microword immediate, so retuning is one config
  write);
* the **sine shaper** is the multiplier-light parabolic approximation
  ``sin(pi*p/32768) ~ 4*p*(32767-|p|)/2^16`` — ABS/SUB/MULH/SHL down
  four layers, amplitude ~16380, worst-case error under ~6% of full
  scale (bounded by the Hypothesis property suite).

:func:`build_nco` wires both onto a ring (five layers, two lanes);
:func:`shaper_graph` exposes the feed-forward shaper as a compilable
dataflow graph (library name ``nco_wave``) driven by an external phase
stream, and :func:`cordic_backend_graph` swaps the parabola for a CORDIC
rotator producing sine *and* cosine from the same phase stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import word
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.host.system import RingSystem
from repro.kernels.cordic import rotation_graph
from repro.kernels.reference import ATAN16
from repro.kernels.taps import tap_lane0
from repro.compiler.graph import DataflowGraph

#: Layers the hand-mapped NCO occupies (accumulator + 4 shaper stages).
NCO_LAYERS = 5

#: Cycles from a phase word leaving the accumulator to its sample at the
#: output layer.
NCO_LATENCY = NCO_LAYERS - 1


@dataclass
class NcoResult:
    """Outcome of a fabric NCO run."""

    samples: List[int]
    fcw: int
    cycles: int
    dnodes_used: int


def shaper_graph() -> DataflowGraph:
    """Parabolic sine shaper as a dataflow graph (phase on channel 0).

    ``y = ((p * (32767 - |p|)) >> 16) << 2`` with the fabric's INT16_MIN
    ABS wrap — the ``nco_wave`` library graph.
    """
    g = DataflowGraph()
    p = g.input(0)
    b = g.op("sub", g.const(32767), g.op("abs", p))
    g.output(g.op("shl", g.op("mulh", p, b), g.const(2)))
    return g


def cordic_backend_graph(iterations: int = 8,
                         amplitude: int = 12000) -> DataflowGraph:
    """CORDIC oscillator backend: phase stream in, cosine/sine out.

    Rotates the constant vector ``(amplitude, 0)`` by each phase word —
    outputs 0/1 are the cosine/sine streams scaled by
    :data:`~repro.kernels.reference.CORDIC_GAIN` (pre-divide *amplitude*
    to compensate).  Output 2 is the angle residual.
    """
    g = DataflowGraph()
    phase = g.input(0)
    x: int = g.op("mov", g.const(word.to_signed(
        word.from_signed(int(amplitude)))))
    y: int = g.op("mov", g.const(0))
    z: int = phase
    for i in range(iterations):
        m = g.op("asr", z, g.const(15))
        ex = g.op("sub", g.op("xor", g.op("asr", y, g.const(i)), m), m)
        ey = g.op("sub", g.op("xor", g.op("asr", x, g.const(i)), m), m)
        ez = g.op("sub", g.op("xor", g.const(ATAN16[i]), m), m)
        x = g.op("sub", x, ex)
        y = g.op("add", y, ey)
        z = g.op("sub", z, ez)
    for node in (x, y, z):
        g.output(node)
    return g


def build_nco(fcw: int, ring: Optional[Ring] = None,
              phase: int = 0) -> RingSystem:
    """Configure *ring* as a free-running NCO (layers 0..4, lanes 0/1).

    Layer 0 accumulates the phase (``ADD SELF, #fcw`` — seeded by
    *phase* via the Dnode's output register); layers 1..4 shape it into
    the sine sample, published on layer 4 lane 0 every cycle.
    """
    if ring is None:
        ring = Ring(RingGeometry(layers=NCO_LAYERS, width=2))
    if ring.geometry.layers < NCO_LAYERS or ring.geometry.width < 2:
        raise ValueError(
            f"NCO needs a >= {NCO_LAYERS}x2 ring, got "
            f"{ring.geometry.layers}x{ring.geometry.width}")
    cfg = ring.config
    cfg.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT,
        imm=word.from_signed(int(fcw))))
    # lane 0 relays the raw phase, lane 1 carries |p| then 32767-|p|.
    cfg.write_switch_route(1, 0, 1, PortSource.up(0))
    cfg.write_microword(1, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_switch_route(1, 1, 1, PortSource.up(0))
    cfg.write_microword(1, 1, MicroWord(Opcode.ABS, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_switch_route(2, 0, 1, PortSource.up(0))
    cfg.write_microword(2, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_switch_route(2, 1, 1, PortSource.up(1))
    cfg.write_microword(2, 1, MicroWord(
        Opcode.SUB, Source.IMM, Source.IN1, Dest.OUT,
        imm=word.from_signed(32767)))
    cfg.write_switch_route(3, 0, 1, PortSource.up(0))
    cfg.write_switch_route(3, 0, 2, PortSource.up(1))
    cfg.write_microword(3, 0, MicroWord(Opcode.MULH, Source.IN1,
                                        Source.IN2, Dest.OUT))
    cfg.write_switch_route(4, 0, 1, PortSource.up(0))
    cfg.write_microword(4, 0, MicroWord(
        Opcode.SHL, Source.IN1, Source.IMM, Dest.OUT, imm=2))
    if phase:
        ring.dnode(0, 0).out = word.from_signed(int(phase))
    return RingSystem(ring)


def nco_fabric(fcw: int, length: int, ring: Optional[Ring] = None,
               phase: int = 0) -> NcoResult:
    """Generate *length* sine samples at frequency word *fcw*.

    Bit-exact against :func:`repro.kernels.reference.nco`.
    """
    system = build_nco(fcw, ring, phase=phase)
    tap = system.data.add_tap(NCO_LAYERS - 1, 0, skip=NCO_LATENCY,
                              limit=length)
    system.run(length + NCO_LATENCY)
    return NcoResult(
        samples=[word.to_signed(v) for v in tap_lane0(tap)],
        fcw=int(fcw), cycles=system.cycles, dnodes_used=6)
