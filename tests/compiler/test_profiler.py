"""Tests for the fabric profiler."""

import pytest

from repro.compiler.profiler import profile_report, utilization_by_dnode
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.errors import SimulationError


def _half_busy_ring():
    ring = make_ring(8)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
    ring.config.write_microword(1, 0, MicroWord(
        Opcode.MOV, Source.BUS, dst=Dest.OUT))
    ring.run(10)
    return ring


class TestUtilization:
    def test_busy_fraction_per_dnode(self):
        ring = _half_busy_ring()
        util = utilization_by_dnode(ring)
        assert util["D0.0"] == 1.0
        assert util["D1.0"] == 1.0
        assert util["D0.1"] == 0.0
        assert len(util) == 8

    def test_requires_a_run(self):
        with pytest.raises(SimulationError):
            utilization_by_dnode(make_ring(8))


class TestReport:
    def test_lists_busy_dnodes_only_by_default(self):
        report = profile_report(_half_busy_ring())
        assert "D0.0" in report and "D1.0" in report
        assert "D0.1" not in report

    def test_include_idle(self):
        report = profile_report(_half_busy_ring(), include_idle=True)
        assert "D0.1" in report

    def test_aggregates(self):
        report = profile_report(_half_busy_ring())
        assert "2/8 Dnodes busy" in report
        # 2 busy of 8 at 200 MHz -> 400 MIPS sustained
        assert "400 MIPS" in report
        assert "25.0%" in report

    def test_op_mix_columns(self):
        report = profile_report(_half_busy_ring())
        assert "muls" in report  # the MAC Dnode multiplied every cycle

    def test_requires_a_run(self):
        with pytest.raises(SimulationError):
            profile_report(make_ring(8))


class TestCompilerIntegration:
    def test_profile_of_compiled_program(self):
        from repro.compiler import DataflowGraph, compile_graph

        g = DataflowGraph()
        x = g.input(0)
        g.output(g.op("add", g.op("mul", x, g.const(3)), g.delay(x, 1)))
        prog = compile_graph(g)
        system = prog.build_system()
        prog.run([1, 2, 3, 4, 5], ring=system.ring)
        report = profile_report(system.ring)
        assert "3/4 Dnodes busy" in report  # mul + relay + add; 1 lane idle
