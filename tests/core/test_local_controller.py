"""Tests for the 9-register local sequencer (local mode)."""

import pytest

from repro.core.isa import Dest, MicroWord, Opcode, Source, NOP_WORD
from repro.core.local_controller import LocalController, NUM_SLOTS
from repro.errors import ConfigurationError


def mw(imm):
    return MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=imm)


class TestSlots:
    def test_powers_on_to_nops(self):
        lc = LocalController()
        assert lc.slots() == [NOP_WORD] * NUM_SLOTS
        assert lc.limit == 1

    def test_load_slot(self):
        lc = LocalController()
        lc.load_slot(3, mw(7))
        assert lc.slots()[3] == mw(7)

    @pytest.mark.parametrize("index", [-1, NUM_SLOTS])
    def test_slot_bounds(self, index):
        with pytest.raises(ConfigurationError):
            LocalController().load_slot(index, NOP_WORD)

    def test_slot_type_checked(self):
        with pytest.raises(ConfigurationError):
            LocalController().load_slot(0, "mov out, in1")


class TestProgram:
    def test_load_program_sets_limit_and_clears_rest(self):
        lc = LocalController()
        lc.load_slot(7, mw(9))  # stale content
        lc.load_program([mw(1), mw(2), mw(3)])
        assert lc.limit == 3
        assert lc.slots()[7] == NOP_WORD

    def test_load_program_resets_counter(self):
        lc = LocalController()
        lc.load_program([mw(1), mw(2)])
        lc.advance()
        lc.load_program([mw(3), mw(4)])
        assert lc.counter == 0

    def test_program_length_limits(self):
        with pytest.raises(ConfigurationError):
            LocalController().load_program([])
        with pytest.raises(ConfigurationError):
            LocalController().load_program([mw(0)] * 9)

    def test_max_length_program(self):
        lc = LocalController()
        lc.load_program([mw(i) for i in range(8)])
        assert lc.limit == 8


class TestCounter:
    def test_wraps_at_limit(self):
        lc = LocalController()
        lc.load_program([mw(10), mw(20), mw(30)])
        seen = []
        for _ in range(7):
            seen.append(lc.current().imm)
            lc.advance()
        assert seen == [10, 20, 30, 10, 20, 30, 10]

    def test_limit_one_is_steady_state(self):
        lc = LocalController()
        lc.load_program([mw(5)])
        for _ in range(3):
            assert lc.current().imm == 5
            lc.advance()

    def test_set_limit_validates(self):
        lc = LocalController()
        with pytest.raises(ConfigurationError):
            lc.set_limit(0)
        with pytest.raises(ConfigurationError):
            lc.set_limit(9)

    def test_shrinking_limit_reclamps_counter(self):
        lc = LocalController()
        lc.load_program([mw(i) for i in range(8)])
        for _ in range(6):
            lc.advance()
        assert lc.counter == 6
        lc.set_limit(4)
        assert lc.counter == 0

    def test_reset_counter(self):
        lc = LocalController()
        lc.load_program([mw(1), mw(2)])
        lc.advance()
        lc.reset_counter()
        assert lc.counter == 0

    def test_repr(self):
        assert "limit" in repr(LocalController())
