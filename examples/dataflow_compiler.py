#!/usr/bin/env python
"""The compiling/profiling tool the paper names as its future work.

Describes a small DSP application as a dataflow graph — a DC-removal
high-pass stage feeding an envelope detector — lets the compiler place
it onto the ring (inserting pass nodes and absorbing stream delays into
the switches' feedback pipelines), verifies the fabric run against the
graph's golden evaluation, shows the generated two-level assembly, and
prints the profiler's utilisation report.

Run:  python examples/dataflow_compiler.py
"""

import numpy as np

from repro.compiler import DataflowGraph, compile_graph
from repro.compiler.profiler import profile_report


def build_graph() -> tuple:
    """y = |x - x[n-1]| smoothed by a 2-sample average (envelope-ish)."""
    g = DataflowGraph()
    x = g.input(0)
    highpass = g.op("sub", x, g.delay(x, 1))        # DC removal
    magnitude = g.op("abs", highpass)               # rectifier
    envelope = g.output(g.op("avg2", magnitude,
                             g.delay(magnitude, 1)))  # smoother
    return g, envelope


def main() -> None:
    g, envelope = build_graph()
    print("dataflow graph:")
    print(g)

    prog = compile_graph(g)
    print(f"\ncompiled: {prog.resource_report()}\n")
    print("generated configuration (two-level assembly):")
    print(prog.to_assembly())

    rng = np.random.default_rng(1)
    carrier = (100 * np.sin(np.arange(40) / 2.0)).astype(int)
    signal = [int(v) for v in carrier + rng.integers(-5, 6, 40)]

    golden = g.evaluate({0: signal})[envelope]
    system = prog.build_system()
    fabric = prog.run({0: signal}, ring=system.ring)[envelope]
    assert fabric == golden, "fabric diverged from the golden evaluation"
    print(f"fabric output matches golden evaluation on {len(signal)} "
          "samples (bit-exact)\n")

    print(profile_report(system.ring))


if __name__ == "__main__":
    main()
