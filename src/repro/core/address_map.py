"""Word-addressable view of the configuration layer.

The paper's configuration layer is "a [memory] which contains the
configuration of all the components".  The typed
:class:`~repro.core.config_memory.ConfigMemory` API is how tools write
it; this module adds the *hardware* view — a flat 16-bit-word address
space covering every configuration bit, so the fabric configuration can
be dumped, diffed, stored and restored as a plain memory image (what a
boot ROM or JTAG port would see).

Layout (word addresses):

```
per Dnode d (stride 32 words, d = layer*width + position):
  d*32 + 0..2    global microword (40 bits, big-endian 16-bit words)
  d*32 + 3       execution mode (0 global / 1 local)
  d*32 + 4       local LIMIT register
  d*32 + 5+3*s.. local slot s microword (s = 0..7, 3 words each)
switch region (after all Dnodes):
  dnode_words + k*(width*2) + position*2 + (port-1)   route word
```

Multi-word fields commit on every write: writing a word that leaves an
undecodable microword raises immediately (like parity checking on a
real configuration SRAM).  Write the opcode-carrying word last when
changing several words of one field.
"""

from __future__ import annotations

from typing import List

from repro.core.dnode import DnodeMode
from repro.core.isa import MICROWORD_BITS, decode as decode_microword, \
    encode as encode_microword
from repro.core.local_controller import NUM_SLOTS
from repro.core.ring import Ring
from repro.core.switch import decode_route, encode_route
from repro.errors import ConfigurationError

WORDS_PER_MICROWORD = 3           # 40 bits in 3 x 16-bit words
DNODE_STRIDE = 32                 # words reserved per Dnode

_OFF_GLOBAL = 0
_OFF_MODE = 3
_OFF_LIMIT = 4
_OFF_SLOTS = 5


def _split_microword(raw: int) -> List[int]:
    """40-bit value -> 3 big-endian 16-bit words (top word 8 bits used)."""
    return [(raw >> 32) & 0xFF, (raw >> 16) & 0xFFFF, raw & 0xFFFF]


def _join_microword(words: List[int]) -> int:
    return ((words[0] & 0xFF) << 32) | ((words[1] & 0xFFFF) << 16) \
        | (words[2] & 0xFFFF)


class AddressMap:
    """Flat configuration address space bound to one ring."""

    def __init__(self, ring: Ring):
        self.ring = ring
        geometry = ring.geometry
        self.dnode_region_words = geometry.dnodes * DNODE_STRIDE
        self.switch_region_words = geometry.layers * geometry.width * 2
        self.size = self.dnode_region_words + self.switch_region_words

    # -- symbolic addresses ----------------------------------------------

    def dnode_base(self, layer: int, position: int) -> int:
        self.ring.dnode(layer, position)  # validate
        return (layer * self.ring.geometry.width + position) \
            * DNODE_STRIDE

    def global_word_addr(self, layer: int, position: int) -> int:
        return self.dnode_base(layer, position) + _OFF_GLOBAL

    def mode_addr(self, layer: int, position: int) -> int:
        return self.dnode_base(layer, position) + _OFF_MODE

    def limit_addr(self, layer: int, position: int) -> int:
        return self.dnode_base(layer, position) + _OFF_LIMIT

    def slot_addr(self, layer: int, position: int, slot: int) -> int:
        if not 0 <= slot < NUM_SLOTS:
            raise ConfigurationError(
                f"slot must be 0..{NUM_SLOTS - 1}, got {slot}"
            )
        return self.dnode_base(layer, position) + _OFF_SLOTS \
            + slot * WORDS_PER_MICROWORD

    def route_addr(self, switch: int, position: int, port: int) -> int:
        self.ring.switch(switch)  # validate
        width = self.ring.geometry.width
        if not 0 <= position < width:
            raise ConfigurationError(
                f"position must be 0..{width - 1}, got {position}"
            )
        if port not in (1, 2):
            raise ConfigurationError(f"port must be 1 or 2, got {port}")
        return self.dnode_region_words + switch * width * 2 \
            + position * 2 + (port - 1)

    # -- word access -------------------------------------------------------

    def read(self, address: int) -> int:
        """Read one 16-bit configuration word."""
        self._check(address)
        if address >= self.dnode_region_words:
            switch, position, port = self._route_coords(address)
            source = self.ring.switch(switch).config.source_for(position,
                                                                port)
            return encode_route(source)
        layer, position, offset = self._dnode_coords(address)
        dn = self.ring.dnode(layer, position)
        if offset < _OFF_MODE:
            return _split_microword(
                encode_microword(dn.global_word))[offset]
        if offset == _OFF_MODE:
            return 1 if dn.mode is DnodeMode.LOCAL else 0
        if offset == _OFF_LIMIT:
            return dn.local.limit
        slot, word_index = divmod(offset - _OFF_SLOTS,
                                  WORDS_PER_MICROWORD)
        if slot >= NUM_SLOTS:
            return 0  # reserved padding inside the stride
        raw = encode_microword(dn.local.slots()[slot])
        return _split_microword(raw)[word_index]

    def write(self, address: int, value: int) -> None:
        """Write one 16-bit configuration word (commits immediately)."""
        self._check(address)
        if not 0 <= value <= 0xFFFF:
            raise ConfigurationError(
                f"configuration word must be 16-bit, got {value!r}"
            )
        if address >= self.dnode_region_words:
            switch, position, port = self._route_coords(address)
            self.ring.config.write_switch_route(
                switch, position, port, decode_route(value))
            return
        layer, position, offset = self._dnode_coords(address)
        dn = self.ring.dnode(layer, position)
        if offset < _OFF_MODE:
            words = _split_microword(encode_microword(dn.global_word))
            words[offset] = value
            self.ring.config.write_microword(
                layer, position, decode_microword(_join_microword(words)))
            return
        if offset == _OFF_MODE:
            mode = DnodeMode.LOCAL if value & 1 else DnodeMode.GLOBAL
            self.ring.config.write_mode(layer, position, mode)
            return
        if offset == _OFF_LIMIT:
            self.ring.config.write_local_limit(layer, position, value)
            return
        slot, word_index = divmod(offset - _OFF_SLOTS,
                                  WORDS_PER_MICROWORD)
        if slot >= NUM_SLOTS:
            raise ConfigurationError(
                f"address {address:#06x} is reserved padding"
            )
        words = _split_microword(
            encode_microword(dn.local.slots()[slot]))
        words[word_index] = value
        self.ring.config.write_local_slot(
            layer, position, slot,
            decode_microword(_join_microword(words)))

    # -- bulk --------------------------------------------------------------

    def dump(self) -> List[int]:
        """The whole configuration as a memory image (padding reads 0)."""
        return [
            0 if self._is_padding(address) else self.read(address)
            for address in range(self.size)
        ]

    def restore(self, image: List[int]) -> None:
        """Load a memory image previously produced by :meth:`dump`."""
        if len(image) != self.size:
            raise ConfigurationError(
                f"image has {len(image)} words, map needs {self.size}"
            )
        for address, value in enumerate(image):
            if self._is_padding(address):
                continue
            self.write(address, value)

    # -- internals ---------------------------------------------------------

    def _check(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise ConfigurationError(
                f"configuration address {address!r} outside "
                f"0..{self.size - 1}"
            )

    def _is_padding(self, address: int) -> bool:
        if address >= self.dnode_region_words:
            return False
        offset = address % DNODE_STRIDE
        return offset >= _OFF_SLOTS + NUM_SLOTS * WORDS_PER_MICROWORD

    def _dnode_coords(self, address: int):
        dnode, offset = divmod(address, DNODE_STRIDE)
        layer, position = divmod(dnode, self.ring.geometry.width)
        return layer, position, offset

    def _route_coords(self, address: int):
        rel = address - self.dnode_region_words
        width = self.ring.geometry.width
        switch, rest = divmod(rel, width * 2)
        position, port_index = divmod(rest, 2)
        return switch, position, port_index + 1
