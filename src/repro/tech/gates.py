"""Gate and memory-bit inventories of every Systolic Ring component.

Counts are NAND2-equivalent gates for logic and raw bits for memory
structures.  They come from standard datapath sizing rules (ripple/carry-
select adder ~= 30-60 gates per bit incl. control, array multiplier ~= n^2
cells, flip-flop ~= 6 gate equivalents) and are the *fixed* half of the
area model; the per-technology area coefficients in
:mod:`repro.tech.nodes` are the calibrated half.
"""

from __future__ import annotations

from repro.core.isa import MICROWORD_BITS
from repro.core.local_controller import NUM_SLOTS
from repro.core.regfile import NUM_REGISTERS
from repro.errors import TechnologyError

WORD_BITS = 16
GATES_PER_FF = 6

# -- Dnode datapath ----------------------------------------------------

#: 16-bit ALU: adder/subtractor, logic unit, barrel shifter, result mux.
ALU_GATES = 900
#: Hardwired 16x16 array multiplier (the dominant Dnode component).
MULTIPLIER_GATES = 2200
#: 4x16-bit register file with master-slave registers.
REGFILE_GATES = NUM_REGISTERS * WORD_BITS * GATES_PER_FF / 2 + 160
#: Local control unit: 8 microword registers + LIMIT + counter + 8:1 mux.
LOCAL_CTRL_GATES = (
    NUM_SLOTS * MICROWORD_BITS * GATES_PER_FF / 4  # config regs (latch-based)
    + 3 * GATES_PER_FF                              # 3-bit state counter
    + MICROWORD_BITS * (NUM_SLOTS - 1)              # 8:1 mux tree
    + 60                                            # limit compare / control
)
#: Microinstruction decode and operand steering.
DECODE_GATES = 300

DNODE_GATES = int(
    ALU_GATES + MULTIPLIER_GATES + REGFILE_GATES + LOCAL_CTRL_GATES
    + DECODE_GATES
)

# -- Switch ------------------------------------------------------------

#: Mux sources selectable per downstream input port (up/rp/host/bus/zero).
SWITCH_MUX_SOURCES = 12

# -- Controller and data controller -------------------------------------

#: The custom RISC configuration controller core (logic only).
CONTROLLER_GATES = 12_000
#: The specific input/output data controller.
DATA_CONTROLLER_GATES = 2_000

#: Controller program memory (words x 32 bits).
PROGRAM_MEMORY_WORDS = 1024
#: Controller data memory (words x 16 bits).
DATA_MEMORY_WORDS = 512


def dnode_gate_count() -> int:
    """NAND2-equivalent gates of one Dnode."""
    return DNODE_GATES


def switch_gate_count(width: int) -> int:
    """Gates of one inter-layer switch for a *width*-wide ring.

    Two input ports per downstream Dnode, each a 16-bit
    ``SWITCH_MUX_SOURCES``:1 mux, plus the feedback pipelines
    (width lanes x 4 stages x 16-bit registers).
    """
    if width < 1:
        raise TechnologyError(f"width must be >= 1, got {width}")
    mux_gates = width * 2 * WORD_BITS * (SWITCH_MUX_SOURCES - 1)
    pipeline_gates = width * 4 * WORD_BITS * GATES_PER_FF
    return mux_gates + pipeline_gates + 100  # route-config registers


SWITCH_GATES = switch_gate_count(2)


def memory_bits(dnodes: int, layers: int, width: int) -> int:
    """Total memory bits of a core: program, data and configuration.

    Configuration storage per Dnode is one global microword plus the nine
    local-control registers (8 microwords + LIMIT), i.e. the multi-level
    scheme's whole per-Dnode state; per switch it is the route table.
    """
    if dnodes != layers * width:
        raise TechnologyError(
            f"dnodes={dnodes} inconsistent with {layers}x{width}"
        )
    program_bits = PROGRAM_MEMORY_WORDS * 32
    data_bits = DATA_MEMORY_WORDS * WORD_BITS
    per_dnode_cfg = MICROWORD_BITS * (1 + NUM_SLOTS) + 8
    route_bits = layers * width * 2 * 16
    return program_bits + data_bits + dnodes * per_dnode_cfg + route_bits
