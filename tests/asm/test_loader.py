"""Tests for the loader: object code -> running system."""

import pytest

from repro.asm import assemble, load_system
from repro.asm.loader import materialize_plane
from repro.asm.objcode import ObjectCode
from repro.core.dnode import DnodeMode
from repro.core.isa import Opcode
from repro.core.switch import PortSource
from repro.errors import LoaderError


SRC = """
.ring boot
dnode 0.0 global
    add out, in1, #5
dnode 1.0 local
    mul out, in1, #3
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0

.risc
        waiti 6
        halt
"""


class TestLoad:
    def test_fabric_configured_from_initial_plane(self):
        system = load_system(assemble(SRC, layers=4, width=2))
        ring = system.ring
        assert ring.dnode(0, 0).global_word.op is Opcode.ADD
        assert ring.dnode(1, 0).mode is DnodeMode.LOCAL
        assert ring.dnode(1, 0).local.current().op is Opcode.MUL
        assert ring.switch(0).config.source_for(0, 1) == PortSource.host(0)

    def test_controller_attached_when_program_present(self):
        system = load_system(assemble(SRC, layers=4, width=2))
        assert system.controller is not None
        assert len(system.controller.program) == 2

    def test_no_controller_for_ring_only_source(self):
        src = ".ring\ndnode 0.0\n    nop\n"
        system = load_system(assemble(src, layers=4, width=2))
        assert system.controller is None

    def test_end_to_end_execution(self):
        system = load_system(assemble(SRC, layers=4, width=2))
        system.data.stream(0, [10, 20, 30, 0, 0, 0])
        tap = system.data.add_tap(1, 0)
        system.run_until_halt()
        # (10+5)*3 should appear after the two-stage latency
        assert 45 in tap.samples

    def test_strict_fifos_forwarded(self):
        system = load_system(assemble(SRC, layers=4, width=2),
                             strict_fifos=True)
        assert system.ring.strict_fifos

    def test_serialized_roundtrip_still_loads(self):
        blob = assemble(SRC, layers=4, width=2).to_bytes()
        system = load_system(ObjectCode.from_bytes(blob))
        assert system.ring.dnode(0, 0).global_word.op is Opcode.ADD


class TestValidation:
    def test_bad_rom_reference(self):
        obj = assemble(SRC, layers=4, width=2)
        obj.planes[0].dnode_words[0] = (0, 999)
        with pytest.raises(LoaderError, match="ROM"):
            materialize_plane(obj, obj.planes[0])

    def test_bad_initial_plane(self):
        obj = assemble(SRC, layers=4, width=2)
        obj.initial_plane = 5
        with pytest.raises(LoaderError, match="initial plane"):
            load_system(obj)


class TestMaterializePlane:
    def test_local_program_padding(self):
        src = ".ring\ndnode 0.0 local\n    nop\n    nop\n    nop\n"
        obj = assemble(src, layers=4, width=2)
        plane = materialize_plane(obj, obj.planes[0])
        slots, limit = plane.local_programs[(0, 0)]
        assert limit == 3
        assert len(slots) >= 3
