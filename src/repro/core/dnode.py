"""The Dnode (Data node): coarse-grained reconfigurable datapath cell.

Paper §4.1.  A Dnode bundles a 16-bit ALU, a hardwired multiplier, a
4x16-bit register file, an output register, and a small local control
unit.  Each cycle it executes one microinstruction that comes from one of
two places depending on its *execution mode*:

* **global mode** — the microword written by the RISC configuration
  controller into the configuration layer (rewritable every cycle:
  hardware multiplexing);
* **local mode** — the microword selected by the Dnode's own 8-slot
  sequencer (:class:`~repro.core.local_controller.LocalController`), with
  no controller involvement (stand-alone macro-operator).

Evaluation is two-phase to model master-slave registers: ``evaluate()``
reads only values latched at the previous clock edge and stages writes;
``commit()`` is the clock edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro import word
from repro.core.alu import execute_op
from repro.core.isa import (
    Dest,
    Flag,
    MicroWord,
    NOP_WORD,
    Opcode,
    Source,
    ACCUMULATING_OPS,
)
from repro.core.local_controller import LocalController
from repro.core.regfile import RegisterFile
from repro.errors import ConfigurationError, SimulationError


class DnodeMode(enum.Enum):
    """Execution mode of a Dnode (the paper's multi-level reconfiguration)."""

    GLOBAL = "global"
    LOCAL = "local"


@dataclass
class DnodeInputs:
    """Operand values/accessors supplied by the fabric for one cycle.

    The ring resolves the switch routing before calling the Dnode, so
    ``in1``/``in2`` are plain values; FIFO and feedback-pipeline reads stay
    as callables because which ones are touched depends on the microword.
    """

    in1: int = 0
    in2: int = 0
    bus: int = 0
    fifo_peek: Callable[[int], int] = lambda channel: 0
    rp_read: Callable[[int, int], int] = lambda stage, lane: 0


@dataclass
class DnodeStats:
    """Per-Dnode activity counters (drives MIPS/utilisation reporting)."""

    cycles: int = 0
    instructions: int = 0       # non-NOP microwords executed
    arithmetic_ops: int = 0     # elementary operator activations (MAC = 2)
    multiplies: int = 0
    fifo_pops: int = 0

    def reset(self) -> None:
        self.cycles = 0
        self.instructions = 0
        self.arithmetic_ops = 0
        self.multiplies = 0
        self.fifo_pops = 0


#: Elementary-operator cost of each opcode (the Dnode can chain at most two
#: per cycle; used for utilisation statistics).
_OP_COST = {
    Opcode.NOP: 0,
    Opcode.MOV: 0,
    Opcode.MAC: 2,
    Opcode.MACS: 2,
    Opcode.ABSDIFF: 2,
    Opcode.AVG2: 2,
    Opcode.MADD: 2,
    Opcode.MSUB: 2,
}

_MULTIPLY_OPS = frozenset(
    {Opcode.MUL, Opcode.MULH, Opcode.MAC, Opcode.MACS,
     Opcode.MADD, Opcode.MSUB}
)


class Dnode:
    """One reconfigurable datapath cell of the operative layer."""

    def __init__(self, layer: int = 0, position: int = 0,
                 name: Optional[str] = None):
        self.layer = layer
        self.position = position
        self.name = name or f"D{layer}.{position}"
        self.regs = RegisterFile()
        self.local = LocalController()
        self.stats = DnodeStats()
        self._mode = DnodeMode.GLOBAL
        self._global_word: MicroWord = NOP_WORD
        self._out = 0
        self._out_pending: Optional[int] = None
        self._pops_pending: tuple = ()
        #: Invalidation hook: called after every configuration mutation
        #: (microword, mode, or local-sequencer contents).  The owning ring
        #: points this at its fast-path invalidator.
        self.on_config_change: Optional[Callable[[], None]] = None
        #: Cached configuration fingerprint (see config_fingerprint()).
        self._config_fp: Optional[tuple] = None
        self.local.on_change = self._config_changed

    def _config_changed(self) -> None:
        self._config_fp = None
        if self.on_config_change is not None:
            self.on_config_change()

    def config_fingerprint(self) -> tuple:
        """A stable, hashable digest of everything that selects execution.

        Covers exactly the configuration state a compiled plan depends on:
        the mode bit plus either the global microword or the local
        sequencer's LIMIT and *active* slots (writes to slots at or above
        LIMIT cannot execute, so they do not perturb the fingerprint).
        Cached until the next configuration mutation.
        """
        fp = self._config_fp
        if fp is None:
            if self._mode is DnodeMode.GLOBAL:
                fp = (0, self._global_word)
            else:
                limit = self.local._limit
                fp = (1, limit, tuple(self.local._slots[:limit]))
            self._config_fp = fp
        return fp

    # ------------------------------------------------------------------
    # Configuration interface (used by the configuration layer/controller)
    # ------------------------------------------------------------------

    @property
    def out(self) -> int:
        """Output register value as latched at the previous clock edge."""
        return self._out

    @out.setter
    def out(self, value: int) -> None:
        """Seed the output register (host-side state injection).

        Lets a host preload recurrence state — e.g. an NCO phase seed
        into a ``ADD SELF`` accumulator — before streaming begins, the
        data-plane analogue of a configuration write.
        """
        self._out = word.from_signed(word.to_signed(int(value)))
        self._out_pending = None

    @property
    def global_word(self) -> MicroWord:
        """Microword currently held for global-mode execution."""
        return self._global_word

    @property
    def mode(self) -> DnodeMode:
        """Current execution mode (global or local)."""
        return self._mode

    @mode.setter
    def mode(self, mode: DnodeMode) -> None:
        self.set_mode(mode)

    def configure(self, microword: MicroWord) -> None:
        """Write the global-mode microinstruction (configuration layer)."""
        if not isinstance(microword, MicroWord):
            raise ConfigurationError(
                f"expected MicroWord, got {type(microword).__name__}"
            )
        self._global_word = microword
        self._config_changed()

    def set_mode(self, mode: DnodeMode) -> None:
        """Switch between global and local (stand-alone) execution."""
        if not isinstance(mode, DnodeMode):
            raise ConfigurationError(f"expected DnodeMode, got {mode!r}")
        self._mode = mode
        self._config_changed()

    def active_microword(self) -> MicroWord:
        """The microinstruction this Dnode will execute this cycle."""
        if self.mode is DnodeMode.LOCAL:
            return self.local.current()
        return self._global_word

    # ------------------------------------------------------------------
    # Two-phase execution
    # ------------------------------------------------------------------

    def evaluate(self, inputs: DnodeInputs) -> None:
        """Phase 1: read operands, compute, stage all writes.

        Reads observe pre-edge state only (registers, OUT of other Dnodes,
        pipelines), so evaluation order across Dnodes cannot matter.
        """
        mw = self.active_microword()
        self.stats.cycles += 1
        pops = []
        if mw.flags & Flag.POP_FIFO1:
            pops.append(1)
        if mw.flags & Flag.POP_FIFO2:
            pops.append(2)
        self._pops_pending = tuple(pops)
        if mw.op is Opcode.NOP:
            return

        a = self._read_source(mw.src_a, mw, inputs)
        b = self._read_source(mw.src_b, mw, inputs) if mw.is_binary else 0
        acc = 0
        if mw.op in ACCUMULATING_OPS:
            acc = self.regs.read(int(mw.dst))
        result = execute_op(mw.op, a, b, acc, imm=mw.imm)

        self.stats.instructions += 1
        self.stats.arithmetic_ops += _OP_COST.get(mw.op, 1)
        if mw.op in _MULTIPLY_OPS:
            self.stats.multiplies += 1

        if mw.dst.is_register:
            self.regs.stage_write(int(mw.dst), result)
        elif mw.dst is Dest.OUT:
            self._out_pending = result
        if mw.flags & Flag.WRITE_OUT and mw.dst is not Dest.OUT:
            self._out_pending = result

    def commit(self) -> tuple:
        """Phase 2 (clock edge): apply staged writes, advance sequencer.

        Returns:
            The FIFO channels (1 and/or 2) this Dnode *requests* to pop
            this cycle; the fabric applies the pops so a peeked head stays
            stable within the cycle, and reports back the pops that
            actually dequeued a word via :meth:`count_fifo_pop` —
            ``stats.fifo_pops`` therefore counts real dequeues only, never
            underflowed pop requests.
        """
        self.regs.commit()
        if self._out_pending is not None:
            self._out = self._out_pending
            self._out_pending = None
        if self.mode is DnodeMode.LOCAL:
            self.local.advance()
        pops = self._pops_pending
        self._pops_pending = ()
        return pops

    def count_fifo_pop(self) -> None:
        """Fabric callback: one requested pop actually dequeued a word."""
        self.stats.fifo_pops += 1

    def reset(self) -> None:
        """Return the datapath to its power-on state (config preserved)."""
        self.regs.reset()
        self.local.reset_counter()
        self.stats.reset()
        self._out = 0
        self._out_pending = None
        self._pops_pending = ()

    # ------------------------------------------------------------------

    def _read_source(self, src: Source, mw: MicroWord,
                     inputs: DnodeInputs) -> int:
        if src <= Source.R3:
            return self.regs.read(int(src))
        if src is Source.IN1:
            return word.check(inputs.in1, f"{self.name} IN1")
        if src is Source.IN2:
            return word.check(inputs.in2, f"{self.name} IN2")
        if src is Source.FIFO1:
            return word.check(inputs.fifo_peek(1), f"{self.name} FIFO1")
        if src is Source.FIFO2:
            return word.check(inputs.fifo_peek(2), f"{self.name} FIFO2")
        if src is Source.BUS:
            return word.check(inputs.bus, f"{self.name} BUS")
        if src is Source.IMM:
            return mw.imm
        if src is Source.SELF:
            return self._out
        if src is Source.ZERO:
            return 0
        if src.is_feedback:
            return word.check(
                inputs.rp_read(src.feedback_stage, src.feedback_lane),
                f"{self.name} {src.name}",
            )
        raise SimulationError(f"unhandled source {src!r}")

    def __repr__(self) -> str:
        return (
            f"Dnode({self.name}, mode={self.mode.value}, "
            f"out={self._out:#06x})"
        )


__all__ = ["Dnode", "DnodeMode", "DnodeInputs", "DnodeStats"]
