"""Table 3 — synthesis results.

Paper rows (ST CMOS, Synopsys DC estimates)::

             D-node area   core area   est. frequency
    0.25um   0.06 mm^2     0.9 mm^2    180 MHz
    0.18um   0.04 mm^2     0.7 mm^2    200 MHz

Our analytical model is calibrated on exactly these anchors; the
benchmark regenerates the table and asserts the anchors plus the scaling
predictions that fall out (Ring-64 at 3.4 mm^2 etc.).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.ring import RingGeometry
from repro.tech.area import core_area_mm2, dnode_area_mm2, synthesis_table
from repro.tech.timing import estimated_frequency_hz

PAPER_TABLE3 = {
    "0.25um": (0.06, 0.9, 180.0),
    "0.18um": (0.04, 0.7, 200.0),
}


def test_table3_model_evaluation(benchmark):
    rows = benchmark(synthesis_table)
    assert len(rows) == 2


def test_table3_anchors_exact():
    rows = synthesis_table()
    printable = []
    for name, dnode, core, mhz in rows:
        paper = PAPER_TABLE3[name]
        assert dnode == pytest.approx(paper[0], rel=1e-6)
        assert core == pytest.approx(paper[1], rel=1e-6)
        assert mhz == pytest.approx(paper[2], rel=0.01)
        printable.append([name, dnode, core, mhz,
                          f"{paper[0]}/{paper[1]}/{paper[2]:.0f}"])
    emit(render_table(
        ["techno", "D-node mm^2", "core mm^2", "est. MHz", "paper"],
        printable, title="Table 3 (reproduced) — synthesis results"))


def test_table3_scaling_predictions():
    """Beyond the anchors: the model's genuine predictions."""
    # Fig. 7's Ring-64 on-die area.
    ring64 = core_area_mm2(RingGeometry.ring(64), "0.18um").total_mm2
    assert ring64 == pytest.approx(3.4, rel=0.02)
    # "The low area of each D-node ... could easily be scaled": per-Dnode
    # marginal cost stays flat from Ring-8 to Ring-256.
    a8 = core_area_mm2(RingGeometry.ring(8), "0.18um").total_mm2
    a256 = core_area_mm2(RingGeometry.ring(256), "0.18um").total_mm2
    marginal = (a256 - a8) / (256 - 8)
    assert marginal == pytest.approx(dnode_area_mm2("0.18um"), rel=0.35)
    # Frequency does not change with ring size.
    assert estimated_frequency_hz("0.18um", 256) == \
        estimated_frequency_hz("0.18um", 8)
