"""Robustness fuzzing: random configurations must never corrupt state.

The simulator's contract is that *any* configuration reachable through
the public API (valid microwords, valid routes) executes without
crashing and keeps every architectural value canonical 16-bit.  These
property tests drive randomly-configured fabrics and assert the
invariants — the kind of failure injection that catches evaluation-order
and masking bugs.
"""

from hypothesis import given, settings, strategies as st

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource

from tests.core.test_isa import microwords

_port_sources = st.one_of(
    st.just(PortSource.zero()),
    st.just(PortSource.bus()),
    st.integers(min_value=0, max_value=1).map(PortSource.up),
    st.integers(min_value=0, max_value=3).map(PortSource.host),
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=1, max_value=2)).map(
        lambda t: PortSource.rp(*t)),
)


@st.composite
def fuzzed_rings(draw):
    ring = Ring(RingGeometry.ring(8))
    for layer in range(4):
        for pos in range(2):
            ring.config.write_microword(layer, pos, draw(microwords()))
            if draw(st.booleans()):
                program = draw(st.lists(microwords(), min_size=1,
                                        max_size=8))
                ring.config.write_local_program(layer, pos, program)
                ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
            for port in (1, 2):
                ring.config.write_switch_route(
                    layer, pos, port, draw(_port_sources))
            if draw(st.booleans()):
                ring.push_fifo(layer, pos, 1, draw(st.lists(
                    st.integers(0, 0xFFFF), max_size=8)))
                ring.push_fifo(layer, pos, 2, draw(st.lists(
                    st.integers(0, 0xFFFF), max_size=8)))
    return ring


class TestFuzzedFabrics:
    @given(fuzzed_rings(), st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40, deadline=None)
    def test_runs_without_faults_and_stays_canonical(self, ring, cycles,
                                                     bus):
        ring.run(cycles, bus=bus, host_in=lambda ch: (ch * 37) & 0xFFFF)
        for dn in ring.all_dnodes():
            assert word.is_valid(dn.out)
            for value in dn.regs.snapshot():
                assert word.is_valid(value)
        for k in range(4):
            sw = ring.switch(k)
            for stage in range(1, 5):
                for lane in (1, 2):
                    assert word.is_valid(sw.rp_read(stage, lane))

    @given(fuzzed_rings())
    @settings(max_examples=15, deadline=None)
    def test_reset_restores_datapath(self, ring):
        ring.run(8, host_in=lambda ch: 1)
        ring.reset()
        assert ring.cycles == 0
        for dn in ring.all_dnodes():
            assert dn.out == 0
            assert dn.regs.snapshot() == [0, 0, 0, 0]

    @given(fuzzed_rings(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, ring, cycles):
        """Two identical runs from reset produce identical state."""
        def run_and_snapshot():
            ring.reset()
            # FIFOs are cleared by reset; determinism over stream inputs
            ring.run(cycles, host_in=lambda ch: (ch + 5) & 0xFFFF)
            return [dn.out for dn in ring.all_dnodes()] + [
                v for dn in ring.all_dnodes() for v in dn.regs.snapshot()
            ]

        assert run_and_snapshot() == run_and_snapshot()
