#!/usr/bin/env python
"""Debugging a systolic mapping with waveforms (tracer + VCD export).

Attaches probes to the spatial FIR pipeline, shows the ASCII timing
diagram of the sample stream and travelling partial sums (the systolic
skew is directly visible), and writes an IEEE-1364 VCD file that any
waveform viewer (GTKWave, etc.) can open.

Run:  python examples/waveform_debugging.py
"""

import tempfile
from pathlib import Path

from repro.analysis.trace import Probe, SignalTrace, parse_vcd, write_vcd
from repro.kernels.fir import build_spatial_fir
from repro.kernels.reference import fir as ref_fir


def main() -> None:
    taps = [1, 2, 3]
    signal = [5, 0, 0, 0, 7, 0, 0, 0]  # two impulses, easy to follow

    system = build_spatial_fir(taps)
    probes = [Probe.out(k, 0) for k in range(3)] + \
             [Probe.out(k, 1) for k in range(3)]
    trace = SignalTrace(system.ring, probes)

    system.data.stream(0, [v & 0xFFFF for v in signal])
    tap = system.data.add_tap(2, 1, skip=len(taps) - 1,
                              limit=len(signal))
    system.run(len(signal) + len(taps))

    print("timing diagram (lane 0 = delayed samples, lane 1 = partials):")
    print(trace.render())
    outputs = [v if v < 0x8000 else v - 0x10000 for v in tap.samples]
    assert outputs == ref_fir(signal, taps)
    print(f"\nfilter output: {outputs} (bit-exact vs reference)")

    vcd_path = Path(tempfile.gettempdir()) / "systolic_fir.vcd"
    write_vcd(trace, vcd_path)
    waves = parse_vcd(vcd_path)
    print(f"\nVCD written to {vcd_path} "
          f"({len(waves)} signals, {trace.cycles} cycles) — open it in "
          "GTKWave to inspect the pipeline.")


if __name__ == "__main__":
    main()
