"""Shared engine parametrization for the golden-kernel suites.

Every execution backend the repo ships is described once, here, and the
``engine`` fixture parametrizes any test that requests it over all of
them.  A kernel test written against the fixture therefore becomes one
*row* of the cross-engine x kernel conformance matrix: the same golden
recipe, bit-identical on the interpreter, the compiled fast path, the
native macro-kernel tier, the macro-stepped interpreter and both lane
backends.

Helpers:

* :func:`make_ring` — build a ring of the given geometry under the
  engine's constructor kwargs;
* :func:`tap_samples` — lane-0 samples of a tap regardless of whether it
  is a scalar :class:`~repro.host.streams.OutputTap` or a
  :class:`~repro.host.streams.BatchOutputTap`;
* :func:`fabric_state` — the scalar architectural state of a ring
  (shape-compatible across engines, unlike ``state_digest`` which
  includes the lane arrays of batch snapshots).
"""

from __future__ import annotations

import pytest

from repro.core.ring import Ring, RingGeometry

#: name -> Ring constructor kwargs, one entry per execution engine.
#: ``tests/core/test_nativepath.py`` asserts this stays in sync with
#: :attr:`Ring.BACKEND_REGISTRY`.
ENGINES = {
    "interpreter": {"fastpath": False},
    "fastpath": {},
    "native": {"backend": "native"},
    "macro": {"macro_step": 4},
    "batch": {"backend": "batch", "batch_size": 2},
    "shard": {"backend": "shard", "batch_size": 2, "shard_workers": 2},
}


@pytest.fixture(params=sorted(ENGINES))
def engine(request):
    """(name, ring_kwargs) for every execution engine, one per param."""
    return request.param, dict(ENGINES[request.param])


def make_ring(geometry: RingGeometry, engine_kwargs: dict) -> Ring:
    """A fresh ring of *geometry* running the given engine."""
    return Ring(geometry, **engine_kwargs)


def tap_samples(tap):
    """Lane-0 sample stream of a scalar or batch output tap."""
    return tap.lane(0) if hasattr(tap, "lane") else list(tap.samples)


def fabric_state(ring: Ring) -> dict:
    """Scalar architectural state, comparable across all engines."""
    g = ring.geometry
    return {
        "cycles": ring.cycles,
        "outs": [dn.out for dn in ring.all_dnodes()],
        "regs": [dn.regs.snapshot() for dn in ring.all_dnodes()],
        "counters": [dn.local.counter for dn in ring.all_dnodes()],
        "pipes": [[ring.switch(k).rp_read(stage, lane)
                   for stage in range(1, g.pipeline_depth + 1)
                   for lane in range(1, g.width + 1)]
                  for k in range(g.layers)],
        "fifos": {key: list(queue)
                  for key, queue in sorted(ring._fifos.items()) if queue},
        "underflows": ring.fifo_underflows,
        "stats": [(dn.stats.cycles, dn.stats.instructions,
                   dn.stats.arithmetic_ops, dn.stats.multiplies,
                   dn.stats.fifo_pops) for dn in ring.all_dnodes()],
    }
