"""Compiler autopilot: measured-throughput search over the mapping space.

``compile_graph`` emits exactly one hand-shaped mapping per graph.  This
module searches the mapping space instead — the step the paper's
conclusion calls "the key to success of reconfigurable computing
architectures": a user submits a *graph* and gets the fastest mapping
the fabric + host engine stack is known to execute.

The search space per :class:`~repro.compiler.graph.DataflowGraph`:

* **mode assignment** — global / local / hybrid Dnode emission (a
  one-slot local loop is bit-identical to the global word, so this is a
  pure mapping choice, see :data:`repro.compiler.codegen.MODES`);
* **placement** — per-level lane orders
  (:data:`repro.compiler.schedule.LANE_ORDERS`; feedback taps only reach
  lanes 0..1, so lane order decides legality *and* shape);
* **engine** — ``fastpath`` / ``native`` / ``batch`` out of
  :attr:`repro.core.ring.Ring.BACKEND_REGISTRY`, macro-step fusion
  targets, and plan-cache sizing.

Scoring is *measured*, not modelled: each candidate is configured onto a
private ring and timed with :func:`~repro.compiler.profiler.\
measured_cycles_per_second` (short :meth:`~repro.core.ring.Ring.profile`
runs behind a warm-up chunk, so compile/jit cost never skews the score).
A candidate can only win after it reproduces the graph's golden
:meth:`~repro.compiler.graph.DataflowGraph.evaluate` output bit-for-bit
on deterministic streams; the winner additionally proves its *bulk
engine* path bit-identical to the reference interpreter by state digest.

Winning mappings are memoized in an LRU keyed by (graph canonical
fingerprint, fabric shape, backend availability) — a repeat submission
pays one dict lookup plus a recompile, no search.

:func:`fuzz_conformance` reuses the machinery as a coverage-guided
configuration fuzzer: randomly mutated graphs sweep candidate mappings
and every execution engine, each run checked against the golden
evaluator — a conformance hammer across the full engine matrix.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import word
from repro.compiler.codegen import MODES, CompiledProgram, compile_graph
from repro.compiler.graph import CompileError, DataflowGraph, NodeKind
from repro.compiler.library import GRAPH_LIBRARY, library_streams
from repro.compiler.profiler import measured_cycles_per_second
from repro.compiler.schedule import schedule
from repro.core import nativepath
from repro.core.plancache import PlanCache
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import state_digest
from repro.errors import SimulationError

#: Bus word driven while scoring (arbitrary; compiled graphs never read
#: the bus, but the value must be identical across engine comparisons).
_SCORE_BUS = 0

#: Constant host word presented on every routed channel while scoring.
#: Throughput is data-independent, so a constant keeps the resolver as
#: cheap as a host can be — the measurement approaches engine ceiling.
_SCORE_WORD = 17


def _score_host(channel: int) -> int:
    return _SCORE_WORD


@dataclass(frozen=True)
class Mapping:
    """One point in the mapping space (the memoized search result)."""

    mode: str = "global"
    lane_order: str = "index"
    backend: str = "fastpath"
    macro_step: int = 0
    plan_cache: int = 8

    def ring_kwargs(self) -> Dict[str, object]:
        """Ring construction kwargs realising the engine choice."""
        kwargs: Dict[str, object] = {
            "backend": self.backend,
            "plan_cache": self.plan_cache,
        }
        if self.macro_step:
            kwargs["macro_step"] = self.macro_step
        if self.backend in Ring.LANE_BACKENDS:
            kwargs["batch_size"] = 1
        return kwargs

    def describe(self) -> str:
        engine = self.backend
        if self.macro_step:
            engine += f"+macro{self.macro_step}"
        return (f"{self.mode}/{self.lane_order}/{engine}"
                f"/cache{self.plan_cache}")


#: Engine variants swept per surviving placement: (backend, macro_step,
#: plan_cache).  ``shard`` is deliberately absent — worker processes
#: only pay off on multi-lane workloads, and a compiled graph is one
#: lane; the fuzzer still hammers the shard engine for conformance.
ENGINE_VARIANTS: Tuple[Tuple[str, int, int], ...] = (
    ("fastpath", 0, 8),
    ("fastpath", 64, 8),
    ("fastpath", 64, 2),
    ("batch", 0, 8),
    ("native", 0, 8),
)

#: Lane orders the placement stage tries (reverse adds nothing the
#: other two cannot reach on levelled graphs, so it stays fuzzer-only).
PLACEMENT_ORDERS = ("index", "delay-first")


class AutotuneStats:
    """Process-wide autotuner counters (the ``autotune_*`` families)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.searches = 0
        self.candidates_evaluated = 0
        self.verifications = 0
        self.verification_failures = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.search_ms_total = 0.0
        self.best_cycles_per_sec = 0.0
        self.fuzz_rounds = 0
        self.fuzz_candidates = 0
        self.fuzz_mismatches = 0

    @property
    def touched(self) -> bool:
        return bool(self.searches or self.fuzz_rounds)


#: Module-level stats instance surfaced through
#: :meth:`repro.analysis.metrics.MetricsRegistry.collect`.
STATS = AutotuneStats()

#: Best-known-mapping memo: (graph fingerprint, fabric shape, backend
#: availability) -> (Mapping, measured cycles/s, baseline cycles/s).
MEMO = PlanCache(64)


def reset_autotune_state() -> None:
    """Clear the memo cache and the stats counters (tests, benchmarks)."""
    MEMO.clear()
    STATS.reset()


def memo_key(graph: DataflowGraph,
             geometry: Optional[RingGeometry]) -> tuple:
    """The LRU key: graph content, fabric shape, backend availability."""
    shape = (None if geometry is None else
             (geometry.layers, geometry.width, geometry.pipeline_depth))
    return ("autotune", graph.fingerprint(), shape,
            tuple(Ring.BACKENDS), nativepath.numba_available())


def _program_for(graph: DataflowGraph,
                 geometry: Optional[RingGeometry],
                 mapping: Mapping) -> CompiledProgram:
    """Compile *graph* under *mapping* (deriving geometry when free)."""
    if geometry is None:
        width, placement = 2, None
        while placement is None:
            try:
                placement = schedule(graph, width=width,
                                     lane_order=mapping.lane_order)
            except CompileError as exc:
                if "wide" not in str(exc) or width >= 16:
                    raise
                width += 1
        geometry = RingGeometry(layers=max(placement.levels, 2),
                                width=width)
    return compile_graph(graph, geometry=geometry, mode=mapping.mode,
                         lane_order=mapping.lane_order,
                         ring_kwargs=mapping.ring_kwargs())


@dataclass
class ScoredCandidate:
    """One evaluated mapping: its measured score and verification fate."""

    mapping: Mapping
    cycles_per_second: float = 0.0
    verified: bool = False
    error: Optional[str] = None


@dataclass
class AutotuneResult:
    """The autopilot's verdict for one graph submission."""

    program: CompiledProgram
    mapping: Mapping
    cycles_per_second: float
    baseline_cycles_per_second: float
    search_ms: float
    cache_hit: bool
    candidates: List[ScoredCandidate] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Measured winner throughput over the default mapping's."""
        if self.baseline_cycles_per_second <= 0:
            return 1.0
        return self.cycles_per_second / self.baseline_cycles_per_second

    def report(self) -> str:
        """Rendered candidate table (best first)."""
        from repro.analysis.report import render_table
        rows = []
        for c in sorted(self.candidates,
                        key=lambda c: -c.cycles_per_second):
            rows.append([
                c.mapping.describe(),
                f"{c.cycles_per_second:,.0f}",
                "ok" if c.verified else (c.error or "unverified"),
            ])
        source = "memo" if self.cache_hit else "searched"
        table = render_table(
            ["mapping", "cyc/s", "verdict"], rows,
            title=f"autotune: {self.mapping.describe()} wins "
                  f"({self.speedup:.2f}x default, {source} in "
                  f"{self.search_ms:.1f} ms)",
        ) if rows else (
            f"autotune: {self.mapping.describe()} "
            f"(memo hit, {self.search_ms:.1f} ms)"
        )
        return table


def _verify(program: CompiledProgram, golden: Dict[int, List[int]],
            streams: Dict[int, List[int]]) -> Optional[str]:
    """Bit-compare a candidate's fabric output against the golden run.

    Returns None on success, a short reason string on mismatch.  This
    drives the configured fabric through the per-cycle system path (taps
    attached), which exercises the mode assignment and placement; the
    winner's bulk-engine path is separately digest-checked.
    """
    STATS.verifications += 1
    try:
        produced = program.run(streams)
    except (SimulationError, CompileError) as exc:
        STATS.verification_failures += 1
        return f"run failed: {exc}"
    if produced != golden:
        STATS.verification_failures += 1
        return "output mismatch vs golden evaluate()"
    return None


def _verify_bulk_engine(program: CompiledProgram, mapping: Mapping,
                        cycles: int = 192) -> Optional[str]:
    """Digest-check the mapping's *bulk* engine against the interpreter.

    Scoring and production runs take :meth:`Ring.run`'s steady-state
    ladder (native / macro / per-cycle plan), which per-cycle tap
    verification never touches — so the winner must additionally prove
    that path bit-identical to the reference interpreter.
    """
    tuned = Ring(program.geometry, **mapping.ring_kwargs())
    program.configure(tuned)
    reference = Ring(program.geometry, fastpath=False)
    program.configure(reference)
    tuned.run(cycles, bus=_SCORE_BUS, host_in=_score_host)
    reference.run(cycles, bus=_SCORE_BUS, host_in=_score_host)
    if state_digest(tuned) != state_digest(reference):
        STATS.verification_failures += 1
        return "bulk-engine state digest diverged from interpreter"
    return None


def _score(program: CompiledProgram, mapping: Mapping,
           score_cycles: int, repeats: int) -> float:
    """Measured steady-state cycles/s of *mapping* on a private ring."""
    ring = Ring(program.geometry, **mapping.ring_kwargs())
    program.configure(ring)
    return measured_cycles_per_second(
        ring, score_cycles, bus=_SCORE_BUS, host_in=_score_host,
        repeats=repeats)


def autotune_graph(graph: DataflowGraph,
                   geometry: Optional[RingGeometry] = None,
                   score_cycles: int = 1500,
                   repeats: int = 2,
                   verify_samples: int = 24,
                   seed: int = 2002,
                   memo: bool = True) -> AutotuneResult:
    """Search the mapping space for *graph*; return the measured winner.

    Two staged sweeps keep the candidate budget bounded: placement
    variants (mode x lane order) are scored on the default engine first,
    then every engine variant is scored on the best surviving placement.
    Every candidate that would win is first verified bit-identical to
    the golden evaluator; the winner's bulk engine is digest-checked
    against the reference interpreter on top.

    Args:
        graph: the dataflow graph to map.
        geometry: fabric shape constraint (None = derive per candidate).
        score_cycles: timed cycles per measurement run.
        repeats: measurement repeats per candidate (best-of).
        verify_samples: golden-stream length for bit verification.
        seed: stream seed (verification data only; search is
            deterministic given a machine).
        memo: consult/update the best-known-mapping LRU.
    """
    began = time.perf_counter()
    STATS.searches += 1
    key = memo_key(graph, geometry)
    if memo:
        hit = MEMO.get(key)
        if hit is not None:
            mapping, best_cps, base_cps = hit
            program = _program_for(graph, geometry, mapping)
            STATS.cache_hits += 1
            ms = (time.perf_counter() - began) * 1e3
            STATS.search_ms_total += ms
            return AutotuneResult(
                program=program, mapping=mapping,
                cycles_per_second=best_cps,
                baseline_cycles_per_second=base_cps,
                search_ms=ms, cache_hit=True)
    STATS.cache_misses += 1

    streams = library_streams(graph, verify_samples, seed=seed)
    golden = graph.evaluate(streams)
    candidates: List[ScoredCandidate] = []

    def evaluate(mapping: Mapping) -> ScoredCandidate:
        scored = ScoredCandidate(mapping)
        candidates.append(scored)
        STATS.candidates_evaluated += 1
        try:
            program = _program_for(graph, geometry, mapping)
        except CompileError as exc:
            scored.error = f"unmappable: {exc}"
            return scored
        failure = _verify(program, golden, streams)
        if failure is not None:
            scored.error = failure
            return scored
        scored.verified = True
        scored.cycles_per_second = _score(program, mapping,
                                          score_cycles, repeats)
        return scored

    # Stage 1 — placement sweep on the default engine.  The plain
    # default mapping doubles as the speedup baseline.
    baseline = evaluate(Mapping())
    best_place = baseline
    for lane_order in PLACEMENT_ORDERS:
        for mode in MODES:
            if mode == "global" and lane_order == "index":
                continue  # == baseline
            scored = evaluate(Mapping(mode=mode, lane_order=lane_order))
            if scored.verified and (scored.cycles_per_second
                                    > best_place.cycles_per_second):
                best_place = scored

    # Stage 2 — engine sweep on the best surviving placement.
    best = best_place
    for backend, macro_step, plan_cache in ENGINE_VARIANTS:
        mapping = Mapping(mode=best_place.mapping.mode,
                          lane_order=best_place.mapping.lane_order,
                          backend=backend, macro_step=macro_step,
                          plan_cache=plan_cache)
        if mapping == best_place.mapping:
            continue
        scored = evaluate(mapping)
        if scored.verified and (scored.cycles_per_second
                                > best.cycles_per_second):
            best = scored

    # The winner's bulk engine must be bit-identical to the interpreter;
    # on divergence (never observed — this is the safety net) fall back
    # to the next-best candidate down the ranking.
    ranked = sorted((c for c in candidates if c.verified),
                    key=lambda c: -c.cycles_per_second)
    winner = None
    for scored in ranked:
        program = _program_for(graph, geometry, scored.mapping)
        failure = _verify_bulk_engine(program, scored.mapping)
        if failure is None:
            winner = scored
            break
        scored.verified = False
        scored.error = failure
    if winner is None:
        raise CompileError(
            "autotune found no verifiable mapping for the graph")

    program = _program_for(graph, geometry, winner.mapping)
    if memo:
        MEMO.put(key, (winner.mapping, winner.cycles_per_second,
                       baseline.cycles_per_second))
    ms = (time.perf_counter() - began) * 1e3
    STATS.search_ms_total += ms
    STATS.best_cycles_per_sec = winner.cycles_per_second
    return AutotuneResult(
        program=program, mapping=winner.mapping,
        cycles_per_second=winner.cycles_per_second,
        baseline_cycles_per_second=baseline.cycles_per_second,
        search_ms=ms, cache_hit=False, candidates=candidates)


# ----------------------------------------------------------------------
# Coverage-guided configuration fuzzer / cross-engine conformance hammer
# ----------------------------------------------------------------------

#: Opcodes the mutator draws from: every compilable shape class
#: (wrapping, saturating, dual-op, compare, shift, unary).
FUZZ_OPS = ("mov", "add", "sub", "mul", "and", "or", "xor", "min",
            "max", "avg2", "absdiff", "addsat", "subsat", "cmpeq",
            "cmplt", "abs", "neg", "not", "shr")

#: Engines every fuzz candidate executes on — the full
#: :attr:`Ring.BACKEND_REGISTRY` matrix.
FUZZ_ENGINES = ("interpreter", "fastpath", "native", "batch", "shard")

#: Candidate mappings each fuzz graph sweeps (engine choice is the
#: separate FUZZ_ENGINES axis, so these vary the emission only).
FUZZ_MAPPINGS = (
    Mapping(),
    Mapping(mode="local"),
    Mapping(mode="hybrid", lane_order="delay-first"),
    Mapping(lane_order="reverse"),
)


def _fuzz_ring(engine: str, geometry: RingGeometry) -> Ring:
    if engine == "interpreter":
        return Ring(geometry, fastpath=False)
    if engine == "fastpath":
        return Ring(geometry)
    if engine == "native":
        return Ring(geometry, backend="native")
    if engine == "batch":
        return Ring(geometry, backend="batch", batch_size=2)
    if engine == "shard":
        # One worker keeps the hammer fast (the in-process shard
        # fallback); the multi-process pool has its own differential CI.
        return Ring(geometry, backend="shard", batch_size=2,
                    shard_workers=1)
    raise SimulationError(f"unknown fuzz engine {engine!r}")


def _run_program(program: CompiledProgram, ring: Ring,
                 streams: Dict[int, List[int]],
                 length: int) -> List[Dict[int, List[int]]]:
    """Execute *program* on *ring*; outputs per lane (signed samples)."""
    system = program.build_system(ring)
    for channel, samples in streams.items():
        system.data.stream(
            channel, [word.from_signed(int(v)) for v in samples])
    taps = {}
    for graph_index, phys_index in program.placement.outputs:
        p = program.placement.phys[phys_index]
        if graph_index not in taps:
            taps[graph_index] = system.data.add_tap(
                p.level - 1, p.lane, skip=p.level - 1, limit=length)
    system.run(length + program.latency)
    lanes = ring.batch_size if ring.backend in Ring.LANE_BACKENDS else 1
    results = []
    for lane in range(lanes):
        results.append({
            graph_index: [word.to_signed(v) for v in
                          (tap.lane(lane) if lanes > 1 or
                           ring.backend in Ring.LANE_BACKENDS
                           else tap.samples)]
            for graph_index, tap in taps.items()
        })
    return results


class _Genome:
    """A mutable recipe for a DataflowGraph (the fuzz corpus unit)."""

    def __init__(self, specs: List[tuple]):
        self.specs = list(specs)

    def build(self) -> DataflowGraph:
        from repro.core.isa import Opcode, is_binary_op
        g = DataflowGraph()
        refs: List[int] = []
        op_refs: List[int] = []
        for spec in self.specs:
            kind = spec[0]
            if kind == "input":
                refs.append(g.input(spec[1]))
            elif kind == "const":
                refs.append(g.const(spec[1]))
            elif kind == "delay":
                refs.append(g.delay(refs[spec[1] % len(refs)], spec[2]))
            else:  # ("op", name, a, b)
                opcode = Opcode[spec[1].upper()]
                a = refs[spec[2] % len(refs)]
                b = (refs[spec[3] % len(refs)]
                     if is_binary_op(opcode) else None)
                index = g.op(spec[1], a, b)
                refs.append(index)
                op_refs.append(index)
        if not op_refs:
            raise CompileError("genome has no operator nodes")
        g.output(op_refs[-1])
        if len(op_refs) > 2:
            g.output(op_refs[len(op_refs) // 2])
        return g


def _genome_from_graph(graph: DataflowGraph) -> _Genome:
    """Re-express a built graph as a fuzz genome.

    Node indices are positional in construction order, so operand
    references map straight onto genome spec indices.  The genome's
    synthesized outputs (last + middle operator) replace the graph's
    declared ones — corpus seeds steer the *shape* of the walk, they are
    not re-verified against the original kernel's output selection.
    """
    specs: List[tuple] = []
    for node in graph.nodes():
        if node.kind is NodeKind.INPUT:
            specs.append(("input", node.channel))
        elif node.kind is NodeKind.CONST:
            specs.append(("const", word.to_signed(node.value)))
        elif node.kind is NodeKind.DELAY:
            specs.append(("delay", node.operands[0], node.amount))
        else:
            specs.append(("op", node.op.name.lower(), node.operands[0],
                          node.operands[1] if len(node.operands) > 1
                          else 0))
    return _Genome(specs)


def _library_corpus(max_nodes: int) -> List[_Genome]:
    """Fuzz seeds from every library recipe small enough to mutate.

    Oversized graphs (the CORDIC unrolls) are skipped — a mutant larger
    than *max_nodes* is truncated to a stub by the campaign loop, so
    seeding them would only waste rounds.
    """
    seeds = []
    for name in sorted(GRAPH_LIBRARY):
        graph = GRAPH_LIBRARY[name]()
        if len(graph.nodes()) <= max_nodes:
            seeds.append(_genome_from_graph(graph))
    return seeds


def _mutate(genome: _Genome, rng: random.Random) -> _Genome:
    specs = list(genome.specs)
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.55:
            specs.append(("op", rng.choice(FUZZ_OPS),
                          rng.randrange(64), rng.randrange(64)))
        elif roll < 0.75:
            specs.append(("delay", rng.randrange(64), rng.randint(1, 4)))
        elif roll < 0.9:
            specs.append(("const", rng.randint(-40, 40)))
        else:
            specs.append(("input", 0))
    return _Genome(specs)


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_conformance` campaign."""

    rounds: int
    seed: int
    candidates_checked: int
    corpus_size: int
    coverage: int
    rejected: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = ("all engines bit-identical" if self.ok
                   else f"{len(self.mismatches)} MISMATCHES")
        return (f"fuzz: {self.rounds} rounds, "
                f"{self.candidates_checked} candidates x "
                f"{len(FUZZ_ENGINES)} engines, coverage "
                f"{self.coverage}, corpus {self.corpus_size}, "
                f"{self.rejected} unmappable — {verdict}")


def fuzz_conformance(rounds: int = 16, seed: int = 2002,
                     samples: int = 10,
                     max_nodes: int = 28) -> FuzzReport:
    """Coverage-guided conformance hammer across all five engines.

    Each round mutates a corpus genome into a fresh graph, compiles it
    under :data:`FUZZ_MAPPINGS`, executes every compiled candidate on
    every :data:`FUZZ_ENGINES` ring, and bit-compares all outputs (every
    lane of the lane engines) against the golden evaluator.  A mutant
    that reaches a new coverage signature — (opcode set, depth, width,
    mode, lane order) — joins the corpus, steering the walk toward
    unexplored mapping shapes.  Deterministic for a given *seed*.
    """
    rng = random.Random(seed)
    corpus = [_Genome([("input", 0), ("op", "mov", 0, 0)])]
    corpus.extend(_library_corpus(max_nodes))
    coverage = set()
    mismatches: List[str] = []
    checked = rejected = 0
    for round_index in range(rounds):
        STATS.fuzz_rounds += 1
        genome = _mutate(rng.choice(corpus), rng)
        if len(genome.specs) > max_nodes:
            genome = _Genome(genome.specs[:2])
        try:
            graph = genome.build()
            streams = library_streams(graph, samples,
                                      seed=seed + round_index)
            golden = graph.evaluate(streams)
        except CompileError:
            rejected += 1
            continue
        grew = False
        for mapping in FUZZ_MAPPINGS:
            try:
                program = _program_for(graph, None, mapping)
            except CompileError:
                rejected += 1
                continue
            checked += 1
            STATS.fuzz_candidates += 1
            signature = (
                frozenset(spec[1] for spec in genome.specs
                          if spec[0] == "op"),
                program.placement.levels,
                program.placement.width_needed,
                mapping.mode, mapping.lane_order,
            )
            if signature not in coverage:
                coverage.add(signature)
                grew = True
            for engine in FUZZ_ENGINES:
                ring = _fuzz_ring(engine, program.geometry)
                try:
                    lanes = _run_program(program, ring, streams, samples)
                except SimulationError as exc:
                    mismatches.append(
                        f"round {round_index} {mapping.describe()} "
                        f"{engine}: aborted: {exc}")
                    STATS.fuzz_mismatches += 1
                    continue
                for lane, produced in enumerate(lanes):
                    if produced != golden:
                        mismatches.append(
                            f"round {round_index} "
                            f"{mapping.describe()} {engine} "
                            f"lane {lane}: mismatch vs golden")
                        STATS.fuzz_mismatches += 1
        if grew:
            corpus.append(genome)
    return FuzzReport(rounds=rounds, seed=seed,
                      candidates_checked=checked,
                      corpus_size=len(corpus),
                      coverage=len(coverage), rejected=rejected,
                      mismatches=mismatches)
