"""Ring.reset() counter semantics — the documented cleared/preserved
split (see the ``reset()`` docstring in :mod:`repro.core.ring`).

``reset()`` models a hardware datapath reset: *run* state is cleared,
*machine and host* state survives.  This file is the regression net —
every counter the ring owns is asserted to land on the right side, so a
future backend cannot silently change the contract.
"""

from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import capture, restore

from tests.robustness.conftest import make_busy_ring


def run_hard(ring, cycles=12):
    """Drive the ring with enough variety to move every counter."""
    for _ in range(cycles):
        ring.step(bus=5, host_in=lambda ch: 1)
    return ring


class TestCleared:
    def test_run_state_clears(self):
        # 100 cycles drains the 40-word FIFO backlog, so the local MAC
        # loop underflows and every run-state counter moves.
        ring = run_hard(make_busy_ring(), cycles=100)
        assert ring.cycles and ring.fifo_high_water and ring.last_bus
        assert ring.fifo_underflows > 0
        ring.reset()
        assert ring.cycles == 0
        assert ring.fifo_underflows == 0
        assert ring.fifo_high_water == {}
        assert ring.last_bus == 0

    def test_dnode_stats_and_counters_clear(self):
        ring = run_hard(make_busy_ring())
        ring.reset()
        for dn in ring.all_dnodes():
            assert dn.stats.cycles == 0
            assert dn.stats.instructions == 0
            assert dn.stats.arithmetic_ops == 0
            assert dn.stats.multiplies == 0
            assert dn.stats.fifo_pops == 0
            assert dn.local.counter == 0
            assert dn.out == 0
            assert dn.regs.snapshot() == [0, 0, 0, 0]

    def test_fifo_queues_clear_in_place(self):
        ring = make_busy_ring()
        handle = ring.fifo(1, 0, 1)  # a producer-held handle
        ring.reset()
        assert len(handle) == 0
        ring.push_fifo(1, 0, 1, [9])
        assert list(handle) == [9]  # same live deque, still wired

    def test_batch_engine_detaches(self):
        ring = run_hard(make_busy_ring(backend="batch", batch_size=4))
        assert ring._batch_engine is not None
        ring.reset()
        assert ring._batch_engine is None


class TestPreserved:
    def test_configuration_and_write_counters(self):
        ring = make_busy_ring()
        writes = ring.config.writes
        assert writes > 0
        fingerprint = ring.config_fingerprint()
        run_hard(ring)
        ring.reset()
        assert ring.config.writes == writes
        assert ring.config_fingerprint() == fingerprint

    def test_engine_lifetime_counters(self):
        ring = run_hard(make_busy_ring(backend="fastpath"))
        compiles = ring.plan_compiles
        assert compiles > 0
        ring.config.write_local_limit(1, 0, 2)  # force an invalidation
        invalidations = ring.plan_invalidations
        ring.reset()
        assert ring.plan_compiles == compiles
        assert ring.plan_invalidations == invalidations

    def test_macro_cycles_counter(self):
        # Fused macro execution only engages on the batch entry point.
        ring = make_busy_ring(backend="fastpath", macro_step=2)
        ring.run(20)
        assert ring.macro_cycles > 0
        macro = ring.macro_cycles
        ring.reset()
        assert ring.macro_cycles == macro

    def test_plan_cache_contents_and_stats(self):
        ring = run_hard(make_busy_ring(backend="fastpath"))
        cached = len(ring.plan_cache)
        assert cached > 0
        hits, misses = ring.plan_cache.hits, ring.plan_cache.misses
        ring.reset()
        assert len(ring.plan_cache) == cached
        assert (ring.plan_cache.hits, ring.plan_cache.misses) == \
            (hits, misses)

    def test_active_plan_survives_without_recompile(self):
        ring = run_hard(make_busy_ring(backend="fastpath"))
        assert ring._plan is not None
        plan = ring._plan
        compiles = ring.plan_compiles
        ring.reset()
        assert ring._plan is plan  # same closure over cleared containers
        run_hard(ring)
        assert ring.plan_compiles == compiles  # resumed, not recompiled

    def test_robustness_counters(self):
        ring = run_hard(make_busy_ring())
        ring.faults_injected = 3
        ring.checkpoints = 2
        ring.rollbacks = 1
        ring.recovery_cycles = 8
        ring.reset()
        assert (ring.faults_injected, ring.checkpoints, ring.rollbacks,
                ring.recovery_cycles) == (3, 2, 1, 8)

    def test_rollback_still_counts_across_restore(self):
        """restore() resets internally; a rollback must still register
        on the post-restore ring — restoring must not rewrite history."""
        ring = run_hard(make_busy_ring())
        snapshot = capture(ring)
        ring.rollbacks = 5
        restore(ring, snapshot)
        assert ring.rollbacks == 5


def test_reset_is_idempotent():
    ring = run_hard(make_busy_ring())
    ring.reset()
    first = capture(ring)
    ring.reset()
    from repro.core.snapshot import snapshot_digest
    assert snapshot_digest(capture(ring)) == snapshot_digest(first)
