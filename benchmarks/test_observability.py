"""Observability overhead: what does watching the fabric cost?

The tier-2 sampled tracer exists so that waveform capture does not force
a Ring-64 run back onto the per-cycle interpreter: :meth:`Ring.run`
chunk-runs the compiled plan between capture points.  This benchmark
measures Ring-64 steady-state throughput in four operating points —
interpreter, untraced fast path, every-cycle trace, and an interval-64
sampled trace — asserts the acceptance target (a sampled trace still
beats the bare interpreter by at least 5x), exercises the tier-3
:meth:`Ring.profile` accounting, and records everything in
``BENCH_observability.json`` so CI archives a perf data point per PR.

Run with ``pytest -s benchmarks/test_observability.py`` to see the table.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from benchmarks.test_steady_state_throughput import _configure
from repro.analysis import render_table
from repro.analysis.trace import Probe, SignalTrace
from repro.core.ring import Ring, RingGeometry

#: Acceptance floor: an interval-64 sampled trace on Ring-64 must keep at
#: least this multiple of the bare interpreter's throughput.
TARGET_TRACED_SPEEDUP = 5.0

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_observability.json"

_PROBES = [Probe.out(0, 0), Probe.out(16, 1), Probe.reg(8, 0, 0),
           Probe.bus()]


def _ring64(fastpath: bool = True) -> Ring:
    ring = Ring(RingGeometry.ring(64), fastpath=fastpath)
    _configure(ring)
    return ring


def _cycles_per_second(ring: Ring, cycles: int, repeats: int = 3) -> float:
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def _measure_operating_points() -> dict:
    cycles = 3_000
    points = {}

    ring = _ring64(fastpath=False)
    ring.run(4)
    points["interpreter"] = _cycles_per_second(ring, cycles)

    ring = _ring64()
    ring.run(4)
    assert ring._plan is not None
    points["fastpath"] = _cycles_per_second(ring, cycles)

    ring = _ring64()
    SignalTrace(ring, _PROBES)  # every cycle: forces per-cycle dispatch
    ring.run(4)
    points["traced_dense"] = _cycles_per_second(ring, cycles)

    ring = _ring64()
    trace = SignalTrace(ring, _PROBES, interval=64)
    ring.run(4)
    points["traced_sampled_64"] = _cycles_per_second(ring, cycles)
    assert ring._plan is not None, "sampled trace knocked out the plan"
    assert trace.cycles > 0, "sampled trace captured nothing"
    return points


def test_sampled_trace_keeps_fastpath_throughput():
    points = _measure_operating_points()
    sampled_speedup = points["traced_sampled_64"] / points["interpreter"]
    untraced_speedup = points["fastpath"] / points["interpreter"]
    emit(render_table(
        ["operating point", "cyc/s", "vs interpreter"],
        [[name, f"{rate:,.0f}",
          f"{rate / points['interpreter']:.1f}x"]
         for name, rate in points.items()],
        title="Ring-64 observability overhead",
    ))
    assert sampled_speedup >= TARGET_TRACED_SPEEDUP, (
        f"interval-64 trace sustained only {sampled_speedup:.2f}x the "
        f"interpreter (target {TARGET_TRACED_SPEEDUP}x)"
    )

    ring = _ring64()
    with ring.profile() as profile:
        ring.run(3_000)
    assert profile.plan_compiles == 1
    assert profile.fastpath_fraction > 0.99, (
        f"steady state should be almost entirely compiled, got "
        f"{profile.fastpath_fraction:.3f}"
    )
    assert profile.compile_seconds > 0.0

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "observability",
        "fabric": "Ring-64",
        "cycles_per_second": {k: round(v) for k, v in points.items()},
        "sampled_trace_speedup_vs_interpreter": round(sampled_speedup, 2),
        "untraced_speedup_vs_interpreter": round(untraced_speedup, 2),
        "target_sampled_speedup": TARGET_TRACED_SPEEDUP,
        "profile": profile.summary(),
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")
