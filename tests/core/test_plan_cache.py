"""Plan-cache semantics: LRU bounds, fingerprints, churn re-adoption.

Three layers of coverage:

* :class:`TestPlanCacheUnit` — the bounded LRU container itself
  (eviction order, capacity-1 thrash, the miss-twice promotion memory);
* :class:`TestFingerprints` — fingerprint stability and sensitivity for
  Dnodes and switches (the cache key must change exactly when the
  executable configuration changes);
* :class:`TestRingCacheIntegration` — the ring-level contract: a
  repeated A/B/A context switch re-adopts cached plans with *zero*
  interpreter cycles, cache-hit plans are bit-identical to fresh
  compiles, per-cycle unique reconfiguration still never compiles, and
  batch mode at B=1 rides the scalar fast path.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.metrics import collect_metrics
from repro.core.dnode import DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.plancache import PlanCache
from repro.core.ring import Ring, RingGeometry, make_ring
from repro.core.switch import PortSource
from repro.errors import ConfigurationError


class TestPlanCacheUnit:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            PlanCache(-1)

    def test_lru_eviction_order(self):
        cache = PlanCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        assert cache.keys() == ["a", "b", "c"]
        # Touching 'a' refreshes it; inserting 'd' must evict 'b'.
        assert cache.get("a") == "A"
        cache.put("d", "D")
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_capacity_one_thrash(self):
        cache = PlanCache(1)
        for i in range(10):
            cache.put(i, i)
            assert cache.get(i) == i
            assert len(cache) == 1
        assert cache.evictions == 9
        assert cache.keys() == [9]
        # Everything but the survivor misses.
        assert cache.get(3) is None

    def test_capacity_zero_disables(self):
        cache = PlanCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.misses == 0, "disabled cache must not count"
        assert cache.note_miss("a") is False
        assert cache.note_miss("a") is False

    def test_note_miss_promotes_on_second_sighting(self):
        cache = PlanCache(4)
        assert cache.note_miss("a") is False
        assert cache.note_miss("b") is False
        assert cache.note_miss("a") is True
        assert cache.note_miss("a") is True

    def test_note_miss_memory_is_bounded(self):
        cache = PlanCache(1)  # missed-FIFO capacity = max(4*1, 16) = 16
        cache.note_miss("target")
        for i in range(16):
            cache.note_miss(i)
        # 'target' was pushed out of the bounded memory.
        assert cache.note_miss("target") is False

    def test_put_refresh_keeps_size(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)
        assert cache.keys() == ["b", "a"]
        assert cache.get("a") == 3
        assert cache.evictions == 0

    def test_put_purges_pending_miss_record(self):
        """Regression: a stored key must leave the missed-FIFO.  Before
        the fix an evicted entry's fingerprint kept its old miss record,
        so its *first* reappearance was treated as a second sighting and
        promoted to an eager compile."""
        cache = PlanCache(1)
        assert cache.note_miss("a") is False
        cache.put("a", "A")
        cache.put("b", "B")  # evicts 'a'
        assert cache.get("a") is None
        # 'a' starts over: first miss after eviction must NOT promote.
        assert cache.note_miss("a") is False
        assert cache.note_miss("a") is True

    def test_discard_purges_pending_miss_record(self):
        """Regression: discard() dropped only the entry, leaving the miss
        record to spuriously promote the next appearance."""
        cache = PlanCache(4)
        cache.note_miss("a")
        cache.put("a", "A")
        cache.discard("a")
        assert cache.note_miss("a") is False
        assert cache.note_miss("a") is True

    def test_discard_of_never_stored_key_is_noop(self):
        cache = PlanCache(4)
        cache.discard("ghost")
        assert cache.note_miss("ghost") is False

    def test_clear_preserves_counters(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 1)


def _word_a():
    return MicroWord(Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT, imm=3)


def _word_b():
    return MicroWord(Opcode.SUB, Source.IN1, Source.IMM, Dest.OUT, imm=3)


class TestFingerprints:
    def test_dnode_global_fingerprint_tracks_word(self):
        ring = make_ring(8)
        dn = ring.dnode(0, 0)
        fp0 = dn.config_fingerprint()
        dn.configure(_word_a())
        fp1 = dn.config_fingerprint()
        assert fp1 != fp0
        dn.configure(_word_a())
        assert dn.config_fingerprint() == fp1, "same word, same print"
        dn.configure(_word_b())
        assert dn.config_fingerprint() != fp1

    def test_dnode_local_fingerprint_ignores_inactive_slots(self):
        ring = make_ring(8)
        dn = ring.dnode(1, 0)
        dn.local.load_program([_word_a(), _word_b()])
        dn.set_mode(DnodeMode.LOCAL)
        fp = dn.config_fingerprint()
        # Slots at/above LIMIT can never execute: not part of the print.
        dn.local.load_slot(5, _word_b())
        assert dn.config_fingerprint() == fp
        dn.local.load_slot(0, _word_b())
        assert dn.config_fingerprint() != fp

    def test_mode_flip_changes_fingerprint(self):
        ring = make_ring(8)
        dn = ring.dnode(0, 1)
        dn.configure(_word_a())
        dn.local.load_program([_word_a()])
        global_fp = dn.config_fingerprint()
        dn.set_mode(DnodeMode.LOCAL)
        assert dn.config_fingerprint() != global_fp

    def test_switch_fingerprint_route_order_independent(self):
        a = Ring(RingGeometry(layers=2, width=2))
        b = Ring(RingGeometry(layers=2, width=2))
        a.switch(0).config.route(0, 1, PortSource.up(1))
        a.switch(0).config.route(1, 2, PortSource.host(3))
        b.switch(0).config.route(1, 2, PortSource.host(3))
        b.switch(0).config.route(0, 1, PortSource.up(1))
        assert (a.switch(0).config.fingerprint()
                == b.switch(0).config.fingerprint())

    def test_switch_explicit_zero_equals_absent(self):
        a = Ring(RingGeometry(layers=2, width=2))
        b = Ring(RingGeometry(layers=2, width=2))
        a.switch(0).config.route(0, 1, PortSource.zero())
        assert (a.switch(0).config.fingerprint()
                == b.switch(0).config.fingerprint())

    def test_ring_fingerprint_covers_every_component(self):
        ring = make_ring(8)
        prints = {ring.config_fingerprint()}
        ring.dnode(3, 1).configure(_word_a())
        prints.add(ring.config_fingerprint())
        ring.switch(2).config.route(0, 2, PortSource.bus())
        prints.add(ring.config_fingerprint())
        ring.dnode(2, 0).local.set_limit(3)
        ring.dnode(2, 0).set_mode(DnodeMode.LOCAL)
        prints.add(ring.config_fingerprint())
        assert len(prints) == 4, "each mutation must change the print"


def _configure(ring: Ring, flavour: str) -> None:
    """One of two distinct full-fabric contexts (the A/B working set)."""
    word = _word_a() if flavour == "a" else _word_b()
    for layer in range(ring.geometry.layers):
        for pos in range(ring.geometry.width):
            ring.config.write_microword(layer, pos, word)
        ring.config.write_switch_route(
            layer, 0, 1,
            PortSource.up(0) if flavour == "a" else PortSource.rp(1, 1))


def _state(ring: Ring) -> tuple:
    return (
        ring.cycles,
        tuple(dn.out for dn in ring.all_dnodes()),
        tuple(tuple(dn.regs.snapshot()) for dn in ring.all_dnodes()),
        tuple(ring.switch(k).rp_read(s, l)
              for k in range(ring.geometry.layers)
              for s in range(1, 5)
              for l in range(1, ring.geometry.width + 1)),
    )


class TestRingCacheIntegration:
    def test_aba_context_switch_zero_interpreter_cycles(self):
        """The headline regression: hardware multiplexing between known
        contexts must re-adopt plans with no interpreted cycles at all —
        including the first cycle after each switch."""
        ring = make_ring(8)
        for flavour in ("a", "b"):  # warm both contexts into the cache
            _configure(ring, flavour)
            ring.run(4)
        with ring.profile() as prof:
            for _ in range(5):
                for flavour in ("a", "b"):
                    _configure(ring, flavour)
                    ring.run(3)
        assert prof.interpreted_cycles == 0
        assert prof.plan_compiles == 0
        assert ring.plan_cache.hits >= 10

    def test_cache_hit_bit_identical_to_fresh_compile(self):
        """Mutate away, restore, and the cache-hit plan must reproduce
        the recompile-from-scratch run bit for bit."""
        cached = make_ring(8, plan_cache=8)
        fresh = make_ring(8, plan_cache=0)
        for ring in (cached, fresh):
            for flavour in ("a", "b", "a", "b", "a"):
                _configure(ring, flavour)
                ring.run(7, bus=9,
                         host_in=lambda ch: (ch * 41 + 5) & 0xFFFF)
        assert cached.plan_cache.hits > 0
        assert _state(cached) == _state(fresh)
        assert cached.plan_compiles < fresh.plan_compiles

    def test_eviction_under_small_capacity(self):
        ring = make_ring(8, plan_cache=1)
        for flavour in ("a", "b", "a", "b"):
            _configure(ring, flavour)
            ring.run(4)
        assert ring.plan_cache.evictions >= 1
        assert len(ring.plan_cache) == 1

    def test_per_cycle_unique_reconfiguration_still_never_compiles(self):
        """A never-repeating configuration stream keeps the legacy
        guarantee: no compiles, no cache entries to thrash."""
        ring = make_ring(8)
        for i in range(12):
            ring.dnode(0, 0).configure(
                MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=i))
            ring.step()
            assert ring._plan is None
        assert ring.plan_compiles == 0
        assert len(ring.plan_cache) == 0

    def test_cache_disabled_restores_legacy_flow(self):
        ring = make_ring(8, plan_cache=0)
        _configure(ring, "a")
        ring.run(4)
        assert ring._plan is not None
        assert ring.plan_cache.hits == 0
        assert ring.plan_cache.misses == 0

    def test_set_plan_cache_resizes(self):
        ring = make_ring(8)
        _configure(ring, "a")
        ring.run(4)
        assert len(ring.plan_cache) == 1
        ring.set_plan_cache(0)
        assert ring.plan_cache.capacity == 0
        _configure(ring, "b")
        ring.run(4)  # still runs, just uncached
        assert len(ring.plan_cache) == 0

    def test_plans_survive_reset(self):
        """reset() clears state in place, so cached plans stay valid."""
        ring = make_ring(8)
        _configure(ring, "a")
        ring.run(6)
        compiles = ring.plan_compiles
        ring.reset()
        ring.run(6)
        assert ring.plan_compiles == compiles, "no recompile after reset"


class TestRestoreReadoption:
    """Satellite: restoring a checkpoint of a known configuration costs
    exactly one cache lookup — no recompile, no interpreted cycles."""

    def test_restore_to_known_config_is_one_cache_hit(self):
        from repro.core.snapshot import capture, restore
        ring = make_ring(8)
        _configure(ring, "a")
        ring.run(6)  # compiles once and caches the plan
        snap = capture(ring)
        ring.run(4)
        hits = ring.plan_cache.hits
        compiles = ring.plan_compiles
        with ring.profile() as prof:
            restore(ring, snap)  # eager re-adoption inside restore()
            ring.run(5)
        assert ring.plan_cache.hits == hits + 1
        assert ring.plan_compiles == compiles
        assert prof.interpreted_cycles == 0
        assert prof.plan_compiles == 0
        data = json.loads(collect_metrics(ring).to_json())
        assert data["plan_cache_hits_total"] == hits + 1

    def test_snapshot_counters_surface(self):
        cache = PlanCache(3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        assert cache.snapshot_counters() == {
            "capacity": 3, "size": 1, "hits": 1, "misses": 1,
            "evictions": 0}


class TestBatchSizeOneRouting:
    """Satellite: B=1 batch mode must ride the scalar fast path."""

    def test_b1_uses_scalar_plan_not_engine(self):
        ring = make_ring(8, backend="batch", batch_size=1)
        assert ring.fastpath_enabled
        _configure(ring, "a")
        ring.run(8)
        assert ring._batch_engine is None, "no vector engine at B=1"
        assert ring._plan is not None, "scalar plan compiled instead"

    def test_b1_matches_fastpath_bit_for_bit(self):
        batch = make_ring(8, backend="batch", batch_size=1)
        fast = make_ring(8)
        for ring in (batch, fast):
            _configure(ring, "a")
            ring.push_fifo(1, 0, 1, [5, 6, 7])
            ring.run(9, bus=3, host_in=lambda ch: (ch + 77) & 0xFFFF)
        assert _state(batch) == _state(fast)

    def test_b1_engine_handoff_stays_coherent(self):
        """Accessing ``ring.batch`` mid-run engages the vector engine;
        the resync broadcast must hand over the scalar state exactly."""
        batch = make_ring(8, backend="batch", batch_size=1)
        fast = make_ring(8)
        for ring in (batch, fast):
            _configure(ring, "a")
            ring.run(5)
        engine = batch.batch          # engage: broadcasts scalar state
        assert batch._batch_engine is engine
        for ring in (batch, fast):
            ring.run(5)
        assert _state(batch) == _state(fast)

    def test_b1_batch_size_bump_uses_engine(self):
        ring = make_ring(8, backend="batch", batch_size=2)
        assert not ring.fastpath_enabled
        _configure(ring, "a")
        ring.run(4)
        assert ring._batch_engine is not None

    def test_batch_kernel_cache_hits_across_churn(self):
        ring = make_ring(8, backend="batch", batch_size=2)
        for flavour in ("a", "b", "a", "b", "a", "b"):
            _configure(ring, flavour)
            ring.run(3)
        engine = ring._batch_engine
        assert engine.plan_cache.hits >= 4
        assert engine.compiles == 2, "one compile per distinct context"
