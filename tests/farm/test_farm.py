"""RingFarm serving: jobs, executors, workers, routing, backpressure.

Directed tests for the serving front door (:mod:`repro.farm`): job
validation and the wire codecs, the persistent-ring
:class:`~repro.farm.worker.JobExecutor` (warm caches, pause/resume,
strict-FIFO aborts), the process-backed :class:`FarmWorker` (spawn,
respawn after a kill, inline fallback), and the asyncio
:class:`RingFarm` itself — fingerprint-affinity routing, tenant quotas,
bounded-queue rejection with retry-after, drain/close lifecycle, live
migration, and the ``farm_*`` metric families (including hostile tenant
names surviving the Prometheus exporter).

The property-based bit-identity net is in ``test_differential.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import state_digest
from repro.errors import ConfigurationError, SimulationError
from repro.farm import (
    FarmJob,
    FarmRejected,
    FarmWorker,
    JobExecutor,
    RingFarm,
)
from repro.farm.job import job_from_wire, job_to_wire, result_to_wire
from repro.host.system import RingSystem
from repro.kernels.fir import build_spatial_fir

SIGNAL = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]


def fir_job(tenant: str = "alice", coeffs=(1, 2, 3, 4),
            cycles: int = 24) -> FarmJob:
    """A FarmJob wrapping the spatial FIR mapping of *coeffs*."""
    system = build_spatial_fir(list(coeffs))
    ring = system.ring
    return FarmJob(
        tenant=tenant,
        layers=ring.geometry.layers,
        width=ring.geometry.width,
        plane=ring.config.capture_plane(),
        cycles=cycles,
        streams={0: [v & 0xFFFF for v in SIGNAL]},
        taps=[(len(coeffs) - 1, 1, None)],
    )


def strict_underflow_job(cycles: int = 6, preload: int = 2) -> FarmJob:
    """A strict-FIFO job guaranteed to run its FIFO dry mid-budget."""
    ring = Ring(RingGeometry(layers=2, width=2))
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
    return FarmJob(
        tenant="carol", layers=2, width=2,
        plane=ring.config.capture_plane(), cycles=cycles,
        taps=[(0, 0, None)],
        fifos=[(0, 0, 1, list(range(1, preload + 1)))],
        strict_fifos=True,
    )


def direct_run(job: FarmJob):
    """Run *job* the plain way on a fresh ring; ``(taps, digest)``."""
    ring = Ring(RingGeometry(layers=job.layers, width=job.width),
                strict_fifos=job.strict_fifos)
    system = RingSystem(ring)
    for layer, pos, limit in job.taps:
        system.data.add_tap(layer, pos, limit=limit)
    ring.config.apply_plane(job.plane)
    for channel, values in sorted(job.streams.items()):
        system.data.stream(channel, values)
    for layer, pos, channel, words in job.fifos:
        ring.push_fifo(layer, pos, channel, words)
    system.run(job.cycles)
    return ([list(tap.samples) for tap in system.data.taps],
            state_digest(ring))


class _Gate:
    """Blocks every worker's execute() until released (deterministic
    queue-occupancy tests: no sleeps, no races)."""

    def __init__(self, farm: RingFarm):
        self.release = threading.Event()
        self.entered = threading.Event()
        for worker in farm.workers:
            original = worker.execute

            def slow(job, pause_at=None, resume=None, _orig=original):
                self.entered.set()
                self.release.wait(10)
                return _orig(job, pause_at=pause_at, resume=resume)

            worker.execute = slow


class TestFarmJob:
    def test_validate_rejects_bad_fields(self):
        good = fir_job()
        for mutation in (("tenant", ""), ("layers", 1), ("width", 0),
                         ("cycles", -1), ("plane", {"not": "a plane"})):
            job = fir_job()
            setattr(job, *mutation)
            with pytest.raises(ConfigurationError):
                job.validate()
        good.validate()  # the baseline itself is fine

    def test_wire_round_trip_through_json(self):
        job = fir_job(coeffs=(2, -3, 5))
        job.job_id = "j-17"
        job.fifos = [(1, 0, 2, [7, 8])]
        job.strict_fifos = True
        wire = json.loads(json.dumps(job_to_wire(job)))
        back = job_from_wire(wire)
        assert back.tenant == job.tenant
        assert (back.layers, back.width) == (job.layers, job.width)
        assert back.plane == job.plane
        assert back.streams == job.streams
        assert back.taps == [tuple(t) for t in job.taps]
        assert back.fifos == [tuple(f[:3]) + (list(f[3]),)
                              for f in job.fifos]
        assert back.strict_fifos and back.job_id == "j-17"

    def test_result_wire_is_json_safe(self):
        out = JobExecutor().execute(fir_job())
        wire = result_to_wire(out["result"])
        json.dumps(wire)  # must not raise
        assert len(wire["digest"]) == 64
        assert wire["aborted"] is None and wire["warm"] is False


class TestJobExecutor:
    def test_matches_direct_run(self):
        job = fir_job()
        want_taps, want_digest = direct_run(job)
        out = JobExecutor().execute(job)
        result = out["result"]
        assert out["done"]
        assert result.taps == want_taps
        assert result.digest == want_digest
        assert result.cycles_run == job.cycles

    def test_second_job_same_config_is_warm(self):
        executor = JobExecutor()
        cold = executor.execute(fir_job())["result"]
        warm = executor.execute(fir_job())["result"]
        assert not cold.warm and cold.plan_compiles >= 1
        assert warm.warm
        # The plane is already resident, so the warm job needs neither a
        # compile nor even a cache lookup — the adopted plan never left.
        assert warm.plan_hits == 0 and warm.plan_compiles == 0
        assert len(executor._rings) == 1, "one persistent ring per shape"
        assert warm.taps == cold.taps and warm.digest == cold.digest

    def test_context_switch_a_b_a_stays_bit_identical(self):
        # Resident-plane regression net: alternating planes must force a
        # real reconfiguration each switch, and coming back to plane A
        # must serve from the plan cache (hit, not compile) while staying
        # bit-identical to a fresh direct run.
        job_a = fir_job(coeffs=(1, 2, 3, 4))
        job_b = fir_job(coeffs=(4, -3, 2, -1))
        want_a, digest_a = direct_run(job_a)
        want_b, digest_b = direct_run(job_b)
        executor = JobExecutor()
        first = executor.execute(job_a)["result"]
        other = executor.execute(job_b)["result"]
        again = executor.execute(job_a)["result"]
        assert (first.taps, first.digest) == (want_a, digest_a)
        assert (other.taps, other.digest) == (want_b, digest_b)
        assert (again.taps, again.digest) == (want_a, digest_a)
        assert not first.warm and not other.warm
        assert again.warm
        assert again.plan_compiles == 0 and again.plan_hits >= 1

    def test_pause_resume_across_executors_bit_identical(self):
        job = fir_job(cycles=20)
        want_taps, want_digest = direct_run(job)
        first, second = JobExecutor(worker=0), JobExecutor(worker=1)
        paused = first.execute(job, pause_at=9)
        assert not paused["done"]
        out = second.execute(job, resume=paused["state"])
        result = out["result"]
        assert result.migrated and result.worker == 1
        assert result.taps == want_taps
        assert result.digest == want_digest

    def test_want_digest_false_skips_digest_only(self):
        job = fir_job()
        job.want_digest = False
        want_taps, _ = direct_run(fir_job())
        result = JobExecutor().execute(job)["result"]
        assert result.digest == ()
        assert result.taps == want_taps, "taps unaffected by the opt-out"
        wire = json.loads(json.dumps(job_to_wire(job)))
        assert job_from_wire(wire).want_digest is False

    def test_strict_fifo_abort_is_reported_not_raised(self):
        result = JobExecutor().execute(strict_underflow_job())["result"]
        assert result.aborted is not None
        assert "FIFO1" in result.aborted and "cycle" in result.aborted


class TestFarmWorker:
    def test_inline_lifecycle(self):
        worker = FarmWorker(0, use_processes=False)
        assert not worker.using_process
        assert worker.ping()
        out = worker.execute(fir_job())
        assert out["done"] and worker.jobs_done == 1
        worker.close()
        worker.close()  # idempotent
        assert not worker.ping()
        with pytest.raises(SimulationError, match="closed"):
            worker.execute(fir_job())

    def test_process_worker_runs_and_respawns_after_kill(self):
        worker = FarmWorker(0, use_processes=True)
        try:
            if not worker.using_process:  # pragma: no cover - fallback
                pytest.skip("no worker processes on this platform")
            assert worker.ping()
            first = worker.execute(fir_job())["result"]
            assert first.worker == 0
            worker._proc.kill()
            worker._proc.join()
            # Next job respawns the process (cold caches, slot kept).
            second = worker.execute(fir_job())["result"]
            assert worker.restarts == 1
            assert not second.warm
            assert second.digest == first.digest
        finally:
            worker.close()

    def test_process_worker_propagates_job_errors(self):
        worker = FarmWorker(0, use_processes=True)
        try:
            if not worker.using_process:  # pragma: no cover - fallback
                pytest.skip("no worker processes on this platform")
            bad = fir_job()
            bad.tenant = ""
            with pytest.raises(SimulationError,
                               match="ConfigurationError"):
                worker.execute(bad)
            # The worker survives a rejected job.
            assert worker.ping()
        finally:
            worker.close()


def inline_farm(**kwargs) -> RingFarm:
    kwargs.setdefault("use_processes", False)
    return RingFarm(**kwargs)


class TestRingFarm:
    def test_constructor_validation(self):
        for kwargs in ({"workers": 0}, {"queue_depth": 0},
                       {"tenant_quota": 0}, {"routing": "rr"}):
            with pytest.raises(ConfigurationError):
                inline_farm(**kwargs)

    def test_submit_matches_direct_run(self):
        job = fir_job()
        want_taps, want_digest = direct_run(job)

        async def go():
            async with inline_farm(workers=2) as farm:
                result = await farm.submit(job)
                return farm.jobs_submitted, farm.jobs_completed, result

        submitted, completed, result = asyncio.run(go())
        assert (submitted, completed) == (1, 1)
        assert result.taps == want_taps
        assert result.digest == want_digest
        assert not result.migrated

    def test_affinity_routing_pins_and_warms(self):
        async def go():
            async with inline_farm(workers=2) as farm:
                results = [await farm.submit(fir_job())
                           for _ in range(3)]
                return farm, results

        farm, results = asyncio.run(go())
        assert len({r.worker for r in results}) == 1, "pinned worker"
        assert not results[0].warm
        assert all(r.warm for r in results[1:])
        assert farm.plan_compiles == 1
        assert farm.warm_jobs == 2

    def test_random_routing_still_bit_identical(self):
        job = fir_job()
        _, want_digest = direct_run(job)

        async def go():
            async with inline_farm(workers=2, routing="random") as farm:
                return [await farm.submit(fir_job()) for _ in range(4)]

        results = asyncio.run(go())
        assert all(r.digest == want_digest for r in results)

    def test_tenant_quota_rejects_excess_inflight(self):
        async def go():
            async with inline_farm(workers=1, tenant_quota=1) as farm:
                gate = _Gate(farm)
                first = asyncio.get_running_loop().create_task(
                    farm.submit(fir_job()))
                await asyncio.to_thread(gate.entered.wait, 10)
                with pytest.raises(FarmRejected) as err:
                    await farm.submit(fir_job())
                gate.release.set()
                await first
                return farm.jobs_rejected, err.value

        rejected, exc = asyncio.run(go())
        assert rejected == 1
        assert "over quota" in exc.reason
        assert exc.retry_after > 0

    def test_full_queue_rejects_with_retry_after(self):
        async def go():
            async with inline_farm(workers=1, queue_depth=1) as farm:
                gate = _Gate(farm)
                loop = asyncio.get_running_loop()
                running = loop.create_task(farm.submit(fir_job()))
                await asyncio.to_thread(gate.entered.wait, 10)
                queued = loop.create_task(farm.submit(fir_job()))
                await asyncio.sleep(0)  # let the second submit enqueue
                with pytest.raises(FarmRejected) as err:
                    await farm.submit(fir_job())
                gate.release.set()
                await asyncio.gather(running, queued)
                return farm, err.value

        farm, exc = asyncio.run(go())
        assert "queue full" in exc.reason
        assert exc.retry_after > 0
        assert farm.jobs_rejected == 1
        assert farm.jobs_completed == 2

    def test_drain_rejects_then_close_refuses_submit(self):
        async def go():
            farm = inline_farm(workers=1)
            async with farm:
                await farm.submit(fir_job())
                await farm.drain()
                with pytest.raises(FarmRejected, match="draining"):
                    await farm.submit(fir_job())
            await farm.close()  # idempotent
            with pytest.raises(SimulationError, match="closed"):
                await farm.submit(fir_job())
            return farm

        farm = asyncio.run(go())
        assert farm.jobs_completed == 1 and farm.jobs_rejected == 1

    def test_live_migration_is_bit_identical(self):
        job = fir_job(cycles=20)
        want_taps, want_digest = direct_run(job)

        async def go():
            async with inline_farm(workers=2) as farm:
                result = await farm.submit(job, migrate_at=10)
                return farm.jobs_migrated, result

        migrated, result = asyncio.run(go())
        assert migrated == 1 and result.migrated
        assert result.taps == want_taps
        assert result.digest == want_digest

    def test_aborted_jobs_counted_not_raised(self):
        async def go():
            async with inline_farm(workers=1) as farm:
                result = await farm.submit(strict_underflow_job())
                return farm.jobs_aborted, result

        aborted, result = asyncio.run(go())
        assert aborted == 1
        assert "FIFO1" in result.aborted

    def test_metrics_families_and_hostile_tenant_labels(self):
        hostile = 'bob "x\n'

        async def go():
            async with inline_farm(workers=2) as farm:
                await farm.submit(fir_job())
                await farm.submit(fir_job(tenant=hostile))
                return farm

        farm = asyncio.run(go())
        snap = farm.metrics()
        assert snap.value("farm_workers") == 2
        assert snap.value("farm_jobs_submitted_total") == 2
        assert snap.value("farm_jobs_completed_total") == 2
        assert snap.value("farm_jobs_rejected_total") == 0
        assert snap.value("farm_queue_depth", worker="0") == 0
        assert snap.value("farm_tenant_jobs_total", tenant="alice") == 1
        assert snap.value("farm_tenant_cycles_total", tenant=hostile) == 24
        total = sum(snap.value("farm_worker_jobs_total", worker=str(i))
                    for i in range(2))
        assert total == 2
        text = snap.to_prometheus()
        # The hostile tenant name must come out escaped, one line.
        assert 'tenant="bob \\"x\\n"' in text
        assert not any(line.startswith('"')
                       for line in text.splitlines())

    def test_metrics_before_start_report_empty_queues(self):
        farm = inline_farm(workers=2)
        snap = farm.metrics()
        assert snap.value("farm_queue_depth", worker="1") == 0
        assert snap.value("farm_plan_warm_ratio") == 0.0
        for worker in farm.workers:
            worker.close()
