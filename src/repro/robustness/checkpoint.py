"""Checkpointing, rollback-replay recovery, and graceful degradation.

The recovery model is classic checkpoint/rollback for a deterministic
fabric: snapshot the complete ring state every *N* cycles (via
:mod:`repro.core.snapshot`); on detecting corruption, restore the last
checkpoint and replay the cycles since.  Because the simulator is
bit-deterministic given the same cycle-indexed stimulus, replay converges
to *bit-identity* with an uninjected golden run — proven across all four
execution engines by ``tests/robustness``.

Determinism hinges on the **driver**: a callable ``driver(ring, cycle)``
that advances the ring exactly one cycle using only ``cycle`` to decide
its stimulus (bus value, host stream words).  Replay calls the same
driver with the same cycle numbers, so the fabric re-sees the original
inputs.  The default driver steps with an idle bus and no host input.

Graceful degradation models a permanently dead Dnode: park it on a NOP
local program (:func:`disable_dnode`), then reroute its downstream
consumers to a healthy neighbour (:func:`remap_around`).  The cost is
quantified by :func:`throughput`/:func:`degradation_report`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.dnode import DnodeMode
from repro.core.isa import NOP_WORD
from repro.core.ring import Ring
from repro.core.snapshot import RingSnapshot, capture, restore, state_digest
from repro.core.switch import PortKind, PortSource
from repro.errors import ConfigurationError, SimulationError

#: Advances *ring* by one cycle given the global cycle number.
Driver = Callable[[Ring, int], None]


def default_driver(ring: Ring, cycle: int) -> None:
    """Idle-bus driver; host ports present 0 (an idle link).

    A host reader must exist even for fabrics that route no HOST port:
    a route-corruption fault can repoint any port at a host channel,
    and execution has to keep going so the divergence is *detected*
    rather than crashing the simulation.
    """
    ring.step(host_in=lambda channel: 0)


class CheckpointManager:
    """Periodic checkpointing for one ring.

    Args:
        ring: the fabric to protect.
        every: checkpoint interval in cycles (>= 1).
        driver: deterministic single-cycle stimulus (see module docs).
        keep: how many checkpoints to retain (oldest dropped first).
    """

    def __init__(self, ring: Ring, every: int,
                 driver: Optional[Driver] = None, keep: int = 4):
        if every < 1:
            raise ConfigurationError(
                f"checkpoint interval must be >= 1 cycle, got {every}")
        if keep < 1:
            raise ConfigurationError(
                f"must keep >= 1 checkpoint, got {keep}")
        self.ring = ring
        self.every = every
        self.driver = driver if driver is not None else default_driver
        self.keep = keep
        #: Retained checkpoints, oldest first.
        self.checkpoints: List[RingSnapshot] = []
        self.checkpoint()  # cycle-0 baseline: recovery is always possible

    def checkpoint(self) -> RingSnapshot:
        """Capture the ring now and retain the snapshot."""
        snapshot = capture(self.ring)
        self.checkpoints.append(snapshot)
        if len(self.checkpoints) > self.keep:
            del self.checkpoints[0]
        self.ring.checkpoints += 1
        return snapshot

    @property
    def latest(self) -> RingSnapshot:
        """The most recent retained checkpoint."""
        return self.checkpoints[-1]

    def step(self) -> None:
        """Drive one cycle; checkpoint when the interval elapses."""
        self.driver(self.ring, self.ring.cycles)
        if self.ring.cycles % self.every == 0:
            self.checkpoint()

    def run(self, cycles: int) -> None:
        """Drive *cycles* cycles with periodic checkpoints."""
        for _ in range(cycles):
            self.step()

    def rollback(self) -> RingSnapshot:
        """Restore the latest checkpoint (no replay); returns it."""
        snapshot = self.latest
        restore(self.ring, snapshot)
        self.ring.rollbacks += 1
        return snapshot

    def rollback_replay(self, target_cycle: int) -> tuple:
        """Recover to *target_cycle* from the latest checkpoint.

        Returns the post-recovery :func:`~repro.core.snapshot.state_digest`
        — equal to the golden run's digest at *target_cycle* when the
        driver is deterministic.
        """
        return rollback_replay(self.ring, self.latest, target_cycle,
                               driver=self.driver)


def rollback_replay(ring: Ring, snapshot: RingSnapshot, target_cycle: int,
                    driver: Optional[Driver] = None) -> tuple:
    """Restore *snapshot* onto *ring* and replay up to *target_cycle*.

    Counts one rollback and ``target_cycle - snapshot.cycles`` recovery
    cycles on the ring.  Returns the recovered state digest.
    """
    if target_cycle < snapshot.cycles:
        raise SimulationError(
            f"cannot replay backwards: checkpoint is at cycle "
            f"{snapshot.cycles}, target is {target_cycle}")
    if driver is None:
        driver = default_driver
    restore(ring, snapshot)
    ring.rollbacks += 1
    replayed = target_cycle - snapshot.cycles
    for cycle in range(snapshot.cycles, target_cycle):
        driver(ring, cycle)
    ring.recovery_cycles += replayed
    return state_digest(ring)


# -- whole-system checkpoints -----------------------------------------


@dataclass
class SystemCheckpoint:
    """A consistent checkpoint of a complete RingSystem.

    Fabric state via :class:`~repro.core.snapshot.RingSnapshot` plus the
    host side (stream queues, delivery counters, tap collections) via
    :meth:`~repro.host.streams.DataController.capture_state`, anchored at
    the system cycle counter.  This is the unit the serving layer moves
    between workers: pausing a job on one worker and resuming it on
    another is exactly capture here / restore there.
    """

    cycles: int
    snapshot: RingSnapshot
    host: dict


def capture_system(system) -> SystemCheckpoint:
    """Checkpoint *system* (a :class:`~repro.host.system.RingSystem`)."""
    return SystemCheckpoint(
        cycles=system.cycles,
        snapshot=capture(system.ring),
        host=system.data.capture_state(),
    )


def restore_system(system, checkpoint: SystemCheckpoint) -> None:
    """Restore *system* to *checkpoint*.

    The data controller must already have the same tap topology the
    checkpoint was captured with (taps are identity, not data — create
    them first, then restore).  The ring restore re-adopts a cached
    compiled plan when the restored fingerprint is known, so resuming a
    migrated job pays zero interpreted cycles on a warm worker.
    """
    restore(system.ring, checkpoint.snapshot)
    system.data.restore_state(checkpoint.host)
    system.cycles = checkpoint.cycles


# -- graceful degradation ---------------------------------------------


def disable_dnode(ring: Ring, layer: int, position: int) -> None:
    """Model a permanently failed Dnode: park it on a NOP loop.

    Applied through the configuration plane, so compiled plans for the
    pre-failure configuration are invalidated like any reconfiguration.
    """
    ring.config.write_local_program(layer, position, [NOP_WORD])
    ring.config.write_mode(layer, position, DnodeMode.LOCAL)


def remap_around(ring: Ring, layer: int,
                 position: int) -> List[Tuple[int, int, int, PortSource]]:
    """Reroute consumers of a dead Dnode to a healthy ring neighbour.

    Every switch port sourcing ``UP`` from ``(layer, position)`` is
    repointed at position ``(position + 1) % width`` on the same layer —
    the systolic analogue of column sparing.  Requires ``width >= 2``
    (a 1-wide ring has no spare neighbour).  Returns the remapped ports
    as ``(switch, position, port, old_source)`` records.
    """
    g = ring.geometry
    if g.width < 2:
        raise ConfigurationError(
            "cannot remap around a dead Dnode on a width-1 ring: "
            "no healthy neighbour exists")
    spare = (position + 1) % g.width
    downstream = (layer + 1) % g.layers
    remapped: List[Tuple[int, int, int, PortSource]] = []
    cfg = ring.switch(downstream).config
    for pos in range(g.width):
        for port in (1, 2):
            src = cfg.source_for(pos, port)
            if src.kind is PortKind.UP and src.index == position:
                ring.config.write_switch_route(
                    downstream, pos, port, PortSource.up(spare))
                remapped.append((downstream, pos, port, src))
    return remapped


@dataclass(frozen=True)
class ThroughputReport:
    """Measured fabric throughput over one run window."""

    cycles: int
    wall_seconds: float
    arithmetic_ops: int
    instructions: int

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ops_per_cycle(self) -> float:
        return self.arithmetic_ops / self.cycles if self.cycles else 0.0


def throughput(ring: Ring, cycles: int,
               driver: Optional[Driver] = None) -> ThroughputReport:
    """Run *cycles* cycles and measure delivered work.

    ``arithmetic_ops``/``instructions`` are deltas of the per-Dnode
    statistics counters over the window, so the measurement composes
    with prior activity on the ring.
    """
    if driver is None:
        driver = default_driver
    before_ops = sum(dn.stats.arithmetic_ops for dn in ring.all_dnodes())
    before_insn = sum(dn.stats.instructions for dn in ring.all_dnodes())
    start = time.perf_counter()
    for _ in range(cycles):
        driver(ring, ring.cycles)
    elapsed = time.perf_counter() - start
    after_ops = sum(dn.stats.arithmetic_ops for dn in ring.all_dnodes())
    after_insn = sum(dn.stats.instructions for dn in ring.all_dnodes())
    return ThroughputReport(
        cycles=cycles,
        wall_seconds=elapsed,
        arithmetic_ops=after_ops - before_ops,
        instructions=after_insn - before_insn,
    )


def degradation_report(baseline: ThroughputReport,
                       degraded: ThroughputReport) -> dict:
    """Quantify throughput loss between two measurement windows.

    The architectural ratio (ops/cycle) is the meaningful number — wall
    time is host noise — but both are reported.
    """
    base = baseline.ops_per_cycle
    ratio = degraded.ops_per_cycle / base if base else 0.0
    return {
        "baseline_ops_per_cycle": base,
        "degraded_ops_per_cycle": degraded.ops_per_cycle,
        "throughput_ratio": ratio,
        "throughput_loss_percent": round((1.0 - ratio) * 100.0, 3),
        "baseline_cycles_per_second": baseline.cycles_per_second,
        "degraded_cycles_per_second": degraded.cycles_per_second,
    }


__all__ = [
    "CheckpointManager",
    "Driver",
    "SystemCheckpoint",
    "ThroughputReport",
    "capture_system",
    "default_driver",
    "degradation_report",
    "disable_dnode",
    "remap_around",
    "restore_system",
    "rollback_replay",
    "throughput",
]
