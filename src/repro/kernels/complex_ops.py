"""Complex arithmetic: streamed multiply and magnitude estimation.

* :func:`cmul4_graph` — full complex multiply of two same-cycle complex
  streams ``(a+jb) * (c+jd)`` on channels 0..3: four MULs, one SUB, one
  ADD per sample.  Products keep the low 16 bits (signed wrap) — the
  INT16-boundary behaviour is part of the spec and pinned by the
  Hypothesis wrap-semantics properties.  (The library's older ``cmul``
  graph multiplies a stream by its own delayed value; this one takes
  two independent operands per cycle.)
* :func:`cmag_graph` — multiplier-free alpha-max-beta-min magnitude
  ``max(|re|,|im|) + min(|re|,|im|)/2`` (worst case ~12% high, bounded
  by the property suite) — ABS/MAX/MIN/ASR/ADD only, CORDIC-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.compiler.codegen import compile_graph
from repro.compiler.graph import DataflowGraph
from repro.core.ring import Ring


@dataclass
class ComplexResult:
    """Outcome of a fabric complex-arithmetic run."""

    re: List[int]
    im: List[int]
    dnodes_used: int
    latency: int


def cmul4_graph() -> DataflowGraph:
    """Complex multiply: re_a/im_a on channels 0/1, re_b/im_b on 2/3."""
    g = DataflowGraph()
    a, b = g.input(0), g.input(1)
    c, d = g.input(2), g.input(3)
    g.output(g.op("sub", g.op("mul", a, c), g.op("mul", b, d)))
    g.output(g.op("add", g.op("mul", a, d), g.op("mul", b, c)))
    return g


def cmag_graph() -> DataflowGraph:
    """Alpha-max-beta-min |z| estimate: re/im on channels 0/1."""
    g = DataflowGraph()
    ma = g.op("abs", g.input(0))
    mb = g.op("abs", g.input(1))
    hi = g.op("max", ma, mb)
    lo = g.op("min", ma, mb)
    g.output(g.op("add", hi, g.op("asr", lo, g.const(1))))
    return g


def cmul_fabric(re_a: Sequence[int], im_a: Sequence[int],
                re_b: Sequence[int], im_b: Sequence[int],
                ring: Optional[Ring] = None,
                **compile_kwargs) -> ComplexResult:
    """Multiply two complex streams on the fabric.

    Bit-exact against
    :func:`repro.kernels.reference.complex_multiply`.
    """
    graph = cmul4_graph()
    program = compile_graph(graph, **compile_kwargs)
    outs = program.run({0: list(re_a), 1: list(im_a),
                        2: list(re_b), 3: list(im_b)}, ring=ring)
    return ComplexResult(re=outs[graph.outputs[0]],
                         im=outs[graph.outputs[1]],
                         dnodes_used=program.dnodes_used,
                         latency=program.latency)


def cmag_fabric(re: Sequence[int], im: Sequence[int],
                ring: Optional[Ring] = None,
                **compile_kwargs) -> ComplexResult:
    """Estimate |z| of a complex stream on the fabric.

    Bit-exact against
    :func:`repro.kernels.reference.complex_magnitude` (the magnitude
    stream is returned on ``re``; ``im`` is empty).
    """
    graph = cmag_graph()
    program = compile_graph(graph, **compile_kwargs)
    outs = program.run({0: list(re), 1: list(im)}, ring=ring)
    return ComplexResult(re=outs[graph.outputs[0]], im=[],
                         dnodes_used=program.dnodes_used,
                         latency=program.latency)
