"""Tests for the Fig. 6 APEX prototype emulation."""

import numpy as np
import pytest

from repro.host.prototype import (
    IMAGE_SIDE,
    assemble_kernel,
    reference_kernel,
    run_prototype,
)
from repro.errors import HostError


@pytest.fixture
def picture(rng):
    return rng.integers(0, 256, (IMAGE_SIDE, IMAGE_SIDE))


class TestKernels:
    @pytest.mark.parametrize("operation", ["invert", "threshold", "edge"])
    def test_framebuffer_matches_reference(self, picture, operation):
        result = run_prototype(picture, operation)
        expected = reference_kernel(picture, operation)
        assert np.array_equal(result.framebuffer, expected)

    def test_threshold_level(self, picture):
        result = run_prototype(picture, "threshold", threshold=200)
        expected = reference_kernel(picture, "threshold", threshold=200)
        assert np.array_equal(result.framebuffer, expected)

    def test_small_image(self, rng):
        img = rng.integers(0, 256, (8, 8))
        result = run_prototype(img, "invert")
        assert np.array_equal(result.framebuffer, 255 - img)

    def test_unknown_kernel(self, picture):
        with pytest.raises(HostError, match="unknown kernel"):
            run_prototype(picture, "sharpen")

    def test_pixel_range_validated(self):
        with pytest.raises(HostError, match="8-bit"):
            run_prototype(np.full((4, 4), 300), "invert")

    def test_requires_2d(self):
        with pytest.raises(HostError):
            run_prototype(np.arange(16), "invert")


class TestBoardBehaviour:
    def test_prg_holds_generated_object_code(self, picture):
        result = run_prototype(picture, "invert")
        blob = bytes(result.prg.dump(0, len(result.prg)))
        from repro.asm.objcode import ObjectCode

        obj = ObjectCode.from_bytes(blob)
        assert obj.layers == 4 and obj.width == 2

    def test_throughput_one_pixel_per_cycle(self, picture):
        result = run_prototype(picture, "invert")
        pixels = IMAGE_SIDE * IMAGE_SIDE
        assert result.cycles == pixels + 1  # + pipeline latency

    def test_vga_scanned_one_frame(self, picture):
        result = run_prototype(picture, "edge")
        assert result.frames_scanned == 1

    def test_video_memory_holds_output(self, picture):
        result = run_prototype(picture, "invert")
        assert result.video.read(0) == (255 - picture[0, 0]) & 0xFFFF

    def test_assemble_kernel_standalone(self):
        obj = assemble_kernel("edge")
        assert obj.initial_plane == 0
        assert len(obj.cfg_rom) > 0
