"""The Systolic Ring fabric: layered Dnodes closed into a ring, plus the
cycle-accurate clock engine.

Paper §4.2: "We use a curled, pipelined systolic structure ... All the
D-nodes form a ring, which length (Dnodes layers number) and width (Dnodes
per-layer number) can easily be scaled.  The Dnodes are organized in
layers; a Dnodes layer is connected to the two adjacent ones by also
dynamically reconfigurable switch components."

Topology conventions used throughout the package:

* ``layers`` x ``width`` Dnodes; ``dnode(layer, position)``.
* ``switch(k)`` feeds layer ``k`` and is fed by layer ``(k - 1) % layers``
  — the ring closure is simply switch 0 reading the last layer.
* Data advances one layer per cycle (systolic); every value read during a
  cycle is the value latched at the previous clock edge, so evaluation
  order never matters.

Each :meth:`Ring.step` models one clock:

1. every Dnode evaluates its active microword (global or local mode) and
   stages its writes;
2. the clock edge commits register/OUT writes, shifts every switch's
   feedback pipelines, applies FIFO pops, and advances local sequencers.

The shared ``bus`` value and host stream channels are supplied per cycle
by the caller (the controller / data controller live in
:mod:`repro.controller` and :mod:`repro.host`).

Two execution engines drive the same semantics:

* the **interpreter** (:meth:`Ring._step_interpreted`) re-resolves switch
  routing and microword dispatch every cycle — the reference
  implementation;
* the **fast path** (:mod:`repro.core.fastpath`) pre-decodes the current
  configuration into direct per-Dnode closures and is used automatically
  whenever the configuration has been stable for a full cycle.  Every
  configuration mutation invalidates it, so reconfiguration always takes
  effect on the very next cycle, exactly as before.

Two compounding layers sit on top (see ``docs/architecture.md``, "Plan
cache & macro-stepping"): compiled plans are retained in an LRU
:class:`~repro.core.plancache.PlanCache` keyed by
:meth:`Ring.config_fingerprint`, so multiplexing between known
configurations re-adopts each plan in one lookup instead of recompiling;
and ``macro_step=K`` fuses steady-state runs into generated kernels
(:mod:`repro.core.macropath`) that pay Python dispatch once per
sequencer period instead of once per Dnode per cycle.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import word
from repro.core.config_memory import ConfigMemory
from repro.core.dnode import Dnode, DnodeInputs, DnodeMode
from repro.core.fastpath import compile_plan
from repro.core.isa import FEEDBACK_DEPTH
from repro.core.macropath import compile_macro
from repro.core.nativepath import compile_native
from repro.core.plancache import DEFAULT_CAPACITY, PlanCache
from repro.core.switch import PortKind, PortSource, Switch
from repro.errors import ConfigurationError, SimulationError

#: Sentinel cached on ``Ring._macro`` when the current configuration is
#: not eligible for macro-step fusion (period too large to unroll).
_MACRO_INELIGIBLE = object()

#: Sentinel cached on ``Ring._native`` when the current configuration is
#: not eligible for time-vectorized execution (see
#: :func:`repro.core.nativepath.compile_native`).
_NATIVE_INELIGIBLE = object()

HostReader = Callable[[int], int]

RingObserver = Callable[["Ring"], None]


class _CycleObserver:
    """One registered per-cycle callback with its capture schedule.

    ``interval`` samples the observer every N-th cycle (measured on the
    post-commit :attr:`Ring.cycles` value, so interval 4 fires after
    cycles 4, 8, 12, ...); ``start``/``stop`` bound an inclusive capture
    window on the same cycle index.  The schedule is what lets
    :meth:`Ring.run` keep batches on the compiled fast path between
    captures instead of dropping to per-cycle dispatch.
    """

    __slots__ = ("callback", "interval", "start", "stop")

    def __init__(self, callback: RingObserver, interval: int = 1,
                 start: Optional[int] = None, stop: Optional[int] = None):
        if interval < 1:
            raise ConfigurationError(
                f"observer interval must be >= 1, got {interval}"
            )
        if start is not None and start < 0:
            raise ConfigurationError(
                f"observer window start must be >= 0, got {start}"
            )
        if (start is not None and stop is not None and stop < start):
            raise ConfigurationError(
                f"observer window stop {stop} precedes start {start}"
            )
        self.callback = callback
        self.interval = interval
        self.start = start
        self.stop = stop

    @property
    def every_cycle(self) -> bool:
        return (self.interval == 1 and self.start is None
                and self.stop is None)

    def due(self, cycle: int) -> bool:
        """Does this observer capture after the cycle numbered *cycle*?"""
        if self.start is not None and cycle < self.start:
            return False
        if self.stop is not None and cycle > self.stop:
            return False
        return cycle % self.interval == 0

    def next_due(self, cycle: int) -> Optional[int]:
        """First cycle index > *cycle* that captures (None = never again)."""
        nxt = cycle + 1
        if self.start is not None and nxt < self.start:
            nxt = self.start
        remainder = nxt % self.interval
        if remainder:
            nxt += self.interval - remainder
        if self.stop is not None and nxt > self.stop:
            return None
        return nxt


@dataclass
class RingProfile:
    """Wall-clock accounting of one :meth:`Ring.profile` session.

    Separates the time spent in the two execution engines and in plan
    compilation, so a workload's fast-path coverage (and the compile
    overhead paid for it) is directly measurable.
    """

    interpreted_cycles: int = 0
    interpreted_seconds: float = 0.0
    fastpath_cycles: int = 0
    fastpath_seconds: float = 0.0
    plan_compiles: int = 0
    compile_seconds: float = 0.0

    @property
    def total_cycles(self) -> int:
        return self.interpreted_cycles + self.fastpath_cycles

    @property
    def fastpath_fraction(self) -> float:
        """Fraction of profiled cycles executed by the compiled engine."""
        total = self.total_cycles
        return self.fastpath_cycles / total if total else 0.0

    def cycles_per_second(self) -> float:
        """Aggregate throughput over everything profiled (0 if untimed)."""
        elapsed = (self.interpreted_seconds + self.fastpath_seconds
                   + self.compile_seconds)
        return self.total_cycles / elapsed if elapsed > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of every counter plus the derived rates."""
        return {
            "interpreted_cycles": self.interpreted_cycles,
            "interpreted_seconds": self.interpreted_seconds,
            "fastpath_cycles": self.fastpath_cycles,
            "fastpath_seconds": self.fastpath_seconds,
            "plan_compiles": self.plan_compiles,
            "compile_seconds": self.compile_seconds,
            "fastpath_fraction": self.fastpath_fraction,
            "cycles_per_second": self.cycles_per_second(),
        }


@dataclass(frozen=True)
class RingGeometry:
    """Shape of a ring: number of layers and Dnodes per layer.

    The paper's named configurations map to:

    * Ring-8  = 4 layers x 2 wide (the prototyped version),
    * Ring-16 = 8 layers x 2 wide (the application benchmarks),
    * Ring-64 = 32 layers x 2 wide (the Fig. 7 SoC).
    """

    layers: int
    width: int = 2
    pipeline_depth: int = FEEDBACK_DEPTH

    def __post_init__(self) -> None:
        if self.layers < 2:
            raise ConfigurationError(
                f"a ring needs at least 2 layers, got {self.layers}"
            )
        if self.width < 1:
            raise ConfigurationError(
                f"layer width must be >= 1, got {self.width}"
            )
        if self.pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline depth must be >= 1, got {self.pipeline_depth}"
            )

    @property
    def dnodes(self) -> int:
        """Total Dnode count (the paper's Ring-N number)."""
        return self.layers * self.width

    @classmethod
    def ring(cls, dnodes: int, width: int = 2,
             pipeline_depth: int = FEEDBACK_DEPTH) -> "RingGeometry":
        """Build the canonical geometry for a Ring-*dnodes* fabric."""
        if dnodes % width != 0:
            raise ConfigurationError(
                f"Ring-{dnodes} is not divisible into width-{width} layers"
            )
        return cls(layers=dnodes // width, width=width,
                   pipeline_depth=pipeline_depth)


class Ring:
    """A complete operative layer: Dnodes, switches, FIFOs, clock engine."""

    #: The single source of truth for execution engines: every selector
    #: (``Ring(backend=)``, :meth:`set_backend`, the CLI ``--backend``
    #: choices, the docs engine table) derives from this registry, so
    #: adding an engine is one entry here.
    BACKEND_REGISTRY = {
        "interpreter": "reference cycle-by-cycle interpreter",
        "fastpath": "pre-decoded per-cycle closure plans",
        "native": "time-vectorized NumPy macro kernels "
                  "(optional Numba jit), falling back to "
                  "macro-step/fastpath",
        "batch": "lane-vectorized NumPy engine over batch_size streams",
        "shard": "batch lanes sharded across worker processes",
    }

    #: Valid values of the ``backend`` selector.
    BACKENDS = tuple(BACKEND_REGISTRY)

    #: Backends whose state carries a lane axis of length ``batch_size``.
    LANE_BACKENDS = ("batch", "shard")

    @classmethod
    def _check_backend(cls, backend: str) -> None:
        if backend not in cls.BACKEND_REGISTRY:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of "
                f"{cls.BACKENDS}"
            )

    def __init__(self, geometry: RingGeometry,
                 strict_fifos: bool = False,
                 fastpath: bool = True,
                 backend: Optional[str] = None,
                 batch_size: int = 1,
                 plan_cache: int = DEFAULT_CAPACITY,
                 macro_step: int = 0,
                 shard_workers: Optional[int] = None):
        self.geometry = geometry
        self.strict_fifos = strict_fifos
        if backend is None:
            backend = "fastpath" if fastpath else "interpreter"
        self._check_backend(backend)
        if batch_size < 1:
            raise ConfigurationError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if batch_size > 1 and backend not in self.LANE_BACKENDS:
            raise ConfigurationError(
                f"batch_size {batch_size} requires backend='batch' or "
                f"'shard', got {backend!r}"
            )
        if shard_workers is not None and backend != "shard":
            raise ConfigurationError(
                f"shard_workers requires backend='shard', got {backend!r}"
            )
        if shard_workers is not None and shard_workers < 1:
            raise ConfigurationError(
                f"shard workers must be >= 1, got {shard_workers}"
            )
        if macro_step < 0:
            raise ConfigurationError(
                f"macro step must be >= 0, got {macro_step}"
            )
        self.backend = backend
        self.batch_size = batch_size
        #: Worker-pool width for ``backend="shard"`` (None = one worker
        #: per available core, capped at the lane count).
        self.shard_workers = shard_workers
        # The scalar fast path also backs batch mode at B=1: one lane of
        # NumPy-array indexing is strictly slower than the scalar plan
        # (~6x in BENCH_batch.json), and the lane-0 writeback contract is
        # trivially the scalar state itself.  The vector engine is only
        # engaged at B>1 or once `ring.batch` has been handed out.  The
        # shard backend always engages its engine: worker-pool placement
        # is the point, even at B=1.  The native tier sits on top of the
        # fast path (its per-cycle remainder and fall-back ladder), so it
        # enables the scalar plan machinery too.
        self.fastpath_enabled = (backend in ("fastpath", "native")
                                 or (backend == "batch" and batch_size == 1))
        #: Configuration-fingerprinted LRU cache of compiled plans (and
        #: macro kernels).  Capacity 0 disables caching entirely.
        self.plan_cache = PlanCache(plan_cache)
        #: Macro-step fusion target: 0/1 = off, K>1 = fuse runs of at
        #: least K steady-state cycles into generated macro kernels.
        self.macro_step = macro_step
        #: Cycles executed by fused macro kernels (coverage metric).
        self.macro_cycles = 0
        # Active macro kernel for the current configuration + entry phase
        # (None = not compiled, _MACRO_INELIGIBLE = period too large).
        self._macro = None
        #: Native-tier lifetime counters: cycles executed by
        #: time-vectorized kernels, plans compiled, and cycles a
        #: ``backend="native"`` ring had to hand to the fall-back ladder
        #: (ineligible configuration, sub-period remainders, unsafe FIFO
        #: windows).  Host-side accounting like ``macro_cycles`` —
        #: preserved across :meth:`reset` and snapshot restore.
        self.native_cycles = 0
        self.native_compiles = 0
        self.native_fallback_cycles = 0
        # Active native plan for the current configuration + entry phase
        # (None = not compiled, _NATIVE_INELIGIBLE = cannot vectorize).
        self._native = None
        self._dnodes: List[List[Dnode]] = [
            [Dnode(layer, pos) for pos in range(geometry.width)]
            for layer in range(geometry.layers)
        ]
        self._switches: List[Switch] = [
            Switch(k, geometry.width, geometry.pipeline_depth)
            for k in range(geometry.layers)
        ]
        self._fifos: Dict[Tuple[int, int, int], Deque[int]] = {}
        self.config = ConfigMemory(self)
        self.cycles = 0
        self.fifo_underflows = 0
        #: Last value driven on the shared bus (updated by step()/run(),
        #: so bus probes observe the controller-driven value instead of a
        #: stale default).
        self.last_bus = 0
        #: FIFO depth high-water marks, keyed like :attr:`_fifos`
        #: ((layer, position, channel)); updated on every push.
        self.fifo_high_water: Dict[Tuple[int, int, int], int] = {}
        #: Fast-path lifecycle counters (always-on, config-path cost only).
        self.plan_compiles = 0
        self.plan_invalidations = 0
        #: Robustness-layer counters (:mod:`repro.robustness`): faults
        #: applied to this fabric, checkpoints taken, rollbacks performed
        #: and cycles re-executed recovering.  Host-side lifetime
        #: accounting like the plan counters — preserved across
        #: :meth:`reset` and snapshot restore (a rollback must still
        #: count as a rollback afterwards).
        self.faults_injected = 0
        self.checkpoints = 0
        self.rollbacks = 0
        self.recovery_cycles = 0
        self._observers: List[_CycleObserver] = []
        self._legacy_trace: Optional[RingObserver] = None
        self._profile: Optional[RingProfile] = None
        #: Composed post-commit hook: None when nothing observes, a bare
        #: callback for the single always-on observer, otherwise a
        #: dispatcher that applies each observer's capture schedule.
        self._trace: Optional[Callable[["Ring"], None]] = None
        # Steady-state fast path: compiled plan + invalidation wiring.
        # `_plan` is the active pre-decoded engine (None = interpret);
        # `_config_dirty` means a mutation happened during/after the last
        # interpreted cycle, deferring compilation until the configuration
        # has been stable for one full cycle (so controller-driven
        # hardware multiplexing never pays compile overhead).
        self._plan = None
        self._config_dirty = True
        #: Extra callbacks fired on every configuration mutation (the
        #: batch engine hooks in here, reusing the fast-path wiring).
        self._invalidation_listeners: List[Callable[[], None]] = []
        #: Lazily created batch engine (backend == "batch" only).
        self._batch_engine = None
        #: Lazily created sharded engine (backend == "shard" only).
        self._shard_engine = None
        for layer_dnodes in self._dnodes:
            for dn in layer_dnodes:
                dn.on_config_change = self._invalidate_fastpath
        for sw in self._switches:
            sw.config.on_change = self._invalidate_fastpath

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------

    @property
    def batch(self):
        """The attached :class:`~repro.core.batchpath.BatchRing` engine.

        Only meaningful with ``backend="batch"``; created lazily (the
        first access broadcasts the ring's current scalar state across
        the lanes).
        """
        if self.backend != "batch":
            raise ConfigurationError(
                f"ring backend is {self.backend!r}, not 'batch'"
            )
        return self._ensure_batch()

    def _ensure_batch(self):
        if self._batch_engine is None:
            from repro.core.batchpath import BatchRing
            self._batch_engine = BatchRing(self, self.batch_size)
        return self._batch_engine

    @property
    def shard(self):
        """The attached :class:`~repro.core.shardpath.ShardedBatchRing`.

        Only meaningful with ``backend="shard"``; created lazily (the
        first access spawns the worker pool — or its single-process
        fallback — seeded with the ring's current scalar state).
        """
        if self.backend != "shard":
            raise ConfigurationError(
                f"ring backend is {self.backend!r}, not 'shard'"
            )
        return self._ensure_shard()

    def _ensure_shard(self):
        if self._shard_engine is None:
            from repro.core.shardpath import ShardedBatchRing
            self._shard_engine = ShardedBatchRing(
                self, self.batch_size, workers=self.shard_workers)
        return self._shard_engine

    def _lane_engine(self):
        """The live lane engine for the current backend (batch | shard)."""
        return (self._ensure_shard() if self.backend == "shard"
                else self._ensure_batch())

    def _lane_engine_active(self) -> bool:
        """Should step()/run() dispatch to a lane engine this cycle?"""
        if self.backend == "shard":
            return True
        return self.backend == "batch" and (
            self.batch_size > 1 or self._batch_engine is not None)

    def _detach_shard(self) -> None:
        if self._shard_engine is not None:
            self._shard_engine.detach()
            self._shard_engine = None

    def set_backend(self, backend: str,
                    batch_size: Optional[int] = None,
                    shard_workers: Optional[int] = None) -> None:
        """Switch execution engine (any :attr:`BACKEND_REGISTRY` key).

        Safe at any point between cycles: the scalar state always
        reflects the last committed cycle (the lane engines write lane
        0 back after every run), so the new engine picks up exactly
        where the old one stopped.  Entering batch or shard mode
        broadcasts that state across *batch_size* lanes; ``"native"``
        keeps the scalar state and compiles time-vectorized kernels for
        eligible steady-state spans.
        """
        self._check_backend(backend)
        if batch_size is None:
            batch_size = (self.batch_size
                          if backend in self.LANE_BACKENDS else 1)
        if batch_size < 1:
            raise ConfigurationError(
                f"batch size must be >= 1, got {batch_size}"
            )
        if batch_size > 1 and backend not in self.LANE_BACKENDS:
            raise ConfigurationError(
                f"batch_size {batch_size} requires backend='batch' or "
                f"'shard', got {backend!r}"
            )
        if shard_workers is not None and backend != "shard":
            raise ConfigurationError(
                f"shard_workers requires backend='shard', got {backend!r}"
            )
        if shard_workers is not None and shard_workers < 1:
            raise ConfigurationError(
                f"shard workers must be >= 1, got {shard_workers}"
            )
        if self._batch_engine is not None and (
                backend != "batch"
                or self._batch_engine.batch != batch_size):
            self._batch_engine.detach()
            self._batch_engine = None
        if self._shard_engine is not None and (
                backend != "shard"
                or self._shard_engine.batch != batch_size):
            self._detach_shard()
        if shard_workers is not None:
            self.shard_workers = shard_workers
            if (self._shard_engine is not None
                    and self._shard_engine.workers != shard_workers):
                # Elastic path: migrate the live lanes instead of
                # rebuilding from the lane-0 scalar mirror.
                self._shard_engine.set_workers(shard_workers)
        self.backend = backend
        self.batch_size = batch_size
        self.fastpath_enabled = (backend in ("fastpath", "native")
                                 or (backend == "batch" and batch_size == 1))
        self._plan = None
        self._macro = None
        self._native = None
        self._config_dirty = True

    def set_plan_cache(self, capacity: int) -> None:
        """Resize (or with 0, disable) the compiled-plan cache.

        Replaces the cache, so existing entries and lifetime counters are
        dropped; the active plan (if any) is unaffected.  The lane
        engines' kernel caches are resized to match.
        """
        self.plan_cache = PlanCache(capacity)
        if self._batch_engine is not None:
            self._batch_engine.set_plan_cache(capacity)
        if self._shard_engine is not None:
            self._shard_engine.set_plan_cache(capacity)

    def set_macro_step(self, macro_step: int) -> None:
        """Set the macro-step fusion target (0/1 disables fusion)."""
        if macro_step < 0:
            raise ConfigurationError(
                f"macro step must be >= 0, got {macro_step}"
            )
        self.macro_step = macro_step
        self._macro = None

    def add_invalidation_listener(
            self, listener: Callable[[], None]) -> None:
        """Hook *listener* into every configuration-mutation event."""
        self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(
            self, listener: Callable[[], None]) -> None:
        self._invalidation_listeners = [
            l for l in self._invalidation_listeners if l is not listener
        ]

    # ------------------------------------------------------------------
    # Structure access
    # ------------------------------------------------------------------

    def dnode(self, layer: int, position: int) -> Dnode:
        """The Dnode at (*layer*, *position*)."""
        if not 0 <= layer < self.geometry.layers:
            raise ConfigurationError(
                f"layer must be 0..{self.geometry.layers - 1}, got {layer}"
            )
        if not 0 <= position < self.geometry.width:
            raise ConfigurationError(
                f"position must be 0..{self.geometry.width - 1}, "
                f"got {position}"
            )
        return self._dnodes[layer][position]

    def switch(self, index: int) -> Switch:
        """The switch feeding layer *index* (fed by the previous layer)."""
        if not 0 <= index < self.geometry.layers:
            raise ConfigurationError(
                f"switch index must be 0..{self.geometry.layers - 1}, "
                f"got {index}"
            )
        return self._switches[index]

    def all_dnodes(self) -> List[Dnode]:
        """Every Dnode, layer-major order."""
        return [dn for layer in self._dnodes for dn in layer]

    def upstream_layer(self, switch_index: int) -> int:
        """The layer whose outputs feed switch *switch_index*."""
        return (switch_index - 1) % self.geometry.layers

    # ------------------------------------------------------------------
    # FIFO interface (Dnode sources FIFO1 / FIFO2)
    # ------------------------------------------------------------------

    def fifo(self, layer: int, position: int, channel: int) -> Deque[int]:
        """The input FIFO *channel* (1 or 2) of a Dnode; created on demand."""
        if channel not in (1, 2):
            raise ConfigurationError(f"FIFO channel must be 1 or 2, got {channel}")
        self.dnode(layer, position)  # validates the address
        key = (layer, position, channel)
        if key not in self._fifos:
            self._fifos[key] = deque()
        return self._fifos[key]

    def push_fifo(self, layer: int, position: int, channel: int,
                  values) -> None:
        """Append one or more raw words to a Dnode input FIFO."""
        queue = self.fifo(layer, position, channel)
        if isinstance(values, int):
            values = [values]
        else:
            values = list(values)
        for v in values:
            queue.append(word.check(v, "FIFO push"))
        key = (layer, position, channel)
        depth = len(queue)
        if depth > self.fifo_high_water.get(key, 0):
            self.fifo_high_water[key] = depth
        if self._batch_engine is not None:
            # Keep the lane FIFOs coherent: a scalar push reaches every
            # lane (lane-specific loads go through BatchRing.push_fifo).
            self._batch_engine.push_fifo(layer, position, channel, values)
        if self._shard_engine is not None:
            self._shard_engine.push_fifo(layer, position, channel, values)

    def _fifo_peek(self, layer: int, position: int, channel: int) -> int:
        queue = self._fifos.get((layer, position, channel))
        if not queue:
            if self.strict_fifos:
                raise SimulationError(
                    f"D{layer}.{position} read empty FIFO{channel} at cycle "
                    f"{self.cycles}"
                )
            self.fifo_underflows += 1
            return 0
        return queue[0]

    def _fifo_pop(self, layer: int, position: int, channel: int) -> bool:
        """Apply one requested pop; report whether a word actually left.

        An underflowed pop (empty queue) dequeues nothing: it raises in
        strict mode and counts toward :attr:`fifo_underflows` otherwise,
        so pop statistics never drift from real dequeues.
        """
        queue = self._fifos.get((layer, position, channel))
        if queue:
            queue.popleft()
            return True
        if self.strict_fifos:
            raise SimulationError(
                f"D{layer}.{position} popped empty FIFO{channel} at cycle "
                f"{self.cycles}"
            )
        self.fifo_underflows += 1
        return False

    # ------------------------------------------------------------------
    # Clock engine
    # ------------------------------------------------------------------

    def add_observer(self, callback: RingObserver, interval: int = 1,
                     start: Optional[int] = None,
                     stop: Optional[int] = None) -> RingObserver:
        """Register a post-commit observer; multiple observers chain.

        ``interval`` fires the callback only after cycles whose post-commit
        index is a multiple of it; ``start``/``stop`` bound an inclusive
        cycle window.  A sampled observer (interval > 1 or a window) keeps
        :meth:`run` on the compiled fast path between captures: the batch
        is chunk-run up to each capture point instead of dropping to
        per-cycle dispatch.  Re-adding an already-registered callback
        replaces its schedule.  Returns *callback* (the removal handle).
        """
        # Equality, not identity: bound methods (the usual observer form)
        # are re-created on each attribute access.
        self._observers = [o for o in self._observers
                           if o.callback != callback]
        self._observers.append(
            _CycleObserver(callback, interval, start, stop))
        self._rebuild_trace()
        return callback

    def remove_observer(self, callback: RingObserver) -> None:
        """Unregister one observer; other observers are untouched."""
        self._observers = [o for o in self._observers
                           if o.callback != callback]
        if self._legacy_trace == callback:
            self._legacy_trace = None
        self._rebuild_trace()

    def set_trace(self, callback: Optional[Callable[["Ring"], None]]) -> None:
        """Install a per-cycle observer, called after each commit.

        Legacy single-hook interface: each call replaces only the hook
        previously installed *through this method* — observers registered
        with :meth:`add_observer` are never touched, so a waveform trace
        and a metrics observer can coexist.
        """
        if self._legacy_trace is not None:
            self.remove_observer(self._legacy_trace)
        if callback is not None:
            self.add_observer(callback)
            self._legacy_trace = callback

    def _rebuild_trace(self) -> None:
        observers = self._observers
        if not observers:
            self._trace = None
        elif len(observers) == 1 and observers[0].every_cycle:
            self._trace = observers[0].callback
        else:
            chain = tuple(observers)

            def dispatch(ring: "Ring", _chain=chain) -> None:
                cycle = ring.cycles
                for observer in _chain:
                    if observer.due(cycle):
                        observer.callback(ring)

            self._trace = dispatch

    def _trace_stride(self) -> Optional[int]:
        """Cycles from now until the next observer capture (None = never)."""
        cycle = self.cycles
        best: Optional[int] = None
        for observer in self._observers:
            nxt = observer.next_due(cycle)
            if nxt is not None and (best is None or nxt < best):
                best = nxt
        return None if best is None else best - cycle

    @contextmanager
    def profile(self, warmup: int = 0, bus: int = 0,
                host_in: Optional[HostReader] = None):
        """Context manager timing the engines while the block runs.

        Yields a :class:`RingProfile` that accumulates wall-clock seconds
        and cycle counts separately for the interpreter, the compiled fast
        path, and plan compilation.  Profiling adds one predicate per
        dispatch decision — nothing on the per-cycle fast path itself.

        Args:
            warmup: cycles to run *untimed* before the profile attaches.
                First-touch costs (plan compilation, macro/native codegen,
                any Numba jit) land in the warm-up chunk instead of the
                measured region, so the profile reports steady-state
                throughput — the number the compiler autopilot scores
                candidate mappings by.
            bus: bus value driven during the warm-up cycles.
            host_in: host resolver used during the warm-up cycles (the
                profiled block supplies its own).
        """
        if self._profile is not None:
            raise SimulationError("ring is already being profiled")
        if warmup < 0:
            raise SimulationError(
                f"profile warmup must be >= 0, got {warmup}")
        if warmup:
            self.run(warmup, bus=bus, host_in=host_in)
        profile = RingProfile()
        self._profile = profile
        try:
            yield profile
        finally:
            self._profile = None

    def step(self, bus: int = 0,
             host_in: Optional[HostReader] = None) -> None:
        """Advance the fabric by one clock cycle.

        Dispatches to the pre-decoded fast path when the current
        configuration has a valid compiled plan; otherwise interprets the
        cycle and (once the configuration has been stable for a full
        cycle) compiles a fresh plan for subsequent cycles.

        Args:
            bus: value currently driven on the shared bus by the
                configuration controller.
            host_in: resolver for ``HOST`` switch port sources — called as
                ``host_in(channel)`` and expected to return the stream word
                presented on that direct port this cycle.  Unrouted fabrics
                may leave it None.
        """
        word.check(bus, "bus value")
        self.last_bus = bus
        if self._lane_engine_active():
            engine = self._lane_engine()
            engine.run(1, bus, host_in)
            engine.store_lane(0)
            if self._trace is not None:
                self._trace(self)
            return
        plan = self._plan
        if plan is None and self.fastpath_enabled:
            plan = self._adopt_cached_plan()
        if plan is not None:
            self._run_plan(plan, 1, bus, host_in)
            if self._trace is not None:
                self._trace(self)
            return
        profile = self._profile
        if profile is None:
            self._step_interpreted(bus, host_in)
        else:
            began = perf_counter()
            try:
                self._step_interpreted(bus, host_in)
            finally:
                profile.interpreted_seconds += perf_counter() - began
            profile.interpreted_cycles += 1
        self._maybe_compile()

    def _run_plan(self, plan, cycles: int, bus: int,
                  host_in: Optional[HostReader]) -> None:
        """Execute *cycles* through the compiled plan, timing if profiled."""
        profile = self._profile
        if profile is None:
            plan.run(cycles, bus, host_in)
            return
        before = self.cycles
        began = perf_counter()
        try:
            plan.run(cycles, bus, host_in)
        finally:
            profile.fastpath_seconds += perf_counter() - began
            profile.fastpath_cycles += self.cycles - before

    def _step_interpreted(self, bus: int,
                          host_in: Optional[HostReader]) -> None:
        """One clock cycle through the reference interpreter."""
        geometry = self.geometry

        # Phase 1: resolve inputs and evaluate every Dnode combinationally.
        for layer in range(geometry.layers):
            sw = self._switches[layer]
            upstream = self._dnodes[self.upstream_layer(layer)]
            for pos in range(geometry.width):
                dn = self._dnodes[layer][pos]
                inputs = DnodeInputs(
                    in1=self._resolve_port(sw, upstream, pos, 1, bus, host_in),
                    in2=self._resolve_port(sw, upstream, pos, 2, bus, host_in),
                    bus=bus,
                    fifo_peek=(lambda ch, _l=layer, _p=pos:
                               self._fifo_peek(_l, _p, ch)),
                    rp_read=sw.rp_read,
                )
                dn.evaluate(inputs)

        # Phase 2: clock edge.  Capture the OUT values that were visible
        # this cycle *before* committing, so pipeline shifts use them.
        visible_outs = [
            [dn.out for dn in layer_dnodes] for layer_dnodes in self._dnodes
        ]
        for layer in range(geometry.layers):
            for pos in range(geometry.width):
                dn = self._dnodes[layer][pos]
                pops = dn.commit()
                for channel in pops:
                    if self._fifo_pop(layer, pos, channel):
                        dn.count_fifo_pop()
        for k in range(geometry.layers):
            self._switches[k].shift(visible_outs[self.upstream_layer(k)])
        self.cycles += 1
        if self._trace is not None:
            self._trace(self)

    def _invalidate_fastpath(self) -> None:
        """Configuration mutated: drop the compiled plan, defer recompile.

        Wired into every configuration write path — Dnode microwords and
        modes, local-sequencer slots and LIMIT, switch routing, and thereby
        every :class:`~repro.core.config_memory.ConfigMemory` write.

        The dropped plan stays in :attr:`plan_cache`: the next cycle
        looks the new configuration up by fingerprint and re-adopts a
        cached plan with zero interpreted cycles when it was seen before.
        """
        if self._plan is not None:
            self._plan = None
            self.plan_invalidations += 1
        self._macro = None
        self._native = None
        self._config_dirty = True
        for listener in self._invalidation_listeners:
            listener()

    def config_fingerprint(self) -> tuple:
        """Stable, hashable digest of the full fabric configuration.

        Concatenates every Dnode's fingerprint (mode + executable
        microwords, layer-major order) with every switch's routing
        fingerprint.  Each component caches its own tuple and drops it on
        mutation, so this is O(components) tuple packing per call with no
        re-hashing of unchanged parts.
        """
        return (
            tuple(dn.config_fingerprint()
                  for layer in self._dnodes for dn in layer),
            tuple(sw.config.fingerprint() for sw in self._switches),
        )

    def _adopt_cached_plan(self):
        """Plan-cache lookup for the current configuration.

        On a hit the cached plan is adopted immediately — including on
        the first cycle after a reconfiguration, which previously always
        interpreted.  On a miss while the configuration is freshly
        mutated, a fingerprint that has missed before is evidently part
        of a multiplexing working set and is compiled eagerly; a
        first-time fingerprint keeps the legacy deferred policy (so a
        never-repeating per-cycle reconfiguration stream still compiles
        nothing).
        """
        cache = self.plan_cache
        if not cache.capacity:
            return None
        key = ("plan", self.config_fingerprint())
        plan = cache.get(key)
        if plan is None and self._config_dirty and cache.note_miss(key):
            plan = self._compile_plan_timed()
            cache.put(key, plan)
        if plan is not None:
            self._plan = plan
            self._config_dirty = False
        return plan

    def adopt_cached_plan(self) -> bool:
        """Re-adopt a compiled plan for the current configuration now.

        Public hook for restore paths (checkpoint rollback, farm worker
        job switches): after the configuration settles, one fingerprint
        lookup re-activates a cached plan immediately instead of waiting
        for the first ``step()`` to do it lazily.  Returns ``True`` when
        a compiled plan is active afterwards.  A scalar-fastpath-less
        backend (vector batch, shard) never adopts scalar plans, so this
        is a no-op there.
        """
        if not self.fastpath_enabled:
            return False
        if self._plan is not None:
            return True
        return self._adopt_cached_plan() is not None

    def _compile_plan_timed(self):
        """Compile a fast-path plan for the current configuration."""
        profile = self._profile
        if profile is None:
            plan = compile_plan(self)
        else:
            began = perf_counter()
            plan = compile_plan(self)
            profile.compile_seconds += perf_counter() - began
            profile.plan_compiles += 1
        self.plan_compiles += 1
        return plan

    def _maybe_compile(self) -> None:
        """Compile a plan once the configuration survived a stable cycle."""
        if self._config_dirty:
            self._config_dirty = False
        elif self.fastpath_enabled and self._plan is None:
            plan = self._compile_plan_timed()
            self._plan = plan
            cache = self.plan_cache
            if cache.capacity:
                cache.put(("plan", self.config_fingerprint()), plan)

    def _ensure_macro(self):
        """The macro kernel for the current configuration + entry phase.

        Returns None when fusion is unavailable (ineligible period).
        Kernels are cached in :attr:`plan_cache` keyed by fingerprint
        *and* entry phase, so re-entering a known phase of a known
        configuration skips codegen entirely.
        """
        macro = self._macro
        if macro is _MACRO_INELIGIBLE:
            return None
        if macro is not None and macro.matches_phase():
            return macro
        cache = self.plan_cache
        key = None
        if cache.capacity:
            phase = tuple(
                dn.local._counter for layer in self._dnodes
                for dn in layer if dn.mode is DnodeMode.LOCAL
            )
            key = ("macro", phase, self.config_fingerprint())
            macro = cache.get(key)
            if macro is not None:
                self._macro = macro
                return macro
        macro = compile_macro(self)
        if macro is None:
            self._macro = _MACRO_INELIGIBLE
            return None
        self._macro = macro
        if key is not None:
            cache.put(key, macro)
        return macro

    def _ensure_native(self):
        """The native plan for the current configuration + entry phase.

        Returns None when time-vectorization is unavailable (ineligible
        configuration).  Plans are cached in :attr:`plan_cache` keyed by
        fingerprint *and* entry phase, exactly like macro kernels, so a
        restore or reconfiguration back to a known state re-adopts the
        compiled kernel with zero codegen.
        """
        native = self._native
        if native is _NATIVE_INELIGIBLE:
            return None
        if native is not None and native.matches_phase():
            return native
        cache = self.plan_cache
        key = None
        if cache.capacity:
            phase = tuple(
                dn.local._counter for layer in self._dnodes
                for dn in layer if dn.mode is DnodeMode.LOCAL
            )
            key = ("native", phase, self.config_fingerprint())
            native = cache.get(key)
            if native is not None:
                self._native = native
                return native
        native = compile_native(self)
        if native is None:
            self._native = _NATIVE_INELIGIBLE
            return None
        self.native_compiles += 1
        self._native = native
        if key is not None:
            cache.put(key, native)
        return native

    def _run_steady(self, plan, cycles: int, bus: int,
                    host_in: Optional[HostReader]) -> None:
        """Run *cycles* on the compiled engines: native, macro, per-cycle.

        With ``backend="native"``, the longest FIFO-safe period-multiple
        prefix executes through the time-vectorized kernel; whatever it
        cannot take (ineligible configuration, sub-period remainder,
        unsafe FIFO window) falls down the ladder: macro-step fusion
        first, the per-cycle plan last.  Otherwise, with macro-stepping
        enabled and a long enough span, the bulk of the span executes in
        period-multiples through the fused kernel; the sub-period
        remainder (and everything, when fusion is off or ineligible)
        goes through the per-cycle plan.
        """
        k = self.macro_step
        if self.backend == "native":
            native = self._ensure_native()
            safe = native.safe_cycles(cycles) if native is not None else 0
            if safe:
                self._run_plan(native, safe, bus, host_in)
                cycles -= safe
            if cycles:
                self.native_fallback_cycles += cycles
                # The remainder still deserves fusion even when the user
                # never asked for macro-stepping explicitly.
                k = max(k, 2)
        if k > 1 and cycles >= k:
            macro = self._ensure_macro()
            if macro is not None and cycles >= max(k, macro.period):
                fused = cycles - cycles % macro.period
                if fused:
                    self._run_plan(macro, fused, bus, host_in)
                    cycles -= fused
        if cycles:
            self._run_plan(plan, cycles, bus, host_in)

    def run(self, cycles: int, bus: int = 0,
            host_in: Optional[HostReader] = None) -> None:
        """Step the fabric *cycles* times with constant bus/host context.

        In steady state (no observer, valid plan) the whole batch executes
        inside the compiled fast path with no per-cycle dispatch.  With
        only *sampled* observers installed (a capture interval or cycle
        window), the batch is chunk-run on the same compiled plan between
        capture points, so tracing no longer forces per-cycle interpreted
        dispatch; only an every-cycle observer does.
        """
        if cycles < 0:
            raise SimulationError(f"cycle count must be >= 0, got {cycles}")
        word.check(bus, "bus value")
        if self._lane_engine_active():
            self._run_batch(cycles, bus, host_in)
            return
        remaining = cycles
        while remaining > 0:
            plan = self._plan
            if plan is not None:
                trace = self._trace
                if trace is None:
                    self.last_bus = bus
                    self._run_steady(plan, remaining, bus, host_in)
                    return
                stride = self._trace_stride()
                if stride is None:
                    # Every observer's window is exhausted: free-run.
                    self.last_bus = bus
                    self._run_steady(plan, remaining, bus, host_in)
                    return
                if stride > 1:
                    chunk = min(stride, remaining)
                    self.last_bus = bus
                    self._run_steady(plan, chunk, bus, host_in)
                    remaining -= chunk
                    if chunk == stride:
                        trace(self)
                    continue
            self.step(bus=bus, host_in=host_in)
            remaining -= 1

    def _run_batch(self, cycles: int, bus: int,
                   host_in: Optional[HostReader]) -> None:
        """Lane-backend run loop: chunk between observer capture points.

        Shared by the batch and shard backends.  Lane 0 is written back
        to the scalar structures before every observer dispatch (and at
        the end of the run), so traces, metrics and taps see exactly
        what they would on a scalar engine.
        """
        engine = self._lane_engine()
        remaining = cycles
        while remaining > 0:
            trace = self._trace
            chunk = remaining
            fire = False
            if trace is not None:
                stride = self._trace_stride()
                if stride is not None:
                    chunk = min(stride, remaining)
                    fire = chunk == stride
            engine.run(chunk, bus, host_in)
            remaining -= chunk
            engine.store_lane(0)
            if fire:
                trace(self)

    def reset(self) -> None:
        """Datapath reset: registers, pipelines, FIFOs, counters.

        Configuration (microwords, modes, routing) is preserved, matching
        a hardware reset that does not clear configuration SRAM.  FIFO
        queues are cleared *in place*: any queue handle previously handed
        out by :meth:`fifo` (host/DMA producers hold these) stays live and
        keeps feeding the same Dnode after the reset.

        Counter semantics (asserted by ``tests/core/test_reset_semantics``
        — the regression net for future backend work):

        * **Cleared** — everything that describes the *run*: ``cycles``,
          per-Dnode :class:`~repro.core.dnode.DnodeStats`, local-sequencer
          counters, ``fifo_underflows``, ``fifo_high_water``,
          ``last_bus``, and the batch engine's per-lane state (the engine
          is detached and lazily rebuilt from the cleared scalar state).
        * **Preserved** — everything that describes the *machine and its
          host*: the configuration and its write counters
          (``config.writes``, per-switch ``config.writes``),
          ``plan_compiles`` / ``plan_invalidations`` / ``macro_cycles``
          / ``native_cycles`` / ``native_compiles`` /
          ``native_fallback_cycles``,
          the plan cache (contents *and* hit/miss/eviction statistics),
          the robustness counters (``faults_injected``, ``checkpoints``,
          ``rollbacks``, ``recovery_cycles``) — and the active compiled
          plan: it closes over the stable state containers just cleared
          in place and the configuration is untouched, so the next step
          resumes on the fast path without recompiling.
        """
        for dn in self.all_dnodes():
            dn.reset()
        for sw in self._switches:
            sw.reset()
        for queue in self._fifos.values():
            queue.clear()
        self.cycles = 0
        self.fifo_underflows = 0
        self.fifo_high_water.clear()
        self.last_bus = 0
        if self._batch_engine is not None:
            # Drop the lane state entirely: the next batch run rebuilds
            # it by broadcasting the (now cleared) scalar datapath.
            self._batch_engine.detach()
            self._batch_engine = None
        # Same contract for the shard pool: detach also stops the worker
        # processes and releases the shared-memory blocks.
        self._detach_shard()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def instructions_executed(self) -> int:
        """Total non-NOP microinstructions executed fabric-wide."""
        return sum(dn.stats.instructions for dn in self.all_dnodes())

    @property
    def arithmetic_ops_executed(self) -> int:
        """Total elementary operator activations (MAC counts as 2)."""
        return sum(dn.stats.arithmetic_ops for dn in self.all_dnodes())

    def utilization(self) -> float:
        """Fraction of Dnode-cycles that executed a real instruction."""
        total = sum(dn.stats.cycles for dn in self.all_dnodes())
        if total == 0:
            return 0.0
        return self.instructions_executed / total

    # ------------------------------------------------------------------

    def _resolve_port(self, sw: Switch, upstream: List[Dnode], pos: int,
                      port: int, bus: int,
                      host_in: Optional[HostReader]) -> int:
        src = sw.config.source_for(pos, port)
        if src.kind is PortKind.ZERO:
            return 0
        if src.kind is PortKind.UP:
            return upstream[src.index].out
        if src.kind is PortKind.RP:
            return sw.rp_read(src.index, src.lane)
        if src.kind is PortKind.BUS:
            return bus
        if src.kind is PortKind.HOST:
            if host_in is None:
                raise SimulationError(
                    f"switch {sw.index} routes port {port} of position "
                    f"{pos} to host channel {src.index}, but no host "
                    f"reader was supplied"
                )
            return word.check(host_in(src.index),
                              f"host channel {src.index}")
        raise SimulationError(f"unhandled port source {src!r}")

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"Ring(Ring-{g.dnodes}: {g.layers}x{g.width}, "
            f"cycle={self.cycles})"
        )


def make_ring(dnodes: int, width: int = 2, **kwargs) -> Ring:
    """Convenience constructor: ``make_ring(8)`` builds the paper's Ring-8."""
    return Ring(RingGeometry.ring(dnodes, width=width), **kwargs)


__all__ = ["Ring", "RingGeometry", "RingProfile", "make_ring", "PortSource"]
