"""Dynamically reconfigurable inter-layer switch with feedback pipelines.

Paper §4.2.  Adjacent Dnode layers are connected by switch components
"able to make any interconnection between two stages".  Each switch also:

* "manages data communications with the host processor by direct dedicated
  ports" — modelled as ``HOST`` port sources resolved by the data
  controller;
* writes "unconditionally (no control needed) the result computed by the
  previous Dnodes layer in a dedicated pipeline (each switch owns its
  pipeline), which allows the feedback of each data to the previous
  stages" — modelled as one shift pipeline per upstream lane, tapped by
  the ``Rp(i, j)`` operand codes and by switch routing.

The pipelines are what remove long-distance routing: a recursive branch
needing a delay of *i* cycles reads tap ``Rp(i, j)`` instead of a wire
crossing the die ("the required delays on recursive branch are
automatically achieved in them").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import word
from repro.core.isa import FEEDBACK_DEPTH
from repro.errors import ConfigurationError, SimulationError


class PortKind(enum.Enum):
    """What a downstream input port is wired to."""

    ZERO = "zero"    # constant 0 (unconnected)
    UP = "up"        # output register of an upstream Dnode
    RP = "rp"        # feedback-pipeline tap of this switch
    HOST = "host"    # direct host data port (stream channel)
    BUS = "bus"      # the shared controller bus


@dataclass(frozen=True)
class PortSource:
    """Routing selection for one downstream Dnode input port."""

    kind: PortKind = PortKind.ZERO
    index: int = 0   # UP: upstream position; RP: stage; HOST: channel
    lane: int = 0    # RP only: pipeline lane (1-based)

    @classmethod
    def zero(cls) -> "PortSource":
        return cls(PortKind.ZERO)

    @classmethod
    def up(cls, position: int) -> "PortSource":
        """Forward connection to upstream Dnode at *position* (0-based)."""
        if position < 0:
            raise ConfigurationError(f"upstream position must be >= 0, got {position}")
        return cls(PortKind.UP, position)

    @classmethod
    def rp(cls, stage: int, lane: int) -> "PortSource":
        """Feedback tap: upstream lane output delayed by *stage* cycles."""
        if not 1 <= stage <= FEEDBACK_DEPTH:
            raise ConfigurationError(
                f"feedback stage must be 1..{FEEDBACK_DEPTH}, got {stage}"
            )
        if lane < 1:
            raise ConfigurationError(f"feedback lane must be >= 1, got {lane}")
        return cls(PortKind.RP, stage, lane)

    @classmethod
    def host(cls, channel: int) -> "PortSource":
        """Direct host data port (data-controller stream channel)."""
        if channel < 0:
            raise ConfigurationError(f"host channel must be >= 0, got {channel}")
        return cls(PortKind.HOST, channel)

    @classmethod
    def bus(cls) -> "PortSource":
        return cls(PortKind.BUS)

    def __str__(self) -> str:
        if self.kind is PortKind.UP:
            return f"up{self.index}"
        if self.kind is PortKind.RP:
            return f"rp({self.index},{self.lane})"
        if self.kind is PortKind.HOST:
            return f"host{self.index}"
        return self.kind.value


ROUTE_BITS = 16
_ROUTE_KIND_SHIFT = 13
_ROUTE_INDEX_SHIFT = 5
_ROUTE_KIND_CODES = {
    PortKind.ZERO: 0,
    PortKind.UP: 1,
    PortKind.RP: 2,
    PortKind.HOST: 3,
    PortKind.BUS: 4,
}
_ROUTE_KIND_FROM_CODE = {v: k for k, v in _ROUTE_KIND_CODES.items()}


def encode_route(source: PortSource) -> int:
    """Pack a :class:`PortSource` into its 16-bit configuration form.

    Layout: ``[15:13] kind, [12:5] index, [4:0] lane``.  This is the word
    stored in the configuration ROM for switch-routing entries.
    """
    if source.index >= (1 << 8):
        raise ConfigurationError(
            f"route index {source.index} does not fit in 8 bits"
        )
    if source.lane >= (1 << 5):
        raise ConfigurationError(
            f"route lane {source.lane} does not fit in 5 bits"
        )
    return (
        (_ROUTE_KIND_CODES[source.kind] << _ROUTE_KIND_SHIFT)
        | (source.index << _ROUTE_INDEX_SHIFT)
        | source.lane
    )


def decode_route(raw: int) -> PortSource:
    """Unpack a 16-bit configuration word into a :class:`PortSource`."""
    if not isinstance(raw, int) or raw < 0 or raw >= (1 << ROUTE_BITS):
        raise ConfigurationError(f"route word must fit in 16 bits, got {raw!r}")
    code = raw >> _ROUTE_KIND_SHIFT
    kind = _ROUTE_KIND_FROM_CODE.get(code)
    if kind is None:
        raise ConfigurationError(f"illegal route kind code {code}")
    index = (raw >> _ROUTE_INDEX_SHIFT) & 0xFF
    lane = raw & 0x1F
    return PortSource(kind, index, lane)


class SwitchConfig:
    """Routing table of one switch: (downstream position, port) -> source.

    Ports are numbered 1 and 2, matching the Dnode's ``IN1``/``IN2``.
    Unrouted ports read zero.
    """

    def __init__(self, width: int):
        if width < 1:
            raise ConfigurationError(f"switch width must be >= 1, got {width}")
        self.width = width
        self._routes: Dict[Tuple[int, int], PortSource] = {}
        #: Routing mutations applied to this switch (route/clear calls);
        #: aggregated per switch by the metrics registry.
        self.writes = 0
        #: Invalidation hook: called after every routing mutation.  The
        #: owning :class:`~repro.core.ring.Ring` points this at its
        #: fast-path invalidator so steady-state plans are recompiled.
        self.on_change: Optional[Callable[[], None]] = None
        #: Cached routing fingerprint (see fingerprint()).
        self._fp: Optional[tuple] = None

    def fingerprint(self) -> tuple:
        """A stable, hashable digest of the routing table.

        Explicit ZERO routes and absent entries read the same, so both
        are excluded — restoring a configuration by either path yields
        the same fingerprint.  Cached until the next routing mutation.
        """
        fp = self._fp
        if fp is None:
            fp = tuple(sorted(
                (pos, port, _ROUTE_KIND_CODES[src.kind], src.index,
                 src.lane)
                for (pos, port), src in self._routes.items()
                if src.kind is not PortKind.ZERO
            ))
            self._fp = fp
        return fp

    def route(self, position: int, port: int, source: PortSource) -> None:
        """Connect input *port* (1 or 2) of downstream Dnode *position*."""
        self._check_position(position)
        self._check_port(port)
        if not isinstance(source, PortSource):
            raise ConfigurationError(
                f"expected PortSource, got {type(source).__name__}"
            )
        if source.kind is PortKind.UP and source.index >= self.width:
            raise ConfigurationError(
                f"upstream position {source.index} out of range "
                f"(width {self.width})"
            )
        if source.kind is PortKind.RP and source.lane > self.width:
            raise ConfigurationError(
                f"feedback lane {source.lane} out of range (width {self.width})"
            )
        self._routes[(position, port)] = source
        self.writes += 1
        self._fp = None
        if self.on_change is not None:
            self.on_change()

    def source_for(self, position: int, port: int) -> PortSource:
        """Current routing of input *port* of downstream Dnode *position*."""
        self._check_position(position)
        self._check_port(port)
        return self._routes.get((position, port), PortSource.zero())

    def clear(self) -> None:
        """Disconnect every port (all read zero)."""
        self._routes.clear()
        self.writes += 1
        self._fp = None
        if self.on_change is not None:
            self.on_change()

    def copy(self) -> "SwitchConfig":
        clone = SwitchConfig(self.width)
        clone._routes = dict(self._routes)
        return clone

    @classmethod
    def straight(cls, width: int) -> "SwitchConfig":
        """Identity routing: IN1 of position p <- upstream Dnode p."""
        cfg = cls(width)
        for p in range(width):
            cfg.route(p, 1, PortSource.up(p))
        return cfg

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.width:
            raise ConfigurationError(
                f"downstream position must be 0..{self.width - 1}, "
                f"got {position}"
            )

    @staticmethod
    def _check_port(port: int) -> None:
        if port not in (1, 2):
            raise ConfigurationError(f"input port must be 1 or 2, got {port}")


class Switch:
    """One inter-layer switch: routing crossbar + feedback pipelines."""

    def __init__(self, index: int, width: int,
                 pipeline_depth: int = FEEDBACK_DEPTH):
        if pipeline_depth < 1:
            raise ConfigurationError(
                f"pipeline depth must be >= 1, got {pipeline_depth}"
            )
        self.index = index
        self.width = width
        self.pipeline_depth = pipeline_depth
        self.config = SwitchConfig(width)
        # Each lane's pipeline is a fixed-size ring buffer: ``_head`` is the
        # slot holding the most recent (stage-1) value, older stages follow
        # at increasing offsets modulo the depth.  A shift is therefore one
        # write per lane instead of an O(depth) list rotation.  The list
        # objects are never replaced (reset clears them in place), so the
        # fast-path engine may close over them directly.
        self._pipes: List[List[int]] = [
            [0] * pipeline_depth for _ in range(width)
        ]
        self._head = 0

    def rp_read(self, stage: int, lane: int) -> int:
        """Read feedback tap ``Rp(stage, lane)`` (both 1-based)."""
        if not 1 <= stage <= self.pipeline_depth:
            raise SimulationError(
                f"switch {self.index}: feedback stage {stage} out of range "
                f"1..{self.pipeline_depth}"
            )
        if not 1 <= lane <= self.width:
            raise SimulationError(
                f"switch {self.index}: feedback lane {lane} out of range "
                f"1..{self.width}"
            )
        return self._pipes[lane - 1][
            (self._head + stage - 1) % self.pipeline_depth]

    def rp_write(self, stage: int, lane: int, value: int) -> None:
        """Overwrite feedback tap ``Rp(stage, lane)`` (both 1-based).

        The state-injection dual of :meth:`rp_read`: used by checkpoint
        restore and by fault injectors to place a word at an exact
        pipeline depth without disturbing the rotation head.
        """
        if not 1 <= stage <= self.pipeline_depth:
            raise SimulationError(
                f"switch {self.index}: feedback stage {stage} out of range "
                f"1..{self.pipeline_depth}"
            )
        if not 1 <= lane <= self.width:
            raise SimulationError(
                f"switch {self.index}: feedback lane {lane} out of range "
                f"1..{self.width}"
            )
        word.check(value, f"switch {self.index} lane {lane - 1}")
        self._pipes[lane - 1][
            (self._head + stage - 1) % self.pipeline_depth] = value

    def shift(self, upstream_outputs: List[int]) -> None:
        """Clock edge: push the upstream layer's outputs into the pipelines.

        Called with the OUT values that were forward-visible this cycle, so
        during the next cycle ``Rp(1, j)`` equals the value lane *j*
        presented forward one cycle earlier.
        """
        if len(upstream_outputs) != self.width:
            raise SimulationError(
                f"switch {self.index}: expected {self.width} upstream "
                f"outputs, got {len(upstream_outputs)}"
            )
        head = (self._head - 1) % self.pipeline_depth
        self._head = head
        for lane, value in enumerate(upstream_outputs):
            word.check(value, f"switch {self.index} lane {lane}")
            self._pipes[lane][head] = value

    def reset(self) -> None:
        """Flush the feedback pipelines (routing config preserved)."""
        for pipe in self._pipes:
            for i in range(self.pipeline_depth):
                pipe[i] = 0
        self._head = 0

    def __repr__(self) -> str:
        return f"Switch(index={self.index}, width={self.width})"
