"""Tests for signal tracing and VCD export."""

import pytest

from repro.analysis.trace import Probe, SignalTrace, parse_vcd, write_vcd
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.core.switch import PortSource
from repro.errors import SimulationError


def counting_ring():
    """D0.0 counts up by 1 every cycle (SELF + 1)."""
    ring = make_ring(4)
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT, imm=1))
    ring.config.write_switch_route(1, 0, 1, PortSource.up(0))
    ring.config.write_microword(1, 0, MicroWord(
        Opcode.MOV, Source.IN1, dst=Dest.OUT))
    return ring


class TestSignalTrace:
    def test_captures_every_cycle(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0), Probe.out(1, 0)])
        ring.run(5)
        assert trace.cycles == 5
        assert trace.samples["D0.0.out"] == [1, 2, 3, 4, 5]
        assert trace.samples["D1.0.out"] == [0, 1, 2, 3, 4]

    def test_register_probe(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MAC, Source.IMM, Source.IMM, Dest.R0, imm=2))
        trace = SignalTrace(ring, [Probe.reg(0, 0, 0)])
        ring.run(3)
        assert trace.samples["D0.0.r0"] == [4, 8, 12]

    def test_needs_probes(self):
        with pytest.raises(SimulationError):
            SignalTrace(make_ring(4), [])

    def test_probe_address_validated(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SignalTrace(make_ring(4), [Probe.out(9, 0)])

    def test_detach_stops_recording(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(2)
        trace.detach()
        ring.run(2)
        assert trace.cycles == 2

    def test_render_ascii(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(3)
        diagram = trace.render()
        assert "D0.0.out" in diagram
        assert "3" in diagram

    def test_render_last_n(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(10)
        diagram = trace.render(last=2)
        assert "10" in diagram and " 5 " not in diagram

    def test_render_before_run_rejected(self):
        trace = SignalTrace(counting_ring(), [Probe.out(0, 0)])
        with pytest.raises(SimulationError):
            trace.render()


class TestVcd:
    def test_roundtrip(self, tmp_path):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0), Probe.out(1, 0)])
        ring.run(4)
        path = tmp_path / "run.vcd"
        write_vcd(trace, path)
        waves = parse_vcd(path)
        assert [v for _, v in waves["D0_0_out"]] == [1, 2, 3, 4]
        # D1.0 holds 0 initially: first dump at t=0 then changes
        assert waves["D1_0_out"][0] == (0, 0)

    def test_only_changes_dumped(self, tmp_path):
        ring = make_ring(4)  # everything idle: constant zeros
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(5)
        path = tmp_path / "idle.vcd"
        write_vcd(trace, path)
        waves = parse_vcd(path)
        assert waves["D0_0_out"] == [(0, 0)]

    def test_header_fields(self, tmp_path):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.out(0, 0)])
        ring.run(1)
        path = tmp_path / "h.vcd"
        write_vcd(trace, path, timescale="10 ns", module="dut")
        text = path.read_text()
        assert "$timescale 10 ns $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 16" in text

    def test_empty_trace_rejected(self, tmp_path):
        trace = SignalTrace(counting_ring(), [Probe.out(0, 0)])
        with pytest.raises(SimulationError):
            write_vcd(trace, tmp_path / "x.vcd")


class TestBusProbe:
    def test_bus_probe_records_observed_values(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.bus()])
        for value in (5, 9, 13):
            trace.observe_bus(value)
            ring.step(bus=value)
        assert trace.samples["bus"] == [5, 9, 13]

    def test_observe_bus_validates(self):
        trace = SignalTrace(counting_ring(), [Probe.bus()])
        with pytest.raises(ValueError):
            trace.observe_bus(-1)

    def test_bus_defaults_to_zero(self):
        ring = counting_ring()
        trace = SignalTrace(ring, [Probe.bus()])
        ring.run(2)
        assert trace.samples["bus"] == [0, 0]
