"""§5.1 comparative results — raw power and bandwidth.

Paper claims for the Ring-8 at 200 MHz:

* 1600 MIPS peak ("quite impressive compared to the 400 MIPS of a
  Pentium II 450 MHz processor");
* ~3 GB/s theoretical bandwidth, limited to 250 MB/s by the PCI
  protocol of the prototype.

The benchmark measures *sustained* MIPS from real fabric activity (a
fully-busy MAC ring), not just the peak arithmetic.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.analysis.mips import (
    comparative_summary,
    measured_mips,
    measured_mops,
    ring_peak_mips,
)
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import make_ring
from repro.host.dma import ONCHIP_PORTS, PCI_BUS


def _busy_ring(dnodes=8):
    ring = make_ring(dnodes)
    for dn in ring.all_dnodes():
        ring.config.write_microword(dn.layer, dn.position, MicroWord(
            Opcode.MAC, Source.ZERO, Source.ZERO, Dest.R0))
    return ring


def test_sec51_sustained_fabric_rate(benchmark):
    """A fully-busy Ring-8 sustains its peak 1600 MIPS."""
    ring = _busy_ring()
    benchmark(ring.run, 1000)
    assert measured_mips(ring) == pytest.approx(1600.0)
    assert measured_mops(ring) == pytest.approx(3200.0)
    benchmark.extra_info["sustained_mips"] = measured_mips(ring)


def test_sec51_summary(benchmark):
    summary = benchmark(comparative_summary)
    assert summary["ring_peak_mips"] == 1600.0


def test_sec51_shape():
    summary = comparative_summary()
    emit(render_table(
        ["metric", "reproduced", "paper"],
        [
            ["Ring-8 peak MIPS", summary["ring_peak_mips"], "1600"],
            ["Pentium II 450 MIPS", summary["cpu_mips"], "~400"],
            ["theoretical bandwidth GB/s",
             summary["theoretical_bw_gb_s"], "~3"],
            ["PCI protocol GB/s", summary["pci_bw_gb_s"], "0.25"],
        ],
        title="SS5.1 (reproduced) — comparative results"))
    assert summary["ring_peak_mips"] == 1600.0
    assert summary["cpu_mips"] == pytest.approx(400, rel=0.02)
    assert summary["speedup_vs_cpu"] == pytest.approx(4.0, rel=0.02)
    assert summary["theoretical_bw_gb_s"] == pytest.approx(3.2)
    assert summary["pci_bw_gb_s"] == 0.25


def test_sec51_bandwidth_limits_transfer_times():
    """Moving one 1024x768 16-bit frame: ~0.5 ms on the ports, ~6.3 ms
    over PCI — the protocol is the bottleneck, as the paper notes."""
    frame_bytes = 1024 * 768 * 2
    onchip = ONCHIP_PORTS.transfer_time_s(frame_bytes)
    pci = PCI_BUS.transfer_time_s(frame_bytes)
    assert onchip == pytest.approx(frame_bytes / 3.2e9)
    assert pci / onchip == pytest.approx(12.8, rel=0.01)
