"""Unit and property tests for 16-bit word arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro import word


class TestWrap:
    def test_identity_in_range(self):
        assert word.wrap(0) == 0
        assert word.wrap(0xFFFF) == 0xFFFF

    def test_overflow_wraps(self):
        assert word.wrap(0x10000) == 0
        assert word.wrap(0x10001) == 1

    def test_negative_wraps(self):
        assert word.wrap(-1) == 0xFFFF
        assert word.wrap(-0x8000) == 0x8000

    @given(st.integers())
    def test_always_canonical(self, value):
        assert 0 <= word.wrap(value) <= word.MASK


class TestSignedConversion:
    def test_zero(self):
        assert word.to_signed(0) == 0
        assert word.from_signed(0) == 0

    def test_max_positive(self):
        assert word.to_signed(0x7FFF) == 32767

    def test_min_negative(self):
        assert word.to_signed(0x8000) == -32768

    def test_minus_one(self):
        assert word.to_signed(0xFFFF) == -1
        assert word.from_signed(-1) == 0xFFFF

    @given(st.integers(min_value=-32768, max_value=32767))
    def test_roundtrip_signed(self, value):
        assert word.to_signed(word.from_signed(value)) == value

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_roundtrip_raw(self, raw):
        assert word.from_signed(word.to_signed(raw)) == raw

    @given(st.integers())
    def test_from_signed_wraps_like_hardware(self, value):
        assert word.from_signed(value) == value & word.MASK


class TestValidation:
    def test_is_valid_accepts_range(self):
        assert word.is_valid(0)
        assert word.is_valid(0xFFFF)

    def test_is_valid_rejects_out_of_range(self):
        assert not word.is_valid(-1)
        assert not word.is_valid(0x10000)

    def test_is_valid_rejects_non_int(self):
        assert not word.is_valid("5")
        assert not word.is_valid(1.5)

    def test_check_returns_value(self):
        assert word.check(42) == 42

    def test_check_raises_with_context(self):
        with pytest.raises(ValueError, match="operand"):
            word.check(-3, "operand")


class TestSaturate:
    def test_within_range_passthrough(self):
        assert word.to_signed(word.saturate_signed(100)) == 100
        assert word.to_signed(word.saturate_signed(-100)) == -100

    def test_clamps_high(self):
        assert word.to_signed(word.saturate_signed(40000)) == 32767

    def test_clamps_low(self):
        assert word.to_signed(word.saturate_signed(-40000)) == -32768

    @given(st.integers())
    def test_result_always_in_signed_range(self, value):
        signed = word.to_signed(word.saturate_signed(value))
        assert word.MIN_SIGNED <= signed <= word.MAX_SIGNED

    @given(st.integers())
    def test_monotonic_at_bounds(self, value):
        clamped = word.to_signed(word.saturate_signed(value))
        assert clamped == max(word.MIN_SIGNED,
                              min(word.MAX_SIGNED, value))
