"""Analytical silicon model: gate inventories, technology nodes, area and
frequency estimation, and the Fig. 7 SoC floor-plan budget.

This replaces the paper's VHDL + Synopsys Design Compiler flow (see
DESIGN.md §3 — substitutions).  Component gate/bit counts live in
:mod:`repro.tech.gates`; per-node area/delay coefficients calibrated to
the paper's Table 3 anchors live in :mod:`repro.tech.nodes`; the composed
estimators live in :mod:`repro.tech.area` and :mod:`repro.tech.timing`.
"""

from repro.tech.nodes import TechNode, NODES, get_node
from repro.tech.gates import (
    DNODE_GATES,
    SWITCH_GATES,
    CONTROLLER_GATES,
    dnode_gate_count,
    switch_gate_count,
    memory_bits,
)
from repro.tech.area import AreaReport, dnode_area_mm2, core_area_mm2
from repro.tech.timing import (
    estimated_frequency_hz,
    mesh_frequency_hz,
    crossbar_frequency_hz,
)
from repro.tech.soc import SocBudget, foreseeable_soc

__all__ = [
    "TechNode",
    "NODES",
    "get_node",
    "DNODE_GATES",
    "SWITCH_GATES",
    "CONTROLLER_GATES",
    "dnode_gate_count",
    "switch_gate_count",
    "memory_bits",
    "AreaReport",
    "dnode_area_mm2",
    "core_area_mm2",
    "estimated_frequency_hz",
    "mesh_frequency_hz",
    "crossbar_frequency_hz",
    "SocBudget",
    "foreseeable_soc",
]
