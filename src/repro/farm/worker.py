"""Farm workers: one persistent RingSystem owner per pool slot.

A :class:`JobExecutor` is the in-process core: it keeps one long-lived
:class:`~repro.core.ring.Ring` per fabric shape it has served (keyed by
``(layers, width, strict_fifos)``) so the configuration-fingerprinted
:class:`~repro.core.plancache.PlanCache` stays *warm across jobs* — the
whole point of fingerprint-affinity routing.  Executing a job is a
hardware context switch, not a rebuild: ``reset()`` the datapath, apply
the job's configuration plane (complete, so nothing leaks from the
previous tenant), re-adopt the cached compiled plan in one lookup, run.
When the requested plane is already resident on the ring (back-to-back
jobs of one fingerprint — the common case under affinity routing) even
the plane write is skipped, which also keeps the adopted plan installed
instead of invalidating and re-looking it up.

A :class:`FarmWorker` is the parent-side handle: it spawns the executor
into a worker process over a Pipe (same fork-preferred context, ready
handshake and graceful in-process fallback as the shardpath pool), guards
the connection with a lock so concurrent dispatchers serialize, and
respawns a died worker on the next job (cold caches, but no lost pool
slot).  Live migration rides the PR 5 checkpoint machinery: ``execute``
with ``pause_at`` returns a
:class:`~repro.robustness.checkpoint.SystemCheckpoint` mid-run, and
``execute`` with ``resume`` continues bit-identically on any worker.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.core.config_memory import ConfigPlane
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import state_digest
from repro.errors import SimulationError
from repro.farm.job import FarmJob, FarmResult
from repro.host.system import RingSystem

#: Seconds a worker process gets to come up before the in-process
#: fallback takes over (mirrors the shardpath spawn timeout).
_SPAWN_TIMEOUT = 60.0


class JobExecutor:
    """Executes farm jobs on persistent, plan-cache-warm rings."""

    def __init__(self, plan_cache: int = 8, worker: int = 0):
        self.plan_cache = plan_cache
        self.worker = worker
        self.jobs_run = 0
        self._rings: Dict[Tuple[int, int, bool], Ring] = {}
        # The configuration plane currently resident on each ring.
        # ConfigPlane is a frozen snapshot, so an equal plane means the
        # fabric is already configured — the context switch (and the
        # plan invalidation it implies) can be skipped entirely.
        self._resident: Dict[Tuple[int, int, bool], ConfigPlane] = {}

    def _ring_for(self, job: FarmJob) -> Ring:
        key = (job.layers, job.width, job.strict_fifos)
        ring = self._rings.get(key)
        if ring is None:
            ring = Ring(RingGeometry(layers=job.layers, width=job.width),
                        strict_fifos=job.strict_fifos,
                        plan_cache=self.plan_cache)
            self._rings[key] = ring
        return ring

    def execute(self, job: FarmJob, pause_at: Optional[int] = None,
                resume=None) -> dict:
        """Run *job*; returns ``{"done": True, "result": FarmResult}``.

        With ``pause_at`` (a cycle strictly inside the budget) the run
        stops there and returns ``{"done": False, "state":
        SystemCheckpoint}`` instead — the migration handoff.  With
        ``resume`` (a checkpoint from another worker's pause) the job
        continues from the captured state; streams/FIFO preloads are
        part of the checkpoint, so they are not re-applied.
        """
        job.validate()
        key = (job.layers, job.width, job.strict_fifos)
        ring = self._ring_for(job)
        hits_before = ring.plan_cache.hits
        compiles_before = ring.plan_compiles
        resident = False
        # Context switch: wipe the previous tenant's datapath state and
        # overwrite the *complete* configuration (capture_plane() planes
        # cover every address, including all local slots and routes).
        ring.reset()
        system = RingSystem(ring)
        for layer, pos, limit in job.taps:
            system.data.add_tap(layer, pos, limit=limit)
        if resume is not None:
            # restore() re-applies the checkpointed plane and re-adopts
            # the cached plan; taps above give restore_state its targets.
            # The checkpoint overwrote the fabric configuration, so the
            # resident marker for this shape is stale.
            self._resident.pop(key, None)
            system.restore_checkpoint(resume)
        else:
            # A plane write always drops the adopted compiled plan (a
            # reconfiguration invalidates the fast path by contract), so
            # re-applying an identical plane would cost both the ~1000
            # config writes and a needless cache round-trip.  reset()
            # preserves configuration, so when the resident plane equals
            # the job's the fabric is already configured: skip both.
            resident = self._resident.get(key) == job.plane
            if not resident:
                ring.config.apply_plane(job.plane)
                # Shallow copy: inline executors share the caller's plane
                # object, and a marker aliasing dicts the caller can still
                # mutate would skip an apply the fabric actually needs.
                self._resident[key] = ConfigPlane(
                    dict(job.plane.microwords), dict(job.plane.modes),
                    dict(job.plane.local_programs),
                    dict(job.plane.switch_routes))
            ring.adopt_cached_plan()
            for channel, values in sorted(job.streams.items()):
                system.data.stream(channel, values)
            for layer, pos, channel, words in job.fifos:
                ring.push_fifo(layer, pos, channel, words)
        remaining = job.cycles - system.cycles
        aborted: Optional[str] = None
        if (pause_at is not None and resume is None
                and 0 < pause_at < job.cycles):
            system.run(pause_at - system.cycles)
            return {"done": False, "state": system.checkpoint()}
        try:
            if remaining > 0:
                system.run(remaining)
        except SimulationError as exc:
            aborted = str(exc)
        hits = ring.plan_cache.hits - hits_before
        compiles = ring.plan_compiles - compiles_before
        self.jobs_run += 1
        result = FarmResult(
            job_id=job.job_id,
            tenant=job.tenant,
            worker=self.worker,
            cycles_run=system.cycles,
            taps=[list(tap.samples) for tap in system.data.taps],
            digest=state_digest(ring) if job.want_digest else (),
            aborted=aborted,
            migrated=resume is not None,
            warm=(hits > 0 or resident) and compiles == 0,
            plan_hits=hits,
            plan_compiles=compiles,
        )
        return {"done": True, "result": result}


def _farm_worker_main(conn, plan_cache: int,
                      worker: int) -> None:  # pragma: no cover - subprocess
    """Worker-process loop: jobs in, results out, over one Pipe."""
    executor = JobExecutor(plan_cache=plan_cache, worker=worker)
    try:
        conn.send(("ready",))
    except (BrokenPipeError, OSError):
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        op = message[0]
        try:
            if op == "stop":
                conn.send(("bye",))
                return
            if op == "ping":
                conn.send(("pong",))
            elif op == "job":
                _, job, pause_at, resume = message
                try:
                    conn.send(("ok", executor.execute(
                        job, pause_at=pause_at, resume=resume)))
                except Exception as exc:
                    conn.send(("error", type(exc).__name__, str(exc)))
            else:
                conn.send(("error", "ValueError", f"unknown op {op!r}"))
        except (BrokenPipeError, OSError):
            return


def _pool_context():
    """Fork-preferred multiprocessing context, None when unavailable."""
    try:
        import multiprocessing as mp
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else methods[0])
    except Exception:  # pragma: no cover - platform dependent
        return None


class FarmWorker:
    """Parent-side handle on one pool slot (process or inline)."""

    def __init__(self, index: int, plan_cache: int = 8,
                 use_processes: bool = True):
        self.index = index
        self.plan_cache = plan_cache
        self.jobs_done = 0
        self.restarts = 0
        self.using_process = False
        self._lock = threading.Lock()
        self._executor: Optional[JobExecutor] = None
        self._proc = None
        self._conn = None
        self._closed = False
        if not (use_processes and self._spawn()):
            self._activate_inline()

    def _activate_inline(self) -> None:
        self._teardown_process()
        self._executor = JobExecutor(plan_cache=self.plan_cache,
                                     worker=self.index)
        self.using_process = False

    def _spawn(self) -> bool:
        ctx = _pool_context()
        if ctx is None:  # pragma: no cover - platform dependent
            return False
        try:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_farm_worker_main,
                args=(child_conn, self.plan_cache, self.index),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            if not parent_conn.poll(_SPAWN_TIMEOUT):
                raise OSError("farm worker handshake timed out")
            reply = parent_conn.recv()
            if reply[0] != "ready":
                raise OSError(f"farm worker failed to start: {reply!r}")
        except Exception:
            try:
                parent_conn.close()
            except Exception:
                pass
            try:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5)
            except Exception:
                pass
            return False
        self._proc = proc
        self._conn = parent_conn
        self.using_process = True
        return True

    def _teardown_process(self) -> None:
        conn, proc = self._conn, self._proc
        self._conn = self._proc = None
        if conn is not None:
            try:
                conn.send(("stop",))
                if conn.poll(5):
                    conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            try:
                conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
        if proc is not None:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)

    def _ensure_live(self) -> None:
        if self._closed:
            raise SimulationError(
                f"farm worker {self.index} is closed")
        if self._executor is not None:
            return
        if self._proc is not None and self._proc.is_alive():
            return
        # The process died (crash, OOM kill): respawn with cold caches
        # rather than abandoning the pool slot.
        self._teardown_process()
        self.restarts += 1
        if not self._spawn():  # pragma: no cover - platform dependent
            self._activate_inline()

    def execute(self, job: FarmJob, pause_at: Optional[int] = None,
                resume=None) -> dict:
        """Run one job (blocking); thread-safe, serialized per worker."""
        with self._lock:
            self._ensure_live()
            if self._executor is not None:
                out = self._executor.execute(job, pause_at=pause_at,
                                             resume=resume)
                self.jobs_done += 1
                return out
            try:
                self._conn.send(("job", job, pause_at, resume))
                reply = self._conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                self._teardown_process()
                raise SimulationError(
                    f"farm worker {self.index} died mid-job: {exc}")
            if reply[0] == "ok":
                self.jobs_done += 1
                return reply[1]
            raise SimulationError(
                f"farm worker {self.index} {reply[1]}: {reply[2]}")

    def ping(self) -> bool:
        """Round-trip liveness check (True for inline executors)."""
        with self._lock:
            if self._closed:
                return False
            if self._executor is not None:
                return True
            try:
                self._conn.send(("ping",))
                return self._conn.recv() == ("pong",)
            except (BrokenPipeError, EOFError, OSError):
                return False

    def close(self) -> None:
        """Stop the worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_process()
            self._executor = None

    def __repr__(self) -> str:
        mode = "process" if self.using_process else "inline"
        return (f"FarmWorker({self.index}, {mode}, "
                f"jobs={self.jobs_done})")


__all__ = ["FarmWorker", "JobExecutor"]
