"""Ring-level assembler primitives: Dnode microinstruction text syntax.

Syntax (one microinstruction)::

    <op> <dst>, <srcA> [, <srcB>] [#imm] [flag,flag]

* ``dst``: ``r0..r3``, ``out`` or ``none``.
* sources: ``r0..r3``, ``in1``, ``in2``, ``fifo1``, ``fifo2``, ``bus``,
  ``self``, ``zero``, ``rp(i,j)``, or an immediate literal ``#n`` (which
  selects the IMM source and stores *n* in the microword).
* flags: ``[wout]`` mirror result to OUT, ``[pop1]``/``[pop2]`` consume a
  FIFO head this cycle.

Examples::

    mac r0, in1, in2 [pop1]
    absdiff out, fifo1, fifo2 [pop1,pop2]
    add out, rp(2,1), #-5
    nop

Route syntax (switch configuration operands)::

    up<j> | rp(i,j) | host<c> | bus | zero
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro import word
from repro.core.isa import (
    Dest,
    Flag,
    MicroWord,
    Opcode,
    Source,
    is_binary_op,
)
from repro.core.switch import PortSource
from repro.errors import AssemblerError

_SOURCE_NAMES: Dict[str, Source] = {
    "r0": Source.R0,
    "r1": Source.R1,
    "r2": Source.R2,
    "r3": Source.R3,
    "in1": Source.IN1,
    "in2": Source.IN2,
    "fifo1": Source.FIFO1,
    "fifo2": Source.FIFO2,
    "bus": Source.BUS,
    "imm": Source.IMM,
    "self": Source.SELF,
    "zero": Source.ZERO,
}

_DEST_NAMES: Dict[str, Dest] = {
    "r0": Dest.R0,
    "r1": Dest.R1,
    "r2": Dest.R2,
    "r3": Dest.R3,
    "out": Dest.OUT,
    "none": Dest.NONE,
}

_FLAG_NAMES: Dict[str, Flag] = {
    "wout": Flag.WRITE_OUT,
    "pop1": Flag.POP_FIFO1,
    "pop2": Flag.POP_FIFO2,
}

_RP_RE = re.compile(r"^rp\(\s*(\d+)\s*,\s*(\d+)\s*\)$")
_IMM_RE = re.compile(r"^#(-?(?:0x[0-9a-fA-F]+|\d+))$")
_FLAGS_RE = re.compile(r"\[([^\]]*)\]")


def _parse_int(text: str) -> int:
    return int(text, 0)


def _split_top_level(text: str) -> list:
    """Split on commas that are not inside parentheses (``rp(i,j)``)."""
    out = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        out.append(tail)
    return [tok for tok in out if tok]


def _parse_source(token: str, line: Optional[int]) -> Source:
    token = token.strip().lower()
    source = _SOURCE_NAMES.get(token)
    if source is not None:
        return source
    match = _RP_RE.match(token)
    if match:
        return Source.rp(int(match.group(1)), int(match.group(2)))
    raise AssemblerError(f"unknown operand source {token!r}", line)


def parse_dnode_op(text: str, line: Optional[int] = None) -> MicroWord:
    """Parse one Ring-level microinstruction line into a MicroWord.

    Raises:
        AssemblerError: on any syntax or range error, annotated with
            *line* when given.
    """
    body = text.strip()
    if not body:
        raise AssemblerError("empty microinstruction", line)

    flags = Flag.NONE
    flag_match = _FLAGS_RE.search(body)
    if flag_match:
        for name in flag_match.group(1).split(","):
            name = name.strip().lower()
            if not name:
                continue
            flag = _FLAG_NAMES.get(name)
            if flag is None:
                raise AssemblerError(f"unknown flag {name!r}", line)
            flags |= flag
        body = _FLAGS_RE.sub("", body).strip()

    parts = body.split(None, 1)
    mnemonic = parts[0].lower()
    try:
        op = Opcode[mnemonic.upper()]
    except KeyError:
        raise AssemblerError(f"unknown Dnode opcode {mnemonic!r}", line)

    operands = []
    if len(parts) > 1:
        operands = _split_top_level(parts[1])

    if op is Opcode.NOP:
        if operands:
            raise AssemblerError("nop takes no operands", line)
        return MicroWord(flags=flags)

    if not operands:
        raise AssemblerError(f"{mnemonic} needs a destination", line)
    dst_name = operands[0].lower()
    dst = _DEST_NAMES.get(dst_name)
    if dst is None:
        raise AssemblerError(f"unknown destination {dst_name!r}", line)

    imm = 0
    sources = []
    for token in operands[1:]:
        imm_match = _IMM_RE.match(token.replace(" ", ""))
        if imm_match:
            imm = word.from_signed(_parse_int(imm_match.group(1)))
            sources.append(Source.IMM)
        else:
            sources.append(_parse_source(token, line))

    expected = 2 if is_binary_op(op) else 1
    if op in (Opcode.MADD, Opcode.MSUB):
        # The third operand is the coefficient immediate: `madd out, a, b, #c`
        if len(sources) == 3 and sources[2] is Source.IMM:
            sources = sources[:2]
    if len(sources) != expected:
        raise AssemblerError(
            f"{mnemonic} expects {expected} source operand(s), "
            f"got {len(sources)}",
            line,
        )
    src_a = sources[0]
    src_b = sources[1] if expected == 2 else Source.ZERO
    try:
        return MicroWord(op=op, src_a=src_a, src_b=src_b, dst=dst,
                         flags=flags, imm=imm)
    except Exception as exc:
        raise AssemblerError(str(exc), line)


def format_dnode_op(mw: MicroWord) -> str:
    """Render a MicroWord back to canonical assembler text.

    ``parse_dnode_op(format_dnode_op(mw))`` reproduces *mw* for every
    encodable microword (round-trip property, tested).
    """
    if mw.op is Opcode.NOP:
        text = "nop"
    else:
        tokens = [_format_operand(mw, mw.src_a)]
        if mw.is_binary:
            tokens.append(_format_operand(mw, mw.src_b))
        if (mw.op in (Opcode.MADD, Opcode.MSUB)
                and Source.IMM not in (mw.src_a, mw.src_b)):
            tokens.append(f"#{word.to_signed(mw.imm)}")
        dst_name = mw.dst.name.lower()
        text = f"{mw.op.name.lower()} {dst_name}, " + ", ".join(tokens)
    flags = [name for name, flag in _FLAG_NAMES.items() if mw.flags & flag]
    if flags:
        text += f" [{','.join(flags)}]"
    return text


def _format_operand(mw: MicroWord, src: Source) -> str:
    if src is Source.IMM:
        return f"#{word.to_signed(mw.imm)}"
    if src.is_feedback:
        return f"rp({src.feedback_stage},{src.feedback_lane})"
    return src.name.lower()


_UP_RE = re.compile(r"^up(\d+)$")
_HOST_RE = re.compile(r"^host(\d+)$")


def parse_route(text: str, line: Optional[int] = None) -> PortSource:
    """Parse a switch routing operand (``up0``, ``rp(1,2)``, ``host3``...)."""
    token = text.strip().lower()
    if token == "zero":
        return PortSource.zero()
    if token == "bus":
        return PortSource.bus()
    match = _UP_RE.match(token)
    if match:
        return PortSource.up(int(match.group(1)))
    match = _HOST_RE.match(token)
    if match:
        return PortSource.host(int(match.group(1)))
    match = _RP_RE.match(token)
    if match:
        return PortSource.rp(int(match.group(1)), int(match.group(2)))
    raise AssemblerError(f"unknown route source {token!r}", line)


def format_route(source: PortSource) -> str:
    """Render a PortSource back to assembler text."""
    return str(source)
