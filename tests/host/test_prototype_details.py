"""Detail tests for the Fig. 6 prototype internals (VGA model, kernels)."""

import numpy as np
import pytest

from repro.host.memory import WordMemory
from repro.host.prototype import (
    KERNEL_LATENCY,
    KERNEL_SOURCES,
    VgaController,
    assemble_kernel,
    reference_kernel,
)
from repro.errors import HostError


class TestVgaController:
    def _video(self, rows=4, cols=6):
        video = WordMemory(rows * cols, name="VIDEO")
        video.load(list(range(rows * cols)))
        return video, (rows, cols)

    def test_scan_reads_row_major(self):
        video, shape = self._video()
        vga = VgaController(video, shape)
        frame = vga.scan_frame()
        assert frame.shape == shape
        assert frame[0, 0] == 0 and frame[3, 5] == 23

    def test_sync_counters_per_frame(self):
        video, shape = self._video()
        vga = VgaController(video, shape)
        vga.scan_frame()
        assert vga.hsyncs == 4          # one per line
        assert vga.vsyncs == 1          # one per frame
        assert vga.pixel_clocks == 24   # one per pixel

    def test_multiple_frames_accumulate(self):
        video, shape = self._video()
        vga = VgaController(video, shape)
        vga.scan_frame()
        vga.scan_frame()
        assert vga.vsyncs == 2
        assert vga.pixel_clocks == 48

    def test_scan_reflects_memory_updates(self):
        video, shape = self._video()
        vga = VgaController(video, shape)
        first = vga.scan_frame()
        video.write(0, 999)
        second = vga.scan_frame()
        assert first[0, 0] == 0 and second[0, 0] == 999


class TestKernelSources:
    def test_each_kernel_assembles(self):
        for name in KERNEL_SOURCES:
            obj = assemble_kernel(name)
            assert obj.initial_plane == 0

    def test_latency_table_covers_all_kernels(self):
        assert set(KERNEL_LATENCY) == set(KERNEL_SOURCES)

    def test_threshold_substitution(self):
        obj_low = assemble_kernel("threshold", threshold=10)
        obj_high = assemble_kernel("threshold", threshold=200)
        assert obj_low.cfg_rom != obj_high.cfg_rom

    def test_unknown_kernel_rejected(self):
        with pytest.raises(HostError, match="unknown kernel"):
            assemble_kernel("emboss")

    def test_reference_kernel_validates(self):
        with pytest.raises(HostError):
            reference_kernel(np.zeros((4, 4)), "emboss")

    def test_reference_edge_semantics(self):
        img = np.array([[10, 15], [20, 7]])
        out = reference_kernel(img, "edge")
        # row-major gradient: |10-0|, |15-10|, |20-15|, |7-20|
        assert out.reshape(-1).tolist() == [10, 5, 5, 13]
