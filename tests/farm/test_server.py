"""The TCP front door: JSON-lines protocol over a real socket.

Every test binds port 0 on localhost and talks to the server through
:func:`repro.farm.server.request` (or a raw connection for the malformed
input paths), so the wire codecs, the dispatch table, and the error
replies are all exercised end to end.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

from repro.farm import RingFarm
from repro.farm.job import job_to_wire
from repro.farm.server import FarmServer, request

from tests.farm.test_farm import direct_run, fir_job


def serve(coro_factory):
    """Run *coro_factory(farm, server)* against a live inline farm."""

    async def go():
        farm = RingFarm(workers=1, use_processes=False)
        server = FarmServer(farm, port=0)
        async with farm:
            async with server:
                return await coro_factory(farm, server)

    return asyncio.run(go())


async def raw_request(server: FarmServer, line: bytes) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1",
                                                   server.port)
    try:
        writer.write(line)
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestFarmServer:
    def test_ping(self):
        async def go(farm, server):
            return await request("127.0.0.1", server.port, {"op": "ping"})

        assert serve(go) == {"ok": True, "pong": True}

    def test_submit_round_trip_matches_direct_run(self):
        job = fir_job()
        want_taps, want_digest = direct_run(job)

        async def go(farm, server):
            return await request("127.0.0.1", server.port,
                                 {"op": "submit",
                                  "job": job_to_wire(job)})

        reply = serve(go)
        assert reply["ok"]
        result = reply["result"]
        assert result["taps"] == want_taps
        assert result["digest"] == hashlib.sha256(
            repr(want_digest).encode()).hexdigest()
        assert result["cycles_run"] == job.cycles
        assert not result["migrated"]

    def test_submit_with_migration(self):
        job = fir_job(cycles=20)
        _, want_digest = direct_run(job)

        async def go(farm, server):
            reply = await request("127.0.0.1", server.port,
                                  {"op": "submit",
                                   "job": job_to_wire(job),
                                   "migrate_at": 10})
            return farm.jobs_migrated, reply

        migrated, reply = serve(go)
        assert migrated == 1 and reply["result"]["migrated"]
        assert reply["result"]["digest"] == hashlib.sha256(
            repr(want_digest).encode()).hexdigest()

    def test_metrics_both_formats(self):
        async def go(farm, server):
            await farm.submit(fir_job())
            as_json = await request("127.0.0.1", server.port,
                                    {"op": "metrics", "format": "json"})
            as_prom = await request("127.0.0.1", server.port,
                                    {"op": "metrics"})
            return as_json, as_prom

        as_json, as_prom = serve(go)
        assert as_json["metrics"]["farm_jobs_completed_total"] == 1
        assert "# TYPE repro_farm_workers gauge" in as_prom["prometheus"]

    def test_rejection_reply_carries_retry_after(self):
        async def go(farm, server):
            await farm.drain()
            return await request("127.0.0.1", server.port,
                                 {"op": "submit",
                                  "job": job_to_wire(fir_job())})

        reply = serve(go)
        assert reply == {"ok": False, "error": "rejected",
                         "reason": "farm is draining",
                         "retry_after": reply["retry_after"]}
        assert reply["retry_after"] > 0

    def test_invalid_job_reports_error_not_crash(self):
        wire = job_to_wire(fir_job())
        wire["tenant"] = ""

        async def go(farm, server):
            bad = await request("127.0.0.1", server.port,
                                {"op": "submit", "job": wire})
            alive = await request("127.0.0.1", server.port,
                                  {"op": "ping"})
            return bad, alive

        bad, alive = serve(go)
        assert not bad["ok"] and "ConfigurationError" in bad["error"]
        assert alive["ok"], "a bad job must not take the server down"

    def test_malformed_lines_get_error_replies(self):
        async def go(farm, server):
            return (await raw_request(server, b"this is not json\n"),
                    await raw_request(server, b"42\n"),
                    await raw_request(server, b'{"op": "frobnicate"}\n'))

        bad_json, non_object, unknown = serve(go)
        assert not bad_json["ok"] and "bad json" in bad_json["error"]
        assert non_object["error"] == "request must be an object"
        assert "unknown op" in unknown["error"]

    def test_port_zero_binds_a_real_port(self):
        async def go(farm, server):
            return server.port

        assert serve(go) > 0
