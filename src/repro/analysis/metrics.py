"""Unified instrumentation: always-on counters, snapshots, exporters.

Tier 1 of the observability layer.  The simulator's components already
maintain cheap counters on their configuration and commit paths — per-Dnode
activity (:class:`~repro.core.dnode.DnodeStats`), FIFO depth high-water
marks and underflows, fast-path plan compiles/invalidations
(:class:`~repro.core.ring.Ring`), per-switch route writes
(:class:`~repro.core.switch.SwitchConfig`), configuration-word traffic
(:class:`~repro.core.config_memory.ConfigMemory`) and controller
retire/stall statistics (:class:`~repro.controller.core.ControllerState`).
Nothing here adds per-cycle work: a :class:`MetricsRegistry` *aggregates*
those live counters on demand into an immutable :class:`MetricsSnapshot`
that exports as JSON or Prometheus text format (and drives the
``--metrics`` option of ``python -m repro.tools run``).

Tier 2 (sampled tracing) lives in :mod:`repro.analysis.trace`; tier 3
(wall-clock engine profiling) is :meth:`repro.core.ring.Ring.profile`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import SimulationError

Labels = Tuple[Tuple[str, str], ...]

#: Prometheus metric name prefix for every exported sample.
PREFIX = "repro_"


@dataclass(frozen=True)
class Metric:
    """One metric family: a name, a kind, and its labelled samples."""

    name: str                 # without the ``repro_`` prefix
    kind: str                 # "counter" or "gauge"
    help: str
    samples: Tuple[Tuple[Labels, float], ...]


def _escape_help(text: str) -> str:
    """Escape HELP text per the text exposition format (version 0.0.4).

    HELP lines escape backslash and newline (no quote escaping — the
    text is not quoted).  Without this, a help string containing a
    newline splits the line and corrupts the whole scrape.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class MetricsSnapshot:
    """Immutable point-in-time aggregation of every registered counter."""

    def __init__(self, metrics: Iterable[Metric]):
        self.metrics: Tuple[Metric, ...] = tuple(metrics)

    def value(self, name: str, **labels: str) -> float:
        """Look one sample up by metric name and exact label set."""
        want: Labels = tuple(sorted(labels.items()))
        for metric in self.metrics:
            if metric.name != name:
                continue
            for sample_labels, value in metric.samples:
                if tuple(sorted(sample_labels)) == want:
                    return value
        raise KeyError(f"no sample {name}{labels or ''} in snapshot")

    def as_dict(self) -> Dict[str, object]:
        """Nested plain-data form: unlabelled metrics map straight to
        their value, labelled ones to a ``{label-string: value}`` dict."""
        data: Dict[str, object] = {}
        for metric in self.metrics:
            if len(metric.samples) == 1 and not metric.samples[0][0]:
                data[metric.name] = metric.samples[0][1]
            else:
                data[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in labels): value
                    for labels, value in metric.samples
                }
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Render in the Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics:
            full = PREFIX + metric.name
            lines.append(f"# HELP {full} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {full} {metric.kind}")
            for labels, value in metric.samples:
                if labels:
                    body = ",".join(
                        f'{k}="{_escape_label(str(v))}"' for k, v in labels)
                    lines.append(f"{full}{{{body}}} {_format_value(value)}")
                else:
                    lines.append(f"{full} {_format_value(value)}")
        return "\n".join(lines) + "\n"


class MetricsRegistry:
    """Aggregates the live counters of a ring (and optionally its system).

    Build one with :meth:`of` from either a bare
    :class:`~repro.core.ring.Ring` or a complete
    :class:`~repro.host.system.RingSystem`; :meth:`collect` walks the
    components and returns a :class:`MetricsSnapshot`.  The registry holds
    only references — collecting is read-only and can be repeated.
    """

    def __init__(self, ring, controller=None):
        self.ring = ring
        self.controller = controller

    @classmethod
    def of(cls, target) -> "MetricsRegistry":
        """Adapt a Ring or a RingSystem (anything with ``.ring``)."""
        ring = getattr(target, "ring", target)
        if not hasattr(ring, "all_dnodes"):
            raise SimulationError(
                f"cannot collect metrics from {type(target).__name__}"
            )
        controller = getattr(target, "controller", None)
        return cls(ring, controller=controller)

    # ------------------------------------------------------------------

    def collect(self) -> MetricsSnapshot:
        metrics: List[Metric] = []
        metrics.extend(self._ring_metrics())
        metrics.extend(self._dnode_metrics())
        metrics.extend(self._switch_metrics())
        metrics.extend(self._fifo_metrics())
        metrics.extend(self._batch_metrics())
        metrics.extend(self._shard_metrics())
        metrics.extend(self._autotune_metrics())
        if self.controller is not None:
            metrics.extend(self._controller_metrics())
        return MetricsSnapshot(metrics)

    # ------------------------------------------------------------------

    def _ring_metrics(self) -> List[Metric]:
        ring = self.ring
        scalar = [
            ("ring_cycles_total", "counter",
             "Fabric clock cycles executed.", ring.cycles),
            ("ring_fifo_underflows_total", "counter",
             "FIFO reads/pops that found an empty queue.",
             ring.fifo_underflows),
            ("ring_plan_compiles_total", "counter",
             "Fast-path plans compiled.", ring.plan_compiles),
            ("ring_plan_invalidations_total", "counter",
             "Compiled plans dropped by reconfiguration.",
             ring.plan_invalidations),
            ("plan_cache_hits_total", "counter",
             "Compiled plans re-adopted from the fingerprint cache.",
             self._cache_counter("hits")),
            ("plan_cache_misses_total", "counter",
             "Fingerprint cache lookups that found no plan.",
             self._cache_counter("misses")),
            ("plan_cache_evictions_total", "counter",
             "Cached plans evicted by the LRU capacity bound.",
             self._cache_counter("evictions")),
            ("macro_step_cycles_total", "counter",
             "Cycles executed inside fused macro-step kernels.",
             getattr(ring, "macro_cycles", 0)),
            ("native_cycles_total", "counter",
             "Cycles executed inside time-vectorized native kernels.",
             getattr(ring, "native_cycles", 0)),
            ("native_plan_compiles_total", "counter",
             "Native plans compiled (cache hits re-adopt for free).",
             getattr(ring, "native_compiles", 0)),
            ("native_fallback_cycles_total", "counter",
             "Cycles a native-backend ring handed down the fall-back "
             "ladder (ineligible config, remainder, unsafe FIFO "
             "window).",
             getattr(ring, "native_fallback_cycles", 0)),
            ("ring_config_writes_total", "counter",
             "Configuration words written through ConfigMemory.",
             ring.config.writes),
            ("ring_instructions_total", "counter",
             "Non-NOP microinstructions executed fabric-wide.",
             ring.instructions_executed),
            ("ring_arithmetic_ops_total", "counter",
             "Elementary operator activations (MAC counts as 2).",
             ring.arithmetic_ops_executed),
            ("ring_utilization", "gauge",
             "Fraction of Dnode-cycles that executed a real instruction.",
             ring.utilization()),
            ("faults_injected_total", "counter",
             "Faults injected into the fabric by the robustness layer.",
             getattr(ring, "faults_injected", 0)),
            ("checkpoints_total", "counter",
             "Full-state checkpoints captured.",
             getattr(ring, "checkpoints", 0)),
            ("rollbacks_total", "counter",
             "Checkpoint restores triggered by detection or rollback.",
             getattr(ring, "rollbacks", 0)),
            ("recovery_cycles_total", "counter",
             "Cycles re-executed during rollback-replay recovery.",
             getattr(ring, "recovery_cycles", 0)),
        ]
        return [Metric(name, kind, help_, (((), float(value)),))
                for name, kind, help_, value in scalar]

    def _cache_counter(self, attr: str) -> int:
        """One plan-cache counter summed over the ring's cache and the
        batch engine's kernel cache (both key by the same fingerprints)."""
        total = 0
        cache = getattr(self.ring, "plan_cache", None)
        if cache is not None:
            total += getattr(cache, attr)
        engine = getattr(self.ring, "_batch_engine", None)
        if engine is not None:
            total += getattr(engine.plan_cache, attr)
        return total

    def _dnode_metrics(self) -> List[Metric]:
        dnodes = self.ring.all_dnodes()
        fields = [
            ("dnode_cycles_total", "cycles", "Cycles this Dnode evaluated."),
            ("dnode_instructions_total", "instructions",
             "Non-NOP microinstructions this Dnode executed."),
            ("dnode_arithmetic_ops_total", "arithmetic_ops",
             "Elementary operator activations of this Dnode."),
            ("dnode_multiplies_total", "multiplies",
             "Hardwired-multiplier activations of this Dnode."),
            ("dnode_fifo_pops_total", "fifo_pops",
             "Words actually dequeued from this Dnode's input FIFOs."),
        ]
        metrics = []
        for name, attr, help_ in fields:
            samples = tuple(
                (((("dnode", dn.name),)), float(getattr(dn.stats, attr)))
                for dn in dnodes
            )
            metrics.append(Metric(name, "counter", help_, samples))
        return metrics

    def _switch_metrics(self) -> List[Metric]:
        ring = self.ring
        samples = tuple(
            ((("switch", str(k)),),
             float(ring.switch(k).config.writes))
            for k in range(ring.geometry.layers)
        )
        return [Metric(
            "switch_route_writes_total", "counter",
            "Routing-table writes applied to this switch.", samples)]

    def _fifo_metrics(self) -> List[Metric]:
        ring = self.ring

        def labels(key) -> Labels:
            layer, position, channel = key
            return (("dnode", f"D{layer}.{position}"),
                    ("channel", str(channel)))

        depth = tuple(
            (labels(key), float(len(queue)))
            for key, queue in sorted(ring._fifos.items()) if queue
        )
        high = tuple(
            (labels(key), float(mark))
            for key, mark in sorted(ring.fifo_high_water.items())
        )
        return [
            Metric("fifo_depth", "gauge",
                   "Current input-FIFO occupancy (non-empty queues only).",
                   depth),
            Metric("fifo_depth_high_water", "gauge",
                   "Deepest occupancy each input FIFO has reached.", high),
        ]

    def _batch_metrics(self) -> List[Metric]:
        """Per-lane counters of the batch backend (empty when inactive).

        The scalar ``ring_*`` metrics always mirror lane 0 (that is the
        batch engine's writeback contract); these add the cross-lane
        view: per-lane samples labelled ``lane=<i>`` plus an aggregate
        sum over every lane, so multi-stream serving dashboards see both
        the distribution and the total.
        """
        engine = (getattr(self.ring, "_batch_engine", None)
                  or getattr(self.ring, "_shard_engine", None))
        if engine is None:
            return []
        lanes = engine.batch
        underflow_samples = tuple(
            ((("lane", str(lane)),), float(engine.lane_underflows[lane]))
            for lane in range(lanes)
        )
        pop_totals = [0] * lanes
        for counts in engine.lane_fifo_pops.values():
            for lane in range(lanes):
                pop_totals[lane] += int(counts[lane])
        pop_samples = tuple(
            ((("lane", str(lane)),), float(pop_totals[lane]))
            for lane in range(lanes)
        )
        scalar = [
            ("batch_lanes", "gauge",
             "Independent streams advanced per batch step.", lanes),
            ("batch_plan_compiles_total", "counter",
             "Batch kernel sets compiled.", engine.compiles),
            ("batch_plan_invalidations_total", "counter",
             "Batch kernel sets dropped by reconfiguration.",
             engine.invalidations),
            ("batch_fifo_underflows_total", "counter",
             "FIFO underflows summed across every lane.",
             float(engine.lane_underflows.sum())),
            ("batch_fifo_pops_total", "counter",
             "Words dequeued from input FIFOs summed across every lane.",
             float(sum(pop_totals))),
        ]
        metrics = [Metric(name, kind, help_, (((), float(value)),))
                   for name, kind, help_, value in scalar]
        metrics.append(Metric(
            "batch_lane_fifo_underflows_total", "counter",
            "FIFO underflows of one lane.", underflow_samples))
        metrics.append(Metric(
            "batch_lane_fifo_pops_total", "counter",
            "Words dequeued from input FIFOs of one lane.", pop_samples))
        return metrics

    def _shard_metrics(self) -> List[Metric]:
        """Worker-pool counters of the sharded backend (empty when
        inactive).

        The per-lane families above already cover a shard engine (its
        ``lane_underflows`` / ``lane_fifo_pops`` views are the shared
        blocks); these add the pool view: worker count and mode, control
        round-trips, configuration syncs and elastic reshards, plus each
        worker's lane span.
        """
        engine = getattr(self.ring, "_shard_engine", None)
        if engine is None:
            return []
        scalar = [
            ("shard_workers", "gauge",
             "Worker processes the lane axis is split across.",
             engine.workers),
            ("shard_workers_capped", "gauge",
             "Workers removed from the request by the core-count "
             "ceiling (oversubscription degrades instead of thrashing).",
             max(0, getattr(engine, "workers_requested", engine.workers)
                 - engine.workers)),
            ("shard_using_processes", "gauge",
             "1 when a real worker pool is live, 0 in the in-process "
             "fallback.", int(engine.using_processes)),
            ("shard_chunks_total", "counter",
             "Chunk run round-trips broadcast to the pool.",
             engine.chunks),
            ("shard_config_syncs_total", "counter",
             "Configuration planes broadcast after invalidations.",
             engine.syncs),
            ("shard_reshards_total", "counter",
             "Elastic worker-count migrations performed.",
             engine.reshards),
            ("shard_messages_total", "counter",
             "Control messages sent to workers.", engine.messages),
            ("shard_plan_compiles_total", "counter",
             "Kernel sets compiled per worker (lane-invariant, so every "
             "worker compiles the same plans).", engine.compiles),
            ("shard_plan_invalidations_total", "counter",
             "Pool-wide kernel invalidations by reconfiguration.",
             engine.invalidations),
        ]
        metrics = [Metric(name, kind, help_, (((), float(value)),))
                   for name, kind, help_, value in scalar]
        spans = getattr(engine, "_spans", [])
        if spans:
            samples = tuple(
                ((("worker", str(w)),), float(hi - lo))
                for w, (lo, hi) in enumerate(spans)
            )
            metrics.append(Metric(
                "shard_worker_lanes", "gauge",
                "Lanes owned by each shard worker.", samples))
        return metrics

    def _autotune_metrics(self) -> List[Metric]:
        """Compiler-autopilot counters (empty until a search/fuzz runs).

        The autotuner is process-wide (its memo cache spans rings), so
        these families describe the process's searches, not this
        specific ring — they appear on every registry's snapshot once
        :mod:`repro.compiler.autotune` has done any work.
        """
        import sys
        module = sys.modules.get("repro.compiler.autotune")
        if module is None:
            return []
        stats = module.STATS
        if not stats.touched:
            return []
        scalar = [
            ("autotune_searches_total", "counter",
             "Mapping-space searches started (memo hits included).",
             stats.searches),
            ("autotune_candidates_evaluated_total", "counter",
             "Candidate mappings compiled, verified and scored.",
             stats.candidates_evaluated),
            ("autotune_verifications_total", "counter",
             "Bit-identity checks run against the golden evaluator.",
             stats.verifications),
            ("autotune_verification_failures_total", "counter",
             "Candidates rejected by bit-identity or digest checks.",
             stats.verification_failures),
            ("autotune_cache_hits_total", "counter",
             "Searches answered from the best-known-mapping memo.",
             stats.cache_hits),
            ("autotune_cache_misses_total", "counter",
             "Searches that had to sweep the mapping space.",
             stats.cache_misses),
            ("autotune_search_ms_total", "counter",
             "Wall-clock milliseconds spent inside autotune_graph.",
             stats.search_ms_total),
            ("autotune_best_cycles_per_sec", "gauge",
             "Measured throughput of the most recent search winner.",
             stats.best_cycles_per_sec),
            ("autotune_fuzz_rounds_total", "counter",
             "Configuration-fuzzer rounds executed.", stats.fuzz_rounds),
            ("autotune_fuzz_candidates_total", "counter",
             "Fuzzer candidate mappings run across the engine matrix.",
             stats.fuzz_candidates),
            ("autotune_fuzz_mismatches_total", "counter",
             "Cross-engine output divergences found by the fuzzer.",
             stats.fuzz_mismatches),
        ]
        return [Metric(name, kind, help_, (((), float(value)),))
                for name, kind, help_, value in scalar]

    def _controller_metrics(self) -> List[Metric]:
        state = self.controller.state
        scalar = [
            ("controller_cycles_total", "Controller clock cycles.",
             state.cycles),
            ("controller_retired_total", "Instructions retired.",
             state.retired),
            ("controller_stalls_total",
             "Cycles lost to stalls (WAITI + empty-mailbox INW).",
             state.stalls),
            ("controller_wait_stalls_total",
             "Stall cycles spent inside WAITI delays.", state.wait_stalls),
            ("controller_mailbox_stalls_total",
             "Stall cycles spent retrying INW on an empty mailbox.",
             state.mailbox_stalls),
            ("controller_config_commands_total",
             "Configuration commands issued to the fabric.",
             state.config_commands),
            ("controller_bus_writes_total",
             "BUSW instructions driving the shared bus.", state.bus_writes),
        ]
        return [Metric(name, "counter", help_, (((), float(value)),))
                for name, help_, value in scalar]


def collect_metrics(target) -> MetricsSnapshot:
    """One-shot convenience: ``collect_metrics(ring_or_system)``."""
    return MetricsRegistry.of(target).collect()


__all__ = [
    "Metric",
    "MetricsRegistry",
    "MetricsSnapshot",
    "collect_metrics",
]
