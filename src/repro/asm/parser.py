"""Line-level parser for the two-level assembly language.

The source language has two section kinds introduced by directives:

``.ring [<plane-name>]``
    Fabric-configuration statements, grouped into one named configuration
    plane per section (the first plane defaults to the *initial* plane the
    loader applies before cycle 0):

    * ``dnode <layer>.<pos> [global|local]`` followed by indented
      microinstruction lines — one line for a global word, up to eight for
      a local program;
    * ``switch <k>`` followed by ``route <pos>.<port> <- <source>`` lines.

``.risc``
    Controller management code: one instruction per line, optional
    ``label:`` prefixes, plus the ``cfgword``/``cfgroute`` pseudo-ops that
    define named configuration-ROM entries.

Comments start with ``;`` and run to end of line.  This module only
recognises structure (sections, statements, labels); operand meaning is
resolved by :mod:`repro.asm.assembler`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import AssemblerError

_DNODE_HEAD_RE = re.compile(
    r"^dnode\s+(\d+)\.(\d+)\s*(global|local)?$", re.IGNORECASE
)
_SWITCH_HEAD_RE = re.compile(r"^switch\s+(\d+)$", re.IGNORECASE)
_ROUTE_RE = re.compile(
    r"^route\s+(\d+)\.([12])\s*<-\s*(.+)$", re.IGNORECASE
)
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")


@dataclass
class DnodeStmt:
    """A ``dnode L.P`` block with its microinstruction lines."""

    layer: int
    position: int
    mode: str            # "global" or "local"
    ops: List[str] = field(default_factory=list)       # raw op text
    op_lines: List[int] = field(default_factory=list)  # source lines
    line: int = 0


@dataclass
class RouteStmt:
    """A single ``route pos.port <- source`` statement."""

    switch: int
    position: int
    port: int
    source_text: str
    line: int = 0


@dataclass
class RingSection:
    """One ``.ring`` section (= one configuration plane)."""

    name: str
    dnodes: List[DnodeStmt] = field(default_factory=list)
    routes: List[RouteStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class RiscStmt:
    """One controller statement with optional label(s)."""

    labels: List[str]
    mnemonic: str
    operands: List[str]
    line: int = 0


@dataclass
class ProgramSource:
    """Parsed two-level source: ring planes + controller code."""

    ring_sections: List[RingSection] = field(default_factory=list)
    risc_statements: List[RiscStmt] = field(default_factory=list)


def _strip_comment(line: str) -> str:
    index = line.find(";")
    return line if index < 0 else line[:index]


def _split_operands(rest: str) -> List[str]:
    """Split an operand string on top-level commas.

    Commas inside parentheses or square brackets do not split: brackets
    delimit inline configuration-word operands (``cfgdi d0.0, [mul out,
    in1, #2]``), the syntax the disassembler emits, so a disassembled
    ``.risc`` listing reassembles without a name table.
    """
    operands = []
    depth = 0
    current = []
    for ch in rest:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [op for op in operands if op]


def parse_source(text: str) -> ProgramSource:
    """Parse assembler source text into its structural form.

    Raises:
        AssemblerError: with the offending line number on any structural
            error (statement outside a section, bad headers, ...).
    """
    source = ProgramSource()
    section: Optional[str] = None          # "ring" | "risc"
    ring: Optional[RingSection] = None
    dnode: Optional[DnodeStmt] = None
    pending_labels: List[str] = []
    ring_count = 0

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split()
            directive = parts[0].lower()
            if directive == ".ring":
                if pending_labels:
                    raise AssemblerError(
                        f"label(s) {pending_labels} before section end",
                        lineno,
                    )
                name = parts[1] if len(parts) > 1 else f"plane{ring_count}"
                ring = RingSection(name=name, line=lineno)
                source.ring_sections.append(ring)
                section = "ring"
                dnode = None
                ring_count += 1
            elif directive == ".risc":
                section = "risc"
                ring = None
                dnode = None
            else:
                raise AssemblerError(f"unknown directive {directive!r}",
                                     lineno)
            continue

        if section == "ring":
            assert ring is not None
            head = _DNODE_HEAD_RE.match(line)
            if head:
                dnode = DnodeStmt(
                    layer=int(head.group(1)),
                    position=int(head.group(2)),
                    mode=(head.group(3) or "global").lower(),
                    line=lineno,
                )
                ring.dnodes.append(dnode)
                continue
            if _SWITCH_HEAD_RE.match(line):
                dnode = None
                ring.routes.append(
                    RouteStmt(int(_SWITCH_HEAD_RE.match(line).group(1)),
                              -1, -1, "", lineno)
                )
                continue
            route = _ROUTE_RE.match(line)
            if route:
                # attach to the most recent `switch` header
                header = _last_switch_header(ring, lineno)
                ring.routes.append(
                    RouteStmt(header, int(route.group(1)),
                              int(route.group(2)),
                              route.group(3).strip(), lineno)
                )
                continue
            if dnode is not None:
                dnode.ops.append(line)
                dnode.op_lines.append(lineno)
                continue
            raise AssemblerError(
                f"unexpected statement in .ring section: {line!r}", lineno
            )

        if section == "risc":
            body = line
            labels: List[str] = list(pending_labels)
            pending_labels = []
            while True:
                match = _LABEL_RE.match(body)
                if not match:
                    break
                labels.append(match.group(1))
                body = match.group(2).strip()
            if not body:
                pending_labels = labels
                continue
            parts = body.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            source.risc_statements.append(
                RiscStmt(labels, mnemonic, operands, lineno)
            )
            continue

        raise AssemblerError(
            f"statement before any .ring/.risc section: {line!r}", lineno
        )

    if pending_labels:
        raise AssemblerError(
            f"dangling label(s) {pending_labels} at end of file"
        )
    return source


def _last_switch_header(ring: RingSection, lineno: int) -> int:
    """Find the switch index of the most recent ``switch`` header marker."""
    for stmt in reversed(ring.routes):
        if stmt.position == -1:  # header marker
            return stmt.switch
    raise AssemblerError("route statement before any `switch` header", lineno)
