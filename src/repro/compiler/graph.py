"""Dataflow-graph intermediate representation.

A graph describes a streaming computation: every cycle one sample enters
per input stream and every operator node fires once.  Node kinds:

* ``INPUT`` — a host stream channel (one 16-bit word per cycle);
* ``CONST`` — a compile-time constant (becomes a microword immediate);
* ``OP`` — one Dnode operation (any unary/binary :class:`Opcode`);
* ``DELAY`` — the sample stream delayed by *n* cycles (compiled onto the
  switches' feedback pipelines, or pass chains when deeper than the
  pipeline depth);
* ``OUTPUT`` markers select which node values the host collects.

The :meth:`DataflowGraph.evaluate` golden evaluator runs the graph in
pure Python with the exact fabric arithmetic, so the compiler's output
can be verified bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import word
from repro.core.alu import execute_op
from repro.core.isa import Opcode, is_binary_op
from repro.errors import ReproError


class CompileError(ReproError):
    """Graph is invalid or cannot be mapped onto the requested ring."""


class NodeKind(enum.Enum):
    INPUT = "input"
    CONST = "const"
    OP = "op"
    DELAY = "delay"


@dataclass(frozen=True)
class Node:
    """One graph node; identity is the (graph-unique) ``index``."""

    index: int
    kind: NodeKind
    op: Optional[Opcode] = None       # OP nodes
    operands: Tuple[int, ...] = ()    # indices of predecessor nodes
    channel: int = 0                  # INPUT nodes
    value: int = 0                    # CONST nodes (raw 16-bit)
    amount: int = 0                   # DELAY nodes

    def __str__(self) -> str:
        if self.kind is NodeKind.INPUT:
            return f"n{self.index}=input{self.channel}"
        if self.kind is NodeKind.CONST:
            return f"n{self.index}=#{word.to_signed(self.value)}"
        if self.kind is NodeKind.DELAY:
            return f"n{self.index}=delay(n{self.operands[0]}, {self.amount})"
        args = ", ".join(f"n{i}" for i in self.operands)
        return f"n{self.index}={self.op.name.lower()}({args})"


#: Opcodes the compiler accepts for OP nodes (everything computable
#: without register state: accumulating MAC/MACS are excluded).
SUPPORTED_OPS = frozenset(
    op for op in Opcode
    if op not in (Opcode.NOP, Opcode.MAC, Opcode.MACS,
                  Opcode.MADD, Opcode.MSUB)
)


class DataflowGraph:
    """Builder + container for a streaming dataflow graph."""

    def __init__(self):
        self._nodes: List[Node] = []
        self.outputs: List[int] = []

    # -- construction ---------------------------------------------------

    def _add(self, node: Node) -> int:
        self._nodes.append(node)
        return node.index

    def input(self, channel: int) -> int:
        """A host input stream on direct-port *channel*."""
        if channel < 0:
            raise CompileError(f"channel must be >= 0, got {channel}")
        return self._add(Node(len(self._nodes), NodeKind.INPUT,
                              channel=channel))

    def const(self, value: int) -> int:
        """A compile-time constant (16-bit two's complement)."""
        return self._add(Node(len(self._nodes), NodeKind.CONST,
                              value=word.from_signed(int(value))))

    def op(self, opcode, a: int, b: Optional[int] = None) -> int:
        """An operator node; *opcode* is an Opcode or its lowercase name."""
        if isinstance(opcode, str):
            try:
                opcode = Opcode[opcode.upper()]
            except KeyError:
                raise CompileError(f"unknown opcode {opcode!r}")
        if opcode not in SUPPORTED_OPS:
            raise CompileError(
                f"{opcode.name} is not compilable (stateful or NOP)"
            )
        operands = [self._check_ref(a)]
        if is_binary_op(opcode):
            if b is None:
                raise CompileError(f"{opcode.name} needs two operands")
            operands.append(self._check_ref(b))
        elif b is not None:
            raise CompileError(f"{opcode.name} takes one operand")
        return self._add(Node(len(self._nodes), NodeKind.OP, op=opcode,
                              operands=tuple(operands)))

    def delay(self, source: int, amount: int) -> int:
        """The *source* stream delayed by *amount* cycles (>= 1)."""
        if amount < 1:
            raise CompileError(f"delay must be >= 1, got {amount}")
        return self._add(Node(len(self._nodes), NodeKind.DELAY,
                              operands=(self._check_ref(source),),
                              amount=amount))

    def output(self, node: int) -> int:
        """Mark *node* as an observed output; returns the node index."""
        self._check_ref(node)
        self.outputs.append(node)
        return node

    def _check_ref(self, index: int) -> int:
        if not isinstance(index, int) or not 0 <= index < len(self._nodes):
            raise CompileError(f"unknown node reference {index!r}")
        return index

    # -- access -----------------------------------------------------------

    def node(self, index: int) -> Node:
        return self._nodes[self._check_ref(index)]

    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def input_channels(self) -> List[int]:
        """All distinct input channels, sorted."""
        return sorted({n.channel for n in self._nodes
                       if n.kind is NodeKind.INPUT})

    def validate(self) -> None:
        """Check the graph is runnable: has outputs, no dangling refs."""
        if not self.outputs:
            raise CompileError("graph has no outputs")
        if not any(n.kind is NodeKind.INPUT for n in self._nodes):
            raise CompileError("graph has no input streams")

    def fingerprint(self) -> str:
        """Canonical content hash of the graph (nodes + outputs).

        Two graphs built by the same sequence of construction calls hash
        identically, whatever the builder objects' identities — the
        graph half of the autotuner's memo key (graph fingerprint,
        fabric shape, backend availability).
        """
        import hashlib

        parts = []
        for n in self._nodes:
            parts.append((n.index, n.kind.value,
                          n.op.name if n.op is not None else "",
                          n.operands, n.channel, n.value, n.amount))
        parts.append(("outputs", tuple(self.outputs)))
        return hashlib.sha256(repr(parts).encode()).hexdigest()

    # -- golden evaluation ------------------------------------------------

    def evaluate(self, streams: Dict[int, Sequence[int]]) -> Dict[int, List[int]]:
        """Run the graph in pure Python on the given input streams.

        Args:
            streams: channel -> list of signed samples.  All streams must
                share one length; shorter cycles read 0 (like idle ports).

        Returns:
            node index -> list of signed output samples (one per cycle),
            for every node marked as an output.
        """
        self.validate()
        length = max((len(v) for v in streams.values()), default=0)
        history: Dict[int, List[int]] = {n.index: [] for n in self._nodes}
        results: Dict[int, List[int]] = {i: [] for i in set(self.outputs)}
        for t in range(length):
            for n in self._nodes:
                if n.kind is NodeKind.INPUT:
                    stream = streams.get(n.channel, ())
                    raw = word.from_signed(int(stream[t])) \
                        if t < len(stream) else 0
                elif n.kind is NodeKind.CONST:
                    raw = n.value
                elif n.kind is NodeKind.DELAY:
                    src = history[n.operands[0]]
                    raw = src[t - n.amount] if t >= n.amount else 0
                else:
                    vals = [history[i][t] for i in n.operands]
                    a = vals[0]
                    b = vals[1] if len(vals) > 1 else 0
                    raw = execute_op(n.op, a, b)
                history[n.index].append(raw)
            for out in results:
                results[out].append(word.to_signed(history[out][t]))
        return results

    def __len__(self) -> int:
        return len(self._nodes)

    def __str__(self) -> str:
        lines = [str(n) for n in self._nodes]
        lines.append("outputs: " + ", ".join(f"n{i}" for i in self.outputs))
        return "\n".join(lines)
