"""Compiler autopilot: search, verification, memoization, fuzzing, CLI.

The tentpole contract pinned here:

* every candidate mapping is *measured* (never modelled) and must
  reproduce the golden evaluator bit-for-bit before it can win;
* the winner is at least as fast as the default ``compile_graph``
  emission (the baseline is itself a candidate);
* a repeat submission hits the (graph fingerprint, fabric shape,
  backend availability) memo and pays no search;
* the configuration fuzzer drives mutated graphs across every mapping
  variant and every execution engine, bit-comparing all of them;
* the ``autotune_*`` metric families surface the whole story.
"""

import json

import pytest

from repro.compiler.autotune import (
    ENGINE_VARIANTS,
    MEMO,
    STATS,
    Mapping,
    autotune_graph,
    fuzz_conformance,
    memo_key,
    reset_autotune_state,
)
from repro.compiler.codegen import MODES, compile_graph
from repro.compiler.graph import CompileError, DataflowGraph
from repro.compiler.library import (
    GRAPH_LIBRARY,
    build_graph,
    library_streams,
)
from repro.compiler.schedule import LANE_ORDERS, schedule
from repro.core.ring import Ring, RingGeometry

#: Small search budget: candidate ranking may wobble at this size, but
#: every property asserted here (verification, memoization, speedup
#: floor vs baseline) is budget-independent.
FAST = dict(score_cycles=200, repeats=1, verify_samples=12)


@pytest.fixture(autouse=True)
def _fresh_autotuner():
    """Every test starts with an empty memo and zeroed counters."""
    reset_autotune_state()
    yield
    reset_autotune_state()


class TestMapping:
    def test_describe_names_every_axis(self):
        text = Mapping(mode="hybrid", lane_order="delay-first",
                       backend="native", macro_step=64,
                       plan_cache=2).describe()
        assert text == "hybrid/delay-first/native+macro64/cache2"

    def test_ring_kwargs_scalar_engine(self):
        kwargs = Mapping(backend="fastpath", macro_step=64).ring_kwargs()
        assert kwargs == {"backend": "fastpath", "plan_cache": 8,
                          "macro_step": 64}

    def test_ring_kwargs_lane_engine_gets_batch_size(self):
        kwargs = Mapping(backend="batch").ring_kwargs()
        assert kwargs["batch_size"] == 1

    def test_every_engine_variant_constructs_a_ring(self):
        for backend, macro_step, plan_cache in ENGINE_VARIANTS:
            mapping = Mapping(backend=backend, macro_step=macro_step,
                              plan_cache=plan_cache)
            ring = Ring(RingGeometry(layers=2, width=2),
                        **mapping.ring_kwargs())
            assert ring.backend == backend


class TestSearch:
    def test_winner_beats_or_matches_baseline(self):
        result = autotune_graph(build_graph("envelope"), **FAST)
        assert result.cycles_per_second >= \
            result.baseline_cycles_per_second
        assert result.speedup >= 1.0
        assert not result.cache_hit

    def test_every_winning_candidate_is_verified(self):
        result = autotune_graph(build_graph("dct4"), **FAST)
        ranked = [c for c in result.candidates if c.verified]
        assert ranked, "at least the baseline must verify"
        assert result.mapping in {c.mapping for c in ranked}
        assert STATS.verifications >= len(result.candidates)

    def test_winner_output_bit_identical_to_golden(self):
        graph = build_graph("fir8")
        result = autotune_graph(graph, **FAST)
        streams = library_streams(graph, 20, seed=77)
        assert result.program.run(streams) == graph.evaluate(streams)

    def test_search_covers_placements_and_engines(self):
        result = autotune_graph(build_graph("envelope"), **FAST)
        mappings = {c.mapping for c in result.candidates}
        assert {m.mode for m in mappings} == set(MODES)
        assert len({(m.backend, m.macro_step) for m in mappings}) >= 4

    def test_report_renders_ranked_table(self):
        result = autotune_graph(build_graph("envelope"), **FAST)
        report = result.report()
        assert "wins" in report
        assert result.mapping.describe() in report

    def test_geometry_constraint_respected(self):
        geometry = RingGeometry(layers=4, width=6)
        result = autotune_graph(build_graph("dct4"), geometry=geometry,
                                **FAST)
        assert result.program.geometry == geometry

    def test_unmappable_graph_raises(self):
        g = DataflowGraph()
        x = g.input(0)
        # 5-cycle delay exceeds the feedback-pipeline depth everywhere.
        g.output(g.op("add", x, g.delay(g.op("mov", x), 5)))
        with pytest.raises(CompileError):
            autotune_graph(g, **FAST)


class TestMemo:
    def test_resubmission_hits_the_memo(self):
        first = autotune_graph(build_graph("envelope"), **FAST)
        second = autotune_graph(build_graph("envelope"), **FAST)
        assert not first.cache_hit and second.cache_hit
        assert second.mapping == first.mapping
        assert second.candidates == []  # no search ran
        assert STATS.cache_hits == 1 and STATS.cache_misses == 1
        assert second.search_ms < first.search_ms

    def test_memo_key_separates_graphs_and_shapes(self):
        g1, g2 = build_graph("fir8"), build_graph("dct4")
        assert memo_key(g1, None) != memo_key(g2, None)
        assert memo_key(g1, None) != \
            memo_key(g1, RingGeometry(layers=12, width=4))

    def test_identical_rebuilds_share_one_key(self):
        assert memo_key(build_graph("fir8"), None) == \
            memo_key(build_graph("fir8"), None)

    def test_memo_false_always_searches(self):
        autotune_graph(build_graph("envelope"), memo=False, **FAST)
        result = autotune_graph(build_graph("envelope"), memo=False,
                                **FAST)
        assert not result.cache_hit
        assert len(MEMO) == 0

    def test_memoized_program_still_runs_golden(self):
        graph = build_graph("cmul")
        autotune_graph(graph, **FAST)
        hit = autotune_graph(build_graph("cmul"), **FAST)
        assert hit.cache_hit
        streams = library_streams(graph, 10)
        assert hit.program.run(streams) == graph.evaluate(streams)


class TestCompileGraphIntegration:
    def test_autotune_flag_returns_tuned_program(self):
        program = compile_graph(build_graph("envelope"), autotune=True,
                                **FAST)
        assert program.ring_kwargs  # engine choice baked in
        streams = library_streams(build_graph("envelope"), 8)
        golden = build_graph("envelope").evaluate(streams)
        assert program.run(streams) == golden

    def test_stray_autotune_options_rejected(self):
        with pytest.raises(TypeError):
            compile_graph(build_graph("envelope"), score_cycles=100)

    def test_unknown_mode_rejected(self):
        with pytest.raises(CompileError):
            compile_graph(build_graph("envelope"), mode="turbo")

    @pytest.mark.parametrize("mode", MODES)
    def test_all_modes_bit_identical(self, mode):
        graph = build_graph("dct4")
        streams = library_streams(graph, 10)
        program = compile_graph(graph, mode=mode)
        assert program.run(streams) == graph.evaluate(streams)

    def test_local_mode_emits_local_dnodes(self):
        asm = compile_graph(build_graph("envelope"),
                            mode="local").to_assembly()
        assert " local" in asm and " global" not in asm

    def test_hybrid_mode_localises_pass_nodes_only(self):
        program = compile_graph(build_graph("fir8"), mode="hybrid")
        local = program.local_addrs()
        assert local, "fir8 has relay pass nodes"
        passes = {(p.level - 1, p.lane) for p in program.placement.phys
                  if p.graph_node is None}
        assert local == passes

    def test_assembly_round_trip_local_mode(self):
        from repro.asm import assemble
        program = compile_graph(build_graph("envelope"), mode="local")
        obj = assemble(program.to_assembly(),
                       layers=program.geometry.layers,
                       width=program.geometry.width)
        assert obj.planes

    @pytest.mark.parametrize("lane_order", LANE_ORDERS)
    def test_all_lane_orders_bit_identical(self, lane_order):
        graph = build_graph("envelope")
        streams = library_streams(graph, 10)
        program = compile_graph(graph, lane_order=lane_order)
        assert program.run(streams) == graph.evaluate(streams)

    def test_unknown_lane_order_rejected(self):
        with pytest.raises(CompileError):
            schedule(build_graph("envelope"), lane_order="sideways")

    def test_auto_widen_fits_wide_graphs(self):
        # fir8 needs width 3: the default geometry must widen past 2.
        program = compile_graph(build_graph("fir8"))
        assert program.geometry.width == 3


class TestLibrary:
    def test_catalogue(self):
        assert {"fir8", "dct4", "cmul", "envelope"} <= set(GRAPH_LIBRARY)
        assert {"cordic4", "cordic_vec4", "nco_wave", "up2", "down2",
                "up3", "down3", "vca", "mixer4", "chorus6", "cmul4",
                "cmag"} <= set(GRAPH_LIBRARY)

    def test_unknown_name_raises(self):
        with pytest.raises(CompileError):
            build_graph("fft1024")

    @pytest.mark.parametrize("name", sorted(GRAPH_LIBRARY))
    def test_every_kernel_compiles_and_matches_golden(self, name):
        graph = build_graph(name)
        streams = library_streams(graph, 16)
        assert compile_graph(graph).run(streams) == \
            graph.evaluate(streams)

    def test_streams_deterministic_and_per_channel(self):
        graph = build_graph("cmul")
        a = library_streams(graph, 8, seed=5)
        b = library_streams(graph, 8, seed=5)
        assert a == b
        assert set(a) == {0, 1}
        assert a[0] != a[1]


class TestFuzzer:
    def test_engines_bit_identical_under_fuzzing(self):
        report = fuzz_conformance(rounds=6, seed=2002, samples=6)
        assert report.ok, report.mismatches
        assert report.candidates_checked > 0
        assert report.coverage > 0

    def test_deterministic_for_a_seed(self):
        a = fuzz_conformance(rounds=4, seed=11, samples=5)
        b = fuzz_conformance(rounds=4, seed=11, samples=5)
        assert (a.candidates_checked, a.coverage, a.corpus_size,
                a.rejected) == (b.candidates_checked, b.coverage,
                                b.corpus_size, b.rejected)

    def test_summary_carries_the_verdict(self):
        report = fuzz_conformance(rounds=3, seed=7, samples=5)
        assert "bit-identical" in report.summary()
        assert STATS.fuzz_rounds == 3


class TestMetrics:
    def test_families_absent_until_touched(self):
        from repro.analysis.metrics import collect_metrics
        ring = Ring(RingGeometry(layers=2, width=2))
        data = json.loads(collect_metrics(ring).to_json())
        assert "autotune_searches_total" not in data

    def test_search_and_fuzz_counters_surface(self):
        from repro.analysis.metrics import collect_metrics
        result = autotune_graph(build_graph("envelope"), **FAST)
        autotune_graph(build_graph("envelope"), **FAST)
        fuzz_conformance(rounds=2, seed=3, samples=5)
        ring = Ring(RingGeometry(layers=2, width=2))
        data = json.loads(collect_metrics(ring).to_json())
        assert data["autotune_searches_total"] == 2
        assert data["autotune_cache_hits_total"] == 1
        assert data["autotune_cache_misses_total"] == 1
        assert data["autotune_candidates_evaluated_total"] == \
            len(result.candidates)
        assert data["autotune_best_cycles_per_sec"] > 0
        assert data["autotune_search_ms_total"] > 0
        assert data["autotune_fuzz_rounds_total"] == 2
        assert data["autotune_fuzz_mismatches_total"] == 0

    def test_prometheus_export_includes_families(self):
        from repro.analysis.metrics import collect_metrics
        autotune_graph(build_graph("envelope"), **FAST)
        ring = Ring(RingGeometry(layers=2, width=2))
        text = collect_metrics(ring).to_prometheus()
        assert "repro_autotune_searches_total" in text


class TestCli:
    def test_list_names_the_library(self, capsys):
        from repro.tools.__main__ import main
        assert main(["autotune", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fir8" in out and "dct4" in out

    def test_json_verdict(self, capsys):
        from repro.tools.__main__ import main
        code = main(["autotune", "envelope", "--cycles", "200",
                     "--repeats", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"] == "envelope"
        assert payload["speedup"] >= 1.0
        assert payload["cache_hit"] is False

    def test_table_output_with_fuzz_leg(self, capsys):
        from repro.tools.__main__ import main
        code = main(["autotune", "envelope", "--cycles", "200",
                     "--repeats", "1", "--no-memo", "--fuzz", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wins" in out
        assert "fuzz: 2 rounds" in out

    def test_graph_required_without_list(self, capsys):
        from repro.tools.__main__ import main
        assert main(["autotune"]) == 1
        assert "library graph" in capsys.readouterr().err

    def test_unknown_graph_fails_cleanly(self, capsys):
        from repro.tools.__main__ import main
        assert main(["autotune", "fft1024"]) == 1
        assert "unknown library graph" in capsys.readouterr().err


class TestFarmSubmitGraph:
    def _run(self, coro):
        import asyncio
        return asyncio.run(coro)

    def test_graph_submission_matches_golden(self):
        from repro.farm import RingFarm

        graph = build_graph("dct4")
        streams = library_streams(graph, 10)
        golden = graph.evaluate(streams)

        async def scenario():
            async with RingFarm(workers=1, use_processes=False) as farm:
                return await farm.submit_graph("t0", graph, streams,
                                               **FAST)

        result, outputs = self._run(scenario())
        assert outputs == golden
        assert result.cycles_run == 10 + 4  # length + dct4 latency

    def test_resubmission_is_memoized(self):
        from repro.farm import RingFarm

        graph = build_graph("envelope")
        streams = library_streams(graph, 8)
        golden = graph.evaluate(streams)

        async def scenario():
            async with RingFarm(workers=1, use_processes=False) as farm:
                await farm.submit_graph("t0", graph, streams, **FAST)
                return await farm.submit_graph(
                    "t1", build_graph("envelope"), streams, **FAST)

        _, outputs = self._run(scenario())
        assert outputs == golden
        assert STATS.cache_hits == 1

    def test_untuned_submission_uses_default_mapping(self):
        from repro.farm import RingFarm

        graph = build_graph("cmul")
        streams = library_streams(graph, 6)

        async def scenario():
            async with RingFarm(workers=1, use_processes=False) as farm:
                return await farm.submit_graph("t0", graph, streams,
                                               autotune=False)

        _, outputs = self._run(scenario())
        assert outputs == graph.evaluate(streams)
        assert STATS.searches == 0


class TestScenarioRecipeTuning:
    """The scenario library feeds the autopilot: directed speedup +
    memoization cases on the new recipes, and the fuzz corpus seeded
    from :data:`GRAPH_LIBRARY`."""

    @pytest.mark.parametrize("name", ["mixer4", "up2"])
    def test_finds_fast_mapping_and_memoizes(self, name):
        graph = build_graph(name)
        result = autotune_graph(graph, **FAST)
        assert not result.cache_hit
        # The macro/native engine variants leave the per-cycle default
        # far behind on these shallow streaming graphs.
        assert result.speedup >= 1.5
        # Winner reproduced the golden evaluator before being adopted.
        streams = library_streams(graph, 10)
        assert result.program.run(streams) == graph.evaluate(streams)
        # A repeat submission of a fresh but identical graph is a memo
        # hit with the identical winning mapping.
        again = autotune_graph(build_graph(name), **FAST)
        assert again.cache_hit
        assert again.mapping == result.mapping
        assert STATS.searches == 2 and STATS.cache_hits == 1

    def test_scenario_graphs_registered(self):
        for name in ("cordic4", "cordic_vec4", "nco_wave", "up2",
                     "down2", "up3", "down3", "vca", "mixer4",
                     "chorus6", "cmul4", "cmag"):
            graph = build_graph(name)
            streams = library_streams(graph, 6)
            assert graph.evaluate(streams)

    def test_fuzz_corpus_seeded_from_library(self):
        from repro.compiler.autotune import (_genome_from_graph,
                                             _library_corpus)

        seeds = _library_corpus(max_nodes=28)
        # Every small library recipe contributes one genome; the CORDIC
        # unrolls (>28 nodes) are skipped by design.
        assert len(seeds) >= 10
        for genome in seeds:
            graph = genome.build()
            assert len(graph.nodes()) <= 28
            graph.evaluate(library_streams(graph, 4))
        # Round trip: a re-expressed graph preserves node structure.
        original = build_graph("up2")
        rebuilt = _genome_from_graph(original).build()
        assert [(n.kind, n.op) for n in rebuilt.nodes()] == \
            [(n.kind, n.op) for n in original.nodes()]

    def test_fuzz_campaign_with_seeded_corpus_is_green(self):
        report = fuzz_conformance(rounds=6, seed=11, samples=8)
        assert report.ok, report.mismatches
        assert report.corpus_size >= 14
