"""Native macro-kernel tier throughput on the steady-state Ring-16.

The tier's perf claim: once a steady-state window is compiled to a
time-vectorized NumPy program, advancing T cycles costs a *fixed*
number of array operations, so cycles/s should leave the per-cycle
engines behind by an order of magnitude on plan-friendly fabrics.  The
acceptance floor is 5x the scalar fast path on a Ring-16 feed-forward
MADD chain (measured ratios are far higher; 5x keeps CI robust), with
the macro-step engine included in the sweep for context.

Results land in ``BENCH_native.json`` so CI archives a perf data point
per PR.  Run with ``pytest -s benchmarks/test_native_throughput.py``
for the table.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core import nativepath
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.snapshot import state_digest
from repro.core.switch import PortSource

#: Acceptance floor: native cycles/s over the scalar fast path on the
#: steady-state Ring-16 chain.
TARGET_NATIVE_SPEEDUP = 5.0

#: Cycles per timed run and timing repeats (best-of).
CYCLES = 200_000
REPEATS = 3

#: Where the recorded numbers land (repo root, picked up by CI).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_native.json"

BUS = 7


def _ring16(**kwargs) -> Ring:
    """Ring-16 feed-forward MADD chain: layer 0 scales the bus word,
    layers 1..7 multiply-accumulate the upstream value against a
    2-cycle-old feedback tap — every Dnode busy, no ring-wrap cycle,
    so the configuration is native-eligible at period 1."""
    ring = Ring(RingGeometry.ring(16), **kwargs)
    width = ring.geometry.width
    for p in range(width):
        ring.config.write_microword(0, p, MicroWord(
            Opcode.MUL, Source.BUS, Source.IMM, Dest.OUT, imm=3 + p))
    for k in range(1, ring.geometry.layers):
        for p in range(width):
            ring.config.write_switch_route(k, p, 1, PortSource.up(p))
            ring.config.write_microword(k, p, MicroWord(
                Opcode.MADD, Source.IN1, Source.IN2, Dest.OUT, imm=2))
            ring.config.write_switch_route(
                k, p, 2, PortSource.rp(2, p + 1))
    return ring


def _cycles_per_second(ring: Ring, cycles: int = CYCLES,
                       repeats: int = REPEATS) -> float:
    ring.run(4, bus=BUS)  # settle + compile outside the timed region
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles, bus=BUS)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def test_native_throughput_vs_per_cycle_engines():
    engines = {
        "fastpath": _ring16(),
        "macro K=64": _ring16(macro_step=64),
        "native": _ring16(backend="native"),
    }
    rates = {name: _cycles_per_second(ring)
             for name, ring in engines.items()}

    native_ring = engines["native"]
    assert native_ring.native_cycles > 0, "native tier must engage"
    assert native_ring.native_fallback_cycles == 0, (
        "the chain is eligible end-to-end; nothing may fall back"
    )
    # Same cycle count on every engine -> identical architectural state.
    want = state_digest(engines["fastpath"])
    assert state_digest(native_ring) == want
    assert state_digest(engines["macro K=64"]) == want

    baseline = rates["fastpath"]
    speedup = rates["native"] / baseline
    emit(render_table(
        ["engine", "cyc/s", "vs fast path"],
        [[name, f"{rate:,.0f}", f"{rate / baseline:.1f}x"]
         for name, rate in rates.items()],
        title=f"steady-state Ring-16 MADD chain, {CYCLES:,} cycles "
              f"(best of {REPEATS})",
    ))

    BENCH_PATH.write_text(json.dumps({
        "workload": "ring16-madd-chain-steady-state",
        "cycles": CYCLES,
        "cycles_per_second": {k: round(v) for k, v in rates.items()},
        "native_speedup_vs_fastpath": round(speedup, 2),
        "target_speedup": TARGET_NATIVE_SPEEDUP,
        "native_cycles": native_ring.native_cycles,
        "numba_jit_active": bool(native_ring._native is not None
                                 and native_ring._native.jit_active()),
        "numba_available": nativepath.numba_available(),
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")

    assert speedup >= TARGET_NATIVE_SPEEDUP, (
        f"native tier sustained only {speedup:.2f}x the scalar fast "
        f"path (target {TARGET_NATIVE_SPEEDUP}x)"
    )
