"""Tests for the controller RISC instruction set and encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.controller.isa import (
    FORMATS,
    Instruction,
    ROp,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.errors import ConfigurationError


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(list(ROp)))
    fields = {}
    for name, width, signed in FORMATS[op]:
        if signed:
            lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        else:
            lo, hi = 0, (1 << width) - 1
        if name in ("rd", "rs", "rt"):
            hi = min(hi, 15)
        if name == "limit":
            lo = max(lo, 1)
            hi = min(hi, 8)
        fields[name] = draw(st.integers(min_value=lo, max_value=hi))
    return Instruction(op, **fields)


class TestInstruction:
    def test_register_range_validated(self):
        with pytest.raises(ConfigurationError):
            Instruction(ROp.MOV, rd=16, rs=0)

    def test_field_width_validated(self):
        with pytest.raises(ConfigurationError):
            Instruction(ROp.CFGDI, dnode=1 << 10, cfg=0)

    def test_signed_immediate_range(self):
        Instruction(ROp.ADDI, rd=0, rs=0, imm=-2048)
        with pytest.raises(ConfigurationError):
            Instruction(ROp.ADDI, rd=0, rs=0, imm=-2049)

    def test_str_lists_fields(self):
        text = str(Instruction(ROp.LDI, rd=3, imm=7))
        assert "ldi" in text and "rd=3" in text


class TestEncoding:
    @given(instructions())
    def test_roundtrip(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr

    @given(instructions())
    def test_fits_32_bits(self, instr):
        assert 0 <= encode_instruction(instr) < (1 << 32)

    def test_decode_rejects_bad_opcode(self):
        with pytest.raises(ConfigurationError):
            decode_instruction(63 << 26)

    def test_decode_rejects_oversize(self):
        with pytest.raises(ConfigurationError):
            decode_instruction(1 << 32)

    def test_program_roundtrip(self):
        program = [Instruction(ROp.LDI, rd=1, imm=5),
                   Instruction(ROp.HALT)]
        assert decode_program(encode_program(program)) == program

    def test_negative_branch_offset_roundtrip(self):
        instr = Instruction(ROp.BNE, rs=1, rt=2, imm=-6)
        assert decode_instruction(encode_instruction(instr)).imm == -6
