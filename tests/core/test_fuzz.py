"""Robustness fuzzing: random configurations must never corrupt state.

The simulator's contract is that *any* configuration reachable through
the public API (valid microwords, valid routes) executes without
crashing and keeps every architectural value canonical 16-bit.  These
property tests drive randomly-configured fabrics and assert the
invariants — the kind of failure injection that catches evaluation-order
and masking bugs.
"""

from hypothesis import given, settings, strategies as st

from repro import word
from repro.core.dnode import DnodeMode
from repro.core.isa import MicroWord, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource

from tests.core.test_isa import microwords


def port_sources(width: int = 2):
    """Strategy over every legal route for a switch of *width* lanes."""
    return st.one_of(
        st.just(PortSource.zero()),
        st.just(PortSource.bus()),
        st.integers(min_value=0, max_value=width - 1).map(PortSource.up),
        st.integers(min_value=0, max_value=3).map(PortSource.host),
        st.tuples(st.integers(min_value=1, max_value=4),
                  st.integers(min_value=1, max_value=width)).map(
            lambda t: PortSource.rp(*t)),
    )


def _legal_source(src: Source, width: int) -> Source:
    """Clamp a feedback-tap source to the lanes this fabric has."""
    if src.is_feedback and src.feedback_lane > width:
        return Source.rp(src.feedback_stage, 1)
    return src


def _legal_word(mw: MicroWord, width: int) -> MicroWord:
    return MicroWord(op=mw.op, src_a=_legal_source(mw.src_a, width),
                     src_b=_legal_source(mw.src_b, width), dst=mw.dst,
                     flags=mw.flags, imm=mw.imm)


@st.composite
def ring_specs(draw, min_layers: int = 4, max_layers: int = 4,
               min_width: int = 2, max_width: int = 2,
               max_local: int = 8, fifo_loads: bool = True):
    """A replayable random fabric configuration.

    The spec is plain data so the *same* drawn configuration can be
    applied to several rings — one per execution backend — which is what
    the differential suite (``test_differential.py``) needs.  Returns::

        {"layers": L, "width": W, "cells": [(layer, pos, microword,
          local_program_or_None, {port: route}, {channel: fifo_words})]}
    """
    layers = draw(st.integers(min_layers, max_layers))
    width = draw(st.integers(min_width, max_width))
    cells = []
    for layer in range(layers):
        for pos in range(width):
            mw = _legal_word(draw(microwords()), width)
            local = None
            if draw(st.booleans()):
                local = [_legal_word(w, width) for w in draw(
                    st.lists(microwords(), min_size=1,
                             max_size=max_local))]
            routes = {port: draw(port_sources(width)) for port in (1, 2)}
            loads = {}
            if fifo_loads and draw(st.booleans()):
                for channel in (1, 2):
                    loads[channel] = draw(st.lists(
                        st.integers(0, 0xFFFF), max_size=8))
            cells.append((layer, pos, mw, local, routes, loads))
    return {"layers": layers, "width": width, "cells": cells}


def apply_spec(ring: Ring, spec: dict) -> Ring:
    """Configure *ring* (and load its FIFOs) as the spec describes."""
    for layer, pos, mw, local, routes, loads in spec["cells"]:
        ring.config.write_microword(layer, pos, mw)
        if local is not None:
            ring.config.write_local_program(layer, pos, local)
            ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
        for port, route in routes.items():
            ring.config.write_switch_route(layer, pos, port, route)
        for channel, values in loads.items():
            ring.push_fifo(layer, pos, channel, values)
    return ring


def build_ring(spec: dict, **ring_kwargs) -> Ring:
    """A fresh ring of the spec's shape, configured and loaded."""
    geometry = RingGeometry(layers=spec["layers"], width=spec["width"])
    return apply_spec(Ring(geometry, **ring_kwargs), spec)


def fuzzed_rings():
    """The historical Ring-8 robustness strategy (spec-backed)."""
    return ring_specs().map(build_ring)


class TestFuzzedFabrics:
    @given(fuzzed_rings(), st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=40, deadline=None)
    def test_runs_without_faults_and_stays_canonical(self, ring, cycles,
                                                     bus):
        ring.run(cycles, bus=bus, host_in=lambda ch: (ch * 37) & 0xFFFF)
        for dn in ring.all_dnodes():
            assert word.is_valid(dn.out)
            for value in dn.regs.snapshot():
                assert word.is_valid(value)
        for k in range(4):
            sw = ring.switch(k)
            for stage in range(1, 5):
                for lane in (1, 2):
                    assert word.is_valid(sw.rp_read(stage, lane))

    @given(fuzzed_rings())
    @settings(max_examples=15, deadline=None)
    def test_reset_restores_datapath(self, ring):
        ring.run(8, host_in=lambda ch: 1)
        ring.reset()
        assert ring.cycles == 0
        for dn in ring.all_dnodes():
            assert dn.out == 0
            assert dn.regs.snapshot() == [0, 0, 0, 0]

    @given(fuzzed_rings(), st.integers(min_value=1, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, ring, cycles):
        """Two identical runs from reset produce identical state."""
        def run_and_snapshot():
            ring.reset()
            # FIFOs are cleared by reset; determinism over stream inputs
            ring.run(cycles, host_in=lambda ch: (ch + 5) & 0xFFFF)
            return [dn.out for dn in ring.all_dnodes()] + [
                v for dn in ring.all_dnodes() for v in dn.regs.snapshot()
            ]

        assert run_and_snapshot() == run_and_snapshot()
