"""Ablation A4 (extension) — the energy story the paper only gestures at.

The paper motivates reconfigurable computing with the "area, cost and
consumption problems" of frequency-scaled CPUs but publishes no power
numbers.  This extension quantifies the claim with a first-order CMOS
dynamic-power model (see ``repro.tech.power``): the fabric's MIPS/W sits
orders of magnitude above the era's CPU, and grows with ring size as
the shared controller amortises.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, ring_peak_mips
from repro.baselines.scalar_cpu import PENTIUM_II_450
from repro.core.ring import RingGeometry
from repro.tech.power import (
    PENTIUM_II_450_POWER_W,
    core_power,
    mips_per_watt,
)


def test_power_model_evaluation(benchmark):
    estimate = benchmark(core_power, RingGeometry.ring(64), "0.18um")
    assert estimate.total_w > 0


def test_power_shape():
    rows = []
    for dnodes in (8, 16, 64, 256):
        estimate = core_power(RingGeometry.ring(dnodes), "0.18um")
        rows.append([
            f"Ring-{dnodes}",
            estimate.total_w * 1e3,
            ring_peak_mips(dnodes) / 1e3,
            mips_per_watt(dnodes) / 1e3,
        ])
    cpu_eff = PENTIUM_II_450.sustained_mips / PENTIUM_II_450_POWER_W
    rows.append(["Pentium II 450", PENTIUM_II_450_POWER_W * 1e3,
                 PENTIUM_II_450.sustained_mips / 1e3, cpu_eff / 1e3])
    emit(render_table(
        ["engine", "power mW", "GMIPS", "kMIPS/W"],
        rows, title="A4 (extension) — power and efficiency at 0.18 um"))

    # Ring-8 sits in the tens-of-mW class, 1000x below the CPU package.
    ring8 = core_power(RingGeometry.ring(8), "0.18um").total_w
    assert ring8 < 0.3
    assert PENTIUM_II_450_POWER_W / ring8 > 80

    # Efficiency gap: orders of magnitude, growing with ring size.
    assert mips_per_watt(8) / cpu_eff > 100
    assert mips_per_watt(256) > mips_per_watt(8)


def test_power_scales_gracefully():
    """Per-Dnode power is flat: energy scales with compute, not size."""
    per_dnode = [
        core_power(RingGeometry.ring(n), "0.18um").total_w / n
        for n in (8, 32, 128)
    ]
    assert max(per_dnode) / min(per_dnode) < 1.6
