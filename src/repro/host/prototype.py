"""Emulation of the Fig. 6 APEX20K400 prototype.

The paper's prototype wires a Ring-8 (with its configuration controller)
to three memories on the SOPC board: a preloaded program memory (PRG),
an image memory (IMAGE, a 64x64 16-bit coded picture), and a video
memory (VIDEO) scanned out to a monitor by a synthesized VGA controller.

This module reproduces that system in software:

* the application is *assembled from source* with the real toolchain
  (``PRG`` holds the serialized object code, exactly "loaded with the
  generated object code");
* the Ring-8 streams pixels from IMAGE through a per-pixel kernel and an
  output tap writes results into VIDEO;
* a :class:`VgaController` with line/frame counters scans VIDEO out into
  a framebuffer that tests and examples can check.

Three pixel kernels are provided, all expressed in Ring assembly:
``invert`` (255 - p), ``threshold`` (binarise at a level) and ``edge``
(horizontal gradient magnitude, using an Rp feedback tap as the
one-pixel delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro import word
from repro.asm import assemble, load_system
from repro.asm.objcode import ObjectCode
from repro.errors import HostError
from repro.host.memory import WordMemory

IMAGE_SIDE = 64

#: Ring assembly of each pixel kernel.  `%T%` is the threshold level.
KERNEL_SOURCES: Dict[str, str] = {
    # out = 255 - p
    "invert": """
.ring boot
dnode 0.0 global
    sub out, #255, in1
switch 0
    route 0.1 <- host0
""",
    # out = 255 if p > T else 0   (cmplt produces 0/1, scaled by 255)
    "threshold": """
.ring boot
dnode 0.0 global
    cmplt out, #%T%, in1
dnode 1.0 global
    mul out, in1, #255
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0
""",
    # out = |p - previous p|  (horizontal gradient)
    "edge": """
.ring boot
dnode 0.0 global
    mov out, in1
dnode 1.0 global
    absdiff out, in1, rp(1,1)
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0
""",
}

#: Fabric latency (cycles) of each kernel's pipeline.
KERNEL_LATENCY: Dict[str, int] = {"invert": 1, "threshold": 2, "edge": 2}


@dataclass
class PrototypeResult:
    """Everything observable on the emulated board after a run."""

    framebuffer: np.ndarray     # what the VGA controller displayed
    video: WordMemory
    image: WordMemory
    prg: WordMemory
    cycles: int                 # fabric cycles for the whole image
    frames_scanned: int


class VgaController:
    """A synthesized VGA scan-out model: reads VIDEO row-major.

    Counts horizontal/vertical sync events; :meth:`scan_frame` performs
    one full frame scan into the framebuffer (one memory read per pixel
    clock, as the real controller does).
    """

    def __init__(self, video: WordMemory,
                 shape: Tuple[int, int] = (IMAGE_SIDE, IMAGE_SIDE)):
        self.video = video
        self.shape = shape
        self.hsyncs = 0
        self.vsyncs = 0
        self.pixel_clocks = 0

    def scan_frame(self) -> np.ndarray:
        rows, cols = self.shape
        frame = np.zeros((rows, cols), dtype=np.int64)
        for r in range(rows):
            for c in range(cols):
                frame[r, c] = word.to_signed(self.video.read(r * cols + c))
                self.pixel_clocks += 1
            self.hsyncs += 1
        self.vsyncs += 1
        return frame


def assemble_kernel(operation: str, threshold: int = 128) -> ObjectCode:
    """Assemble a pixel kernel into object code (the PRG content)."""
    if operation not in KERNEL_SOURCES:
        known = ", ".join(sorted(KERNEL_SOURCES))
        raise HostError(f"unknown kernel {operation!r}; known: {known}")
    source = KERNEL_SOURCES[operation].replace("%T%", str(threshold))
    return assemble(source, layers=4, width=2)


def run_prototype(image: np.ndarray, operation: str = "invert",
                  threshold: int = 128) -> PrototypeResult:
    """Run the full Fig. 6 flow: PRG -> Ring-8 -> VIDEO -> VGA.

    Args:
        image: the 64x64 (or any 2-D) 8-bit picture in IMAGE memory.
        operation: pixel kernel name (``invert``/``threshold``/``edge``).
        threshold: level for the ``threshold`` kernel.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise HostError(f"expected a 2-D image, got shape {image.shape}")
    if image.min() < 0 or image.max() > 255:
        raise HostError("IMAGE memory holds 8-bit pixels (0..255)")
    rows, cols = image.shape
    pixels = rows * cols

    # Board memories.
    obj = assemble_kernel(operation, threshold)
    prg_words = list(obj.to_bytes())  # byte-per-word program store
    prg = WordMemory(max(len(prg_words), 1), name="PRG")
    prg.load(prg_words)
    image_mem = WordMemory(pixels, name="IMAGE")
    image_mem.load_image(image)
    video = WordMemory(pixels, name="VIDEO")

    # The core reads its configuration from PRG (round-trip through the
    # serialized object code, as on the real board).
    reloaded = ObjectCode.from_bytes(bytes(prg.dump(0, len(prg_words))))
    system = load_system(reloaded)

    out_layer = {"invert": 0, "threshold": 1, "edge": 1}[operation]
    latency = KERNEL_LATENCY[operation]
    system.data.stream(0, image_mem.dump())
    tap = system.data.add_tap(out_layer, 0, skip=latency - 1, limit=pixels)
    system.run(pixels + latency)

    for address, value in enumerate(tap.samples):
        video.write(address, value)

    vga = VgaController(video, shape=(rows, cols))
    framebuffer = vga.scan_frame()
    return PrototypeResult(
        framebuffer=framebuffer,
        video=video,
        image=image_mem,
        prg=prg,
        cycles=system.cycles,
        frames_scanned=vga.vsyncs,
    )


def reference_kernel(image: np.ndarray, operation: str,
                     threshold: int = 128) -> np.ndarray:
    """Golden model of each pixel kernel (for verification)."""
    image = np.asarray(image).astype(np.int64)
    if operation == "invert":
        return 255 - image
    if operation == "threshold":
        return np.where(image > threshold, 255, 0)
    if operation == "edge":
        flat = image.reshape(-1)
        shifted = np.concatenate([[0], flat[:-1]])
        return np.abs(flat - shifted).reshape(image.shape)
    raise HostError(f"unknown kernel {operation!r}")
