#!/usr/bin/env python
"""Motion estimation on the Systolic Ring vs the Table 1 comparators.

Generates a synthetic video frame pair with known motion, runs H.261-style
full-search block matching (8x8 block, +/-8 displacement = 289 candidates)
on three engines:

* the Ring-16 fabric simulator (hybrid local/global mapping),
* the instruction-level MMX model,
* the dedicated systolic ASIC model [7],

verifies all three find the same motion vector with bit-identical SAD
maps, and prints the Table 1 cycle comparison.

Run:  python examples/motion_estimation.py
"""

import numpy as np

from repro.analysis import render_table
from repro.baselines.asic_me import asic_block_match
from repro.baselines.mmx import mmx_block_match
from repro.kernels.motion_estimation import full_search_me
from repro.kernels.reference import full_search

BLOCK = 8
DISPLACEMENT = 8


def synthetic_frame_pair(true_motion=(3, -5), seed=7):
    """A textured frame and a shifted successor with additive noise."""
    rng = np.random.default_rng(seed)
    size = 48
    frame = rng.integers(0, 256, (size, size))
    dy, dx = true_motion
    moved = np.roll(np.roll(frame, dy, axis=0), dx, axis=1)
    noisy = np.clip(moved + rng.integers(-5, 6, moved.shape), 0, 255)
    return frame, noisy


def main() -> None:
    frame, next_frame = synthetic_frame_pair()
    # reference block from the current frame centre; search window +/-8
    by, bx = 20, 20
    block = next_frame[by:by + BLOCK, bx:bx + BLOCK]
    area = frame[by - DISPLACEMENT:by + BLOCK + DISPLACEMENT,
                 bx - DISPLACEMENT:bx + BLOCK + DISPLACEMENT]

    golden_best, golden_sad, golden_map = full_search(block, area)
    ring = full_search_me(block, area)
    mmx = mmx_block_match(block.astype(np.uint8), area.astype(np.uint8))
    asic = asic_block_match(block, area)

    assert np.array_equal(ring.sad_map, golden_map), "ring SADs diverged"
    assert np.array_equal(mmx.sad_map, golden_map), "MMX SADs diverged"
    assert ring.best == mmx.best == asic.best == golden_best

    mv = (golden_best[0] - DISPLACEMENT, golden_best[1] - DISPLACEMENT)
    print(f"recovered motion vector: {mv} (SAD {golden_sad}), "
          f"{golden_map.size} candidates searched\n")

    rows = [
        ["ASIC [7] @ 100 MHz", asic.cycles,
         asic.cycles / 100e6 * 1e6],
        ["Systolic Ring-16 @ 200 MHz", ring.cycles,
         ring.cycles / 200e6 * 1e6],
        ["Intel MMX (Pentium-class)", mmx.cycles,
         mmx.cycles / 200e6 * 1e6],
    ]
    print(render_table(
        ["engine", "cycles", "time (us, at its clock)"], rows,
        title="Table 1 — motion estimation (8x8 block, +/-8 search)"))
    print(f"\nRing vs MMX speedup: {mmx.cycles / ring.cycles:.1f}x "
          "(paper: 'almost 8 times faster')")
    print(f"ASIC vs Ring speedup: {ring.cycles / asic.cycles:.1f}x "
          "(paper: 'much faster ... at the price of flexibility')")


if __name__ == "__main__":
    main()
