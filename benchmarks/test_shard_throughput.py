"""Sharded multi-core throughput: B lanes split across worker processes.

The shard backend (:mod:`repro.core.shardpath`) splits the batch
engine's lane axis across OS processes over shared memory, so aggregate
lane-cycles per second scale with cores instead of being pinned to one
GIL.  This benchmark measures the steady-state 8-tap spatial FIR (the
same operating point as ``test_batch_throughput.py``) at B = 32 with
1/2/4 shard workers, records everything in ``BENCH_shard.json``, and —
on hosts with at least 4 cores — asserts the acceptance target: 4
workers sustain at least 1.5x the single-worker in-process rate.  On
smaller hosts (CI runners are often 1-2 cores) the numbers are still
recorded; the ratio assertion is skipped, since splitting one core
across processes can only add IPC overhead.

Run with ``pytest -s benchmarks/test_shard_throughput.py`` for the table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.ring import Ring, RingGeometry
from repro.core.shardpath import FnStimulus
from repro.kernels.fir import build_spatial_fir

#: Acceptance floor: 4-worker aggregate throughput over the 1-worker
#: in-process engine at the same lane count, asserted only when the host
#: actually has 4 cores to scale onto.
TARGET_SHARD_SPEEDUP = 1.5

#: The lane count every operating point runs at.
BATCH = 32

#: Worker counts measured (1 = the in-process fallback engine).
WORKER_POINTS = (1, 2, 4)

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

_TAPS = [3, -1, 4, 1, -5, 9, 2, -6]


def _fir_ring(**kwargs) -> Ring:
    ring = Ring(RingGeometry(layers=len(_TAPS), width=2), **kwargs)
    build_spatial_fir(_TAPS, ring=ring)
    return ring


def _host_zero(channel: int) -> int:
    return 0


def _cycles_per_second(ring: Ring, cycles: int, repeats: int = 3) -> float:
    """Best-of-*repeats* chunk-mode steady-state throughput."""
    stimulus = (FnStimulus(_host_zero) if ring.backend == "shard"
                else _host_zero)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles, host_in=stimulus)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    return best


def _measure() -> dict:
    cycles = 2_000
    points = {}

    ring = _fir_ring(backend="batch", batch_size=BATCH)
    ring.run(4, host_in=_host_zero)
    points["batch"] = _cycles_per_second(ring, cycles)

    for workers in WORKER_POINTS:
        ring = _fir_ring(backend="shard", batch_size=BATCH,
                         shard_workers=workers)
        engine = ring.shard
        try:
            ring.run(4, host_in=FnStimulus(_host_zero))
            rate = _cycles_per_second(ring, cycles)
            points[f"shard_{workers}"] = rate
            if workers > 1:
                assert engine.using_processes or workers > (
                    os.cpu_count() or 1), (
                    "multi-worker pool unexpectedly fell back in-process"
                )
        finally:
            engine.close()
    return points


def test_shard_scaling_records_and_meets_target():
    cores = os.cpu_count() or 1
    points = _measure()
    base = points["shard_1"]

    emit(render_table(
        ["operating point", "cyc/s", "lane-cyc/s", "vs 1 worker"],
        [[name, f"{rate:,.0f}", f"{rate * BATCH:,.0f}",
          f"{rate / base:.2f}x"]
         for name, rate in points.items()],
        title=f"8-tap FIR sharded throughput, B={BATCH} ({cores} cores)",
    ))

    speedup = points[f"shard_{WORKER_POINTS[-1]}"] / base
    BENCH_PATH.write_text(json.dumps({
        "benchmark": "shard_throughput",
        "fabric": f"Ring-{len(_TAPS) * 2} spatial FIR ({len(_TAPS)} taps)",
        "batch": BATCH,
        "cpu_count": cores,
        "cycles_per_second": {
            name: round(rate) for name, rate in points.items()},
        "lane_cycles_per_second": {
            name: round(rate * BATCH) for name, rate in points.items()},
        "shard4_speedup_vs_shard1": round(speedup, 2),
        "target_speedup": TARGET_SHARD_SPEEDUP,
        "target_asserted": cores >= 4,
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")

    if cores >= 4:
        assert speedup >= TARGET_SHARD_SPEEDUP, (
            f"shard-{WORKER_POINTS[-1]} sustained only {speedup:.2f}x the "
            f"single-worker rate (target {TARGET_SHARD_SPEEDUP}x on "
            f"{cores} cores)"
        )
    else:
        emit(f"speedup assertion skipped: {cores} core(s) < 4")
