"""Tests for the full-search motion-estimation mapping (Table 1 kernel)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels.motion_estimation import (
    build_me_system,
    cycle_model,
    full_search_me,
)
from repro.kernels.reference import full_search


class TestCorrectness:
    def test_small_case_bit_exact(self, rng):
        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (8, 8))
        expected_best, expected_sad, expected_map = full_search(ref, area)
        result = full_search_me(ref, area)
        assert np.array_equal(result.sad_map, expected_map)
        assert result.best == expected_best
        assert result.best_sad == expected_sad

    def test_exact_match_is_found(self, rng):
        area = rng.integers(0, 256, (12, 12))
        ref = area[2:6, 3:7].copy()
        result = full_search_me(ref, area)
        assert result.best_sad == 0
        assert result.best == (2, 3)

    def test_paper_workload_bit_exact(self, rng):
        """The Table 1 case: 8x8 block, +/-8 displacement (289
        candidates) on a Ring-16."""
        ref = rng.integers(0, 256, (8, 8))
        area = rng.integers(0, 256, (24, 24))
        _, _, expected_map = full_search(ref, area)
        result = full_search_me(ref, area)
        assert np.array_equal(result.sad_map, expected_map)
        assert result.sad_map.shape == (17, 17)

    def test_different_ring_sizes(self, rng):
        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (10, 10))
        _, _, expected_map = full_search(ref, area)
        for dnodes in (8, 16, 32):
            result = full_search_me(ref, area, dnodes=dnodes)
            assert np.array_equal(result.sad_map, expected_map)

    def test_pixel_range_validated(self):
        with pytest.raises(SimulationError, match="8-bit"):
            full_search_me(np.full((4, 4), 300), np.zeros((8, 8)))

    def test_dimension_validated(self):
        with pytest.raises(SimulationError, match="2-D"):
            build_me_system(np.zeros(4), np.zeros((8, 8)))


class TestCycles:
    def test_simulated_matches_model(self, rng):
        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (8, 8))
        result = full_search_me(ref, area)
        assert result.cycles == cycle_model(
            n_candidates=25, block_pixels=16, dnodes=16)

    def test_paper_case_cycle_count(self, rng):
        ref = rng.integers(0, 256, (8, 8))
        area = rng.integers(0, 256, (24, 24))
        result = full_search_me(ref, area)
        assert result.cycles == cycle_model() == 2511

    def test_batches(self, rng):
        ref = rng.integers(0, 256, (8, 8))
        area = rng.integers(0, 256, (24, 24))
        result = full_search_me(ref, area)
        assert result.batches == 19   # ceil(289 / 16)

    def test_cycle_model_scales_with_dnodes(self):
        assert cycle_model(dnodes=32) < cycle_model(dnodes=16)


class TestHybridOrchestration:
    def test_uses_local_and_global_modes(self, rng):
        """The mapping exercises the paper's hybrid multi-level
        reconfiguration: local compute loops + controller plane flips."""
        ref = rng.integers(0, 256, (4, 4))
        area = rng.integers(0, 256, (8, 8))
        system, meta = build_me_system(ref, area)
        from repro.core.dnode import DnodeMode
        from repro.core.isa import Opcode

        # Dnodes hold the SAD loop but idle in global mode until the
        # controller's first compute plane flips them to local.
        assert all(dn.mode is DnodeMode.GLOBAL
                   for dn in system.ring.all_dnodes())
        assert all(dn.local.current().op is Opcode.ABSDIFF
                   for dn in system.ring.all_dnodes())
        assert len(system.planes) == 3
        system.step(); system.step(); system.step()  # preamble + plane 0
        assert all(dn.mode is DnodeMode.LOCAL
                   for dn in system.ring.all_dnodes())
        system.run_until_halt(max_cycles=100_000)
        # the controller kept reconfiguring: plane flips counted as writes
        assert system.ring.config.writes > meta["batches"]
