"""Command-line tools: assembler, disassembler, object-code runner.

Usage::

    python -m repro.tools asm  program.asm -o program.obj --layers 8
    python -m repro.tools dis  program.obj
    python -m repro.tools run  program.obj --stream 0:1,2,3 --tap 1.0:8
    python -m repro.tools run  program.obj --metrics run.prom \\
        --metrics-format prom       # export the run's counter snapshot
"""
