"""Multi-core sharded execution of the batch engine's lane axis.

The paper's scalability story is replication: the ring grows by adding
identical columns, and nothing in the control plane changes.  The batch
engine (:mod:`repro.core.batchpath`) already exploits the software dual
of that claim — control flow is *lane-invariant*, only data differs per
lane — which means the B lanes of a :class:`BatchRing` can be split
across worker processes exactly the way the hardware splits across
columns.  :class:`ShardedBatchRing` does that split:

* the dense ``int32`` lane arrays (OUT registers, register files, switch
  feedback pipelines) and the per-lane ``int64`` accounting arrays live
  in :mod:`multiprocessing.shared_memory` blocks.  The parent holds
  full-batch views; each worker builds a private :class:`BatchRing`
  whose arrays are zero-copy *slices* of the same blocks, so lane state
  advances in place and never crosses the control channel;
* per chunk of cycles the parent exchanges only scalar lane-invariant
  control with the pool: the cycle count, the shared pipeline rotation
  head, local-sequencer phases, and lane-invariant statistics.  Growable
  FIFO words stay worker-private and cross the channel only at explicit
  sync points (lane writeback, checkpoint capture/restore, resharding);
* every worker owns a plan cache keyed by the *same*
  ``Ring.config_fingerprint()`` as the parent's, so a configuration the
  pool has seen before re-adopts compiled kernels in one lookup on every
  shard.  The parent's invalidation listener marks the pool dirty; the
  next run broadcasts one configuration plane + the parent fingerprint,
  and each worker verifies it reproduced the exact fingerprint before
  executing — replicated plans can never drift from the parent's;
* ``capture_lanes()`` / ``restore_lanes()`` speak the exact dict format
  of :meth:`BatchRing.capture_lanes`, which doubles as the lane-
  *migration* path: :meth:`ShardedBatchRing.set_workers` captures every
  lane, rebuilds the pool at the new width, and restores the lanes onto
  the new slicing — elastic resharding mid-run with bit-identical state.

Graceful degradation: when ``multiprocessing.shared_memory`` is
unavailable, process start fails, or only one worker is requested, the
engine falls back to a single in-process :class:`BatchRing` behind the
identical interface (``using_processes`` reports which mode is live).

Host stimulus across the pool takes one of two shapes:

* **chunk mode** — ``host_in`` is ``None`` or a picklable
  :class:`ShardStimulus`; each worker resolves its own lane slice
  locally for the whole chunk (one message per worker per chunk).
  :meth:`repro.host.streams.DataController.shard_stimulus` freezes
  queued stream words into this form (per-shard stream slicing);
* **per-cycle mode** — any other callable: the parent resolves each
  routed host channel once per cycle (reads must be stable within a
  cycle, which every engine already requires of well-formed hosts) and
  ships each worker its lane slice of the words.

Known divergence, shared with the fast path and the batch engine: a
strict-FIFO abort leaves the aborted cycle's partial state behind, and
under sharding different shards may abort at different cycles (FIFO
occupancy is per-lane).  The raised message is the scalar engine's
exact text for the earliest-aborting shard.
"""

from __future__ import annotations

import os
import weakref
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro import word
from repro.core.batchpath import BatchRing, LANE_DTYPE
from repro.core.regfile import NUM_REGISTERS
from repro.core.switch import PortKind
from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

#: Lane-invariant per-Dnode statistics exchanged per chunk (``fifo_pops``
#: is per-lane and lives in shared memory instead).
_STAT_FIELDS = ("cycles", "instructions", "arithmetic_ops", "multiplies")

#: Environment override for the effective-worker ceiling.  The default
#: ceiling is the host core count: BENCH_shard.json showed a 4-worker
#: pool running at 0.23x on a 1-core host, so oversubscription degrades
#: to fewer workers instead of thrashing.  Tests (and deliberately
#: oversubscribed deployments) set ``REPRO_SHARD_MAX_WORKERS`` to pin
#: real process boundaries regardless of the runner's core count.
MAX_WORKERS_ENV = "REPRO_SHARD_MAX_WORKERS"


def max_shard_workers() -> int:
    """The effective-worker ceiling: env override or the host core count."""
    raw = os.environ.get(MAX_WORKERS_ENV)
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{MAX_WORKERS_ENV} must be an integer, got {raw!r}")
        if value < 1:
            raise ConfigurationError(
                f"{MAX_WORKERS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1

#: Seconds the parent waits for a worker's startup handshake before
#: falling back to the in-process engine.
_SPAWN_TIMEOUT = 60.0


# ----------------------------------------------------------------------
# Chunk-mode host stimuli (picklable)
# ----------------------------------------------------------------------


def _slice_words(value, lo: Optional[int], hi: Optional[int]):
    """Slice a full-batch host read down to one shard's lane span."""
    if isinstance(value, (int, np.integer)):
        return int(value)
    arr = np.asarray(value)
    if lo is not None and arr.ndim:
        arr = arr[lo:hi]
    return arr


class ShardStimulus:
    """Base class of picklable chunk-mode host stimuli.

    A stimulus answers :meth:`lane_words` — the word(s) presented on a
    host channel at an absolute fabric cycle, either a scalar (broadcast
    to every lane of the shard) or an integer array covering the shard's
    lane span.  :meth:`sliced` narrows a full-batch stimulus to one
    shard before it is shipped to the worker.
    """

    def lane_words(self, channel: int, cycle: int):
        raise NotImplementedError

    def sliced(self, lo: int, hi: int) -> "ShardStimulus":
        raise NotImplementedError


class CycleStimulus(ShardStimulus):
    """Wraps a picklable ``fn(channel, cycle)`` host function.

    The function may return a scalar word or a full-batch ``(B,)``
    sequence; sharding slices the sequence down to the worker's lanes.
    Use :func:`functools.partial` over a module-level function to keep
    the payload picklable.
    """

    def __init__(self, fn: Callable[[int, int], object],
                 lo: Optional[int] = None, hi: Optional[int] = None):
        self.fn = fn
        self.lo = lo
        self.hi = hi

    def lane_words(self, channel: int, cycle: int):
        return _slice_words(self.fn(channel, cycle), self.lo, self.hi)

    def sliced(self, lo: int, hi: int) -> "CycleStimulus":
        return CycleStimulus(self.fn, lo, hi)


class FnStimulus(ShardStimulus):
    """Wraps a picklable cycle-invariant ``fn(channel)`` host function."""

    def __init__(self, fn: Callable[[int], object],
                 lo: Optional[int] = None, hi: Optional[int] = None):
        self.fn = fn
        self.lo = lo
        self.hi = hi

    def lane_words(self, channel: int, cycle: int):
        return _slice_words(self.fn(channel), self.lo, self.hi)

    def sliced(self, lo: int, hi: int) -> "FnStimulus":
        return FnStimulus(self.fn, lo, hi)


class StreamStimulus(ShardStimulus):
    """Finite stream queues frozen for a chunk run, one word per cycle.

    ``channels`` maps a channel index to either ``("all", [words])`` — a
    scalar queue broadcast to every lane — or ``("lanes", [[words],
    ...])`` with one queue per lane of the *full* batch.  A queue that
    runs out presents the channel's idle word, exactly like a live
    :class:`~repro.host.streams.StreamChannel`.  ``base_cycle`` anchors
    the queues to the fabric cycle at which the chunk starts.
    """

    def __init__(self, base_cycle: int, channels: Dict[int, tuple],
                 idle: Optional[Dict[int, int]] = None,
                 lo: Optional[int] = None, hi: Optional[int] = None):
        self.base = base_cycle
        self.channels = channels
        self.idle = idle or {}
        self.lo = lo
        self.hi = hi

    def lane_words(self, channel: int, cycle: int):
        offset = cycle - self.base
        idle = self.idle.get(channel, 0)
        spec = self.channels.get(channel)
        if spec is None:
            return idle
        kind, data = spec
        if kind == "all":
            return int(data[offset]) if offset < len(data) else idle
        lanes = data if self.lo is None else data[self.lo:self.hi]
        return np.array(
            [lane[offset] if offset < len(lane) else idle
             for lane in lanes], dtype=np.int64)

    def sliced(self, lo: int, hi: int) -> "StreamStimulus":
        return StreamStimulus(self.base, self.channels, self.idle, lo, hi)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _attach_block(shared_memory, name,  # pragma: no cover - subprocess
                  unregister: bool):
    """Attach to a parent-owned block without adopting its lifetime.

    Under a *spawn* context each worker runs its own resource tracker,
    which registers the segment on attach and would unlink it when the
    worker exits — stealing the parent's memory.  Drop that registration.
    Under *fork* the tracker process is shared with the parent, so an
    unregister here would cancel the parent's own registration and turn
    its eventual unlink into tracker noise — leave it alone.
    """
    block = shared_memory.SharedMemory(name=name)
    if unregister:
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
    return block


def _control_of(ring, engine) -> dict:  # pragma: no cover - subprocess
    """The scalar lane-invariant control a worker reports per chunk."""
    return {
        "cycles": ring.cycles,
        "head": engine._head,
        "counters": {key: cell[0]
                     for key, cell in engine._counters.items()},
        "stats": {
            (dn.layer, dn.position): tuple(
                getattr(dn.stats, name) for name in _STAT_FIELDS)
            for dn in ring.all_dnodes()
        },
        "compiles": engine.compiles,
        "invalidations": engine.invalidations,
    }


def _worker_fifo_dump(engine, lane):  # pragma: no cover - subprocess
    """FIFO words for one local lane (or every local lane when None)."""
    if lane is None:
        return {
            key: [fifo.contents(i) for i in range(engine.batch)]
            for key, fifo in engine._fifos.items()
            if int(fifo.count.max()) > 0
        }
    return {key: fifo.contents(lane)
            for key, fifo in engine._fifos.items()}


def _shard_worker_main(conn, shm_names,  # pragma: no cover - subprocess
                       geometry, strict_fifos, cache_capacity, snapshot,
                       lo, hi, total, unregister):
    """Worker loop: own lanes ``[lo, hi)`` of a *total*-lane batch.

    Builds a private ring from the parent's snapshot (configuration +
    scalar runtime state), opens the shared lane blocks, and serves
    commands until told to stop.  Runs in a child process, so coverage
    never sees it; the in-process helpers above carry the logic that is
    unit-testable.
    """
    from multiprocessing import shared_memory
    from repro.core.ring import Ring, RingGeometry
    from repro.core.snapshot import restore as restore_snapshot

    layers, width, depth = geometry
    blocks = []
    try:
        ring = Ring(RingGeometry(layers, width, depth),
                    strict_fifos=strict_fifos, plan_cache=cache_capacity)
        restore_snapshot(ring, snapshot)
        arrays = {}
        for name, shape_of in BatchRing.ARRAY_SHAPES.items():
            block = _attach_block(shared_memory, shm_names[name],
                                  unregister)
            blocks.append(block)
            dtype = np.int64 if name in ("underflows", "fifo_pops") \
                else LANE_DTYPE
            full = np.ndarray(shape_of(layers, width, depth, total),
                              dtype=dtype, buffer=block.buf)
            arrays[name] = full[..., lo:hi]
        engine = BatchRing(ring, hi - lo, arrays=arrays)
        conn.send(("ready", None))
    except Exception as exc:
        try:
            conn.send(("fatal", type(exc).__name__, str(exc)))
        except Exception:
            pass
        return

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        try:
            if cmd == "run":
                _, cycles, bus, stim = msg
                host = None
                if stim is not None:
                    host = (lambda ch, _s=stim, _r=ring:
                            _s.lane_words(ch, _r.cycles))
                executed = engine.run(cycles, bus, host)
                control = _control_of(ring, engine)
                control["executed"] = executed
                reply = ("ok", control)
            elif cmd == "fifos":
                reply = ("ok", _worker_fifo_dump(engine, msg[1]))
            elif cmd == "push":
                _, key, values, lane = msg
                engine.push_fifo(*key, values, lane=lane)
                reply = ("ok", None)
            elif cmd == "sync":
                _, plane, counters, stats, fingerprint = msg
                ring.config.apply_plane(plane)
                _apply_scalars(ring, counters, stats)
                if (fingerprint is not None
                        and ring.config_fingerprint() != fingerprint):
                    raise SimulationError(
                        "shard worker configuration fingerprint diverged "
                        "from the parent's"
                    )
                reply = ("ok", None)
            elif cmd == "restore":
                _, meta = msg
                ring.cycles = meta["cycles"]
                _apply_scalars(ring, meta["counters"], meta["stats"])
                engine.restore_lanes({
                    "batch": engine.batch,
                    # Dense families already hold the restored words —
                    # the parent wrote them straight into shared memory —
                    # so round-trip them through the standard format.
                    "outs": engine.outs.tolist(),
                    "regs": engine.regs.tolist(),
                    "pipes": engine.pipes.tolist(),
                    "head": meta["head"],
                    "counters": meta["counters"],
                    "fifos": meta["fifos"],
                    "lane_underflows": engine.lane_underflows.tolist(),
                    "lane_fifo_pops": {
                        key: counts.tolist()
                        for key, counts in engine.lane_fifo_pops.items()
                    },
                })
                reply = ("ok", None)
            elif cmd == "cache":
                engine.set_plan_cache(msg[1])
                reply = ("ok", None)
            elif cmd == "stop":
                conn.send(("ok", None))
                break
            else:
                raise SimulationError(f"unknown shard command {cmd!r}")
        except Exception as exc:
            reply = ("error", type(exc).__name__, str(exc),
                     _control_of(ring, engine))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    for block in blocks:
        try:
            block.close()
        except Exception:
            pass


def _apply_scalars(ring, counters: dict, stats: Optional[dict]) -> None:
    """Write lane-invariant counters/statistics into a ring's Dnodes."""
    for (l, p), value in counters.items():
        ring._dnodes[l][p].local._counter = value
    if stats:
        for (l, p), values in stats.items():
            dn_stats = ring._dnodes[l][p].stats
            for name, value in zip(_STAT_FIELDS, values):
                setattr(dn_stats, name, value)


# ----------------------------------------------------------------------
# The sharded engine
# ----------------------------------------------------------------------


def _finalize_pool(conns: list, procs: list, blocks: list) -> None:
    """Last-resort teardown used by the ``weakref.finalize`` guard.

    Runs when a ``ShardedBatchRing`` is garbage-collected (or at
    interpreter exit) without a prior :meth:`~ShardedBatchRing.close` —
    exactly the path a crashing parent (e.g. a restarting farm worker)
    takes.  Must not assume any protocol state: connections are slammed
    shut, workers terminated, and every shared block closed *and*
    unlinked so nothing leaks in ``/dev/shm``.  The lists are the
    engine's own (mutated in place, never reassigned), so a block that a
    graceful ``close()`` already released is simply no longer here —
    finalizing twice, or finalizing after close, is a no-op rather than
    a double-unlink under the spawn resource tracker.
    """
    while conns:
        conn = conns.pop()
        try:
            conn.close()
        except Exception:  # pragma: no cover - best effort
            pass
    while procs:
        proc = procs.pop()
        try:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=1)
        except Exception:  # pragma: no cover - best effort
            pass
    while blocks:
        block = blocks.pop()
        try:
            block.close()
        except Exception:  # pragma: no cover - best effort
            pass
        try:
            block.unlink()
        except Exception:  # pragma: no cover - already unlinked
            pass


def shard_spans(batch: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` lane spans, remainder spread evenly."""
    base, extra = divmod(batch, workers)
    spans = []
    lo = 0
    for w in range(workers):
        hi = lo + base + (1 if w < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


class ShardedBatchRing:
    """B lanes of one ring configuration, split across worker processes.

    Drop-in for :class:`BatchRing` behind ``Ring(backend="shard",
    batch_size=B, shard_workers=N)``: identical run/writeback/
    checkpoint interface, identical per-lane bit behaviour (proved by
    the differential suite across worker counts).  See the module
    docstring for the shared-memory layout and control protocol.
    """

    def __init__(self, ring: "Ring", batch: int,
                 workers: Optional[int] = None):
        if batch < 1:
            raise ConfigurationError(
                f"batch size must be >= 1, got {batch}"
            )
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"shard workers must be >= 1, got {workers}"
            )
        self.ring = ring
        self.batch = batch
        if workers is None:
            workers = min(batch, max_shard_workers())
        #: Worker count as requested (before the core-count ceiling) —
        #: the ``shard_workers_capped`` metric reports the difference.
        self.workers_requested = min(workers, batch)
        self.workers = min(self.workers_requested, max_shard_workers())
        g = ring.geometry
        self._geometry = (g.layers, g.width, g.pipeline_depth)
        self._head = 0
        self._counters: Dict[Tuple[int, int], List[int]] = {
            (l, p): [0] for l in range(g.layers) for p in range(g.width)
        }
        self._cache_capacity = ring.plan_cache.capacity
        #: Pool/engine lifecycle counters (shard metric families).
        self.chunks = 0
        self.syncs = 0
        self.reshards = 0
        self.messages = 0
        self.compiles = 0
        self.invalidations = 0
        self.using_processes = False
        self._inline: Optional[BatchRing] = None
        self._blocks: list = []
        self._arrays: Dict[str, np.ndarray] = {}
        self._procs: list = []
        self._conns: list = []
        self._spans: List[Tuple[int, int]] = []
        self._config_dirty = False
        self._detached = False
        self._closed = False
        # Crash-safety guard: if this engine is dropped without close()
        # (parent died mid-run, worker restart), the finalizer still
        # releases pipes, processes and /dev/shm blocks.  It shares the
        # *same list objects* the engine mutates in place, so whatever a
        # graceful teardown already released is invisible to it.
        self._finalizer = weakref.finalize(
            self, _finalize_pool, self._conns, self._procs, self._blocks)
        ring.add_invalidation_listener(self._on_config_change)
        if self.workers > 1 and self._start_pool(self.workers):
            self.using_processes = True
        else:
            self._activate_inline()

    # -- shared-memory pool lifecycle ----------------------------------

    @staticmethod
    def _shared_memory_module():
        """The shm module, or None when the platform lacks it."""
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - platform dependent
            return None
        return shared_memory

    def _allocate_blocks(self, shared_memory) -> bool:
        """Create the lane blocks and the parent's full-batch views."""
        layers, width, depth = self._geometry
        try:
            for name, shape_of in BatchRing.ARRAY_SHAPES.items():
                shape = shape_of(layers, width, depth, self.batch)
                dtype = np.dtype(np.int64) if name in (
                    "underflows", "fifo_pops") else np.dtype(LANE_DTYPE)
                size = int(np.prod(shape)) * dtype.itemsize
                block = shared_memory.SharedMemory(create=True, size=size)
                self._blocks.append(block)
                self._arrays[name] = np.ndarray(shape, dtype=dtype,
                                                buffer=block.buf)
        except OSError:  # pragma: no cover - platform dependent
            self._release_blocks()
            return False
        return True

    def _release_blocks(self) -> None:
        """Close and unlink every shared block (idempotent).

        Blocks are popped as they are released, so a second call — or an
        overlapping run of the finalizer guard — finds an empty list and
        cannot double-unlink a segment the resource tracker already
        reclaimed.
        """
        self._arrays = {}
        while self._blocks:
            block = self._blocks.pop()
            try:
                block.close()
            except Exception:  # pragma: no cover - best effort
                pass
            try:
                block.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass

    def _bootstrap_snapshot(self):
        """Scalar snapshot of the parent ring for worker bringup.

        The parent ring may already point at *this* engine (resharding
        mid-run); hide it so the capture stays scalar-only.
        """
        from repro.core.snapshot import capture
        previous = getattr(self.ring, "_shard_engine", None)
        self.ring._shard_engine = None
        try:
            return capture(self.ring)
        finally:
            self.ring._shard_engine = previous

    def _start_pool(self, workers: int) -> bool:
        """Spawn *workers* processes over the shared blocks.

        Returns False (after cleaning up) whenever any piece of the
        multi-process machinery is unavailable, letting the caller fall
        back to the in-process engine.
        """
        shared_memory = self._shared_memory_module()
        if shared_memory is None:  # pragma: no cover - platform dependent
            return False
        import multiprocessing as mp
        try:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context(
                "fork" if "fork" in methods else methods[0])
        except Exception:  # pragma: no cover - platform dependent
            return False
        if not self._blocks and not self._allocate_blocks(shared_memory):
            return False  # pragma: no cover - platform dependent
        snapshot = self._bootstrap_snapshot()
        names = {name: block.name
                 for name, block in zip(BatchRing.ARRAY_SHAPES,
                                        self._blocks)}
        spans = shard_spans(self.batch, workers)
        procs, conns = [], []
        try:
            for lo, hi in spans:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, names, self._geometry,
                          self.ring.strict_fifos, self._cache_capacity,
                          snapshot, lo, hi, self.batch,
                          ctx.get_start_method() != "fork"),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
            for conn in conns:
                if not conn.poll(_SPAWN_TIMEOUT):
                    raise OSError("shard worker handshake timed out")
                reply = conn.recv()
                if reply[0] != "ready":
                    raise OSError(
                        f"shard worker failed to start: {reply[1:]}"
                    )
        except Exception:
            for conn in conns:
                try:
                    conn.close()
                except Exception:
                    pass
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5)
            return False
        # In-place so the weakref.finalize guard (which holds these very
        # list objects) always sees the live pool, never a stale copy.
        self._procs[:] = procs
        self._conns[:] = conns
        self._spans = spans
        self.workers = workers
        self._config_dirty = False
        self._sync_mirrors_from_ring()
        return True

    def _sync_mirrors_from_ring(self) -> None:
        """Adopt the parent ring's scalars as the pool-wide mirrors."""
        ring = self.ring
        heads = {sw._head for sw in ring._switches}
        if len(heads) != 1:  # pragma: no cover - heads move in lockstep
            raise SimulationError(
                "switch pipeline heads diverged; cannot shard"
            )
        self._head = ring._switches[0]._head
        for (l, p), cell in self._counters.items():
            cell[0] = ring._dnodes[l][p].local._counter

    def _stop_pool(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(5):
                    conn.recv()
            except (EOFError, OSError):
                pass
            try:
                conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        self._procs[:] = []
        self._conns[:] = []
        self._spans = []

    def _activate_inline(self) -> None:
        """Single-process fallback: one private in-process BatchRing."""
        self._inline = BatchRing(self.ring, self.batch)
        self._inline.set_plan_cache(self._cache_capacity)
        self.using_processes = False

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop the pool and release the shared blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.using_processes:
            self._stop_pool()
        self._release_blocks()
        if self._inline is not None:
            self._inline.detach()
            self._inline = None

    def detach(self) -> None:
        """Unhook from the ring's invalidation chain and shut down."""
        self.ring.remove_invalidation_listener(self._on_config_change)
        self._detached = True
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _on_config_change(self) -> None:
        if self.using_processes and not self._config_dirty:
            self._config_dirty = True
            self.invalidations += 1
            self.ring.plan_invalidations += 1

    # -- messaging ------------------------------------------------------

    def _check_live(self) -> None:
        if self._detached:
            raise SimulationError(
                "shard engine is detached from its ring")
        if self._closed:
            raise SimulationError("shard engine is closed")

    def _send_all(self, msg) -> None:
        for conn in self._conns:
            conn.send(msg)
        self.messages += len(self._conns)

    def _recv_all(self) -> list:
        replies = []
        for conn in self._conns:
            try:
                replies.append(conn.recv())
            except (EOFError, OSError):
                raise SimulationError("shard worker died mid-run")
        return replies

    def _broadcast(self, msg) -> list:
        self._send_all(msg)
        replies = self._recv_all()
        for reply in replies:
            if reply[0] == "error":
                raise SimulationError(reply[2])
        return [reply[1] for reply in replies]

    def _ask(self, worker: int, msg):
        conn = self._conns[worker]
        conn.send(msg)
        self.messages += 1
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            raise SimulationError("shard worker died mid-run")
        if reply[0] == "error":
            raise SimulationError(reply[2])
        return reply[1]

    def _owner(self, lane: int) -> Tuple[int, int]:
        """(worker index, lane index local to that worker)."""
        for w, (lo, hi) in enumerate(self._spans):
            if lo <= lane < hi:
                return w, lane - lo
        raise ConfigurationError(
            f"lane {lane} outside every shard span")  # pragma: no cover

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.batch:
            raise ConfigurationError(
                f"lane must be 0..{self.batch - 1}, got {lane}"
            )

    # -- configuration replication --------------------------------------

    def _sync_config(self) -> None:
        """Broadcast the parent configuration + scalars to the pool."""
        ring = self.ring
        plane = ring.config.capture_plane()
        counters = {
            key: ring._dnodes[key[0]][key[1]].local._counter
            for key in self._counters
        }
        stats = {
            (dn.layer, dn.position): tuple(
                getattr(dn.stats, name) for name in _STAT_FIELDS)
            for dn in ring.all_dnodes()
        }
        self._broadcast(("sync", plane, counters, stats,
                         ring.config_fingerprint()))
        self._sync_mirrors_from_ring()
        self._config_dirty = False
        self.syncs += 1

    def host_channels(self) -> set:
        """Host channel indices the current configuration reads."""
        channels = set()
        width = self.ring.geometry.width
        for sw in self.ring._switches:
            for pos in range(width):
                for port in (1, 2):
                    src = sw.config.source_for(pos, port)
                    if src.kind is PortKind.HOST:
                        channels.add(src.index)
        return channels

    # -- execution ------------------------------------------------------

    def run(self, cycles: int, bus: int = 0, host_in=None) -> int:
        """Advance every lane by *cycles* clocks across the pool.

        ``host_in`` may be None, a picklable :class:`ShardStimulus`
        (chunk mode), or any callable (per-cycle parent-resolved mode).
        Returns the number of cycles fully executed.
        """
        self._check_live()
        if cycles < 0:
            raise SimulationError(
                f"cycle count must be >= 0, got {cycles}")
        word.check(bus, "bus value")
        if self._inline is not None:
            host = host_in
            if isinstance(host_in, ShardStimulus):
                host = (lambda ch, _s=host_in, _r=self.ring:
                        _s.lane_words(ch, _r.cycles))
            return self._inline.run(cycles, bus, host)
        if self._config_dirty:
            self._sync_config()
        if host_in is None or isinstance(host_in, ShardStimulus):
            executed = self._chunk_run(cycles, bus, host_in)
        else:
            executed = self._percycle_run(cycles, bus, host_in)
        self.ring.last_bus = bus
        return executed

    def step(self, bus: int = 0, host_in=None) -> None:
        """Advance every lane by one clock cycle."""
        self.run(1, bus=bus, host_in=host_in)

    def _chunk_run(self, cycles: int, bus: int,
                   stim: Optional[ShardStimulus]) -> int:
        for conn, (lo, hi) in zip(self._conns, self._spans):
            shard_stim = None if stim is None else stim.sliced(lo, hi)
            conn.send(("run", cycles, bus, shard_stim))
        self.messages += len(self._conns)
        replies = self._recv_all()
        self.chunks += 1
        return self._apply_run_replies(replies)

    def _percycle_run(self, cycles: int, bus: int, host_in) -> int:
        channels = sorted(self.host_channels())
        executed = 0
        for _ in range(cycles):
            words = {}
            for channel in channels:
                value = host_in(channel)
                if isinstance(value, (int, np.integer)):
                    words[channel] = word.check(
                        int(value), f"host channel {channel}")
                else:
                    arr = np.asarray(value)
                    if arr.shape != (self.batch,):
                        raise SimulationError(
                            f"host channel {channel} batch read must "
                            f"have shape ({self.batch},), got {arr.shape}"
                        )
                    words[channel] = arr
            for conn, (lo, hi) in zip(self._conns, self._spans):
                shard_words = {
                    ch: _slice_words(value, lo, hi)
                    for ch, value in words.items()
                }
                conn.send(("run", 1, bus,
                           _WordsStimulus(shard_words)))
            self.messages += len(self._conns)
            replies = self._recv_all()
            self.chunks += 1
            executed += self._apply_run_replies(replies,
                                                per_cycle=True)
        return executed

    def _apply_run_replies(self, replies: list,
                           per_cycle: bool = False) -> int:
        """Fold the workers' chunk reports into the parent mirrors.

        All shards execute lane-invariant control, so their reports
        agree except after a strict-FIFO abort, where the parent adopts
        the earliest-aborting shard's state and re-raises its error.
        """
        error = None
        best = None
        for reply in replies:
            if reply[0] == "error":
                control = reply[3]
                if error is None or control["cycles"] < error[1]["cycles"]:
                    error = (reply[2], control)
            else:
                control = reply[1]
                if best is None or control["cycles"] < best["cycles"]:
                    best = control
        control = error[1] if error is not None else best
        self._apply_control(control)
        if error is not None:
            raise SimulationError(error[0])
        return best.get("executed", 0)

    def _apply_control(self, control: dict) -> None:
        ring = self.ring
        ring.cycles = control["cycles"]
        self._head = control["head"]
        for key, value in control["counters"].items():
            self._counters[key][0] = value
        _apply_scalars(ring, control["counters"], control["stats"])
        self.compiles = control["compiles"]

    # -- lane state access ---------------------------------------------

    @property
    def lane_underflows(self) -> np.ndarray:
        if self._inline is not None:
            return self._inline.lane_underflows
        return self._arrays["underflows"]

    @property
    def lane_fifo_pops(self) -> Dict[Tuple[int, int], np.ndarray]:
        if self._inline is not None:
            return self._inline.lane_fifo_pops
        pops = self._arrays["fifo_pops"]
        layers, width, _ = self._geometry
        return {(l, p): pops[l, p]
                for l in range(layers) for p in range(width)}

    def lane_outs(self, layer: int, position: int) -> np.ndarray:
        """The OUT register of one Dnode across all lanes (a copy)."""
        if self._inline is not None:
            return self._inline.lane_outs(layer, position)
        self.ring.dnode(layer, position)
        return self._arrays["outs"][layer, position].copy()

    def lane_regs(self, layer: int, position: int) -> np.ndarray:
        """The register file of one Dnode across all lanes (a copy)."""
        if self._inline is not None:
            return self._inline.lane_regs(layer, position)
        self.ring.dnode(layer, position)
        return self._arrays["regs"][layer, position].copy()

    def fifo_contents(self, layer: int, position: int, channel: int,
                      lane: int) -> List[int]:
        """One lane's view of a Dnode input FIFO."""
        if self._inline is not None:
            return self._inline.fifo_contents(layer, position, channel,
                                              lane)
        self._check_lane(lane)
        worker, local = self._owner(lane)
        dump = self._ask(worker, ("fifos", local))
        return dump.get((layer, position, channel), [])

    def push_fifo(self, layer: int, position: int, channel: int,
                  values, lane: Optional[int] = None) -> None:
        """Queue words on one lane's FIFO (``lane=None`` = every lane)."""
        if self._inline is not None:
            self._inline.push_fifo(layer, position, channel, values,
                                   lane=lane)
            return
        self._check_live()
        self.ring.dnode(layer, position)
        if channel not in (1, 2):
            raise ConfigurationError(
                f"FIFO channel must be 1 or 2, got {channel}"
            )
        if isinstance(values, (int, np.integer)):
            values = [int(values)]
        checked = [word.check(int(v), "FIFO push") for v in values]
        key = (layer, position, channel)
        if lane is None:
            self._broadcast(("push", key, checked, None))
            return
        self._check_lane(lane)
        worker, local = self._owner(lane)
        self._ask(worker, ("push", key, checked, local))

    def set_plan_cache(self, capacity: int) -> None:
        """Resize every worker's kernel cache (0 disables caching)."""
        self._cache_capacity = capacity
        if self._inline is not None:
            self._inline.set_plan_cache(capacity)
            return
        self._broadcast(("cache", capacity))

    # -- state writeback ------------------------------------------------

    def store_lane(self, lane: int = 0,
                   target: Optional["Ring"] = None) -> None:
        """Write one lane's datapath state into a scalar ring.

        Mirrors :meth:`BatchRing.store_lane`: dense state comes straight
        from the shared blocks, FIFO words from the lane's owning
        worker, lane-invariant control from the parent mirrors.
        """
        if self._inline is not None:
            self._inline.store_lane(lane, target)
            return
        self._check_live()
        self._check_lane(lane)
        ring = self.ring
        if target is None:
            target = ring
        g = ring.geometry
        if target.geometry != g:
            raise ConfigurationError(
                f"target geometry {target.geometry} != {g}"
            )
        worker, local = self._owner(lane)
        fifos = self._ask(worker, ("fifos", local))
        outs = self._arrays["outs"]
        regs = self._arrays["regs"]
        pipes = self._arrays["pipes"]
        pops = self._arrays["fifo_pops"]
        for l in range(g.layers):
            for p in range(g.width):
                src = ring._dnodes[l][p]
                dn = target._dnodes[l][p]
                dn._out = int(outs[l, p, lane])
                dn._out_pending = None
                vals = dn.regs._values
                for r in range(NUM_REGISTERS):
                    vals[r] = int(regs[l, p, r, lane])
                dn.local._counter = self._counters[(l, p)][0]
                stats, sstats = dn.stats, src.stats
                stats.cycles = sstats.cycles
                stats.instructions = sstats.instructions
                stats.arithmetic_ops = sstats.arithmetic_ops
                stats.multiplies = sstats.multiplies
                stats.fifo_pops = int(pops[l, p, lane])
        for l in range(g.layers):
            sw = target._switches[l]
            sw._head = self._head
            for j in range(g.width):
                pipe = sw._pipes[j]
                col = pipes[l, j, :, lane]
                for d in range(g.pipeline_depth):
                    pipe[d] = int(col[d])
        for key, contents in fifos.items():
            queue = target.fifo(*key)
            queue.clear()
            queue.extend(contents)
        target.cycles = ring.cycles
        target.fifo_underflows = int(self._arrays["underflows"][lane])
        if target is not ring:
            target.last_bus = ring.last_bus

    # -- lane checkpointing / migration ---------------------------------

    def capture_lanes(self) -> dict:
        """Freeze the full cross-shard lane state as plain Python data.

        Same format as :meth:`BatchRing.capture_lanes`, so snapshots,
        digests and cross-engine comparisons are interchangeable — and
        so a capture taken at one worker count restores at any other
        (the migration path for :meth:`set_workers`).
        """
        if self._inline is not None:
            return self._inline.capture_lanes()
        self._check_live()
        dumps = self._broadcast(("fifos", None))
        merged: Dict[tuple, List[List[int]]] = {}
        keys = set()
        for dump in dumps:
            keys.update(dump.keys())
        for key in keys:
            lanes: List[List[int]] = []
            for dump, (lo, hi) in zip(dumps, self._spans):
                lanes.extend(dump.get(key, [[] for _ in range(hi - lo)]))
            merged[key] = lanes
        return {
            "batch": self.batch,
            "outs": self._arrays["outs"].tolist(),
            "regs": self._arrays["regs"].tolist(),
            "pipes": self._arrays["pipes"].tolist(),
            "head": self._head,
            "counters": {key: cell[0]
                         for key, cell in self._counters.items()},
            "fifos": merged,
            "lane_underflows": self._arrays["underflows"].tolist(),
            "lane_fifo_pops": {
                key: self._arrays["fifo_pops"][key].tolist()
                for key in self._counters
            },
        }

    def restore_lanes(self, state: dict) -> None:
        """Load a :meth:`capture_lanes` snapshot across the pool.

        The dense families are written straight into shared memory; each
        worker receives its slice of the FIFO words plus the scalar
        mirrors, rebuilds its queues, and drops its kernels exactly as
        :meth:`BatchRing.restore_lanes` does.
        """
        if self._inline is not None:
            self._inline.restore_lanes(state)
            return
        self._check_live()
        if state["batch"] != self.batch:
            raise SimulationError(
                f"lane snapshot holds {state['batch']} lanes; engine has "
                f"{self.batch}"
            )
        self._arrays["outs"][:] = np.asarray(state["outs"],
                                             dtype=LANE_DTYPE)
        self._arrays["regs"][:] = np.asarray(state["regs"],
                                             dtype=LANE_DTYPE)
        self._arrays["pipes"][:] = np.asarray(state["pipes"],
                                              dtype=LANE_DTYPE)
        self._arrays["underflows"][:] = np.asarray(
            state["lane_underflows"], dtype=np.int64)
        for key, counts in state["lane_fifo_pops"].items():
            self._arrays["fifo_pops"][key][:] = np.asarray(
                counts, dtype=np.int64)
        self._head = state["head"]
        for key, value in state["counters"].items():
            self._counters[key][0] = value
        ring = self.ring
        stats = {
            (dn.layer, dn.position): tuple(
                getattr(dn.stats, name) for name in _STAT_FIELDS)
            for dn in ring.all_dnodes()
        }
        for conn, (lo, hi) in zip(self._conns, self._spans):
            meta = {
                "cycles": ring.cycles,
                "head": state["head"],
                "counters": state["counters"],
                "stats": stats,
                "fifos": {key: lanes[lo:hi]
                          for key, lanes in state["fifos"].items()},
            }
            conn.send(("restore", meta))
        self.messages += len(self._conns)
        for reply in self._recv_all():
            if reply[0] == "error":
                raise SimulationError(reply[2])
        # Re-align the scalar mirror with the restored lane 0 — the same
        # writeback contract as the in-process engine.
        self.store_lane(0)

    def set_workers(self, workers: int) -> None:
        """Elastically reshard: migrate every lane to a new pool width.

        Captures the full lane state, rebuilds the worker pool at the
        new width (or drops to the in-process engine at 1), and restores
        the lanes onto the new slicing — bit-identical migration, proven
        by the reshard differential tests.
        """
        self._check_live()
        if workers < 1:
            raise ConfigurationError(
                f"shard workers must be >= 1, got {workers}"
            )
        self.workers_requested = min(workers, self.batch)
        workers = min(self.workers_requested, max_shard_workers())
        if workers == self.workers and (
                self.using_processes or workers == 1):
            return
        state = self.capture_lanes()
        if self._inline is not None:
            self._inline.detach()
            self._inline = None
        elif self.using_processes:
            self._stop_pool()
        if workers > 1 and self._start_pool(workers):
            self.using_processes = True
        else:
            self.workers = min(workers, 1) or 1
            self._activate_inline()
        self.restore_lanes(state)
        self.reshards += 1

    def __repr__(self) -> str:
        g = self.ring.geometry
        mode = (f"{self.workers} workers" if self.using_processes
                else "inline")
        return (
            f"ShardedBatchRing(Ring-{g.dnodes} x {self.batch} lanes, "
            f"{mode}, cycle={self.ring.cycles})"
        )


class _WordsStimulus(ShardStimulus):
    """Pre-resolved per-cycle host words (parent-resolved mode)."""

    def __init__(self, words: Dict[int, object]):
        self.words = words

    def lane_words(self, channel: int, cycle: int):
        return self.words[channel]

    def sliced(self, lo: int, hi: int) -> "_WordsStimulus":
        return _WordsStimulus({
            ch: _slice_words(value, lo, hi)
            for ch, value in self.words.items()
        })


__all__ = [
    "ShardedBatchRing",
    "ShardStimulus",
    "CycleStimulus",
    "FnStimulus",
    "StreamStimulus",
    "shard_spans",
]
