#!/usr/bin/env python
"""Quickstart: build a Systolic Ring, run DSP macro-operators, read stats.

Walks the three ways of using the library in ~60 lines:

1. a stand-alone local-mode macro-operator (single-cycle MAC dot product);
2. a spatial pipeline built through the high-level kernel API (FIR);
3. the raw-power numbers of §5.1 computed from the same models.

Run:  python examples/quickstart.py
"""

from repro import make_ring
from repro.analysis import comparative_summary, render_table
from repro.analysis.mips import measured_mips
from repro.kernels.fir import spatial_fir
from repro.kernels.iir import mac_accumulate
from repro.kernels.reference import fir as reference_fir


def demo_mac() -> None:
    """One Dnode in local mode: a multiply-accumulate every cycle."""
    a = [3, -1, 4, 1, -5, 9, 2, 6]
    b = [2, 7, 1, -8, 2, 8, 1, -8]
    ring = make_ring(8)
    result = mac_accumulate(a, b, ring=ring)
    print(f"dot({a}, {b}) = {result}")
    print(f"  fabric cycles : {ring.cycles} (1 MAC/cycle, as the paper "
          "claims)")
    print(f"  sustained MIPS: {measured_mips(ring):.0f} "
          "(one busy Dnode of eight at 200 MHz)\n")


def demo_fir() -> None:
    """A 4-tap transversal filter: one tap per ring layer."""
    taps = [2, -3, 1, 4]
    signal = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3]
    result = spatial_fir(taps, signal)
    assert result.outputs == reference_fir(signal, taps)
    print(f"FIR taps {taps} over {signal}")
    print(f"  outputs       : {result.outputs}")
    print(f"  throughput    : {result.samples_per_cycle:.0f} sample/cycle "
          f"on {result.dnodes_used} Dnodes (bit-exact vs reference)\n")


def demo_raw_power() -> None:
    """The paper's §5.1 comparative numbers, from the models."""
    summary = comparative_summary()
    rows = [
        ["Ring-8 peak MIPS", summary["ring_peak_mips"]],
        ["Ring-8 peak MOPS (dual op)", summary["ring_peak_mops"]],
        ["Pentium II 450 sustained MIPS", summary["cpu_mips"]],
        ["speedup vs CPU", summary["speedup_vs_cpu"]],
        ["direct-port bandwidth (GB/s)", summary["theoretical_bw_gb_s"]],
        ["PCI protocol bandwidth (GB/s)", summary["pci_bw_gb_s"]],
    ]
    print(render_table(["metric", "value"], rows,
                       title="Raw power (paper §5.1)"))


def main() -> None:
    demo_mac()
    demo_fir()
    demo_raw_power()


if __name__ == "__main__":
    main()
