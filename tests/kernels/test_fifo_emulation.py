"""Tests for the FIFO / delay-line macro-operator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.kernels.fifo_emulation import (
    build_delay_line,
    delay_line,
    plan_delay,
)

SIGNAL = [5, 3, -2, 7, 1, -4, 6, 2]


class TestPlan:
    def test_depth_one_needs_two_hops(self):
        plan = plan_delay(1)
        assert plan.taps_per_hop == [1, 1]
        assert plan.dnodes_used == 2

    def test_total_latency_is_depth_plus_one(self):
        for depth in range(1, 20):
            plan = plan_delay(depth)
            assert sum(plan.taps_per_hop) == depth + 1

    def test_pipeline_taps_save_dnodes(self):
        # 12 cycles of delay in 4 Dnodes instead of 13
        assert plan_delay(12).dnodes_used == 4

    def test_first_hop_is_direct(self):
        for depth in (1, 5, 9):
            assert plan_delay(depth).taps_per_hop[0] == 1

    def test_depth_validated(self):
        with pytest.raises(ConfigurationError):
            plan_delay(0)


class TestDelayLine:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4, 5, 7, 12])
    def test_output_is_delayed_input(self, depth):
        out = delay_line(SIGNAL, depth)
        assert out == ([0] * depth + SIGNAL)[:len(SIGNAL)]

    def test_ring_too_short_rejected(self):
        from repro.core.ring import Ring, RingGeometry
        ring = Ring(RingGeometry.ring(4))   # 2 layers
        with pytest.raises(ConfigurationError, match="layers"):
            build_delay_line(20, ring)

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=16),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_fifo_semantics(self, signal, depth):
        out = delay_line(signal, depth)
        assert out == ([0] * depth + signal)[:len(signal)]
