"""Tests for the Fig. 6 word memories."""

import numpy as np
import pytest

from repro.host.memory import WordMemory
from repro.errors import HostError


class TestBasics:
    def test_powers_on_zeroed(self):
        mem = WordMemory(16)
        assert mem.read(0) == 0
        assert len(mem) == 16

    def test_write_read(self):
        mem = WordMemory(16)
        mem.write(3, 0xBEEF)
        assert mem.read(3) == 0xBEEF

    def test_bounds(self):
        mem = WordMemory(4, name="video")
        with pytest.raises(HostError, match="video"):
            mem.read(4)
        with pytest.raises(HostError):
            mem.write(-1, 0)

    def test_value_canonical(self):
        with pytest.raises(ValueError):
            WordMemory(4).write(0, 0x10000)

    def test_size_validated(self):
        with pytest.raises(HostError):
            WordMemory(0)


class TestBulk:
    def test_load_returns_count(self):
        mem = WordMemory(8)
        assert mem.load([1, 2, 3], base=2) == 3
        assert mem.dump(2, 3) == [1, 2, 3]

    def test_dump_to_end(self):
        mem = WordMemory(4)
        mem.load([9, 9, 9, 9])
        assert mem.dump(2) == [9, 9]

    def test_dump_bounds(self):
        with pytest.raises(HostError):
            WordMemory(4).dump(0, 5)


class TestImages:
    def test_image_roundtrip_signed(self):
        mem = WordMemory(64)
        img = np.array([[1, -2], [30000, -30000]])
        mem.load_image(img)
        assert np.array_equal(mem.read_image((2, 2)), img)

    def test_image_roundtrip_unsigned(self):
        mem = WordMemory(64)
        img = np.array([[0, 65535], [1, 2]], dtype=np.uint16)
        mem.load_image(img.astype(np.int64))
        back = mem.read_image((2, 2), signed=False)
        assert np.array_equal(back, img)

    def test_image_at_base(self):
        mem = WordMemory(64)
        img = np.arange(4).reshape(2, 2)
        mem.load_image(img, base=10)
        assert np.array_equal(mem.read_image((2, 2), base=10), img)

    def test_rejects_non_2d(self):
        with pytest.raises(HostError):
            WordMemory(64).load_image(np.arange(4))
