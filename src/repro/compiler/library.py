"""Named kernel-graph library: canonical DSP workloads as dataflow graphs.

The paper's application set (§5) — filtering and transform kernels — as
ready-made :class:`~repro.compiler.graph.DataflowGraph` builders, used by
the ``autotune`` CLI, the benchmarks, and the conformance fuzzer's seed
corpus.  Every builder returns a fresh graph (graphs are mutable), and
every graph here streams one sample per cycle from host channel 0
(plus channel 1 where noted).

The shapes are deliberately diverse for the mapping-space search:

* ``fir8``  — direct-form FIR with a mov relay chain (deep and narrow:
  width 3, ~10 levels);
* ``dct4``  — 4-point DCT-II butterfly over a sliding window, gathered
  through the feedback pipelines (shallow and wide: width 6, 4 levels,
  delayed operands that make lane order matter);
* ``cmul``  — complex multiply of two interleaved streams (two input
  channels);
* ``envelope`` — rectify + smooth envelope follower (the worked example
  from ``examples/dataflow_compiler.py``).

The scenario library (:mod:`repro.kernels`) contributes the rest of the
catalogue: shift-add CORDIC rotation/vectoring (``cordic4`` /
``cordic_vec4``), the NCO's parabolic sine shaper (``nco_wave``),
polyphase 2x/3x resamplers (``up2``/``down2``/``up3``/``down3``), gain
staging (``vca``/``mixer4``), the chorus voice (``chorus6``) and
same-cycle complex arithmetic (``cmul4``/``cmag``).  Each is the exact
graph the corresponding ``*_fabric`` runner executes, so the autotuner
and fuzzer exercise the shipping recipes, not toys.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.compiler.graph import CompileError, DataflowGraph

#: Default FIR-8 coefficient set (small signed integers, overflow-safe
#: against 16-bit accumulation for byte-ish inputs).
FIR8_TAPS = (3, -1, 4, 1, -5, 9, 2, -6)

#: Scaled DCT-4 cosine weights (>>0 kept integral: 2*cos(pi/8*k) style
#: small integers — exactness does not matter, the fabric arithmetic is
#: the spec and the golden evaluator follows it bit-for-bit).
DCT4_C1, DCT4_C3 = 5, 2


def fir8(taps=FIR8_TAPS) -> DataflowGraph:
    """Direct-form FIR-8: a mov relay chain feeding one MAC cascade."""
    g = DataflowGraph()
    x = g.input(0)
    acc = g.op("mul", x, g.const(taps[0]))
    tap = x
    for c in taps[1:]:
        tap = g.op("mov", tap)
        acc = g.op("add", acc, g.op("mul", tap, g.const(c)))
    g.output(acc)
    return g


def dct4() -> DataflowGraph:
    """4-point DCT-II butterfly over a sliding input window.

    The window x[n..n-3] is gathered through the switches' feedback
    pipelines (delays 1..3 cost nothing), so level 2 carries four
    butterfly sums whose shared producer is read through ``Rp`` taps —
    the placement that makes the autotuner's lane-order dimension earn
    its keep.
    """
    g = DataflowGraph()
    x = g.input(0)
    x1, x2, x3 = g.delay(x, 1), g.delay(x, 2), g.delay(x, 3)
    u = g.op("add", x, x3)         # x[n]   + x[n-3]
    v = g.op("add", x1, x2)        # x[n-1] + x[n-2]
    d0 = g.op("sub", x, x3)
    d1 = g.op("sub", x1, x2)
    c1, c3 = g.const(DCT4_C1), g.const(DCT4_C3)
    g.output(g.op("add", u, v))                         # X0
    g.output(g.op("add", g.op("mul", d0, c1),
                  g.op("mul", d1, c3)))                 # X1
    g.output(g.op("sub", u, v))                         # X2
    g.output(g.op("sub", g.op("mul", d0, c3),
                  g.op("mul", d1, c1)))                 # X3
    return g


def cmul() -> DataflowGraph:
    """Complex multiply: (a+jb)(c+jd) with re/im on channels 0/1.

    Interprets channel 0 as the real parts (a then c via a 1-cycle
    delay) and channel 1 as the imaginary parts — a compact stand-in for
    the paper's modem-style kernels with two live input streams.
    """
    g = DataflowGraph()
    re = g.input(0)
    im = g.input(1)
    re_d = g.delay(re, 1)
    im_d = g.delay(im, 1)
    g.output(g.op("sub", g.op("mul", re, re_d),
                  g.op("mul", im, im_d)))               # ac - bd
    g.output(g.op("add", g.op("mul", re, im_d),
                  g.op("mul", im, re_d)))               # ad + bc
    return g


def envelope() -> DataflowGraph:
    """Envelope follower: |x - x[n-2]| smoothed by a 2-tap average."""
    g = DataflowGraph()
    x = g.input(0)
    rect = g.op("abs", g.op("sub", x, g.delay(x, 2)))
    g.output(g.op("avg2", rect, g.delay(rect, 1)))
    return g


def _scenario(module: str, builder: str,
              *args) -> Callable[[], DataflowGraph]:
    """Deferred scenario-library builder.

    The kernels package imports the compiler (codegen) at module scope,
    so the library must import the kernels lazily — at build time the
    cycle is long resolved.
    """
    def build() -> DataflowGraph:
        import importlib
        module_obj = importlib.import_module(f"repro.kernels.{module}")
        return getattr(module_obj, builder)(*args)
    build.__name__ = builder
    return build


#: name -> builder; the CLI, benchmarks and fuzzer seed corpus index this.
GRAPH_LIBRARY: Dict[str, Callable[[], DataflowGraph]] = {
    "fir8": fir8,
    "dct4": dct4,
    "cmul": cmul,
    "envelope": envelope,
    "cordic4": _scenario("cordic", "rotation_graph", 4),
    "cordic_vec4": _scenario("cordic", "vectoring_graph", 4),
    "nco_wave": _scenario("nco", "shaper_graph"),
    "up2": _scenario("resampler", "upsample2_graph"),
    "down2": _scenario("resampler", "downsample2_graph"),
    "up3": _scenario("resampler", "upsample3_graph"),
    "down3": _scenario("resampler", "downsample3_graph"),
    "vca": _scenario("mixer", "vca_graph"),
    "mixer4": _scenario("mixer", "mixer_graph"),
    "chorus6": _scenario("effects", "chorus_graph"),
    "cmul4": _scenario("complex_ops", "cmul4_graph"),
    "cmag": _scenario("complex_ops", "cmag_graph"),
}


def build_graph(name: str) -> DataflowGraph:
    """Instantiate a library graph by name (:data:`GRAPH_LIBRARY` key)."""
    try:
        builder = GRAPH_LIBRARY[name]
    except KeyError:
        raise CompileError(
            f"unknown library graph {name!r}; available: "
            f"{', '.join(sorted(GRAPH_LIBRARY))}")
    return builder()


def library_streams(graph: DataflowGraph, length: int,
                    seed: int = 2002) -> Dict[int, List[int]]:
    """Deterministic signed sample streams for every input channel.

    A tiny LCG keeps this dependency-free and bit-stable across hosts;
    values stay small so multiply-accumulate graphs cannot overflow into
    behaviour that differs between engines only by wrap timing.
    """
    state = seed & 0x7FFFFFFF
    streams: Dict[int, List[int]] = {}
    for channel in graph.input_channels():
        samples = []
        for _ in range(length):
            state = (1103515245 * state + 12345) & 0x7FFFFFFF
            samples.append((state >> 16) % 61 - 30)
        streams[channel] = samples
    return streams
