"""Smoke tests: every shipped example must run green end to end.

Each example asserts its own correctness internally (fabric vs golden),
so simply executing ``main()`` is a meaningful integration test.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "assembly_programming",
    "dataflow_compiler",
    "soc_explorer",
    "motion_estimation",
    "wavelet_compression",
    "vga_prototype",
    "video_codec_frontend",
    "waveform_debugging",
    "adaptive_lms",
    "synth_voice",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_quickstart_prints_paper_numbers(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "1600" in out      # Ring-8 peak MIPS
    assert "3.20" in out      # theoretical bandwidth


def test_motion_estimation_prints_speedups(capsys):
    _load("motion_estimation").main()
    out = capsys.readouterr().out
    assert "Ring vs MMX speedup" in out


def test_soc_explorer_prints_table3(capsys):
    _load("soc_explorer").main()
    out = capsys.readouterr().out
    assert "Table 3" in out and "0.18um" in out
