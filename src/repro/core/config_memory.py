"""Configuration layer: the rewritable configuration of the operative layer.

Paper §3: "The configuration layer follows the same principle as FPGAs, it's
a [memory] which contains the configuration of all the components (Dnodes
and interconnect) of the operative layer", and the controller "is able to
change up to the entire content ... each clock cycle thanks to its dedicated
instruction set".

:class:`ConfigMemory` is the single write path into the fabric's
configuration state: Dnode global microwords, execution modes, local
sequencer contents and switch routing.  :class:`ConfigPlane` captures a full
snapshot that can be re-applied in one shot — that is how the controller's
``CPLANE`` instruction changes the entire fabric configuration in a single
cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.core.dnode import DnodeMode
from repro.core.isa import MicroWord
from repro.core.switch import PortSource
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.ring import Ring

DnodeAddr = Tuple[int, int]          # (layer, position)
SwitchRouteAddr = Tuple[int, int, int]  # (switch index, position, port)


@dataclass(frozen=True)
class ConfigPlane:
    """Immutable full-fabric configuration snapshot."""

    microwords: Dict[DnodeAddr, MicroWord] = field(default_factory=dict)
    modes: Dict[DnodeAddr, DnodeMode] = field(default_factory=dict)
    local_programs: Dict[DnodeAddr, Tuple[Tuple[MicroWord, ...], int]] = field(
        default_factory=dict
    )
    switch_routes: Dict[SwitchRouteAddr, PortSource] = field(
        default_factory=dict
    )


class ConfigMemory:
    """Write interface from the configuration controller into the fabric.

    Every mutating method validates its address against the ring geometry,
    so a buggy controller program fails loudly instead of silently
    configuring a non-existent Dnode.
    """

    def __init__(self, ring: "Ring"):
        self._ring = ring
        self.writes = 0  # total configuration words written (A1 ablation)

    # Every mutator below lands on a Dnode / LocalController / SwitchConfig
    # setter whose change hook invalidates the ring's pre-decoded fast-path
    # plan, so a write at cycle t always governs the fabric from cycle t on
    # regardless of which execution engine is active.

    # -- Dnode configuration -------------------------------------------

    def write_microword(self, layer: int, position: int,
                        microword: MicroWord) -> None:
        """Set the global-mode microinstruction of one Dnode."""
        self._ring.dnode(layer, position).configure(microword)
        self.writes += 1

    def write_mode(self, layer: int, position: int, mode: DnodeMode) -> None:
        """Switch one Dnode between global and local execution."""
        self._ring.dnode(layer, position).set_mode(mode)
        self.writes += 1

    def write_local_slot(self, layer: int, position: int, slot: int,
                         microword: MicroWord) -> None:
        """Load one instruction register of a Dnode's local sequencer."""
        self._ring.dnode(layer, position).local.load_slot(slot, microword)
        self.writes += 1

    def write_local_limit(self, layer: int, position: int,
                          limit: int) -> None:
        """Write the LIMIT register of a Dnode's local sequencer."""
        self._ring.dnode(layer, position).local.set_limit(limit)
        self.writes += 1

    def write_local_program(self, layer: int, position: int,
                            program: List[MicroWord]) -> None:
        """Load a whole local loop (slots + LIMIT + counter reset)."""
        self._ring.dnode(layer, position).local.load_program(program)
        self.writes += len(program) + 1

    # -- Switch configuration ------------------------------------------

    def write_switch_route(self, switch_index: int, position: int,
                           port: int, source: PortSource) -> None:
        """Connect one downstream input port of one switch."""
        self._ring.switch(switch_index).config.route(position, port, source)
        self.writes += 1

    # -- Planes ----------------------------------------------------------

    def capture_plane(self) -> ConfigPlane:
        """Snapshot the entire current fabric configuration."""
        micro: Dict[DnodeAddr, MicroWord] = {}
        modes: Dict[DnodeAddr, DnodeMode] = {}
        local: Dict[DnodeAddr, Tuple[Tuple[MicroWord, ...], int]] = {}
        routes: Dict[SwitchRouteAddr, PortSource] = {}
        for layer in range(self._ring.geometry.layers):
            for pos in range(self._ring.geometry.width):
                dn = self._ring.dnode(layer, pos)
                micro[(layer, pos)] = dn.global_word
                modes[(layer, pos)] = dn.mode
                local[(layer, pos)] = (tuple(dn.local.slots()),
                                       dn.local.limit)
        for si in range(self._ring.geometry.layers):
            sw = self._ring.switch(si)
            for pos in range(sw.width):
                for port in (1, 2):
                    routes[(si, pos, port)] = sw.config.source_for(pos, port)
        return ConfigPlane(micro, modes, local, routes)

    def apply_plane(self, plane: ConfigPlane) -> None:
        """Apply a snapshot to the whole fabric (one-cycle reconfiguration).

        Counts as a single configuration write burst: the paper's wide
        configuration path, not per-word controller traffic.
        """
        if not isinstance(plane, ConfigPlane):
            raise ConfigurationError(
                f"expected ConfigPlane, got {type(plane).__name__}"
            )
        for (layer, pos), mw in plane.microwords.items():
            self._ring.dnode(layer, pos).configure(mw)
        for (layer, pos), mode in plane.modes.items():
            self._ring.dnode(layer, pos).set_mode(mode)
        for (layer, pos), (slots, limit) in plane.local_programs.items():
            local = self._ring.dnode(layer, pos).local
            for i, mw in enumerate(slots):
                local.load_slot(i, mw)
            local.set_limit(limit)
        for (si, pos, port), src in plane.switch_routes.items():
            self._ring.switch(si).config.route(pos, port, src)
        # Belt and braces: a plane write is a whole-fabric reconfiguration,
        # so drop any compiled fast-path plan even if the plane was empty.
        self._ring._invalidate_fastpath()
        self.writes += 1
