"""Tests for the disassembler."""

from repro.asm import assemble
from repro.asm.disasm import disassemble, disassemble_plane

SRC = """
.ring boot
dnode 0.0 global
    add out, in1, #5
dnode 1.0 local
    mul out, in1, #3
    nop
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- rp(2,1)

.risc
        cfgword patch, shl out, in1, #1
start:  ldi r1, 10
loop:   addi r1, r1, -1
        bne r1, r2, loop
        cfgdi d0.0, patch
        cfgplane boot
        halt
"""


def _obj():
    return assemble(SRC, layers=4, width=2)


class TestPlaneListing:
    def test_plane_reassembles_identically(self):
        """The `.ring` part of a disassembly is valid assembler input
        producing an equivalent plane."""
        obj = _obj()
        listing = disassemble_plane(obj, obj.planes[0])
        reassembled = assemble(listing, layers=4, width=2)
        a, b = obj.planes[0], reassembled.planes[0]
        # resolve ROM indices to values for comparison
        def resolved(plane, rom):
            return {
                "words": sorted((d, rom[r]) for d, r in plane.dnode_words),
                "modes": sorted(plane.modes),
                "slots": sorted((d, s, rom[r])
                                for d, s, r in plane.local_slots),
                "limits": sorted(plane.local_limits),
                "routes": sorted((sw, p, q, rom[r])
                                 for sw, p, q, r in plane.routes),
            }
        assert resolved(a, obj.cfg_rom) == resolved(b, reassembled.cfg_rom)

    def test_local_program_rendered(self):
        obj = _obj()
        listing = disassemble_plane(obj, obj.planes[0])
        assert "dnode 1.0 local" in listing
        assert "mul out, in1, #3" in listing

    def test_route_rendered(self):
        listing = disassemble_plane(_obj(), _obj().planes[0])
        assert "route 0.1 <- rp(2,1)" in listing


class TestControllerListing:
    def test_labels_resolved(self):
        listing = disassemble(_obj())
        assert "start:" in listing
        assert "loop:" in listing
        assert "bne r1, r2, loop" in listing

    def test_config_operands_decoded_inline(self):
        listing = disassemble(_obj())
        assert "cfgdi d0.0, [shl out, in1, #1]" in listing
        assert "cfgplane boot" in listing

    def test_addresses_annotated(self):
        listing = disassemble(_obj())
        assert "; 0000" in listing

    def test_every_instruction_rendered(self):
        obj = _obj()
        listing = disassemble(obj)
        risc_lines = [ln for ln in listing.splitlines() if "; 0" in ln]
        assert len(risc_lines) == len(obj.program)
