"""Profiler: utilisation and operator-mix reports from fabric statistics.

The second half of the paper's future-work tool.  Works on any
:class:`~repro.core.ring.Ring` that has run: the per-Dnode activity
counters (cycles, instructions, elementary operations, multiplies, FIFO
traffic) become a utilisation table, plus aggregate numbers the §5.1
analysis consumes (sustained MIPS at a given clock).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.analysis.report import render_table
from repro.core.ring import Ring
from repro.errors import SimulationError
from repro.host.dma import DEFAULT_CLOCK_HZ


def measured_cycles_per_second(ring: Ring, cycles: int,
                               bus: int = 0,
                               host_in: Optional[Callable[[int], int]] = None,
                               warmup: Optional[int] = None,
                               repeats: int = 2) -> float:
    """Steady-state throughput of *ring*'s current configuration+engine.

    Runs a warm-up chunk first (so plan compilation, macro/native codegen
    and any jit cost stay out of the timed region — see
    :meth:`repro.core.ring.Ring.profile`), then times *repeats* runs of
    *cycles* each and returns the best cycles/s.  This is the scoring
    primitive the compiler autopilot ranks candidate mappings with.
    """
    if cycles < 1:
        raise SimulationError(f"need >= 1 scored cycle, got {cycles}")
    if warmup is None:
        warmup = max(8, cycles // 4)
    best = 0.0
    for _ in range(repeats):
        with ring.profile(warmup=warmup, bus=bus,
                          host_in=host_in) as profile:
            ring.run(cycles, bus=bus, host_in=host_in)
        best = max(best, profile.cycles_per_second())
    return best


def utilization_by_dnode(ring: Ring) -> Dict[str, float]:
    """Per-Dnode utilisation (busy fraction), keyed by Dnode name."""
    if ring.cycles == 0:
        raise SimulationError("ring has not run yet")
    out = {}
    for dn in ring.all_dnodes():
        out[dn.name] = (dn.stats.instructions / dn.stats.cycles
                        if dn.stats.cycles else 0.0)
    return out


def profile_report(ring: Ring,
                   clock_hz: float = DEFAULT_CLOCK_HZ,
                   include_idle: bool = False) -> str:
    """A rendered utilisation/op-mix table for a finished run.

    Args:
        ring: the fabric after :meth:`~repro.core.ring.Ring.run`.
        clock_hz: clock used for the sustained-rate footer.
        include_idle: also list Dnodes that never executed anything.
    """
    if ring.cycles == 0:
        raise SimulationError("ring has not run yet")
    rows: List[list] = []
    for dn in ring.all_dnodes():
        stats = dn.stats
        if stats.instructions == 0 and not include_idle:
            continue
        utilisation = stats.instructions / stats.cycles if stats.cycles \
            else 0.0
        rows.append([
            dn.name,
            stats.instructions,
            stats.arithmetic_ops,
            stats.multiplies,
            stats.fifo_pops,
            100.0 * utilisation,
        ])
    busy = sum(1 for dn in ring.all_dnodes() if dn.stats.instructions)
    total = len(ring.all_dnodes())
    per_cycle = ring.instructions_executed / ring.cycles
    table = render_table(
        ["dnode", "instr", "ops", "muls", "fifo pops", "busy %"],
        rows,
        title=f"Profile — {ring.cycles} cycles, {busy}/{total} Dnodes busy",
    )
    footer = (
        f"\nsustained: {per_cycle:.2f} instr/cycle = "
        f"{per_cycle * clock_hz / 1e6:.0f} MIPS at "
        f"{clock_hz / 1e6:.0f} MHz; fabric utilisation "
        f"{100 * ring.utilization():.1f}%"
    )
    return table + footer
