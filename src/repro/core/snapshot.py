"""Checkpoint/restore of complete fabric runtime state.

Long systolic simulations (frame-level motion search, full-image
transforms) benefit from checkpoints: capture *everything* live in the
fabric — register files, output registers, feedback pipelines, FIFO
contents, local-sequencer counters, cycle/statistics counters — and
restore it later onto a same-geometry ring.  Configuration state is
captured via a :class:`~repro.core.config_memory.ConfigPlane`, so one
snapshot fully determines future behaviour: a restored ring is
cycle-for-cycle identical to the original (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.config_memory import ConfigPlane
from repro.core.ring import Ring
from repro.errors import SimulationError


@dataclass
class RingSnapshot:
    """Frozen runtime + configuration state of a ring."""

    layers: int
    width: int
    pipeline_depth: int
    cycles: int
    configuration: ConfigPlane
    registers: Dict[Tuple[int, int], List[int]] = field(
        default_factory=dict)
    outs: Dict[Tuple[int, int], int] = field(default_factory=dict)
    local_counters: Dict[Tuple[int, int], int] = field(
        default_factory=dict)
    pipelines: Dict[int, List[List[int]]] = field(default_factory=dict)
    fifos: Dict[Tuple[int, int, int], List[int]] = field(
        default_factory=dict)


def capture(ring: Ring) -> RingSnapshot:
    """Snapshot *ring*'s complete state (configuration + runtime)."""
    geometry = ring.geometry
    snapshot = RingSnapshot(
        layers=geometry.layers,
        width=geometry.width,
        pipeline_depth=geometry.pipeline_depth,
        cycles=ring.cycles,
        configuration=ring.config.capture_plane(),
    )
    for dn in ring.all_dnodes():
        addr = (dn.layer, dn.position)
        snapshot.registers[addr] = dn.regs.snapshot()
        snapshot.outs[addr] = dn.out
        snapshot.local_counters[addr] = dn.local.counter
    for k in range(geometry.layers):
        sw = ring.switch(k)
        snapshot.pipelines[k] = [
            [sw.rp_read(stage, lane) for stage in
             range(1, geometry.pipeline_depth + 1)]
            for lane in range(1, geometry.width + 1)
        ]
    for layer in range(geometry.layers):
        for pos in range(geometry.width):
            for channel in (1, 2):
                queue = list(ring.fifo(layer, pos, channel))
                if queue:
                    snapshot.fifos[(layer, pos, channel)] = queue
    return snapshot


def restore(ring: Ring, snapshot: RingSnapshot) -> None:
    """Load *snapshot* onto *ring* (must share the exact geometry)."""
    geometry = ring.geometry
    if (geometry.layers, geometry.width, geometry.pipeline_depth) != \
            (snapshot.layers, snapshot.width, snapshot.pipeline_depth):
        raise SimulationError(
            f"snapshot is for a {snapshot.layers}x{snapshot.width} ring "
            f"(pipeline depth {snapshot.pipeline_depth}); target is "
            f"{geometry.layers}x{geometry.width}"
        )
    ring.reset()
    ring.config.apply_plane(snapshot.configuration)
    for (layer, pos), values in snapshot.registers.items():
        dn = ring.dnode(layer, pos)
        for index, value in enumerate(values):
            dn.regs.stage_write(index, value)
            dn.regs.commit()
        dn._out = snapshot.outs[(layer, pos)]
        counter = snapshot.local_counters[(layer, pos)]
        dn.local.reset_counter()
        for _ in range(counter):
            dn.local.advance()
    for k, lanes in snapshot.pipelines.items():
        sw = ring.switch(k)
        # replay the lane histories oldest-first to rebuild the shift
        # registers exactly
        depth = snapshot.pipeline_depth
        for stage in range(depth, 0, -1):
            sw.shift([lanes[lane][stage - 1]
                      for lane in range(snapshot.width)])
    for (layer, pos, channel), values in snapshot.fifos.items():
        ring.push_fifo(layer, pos, channel, values)
    ring.cycles = snapshot.cycles
