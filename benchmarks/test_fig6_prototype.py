"""Fig. 6 — the APEX20K400 board prototype.

The paper's prototype preloads the generated object code into a PRG
memory, pushes a 64x64 16-bit image through the Ring-8, writes the
result into a VIDEO memory and displays it through a synthesized VGA
controller.  The benchmark reruns that whole flow in emulation and
checks the board-level invariants: object code survives the PRG
round-trip, one pixel per cycle, one clean frame on the monitor.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.host.prototype import (
    IMAGE_SIDE,
    reference_kernel,
    run_prototype,
)


def _picture(rng):
    return rng.integers(0, 256, (IMAGE_SIDE, IMAGE_SIDE))


def test_fig6_prototype_run(benchmark, rng):
    image = _picture(rng)
    result = benchmark(run_prototype, image, "edge")
    assert np.array_equal(result.framebuffer,
                          reference_kernel(image, "edge"))
    benchmark.extra_info["fabric_cycles"] = result.cycles


def test_fig6_shape(rng):
    image = _picture(rng)
    rows = []
    for operation in ("invert", "threshold", "edge"):
        result = run_prototype(image, operation)
        expected = reference_kernel(image, operation)
        assert np.array_equal(result.framebuffer, expected)
        assert result.frames_scanned == 1
        rows.append([operation, result.cycles,
                     result.cycles / image.size])
    emit(render_table(
        ["kernel", "fabric cycles", "cycles/pixel"],
        rows, title="Fig. 6 (reproduced) — 64x64 image through Ring-8"))
    # one pixel per cycle + pipeline latency only
    for _, cycles, per_pixel in rows:
        assert per_pixel < 1.01


def test_fig6_prg_roundtrip(rng):
    """The PRG memory byte-for-byte holds loadable object code."""
    from repro.asm.objcode import ObjectCode

    result = run_prototype(_picture(rng), "invert")
    blob = bytes(result.prg.dump(0, len(result.prg)))
    reloaded = ObjectCode.from_bytes(blob)
    assert (reloaded.layers, reloaded.width) == (4, 2)
