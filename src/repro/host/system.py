"""RingSystem: controller + fabric + data controller on one clock.

This is the SoC-level view of Fig. 2: the host CPU uploads management code
to the configuration controller, streams data through the data controller's
direct ports, and reads results back.  One :meth:`RingSystem.step` is one
clock of the whole accelerator:

1. the controller executes one instruction and its configuration commands
   are applied to the fabric (a configuration written at cycle *t* governs
   the fabric from cycle *t* on — the hardware-multiplexing rate of one
   full-function change per cycle);
2. the ring evaluates and commits one cycle, reading the shared bus value
   currently driven by the controller and the direct-port streams;
3. the data controller samples output taps and advances input streams.

A system can also run *uncontrolled* (controller=None) when the fabric is
fully configured up front and left in local mode — the stand-alone
operating point the paper's multi-level reconfiguration enables.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config_memory import ConfigPlane
from repro.core.ring import Ring
from repro.controller.core import (
    ConfigCommand,
    ConfigTargetKind,
    RiscController,
)
from repro.host.streams import DataController
from repro.errors import SimulationError


class RingSystem:
    """A complete Systolic Ring accelerator instance."""

    def __init__(self, ring: Ring,
                 controller: Optional[RiscController] = None,
                 planes: Optional[Sequence[ConfigPlane]] = None):
        self.ring = ring
        self.controller = controller
        self.planes: List[ConfigPlane] = list(planes or [])
        # A lane-backend ring (batch or shard) gets a batch data
        # controller: per-lane stream channels and output taps on the
        # same direct ports.
        batch = (ring.batch_size
                 if ring.backend in Ring.LANE_BACKENDS else 1)
        self.data = DataController(batch=batch)
        self.cycles = 0
        if controller is not None:
            width = ring.geometry.width
            controller.fabric_reader = (
                lambda dnode: ring.dnode(*divmod(dnode, width)).out)

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole accelerator by one clock cycle.

        The bus value driven by the controller is handed to the ring,
        which records it (:attr:`~repro.core.ring.Ring.last_bus`) — so an
        attached :class:`~repro.analysis.trace.SignalTrace` bus probe
        observes the controller's ``BUSW`` traffic, not a stale default.
        """
        bus = 0
        if self.controller is not None:
            commands = self.controller.step()
            for command in commands:
                self._apply(command)
            bus = self.controller.bus_out
        self.ring.step(bus=bus, host_in=self.data.host_in)
        self.data.collect(self.ring)
        self.data.advance()
        self.cycles += 1

    def run(self, cycles: int) -> None:
        """Step *cycles* times.

        An uncontrolled system with an idle data controller (no taps, no
        queued stream words) needs no per-cycle host servicing, so the whole
        batch is handed to :meth:`repro.core.ring.Ring.run` — which lets the
        ring's pre-decoded fast path (and the macro-step/native bulk
        engines) execute without re-entering the host layer every cycle.
        Idleness is re-checked as the run progresses: once the queued
        stream words drain mid-run, the remaining cycles take the bulk
        path too.
        """
        if cycles < 0:
            raise SimulationError(f"cycle count must be >= 0, got {cycles}")
        if (self.controller is None and not self.data.taps
                and self.ring.backend == "shard"):
            # Per-shard stream slicing: freeze the queued words into a
            # picklable stimulus so each worker resolves its own lane
            # slice for the whole chunk, then settle the host-side
            # delivered/underrun accounting for what the chunk consumed.
            stimulus = self.data.shard_stimulus(self.ring.cycles)
            self.ring.run(cycles, host_in=stimulus)
            self.data.absorb_shard_run(
                cycles, self.ring.shard.host_channels())
            self.cycles += cycles
            return
        for done in range(cycles):
            if self.controller is None and self.data.idle:
                remaining = cycles - done
                self.ring.run(remaining,
                              host_in=self.data.bulk_host_in(self.ring))
                self.cycles += remaining
                return
            self.step()

    def checkpoint(self):
        """Capture a whole-system checkpoint (fabric + host streams).

        Returns a :class:`~repro.robustness.checkpoint.SystemCheckpoint`
        restorable onto this system — or any same-geometry system with
        the same tap topology, which is how the serving layer migrates a
        running job between workers.
        """
        from repro.robustness.checkpoint import capture_system
        return capture_system(self)

    def restore_checkpoint(self, checkpoint) -> None:
        """Restore a :meth:`checkpoint` (taps must already exist)."""
        from repro.robustness.checkpoint import restore_system
        restore_system(self, checkpoint)

    def set_plan_cache(self, capacity: int) -> None:
        """Resize the ring's compiled-plan cache (0 disables caching)."""
        self.ring.set_plan_cache(capacity)

    def set_macro_step(self, macro_step: int) -> None:
        """Set the ring's macro-step fusion target (0/1 disables)."""
        self.ring.set_macro_step(macro_step)

    def metrics(self):
        """Aggregate every live counter into a MetricsSnapshot.

        Covers the fabric (cycles, per-Dnode activity, FIFO depths and
        high-water marks, fast-path plan lifecycle, configuration
        traffic) and — when a controller is attached — its retire/stall
        statistics.  Read-only; call as often as needed.
        """
        from repro.analysis.metrics import MetricsRegistry
        return MetricsRegistry.of(self).collect()

    def run_until_halt(self, max_cycles: int = 1_000_000,
                       drain: int = 0) -> int:
        """Run until the controller halts (plus *drain* extra cycles).

        Returns the number of cycles executed.  Raises if no controller is
        attached or the limit is hit — a silent infinite loop is always a
        bug in the management code.
        """
        if self.controller is None:
            raise SimulationError("run_until_halt needs a controller")
        start = self.cycles
        while not self.controller.halted:
            self.step()
            if self.cycles - start > max_cycles:
                raise SimulationError(
                    f"controller did not halt within {max_cycles} cycles"
                )
        for _ in range(drain):
            self.step()
        return self.cycles - start

    def run_until_taps_full(self, max_cycles: int = 1_000_000) -> int:
        """Run until every limited output tap has all its samples."""
        limited = [t for t in self.data.taps if t.limit is not None]
        if not limited:
            raise SimulationError(
                "run_until_taps_full needs at least one tap with a limit"
            )
        start = self.cycles
        while not all(t.full for t in limited):
            self.step()
            if self.cycles - start > max_cycles:
                raise SimulationError(
                    f"taps not full within {max_cycles} cycles "
                    f"({[len(t.samples) for t in limited]} collected)"
                )
        return self.cycles - start

    # ------------------------------------------------------------------

    def _apply(self, command: ConfigCommand) -> None:
        """Apply one controller configuration command to the fabric."""
        cfg = self.ring.config
        width = self.ring.geometry.width
        if command.kind in (ConfigTargetKind.DNODE_WORD,
                            ConfigTargetKind.LOCAL_SLOT,
                            ConfigTargetKind.LOCAL_LIMIT,
                            ConfigTargetKind.MODE):
            layer, pos = divmod(command.dnode, width)
        if command.kind is ConfigTargetKind.DNODE_WORD:
            cfg.write_microword(layer, pos, command.microword)
        elif command.kind is ConfigTargetKind.LOCAL_SLOT:
            cfg.write_local_slot(layer, pos, command.slot, command.microword)
        elif command.kind is ConfigTargetKind.LOCAL_LIMIT:
            cfg.write_local_limit(layer, pos, command.limit)
        elif command.kind is ConfigTargetKind.MODE:
            from repro.core.dnode import DnodeMode
            mode = DnodeMode.LOCAL if command.mode else DnodeMode.GLOBAL
            cfg.write_mode(layer, pos, mode)
        elif command.kind is ConfigTargetKind.SWITCH_ROUTE:
            cfg.write_switch_route(command.sw, command.pos, command.port,
                                   command.route)
        elif command.kind is ConfigTargetKind.PLANE:
            if not 0 <= command.plane < len(self.planes):
                raise SimulationError(
                    f"CFGPLANE {command.plane}: only {len(self.planes)} "
                    f"plane(s) installed"
                )
            cfg.apply_plane(self.planes[command.plane])
        else:  # pragma: no cover - exhaustive
            raise SimulationError(f"unhandled config command {command!r}")

    def __repr__(self) -> str:
        ctrl = "no controller" if self.controller is None else repr(
            self.controller)
        return f"RingSystem({self.ring!r}, {ctrl}, cycle={self.cycles})"
