"""Tests for the dataflow-graph IR and golden evaluator."""

import pytest

from repro.compiler.graph import CompileError, DataflowGraph, NodeKind
from repro.core.isa import Opcode


def simple_graph():
    g = DataflowGraph()
    x = g.input(0)
    y = g.op("add", x, g.const(5))
    g.output(y)
    return g, x, y


class TestConstruction:
    def test_node_kinds(self):
        g, x, y = simple_graph()
        assert g.node(x).kind is NodeKind.INPUT
        assert g.node(y).kind is NodeKind.OP
        assert g.node(y).op is Opcode.ADD

    def test_opcode_by_enum(self):
        g = DataflowGraph()
        x = g.input(0)
        n = g.op(Opcode.ABS, x)
        assert g.node(n).op is Opcode.ABS

    def test_unknown_opcode(self):
        g = DataflowGraph()
        x = g.input(0)
        with pytest.raises(CompileError, match="unknown opcode"):
            g.op("frobnicate", x)

    def test_stateful_ops_rejected(self):
        g = DataflowGraph()
        x = g.input(0)
        with pytest.raises(CompileError, match="not compilable"):
            g.op("mac", x, x)

    def test_arity_checked(self):
        g = DataflowGraph()
        x = g.input(0)
        with pytest.raises(CompileError, match="two operands"):
            g.op("add", x)
        with pytest.raises(CompileError, match="one operand"):
            g.op("abs", x, x)

    def test_dangling_reference(self):
        g = DataflowGraph()
        with pytest.raises(CompileError, match="unknown node"):
            g.op("abs", 7)

    def test_delay_amount_checked(self):
        g = DataflowGraph()
        x = g.input(0)
        with pytest.raises(CompileError):
            g.delay(x, 0)

    def test_channel_checked(self):
        with pytest.raises(CompileError):
            DataflowGraph().input(-1)

    def test_validate_requires_outputs_and_inputs(self):
        g = DataflowGraph()
        g.input(0)
        with pytest.raises(CompileError, match="no outputs"):
            g.validate()
        g2 = DataflowGraph()
        g2.output(g2.const(5))
        with pytest.raises(CompileError, match="no input"):
            g2.validate()

    def test_str_lists_nodes(self):
        g, _, _ = simple_graph()
        assert "input0" in str(g)
        assert "outputs:" in str(g)


class TestEvaluate:
    def test_add_const(self):
        g, _, y = simple_graph()
        out = g.evaluate({0: [1, 2, 3]})
        assert out[y] == [6, 7, 8]

    def test_delay_semantics(self):
        g = DataflowGraph()
        x = g.input(0)
        d = g.output(g.op("mov", g.delay(x, 2)))
        out = g.evaluate({0: [10, 20, 30, 40]})
        assert out[d] == [0, 0, 10, 20]

    def test_two_streams(self):
        g = DataflowGraph()
        a, b = g.input(0), g.input(1)
        s = g.output(g.op("sub", a, b))
        out = g.evaluate({0: [10, 10], 1: [1, 2]})
        assert out[s] == [9, 8]

    def test_missing_stream_reads_zero(self):
        g = DataflowGraph()
        a, b = g.input(0), g.input(1)
        s = g.output(g.op("add", a, b))
        out = g.evaluate({0: [5, 5]})
        assert out[s] == [5, 5]

    def test_wrapping_arithmetic(self):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("add", x, g.const(1)))
        out = g.evaluate({0: [32767]})
        assert out[y] == [-32768]

    def test_signed_ops(self):
        g = DataflowGraph()
        x = g.input(0)
        y = g.output(g.op("asr", x, g.const(1)))
        out = g.evaluate({0: [-7]})
        assert out[y] == [-4]
