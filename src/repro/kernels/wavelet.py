"""5/3 lifting wavelet transform on the Systolic Ring (Table 2).

The paper implements the JPEG2000-compliant lifting-scheme DWT on a
Ring-16 with one pixel sample per clock cycle and "25 % of the Ring
structure remains free".  Our mapping reproduces both properties:

Lane 0 (7 Dnodes) is the lifting pipeline proper::

    L0  mov  out, in1            ; even-sample stream in (host port 0)
    L1  avg2 out, in1, rp(1,1)   ; floor((e_m + e_m+1)/2)  [predict]
    L2  sub  out, fifo2, in1     ; d_m = o_m - predict     [odd stream]
    L3  add  out, in1, rp(1,1)   ; d_m-1 + d_m             [update]
    L4  add  out, in1, #2
    L5  asr  out, in1, #2        ; floor((d_m-1 + d_m + 2)/4)
    L6  add  out, in1, rp(1,2)   ; s_m = e_m + update

Lane 1 (5 Dnodes, L1..L5) re-times the even samples so they meet their
update term at L6 — every inter-stage delay comes from the switches'
feedback pipelines, never from extra routing.  12 of 16 Dnodes are busy:
exactly the paper's 75 %.

Border handling (symmetric extension) is the stream driver's job: it
prepends a mirrored pair and appends the mirrored last even sample, so
the raw pipeline equations produce the JPEG2000 border results
bit-exactly (see :func:`repro.kernels.reference.lifting53_forward`).

Throughput: one (approx, detail) pair per cycle = 2 samples/cycle for a
1-D pass; a 2-D transform passes every pixel twice (rows then columns),
so the sustained 2-D rate is **1 pixel sample per clock cycle** — the
paper's headline number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import word
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.errors import SimulationError
from repro.host.system import RingSystem

#: Dnodes used by the mapping (12 of a Ring-16: the paper's 75 %).
DNODES_USED = 12
#: Fabric latency from first even sample to first valid detail output.
DETAIL_LATENCY = 4
#: Fabric latency from first even sample to first valid approx output.
APPROX_LATENCY = 8
#: Extra mirrored pair prepended for the left border.
BORDER_PREFIX_PAIRS = 1


@dataclass
class WaveletResult:
    """Outcome of a fabric lifting pass."""

    approx: List[int]
    detail: List[int]
    cycles: int
    dnodes_used: int


def build_lifting_system(ring: Optional[Ring] = None) -> RingSystem:
    """Configure a ring (>= 7 layers x 2) as the 5/3 lifting pipeline."""
    if ring is None:
        ring = Ring(RingGeometry.ring(16, width=2))
    if ring.geometry.layers < 7 or ring.geometry.width < 2:
        raise SimulationError(
            "the lifting pipeline needs at least 7 layers x 2 Dnodes, "
            f"ring is {ring.geometry.layers}x{ring.geometry.width}"
        )
    cfg = ring.config

    # Lane 0: the lifting datapath.
    cfg.write_switch_route(0, 0, 1, PortSource.host(0))
    cfg.write_microword(0, 0, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    cfg.write_switch_route(1, 0, 1, PortSource.up(0))
    cfg.write_microword(1, 0, MicroWord(Opcode.AVG2, Source.IN1,
                                        Source.rp(1, 1), Dest.OUT))
    cfg.write_switch_route(2, 0, 1, PortSource.up(0))
    cfg.write_microword(2, 0, MicroWord(Opcode.SUB, Source.FIFO2,
                                        Source.IN1, Dest.OUT,
                                        flags=Flag.POP_FIFO2))
    cfg.write_switch_route(3, 0, 1, PortSource.up(0))
    cfg.write_microword(3, 0, MicroWord(Opcode.ADD, Source.IN1,
                                        Source.rp(1, 1), Dest.OUT))
    cfg.write_switch_route(4, 0, 1, PortSource.up(0))
    cfg.write_microword(4, 0, MicroWord(Opcode.ADD, Source.IN1,
                                        Source.IMM, Dest.OUT, imm=2))
    cfg.write_switch_route(5, 0, 1, PortSource.up(0))
    cfg.write_microword(5, 0, MicroWord(Opcode.ASR, Source.IN1,
                                        Source.IMM, Dest.OUT, imm=2))
    cfg.write_switch_route(6, 0, 1, PortSource.up(0))
    cfg.write_microword(6, 0, MicroWord(Opcode.ADD, Source.IN1,
                                        Source.rp(1, 2), Dest.OUT))

    # Lane 1: even-sample re-timing chain L1..L5.
    cfg.write_switch_route(1, 1, 1, PortSource.up(0))
    cfg.write_microword(1, 1, MicroWord(Opcode.MOV, Source.IN1,
                                        dst=Dest.OUT))
    for k in range(2, 6):
        cfg.write_switch_route(k, 1, 1, PortSource.up(1))
        cfg.write_microword(k, 1, MicroWord(Opcode.MOV, Source.IN1,
                                            dst=Dest.OUT))
    return RingSystem(ring)


def _border_streams(signal: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Even/odd streams with JPEG2000 symmetric-extension padding.

    Prepends the mirrored pair ``(e_1, o_0)`` (left border: the first
    computed detail equals d_0, giving ``d_-1 = d_0``) and appends the
    mirrored even ``e_half-1`` (right border: ``e_half = e_half-1``).
    """
    x = [int(v) for v in signal]
    n = len(x)
    if n < 2 or n % 2:
        raise SimulationError(
            f"lifting needs an even-length signal >= 2, got {n}"
        )
    evens = x[0::2]
    odds = x[1::2]
    mirror_even = evens[1] if len(evens) > 1 else evens[0]
    even_stream = [mirror_even] + evens + [evens[-1]]
    odd_stream = [odds[0]] + odds
    return even_stream, odd_stream


def lifting53_forward_fabric(signal: Sequence[int],
                             system: Optional[RingSystem] = None,
                             ) -> WaveletResult:
    """One forward 5/3 lifting level on the fabric.

    Bit-exact against :func:`repro.kernels.reference.lifting53_forward`
    for any 16-bit signal.
    """
    if system is None:
        system = build_lifting_system()
    ring = system.ring
    even_stream, odd_stream = _border_streams(signal)
    half = len(signal) // 2

    system.data.stream(0, [word.from_signed(v) for v in even_stream])
    # Odd samples enter at L2's FIFO2, delayed to meet the prediction.
    ring.push_fifo(2, 0, 2,
                   [0] * 3 + [word.from_signed(v) for v in odd_stream])

    # First valid detail is the second one computed (the first is the
    # mirrored duplicate), likewise for approx.
    detail_tap = system.data.add_tap(
        2, 0, skip=DETAIL_LATENCY - 1 + BORDER_PREFIX_PAIRS, limit=half)
    approx_tap = system.data.add_tap(
        6, 0, skip=APPROX_LATENCY - 1 + BORDER_PREFIX_PAIRS, limit=half)

    cycles = len(even_stream) + APPROX_LATENCY
    system.run(cycles)
    if len(detail_tap.samples) != half or len(approx_tap.samples) != half:
        raise SimulationError(
            f"expected {half} coefficients, got "
            f"{len(approx_tap.samples)}/{len(detail_tap.samples)}"
        )
    return WaveletResult(
        approx=[word.to_signed(v) for v in approx_tap.samples],
        detail=[word.to_signed(v) for v in detail_tap.samples],
        cycles=cycles,
        dnodes_used=DNODES_USED,
    )


def dwt53_2d_fabric(image: np.ndarray) -> Tuple[np.ndarray, int]:
    """Full 2-D 5/3 DWT level on the fabric: rows then columns.

    Each 1-D pass reuses the same pipeline after a datapath reset (the
    configuration survives, as in hardware).  Returns the subband-packed
    coefficient array and the total fabric cycles.

    Bit-exact against :func:`repro.kernels.reference.dwt53_2d`.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise SimulationError(f"expected a 2-D image, got {image.shape}")
    rows, cols = image.shape
    system = build_lifting_system()
    total_cycles = 0

    temp = np.zeros((rows, cols), dtype=np.int64)
    for r in range(rows):
        system.ring.reset()
        system.data = _fresh_data(system)
        result = lifting53_forward_fabric(image[r, :], system)
        total_cycles += result.cycles
        temp[r, :cols // 2] = result.approx
        temp[r, cols // 2:] = result.detail

    out = np.zeros_like(temp)
    for c in range(cols):
        system.ring.reset()
        system.data = _fresh_data(system)
        result = lifting53_forward_fabric(temp[:, c], system)
        total_cycles += result.cycles
        out[:rows // 2, c] = result.approx
        out[rows // 2:, c] = result.detail
    return out, total_cycles


def _fresh_data(system: RingSystem):
    """Replace the system's data controller (new streams/taps per pass)."""
    from repro.host.streams import DataController

    return DataController()


def dwt53_2d_multilevel_fabric(image: np.ndarray,
                               levels: int) -> Tuple[np.ndarray, int]:
    """JPEG2000-style dyadic pyramid on the fabric.

    Each level re-transforms the LL subband of the previous one, exactly
    like :func:`repro.kernels.reference.dwt53_2d_multilevel`; the fabric
    configuration is reused across levels (only the stream contents
    change).  Returns the packed pyramid and the total fabric cycles —
    which converge to ~4/3 of a single level as levels grow (the classic
    dyadic geometric series).
    """
    if levels < 1:
        raise SimulationError(f"levels must be >= 1, got {levels}")
    out = np.asarray(image).astype(np.int64).copy()
    rows, cols = out.shape
    total_cycles = 0
    for _ in range(levels):
        if rows % 2 or cols % 2 or rows < 2 or cols < 2:
            raise SimulationError(
                f"subband {rows}x{cols} cannot be split further"
            )
        coeffs, cycles = dwt53_2d_fabric(out[:rows, :cols])
        out[:rows, :cols] = coeffs
        total_cycles += cycles
        rows //= 2
        cols //= 2
    return out, total_cycles


def wavelet_cycle_model(height: int, width: int, levels: int = 1) -> int:
    """Analytic fabric cycles for a *levels*-deep 2-D pyramid.

    Per 1-D pass of length L: ``L/2 + 2`` stream slots plus the pipeline
    latency.  Summed over all rows and columns of one level this is
    ~= height*width cycles — one pixel sample per clock, the paper's
    Table 2 rate; deeper pyramid levels add the dyadic ~1/4 series.
    """
    total = 0
    for _ in range(levels):
        per_row = width // 2 + 2 + APPROX_LATENCY
        per_col = height // 2 + 2 + APPROX_LATENCY
        total += height * per_row + width * per_col
        height //= 2
        width //= 2
    return total
