"""Scalar CPU comparator of §5.1: a Pentium-II-class superscalar model.

The paper states a "Pentium II 450 MHz processor" sustains about
400 MIPS on data-dominated workloads, against the Ring-8's 1600 MIPS
peak.  The model is deliberately coarse (the paper's own comparison is):
sustained MIPS = clock x effective IPC, where the effective IPC on
dataflow kernels is dragged far below the 3-wide issue width by memory
stalls and branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class ScalarCpu:
    """A simple sustained-throughput CPU model."""

    name: str
    frequency_hz: float
    effective_ipc: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise SimulationError("frequency must be positive")
        if self.effective_ipc <= 0:
            raise SimulationError("IPC must be positive")

    @property
    def sustained_mips(self) -> float:
        """Sustained million instructions per second."""
        return self.frequency_hz * self.effective_ipc / 1e6

    def time_for_ops(self, operations: int) -> float:
        """Seconds to execute *operations* dataflow operations."""
        if operations < 0:
            raise SimulationError("operation count must be >= 0")
        return operations / (self.sustained_mips * 1e6)


#: The §5.1 comparator: 450 MHz at an effective IPC of ~0.9 on
#: data-dominated code = ~400 sustained MIPS (the paper's figure).
PENTIUM_II_450 = ScalarCpu(
    name="Pentium II 450 MHz",
    frequency_hz=450e6,
    effective_ipc=0.89,
)
