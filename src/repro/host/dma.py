"""Bandwidth-limited host<->ring transfer models.

Paper §5.1: "The theoretical maximum bandwidth of this version of the
structure is about 3 Gbytes/s, limited to 250 Mbytes/s in our implemented
communication protocol (a PCI based bus) between the host CPU and the
core."

The paper's testbed bus is replaced by analytic transfer models: given a
byte count, a :class:`TransferModel` reports the transfer time and the
number of fabric cycles the transfer spans — which is exactly what the
§5.1 comparison (and the sustained-rate discussion in the conclusion)
needs.  Two presets reproduce the paper's numbers:

* :data:`ONCHIP_PORTS` — the direct dedicated ports: every Dnode layer
  port moves 2 bytes per cycle, so a Ring-8 at 200 MHz reaches
  8 x 2 B x 200 MHz = 3.2 GB/s ("about 3 Gbytes/s").
* :data:`PCI_BUS` — the prototype's PCI-class protocol at 250 MB/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import HostError

DEFAULT_CLOCK_HZ = 200_000_000  # the paper's evaluated functional frequency
BYTES_PER_WORD = 2              # 16-bit data paths throughout


@dataclass(frozen=True)
class TransferModel:
    """A host<->core data path with a fixed bandwidth ceiling.

    Attributes:
        name: label used in reports.
        bandwidth_bytes_per_s: sustained ceiling of the path.
        latency_s: fixed per-transfer setup latency (bus arbitration /
            DMA descriptor setup); zero for the on-chip ports.
    """

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise HostError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s}"
            )
        if self.latency_s < 0:
            raise HostError(f"latency must be >= 0, got {self.latency_s}")

    def transfer_time_s(self, nbytes: int) -> float:
        """Seconds needed to move *nbytes* over this path."""
        if nbytes < 0:
            raise HostError(f"byte count must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def transfer_cycles(self, nbytes: int,
                        clock_hz: float = DEFAULT_CLOCK_HZ) -> int:
        """Fabric cycles (at *clock_hz*) the transfer occupies."""
        if clock_hz <= 0:
            raise HostError(f"clock must be positive, got {clock_hz}")
        return math.ceil(self.transfer_time_s(nbytes) * clock_hz)

    def words_per_cycle(self, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
        """Sustained 16-bit words deliverable per fabric cycle."""
        return self.bandwidth_bytes_per_s / (BYTES_PER_WORD * clock_hz)


def onchip_ports(n_ports: int, clock_hz: float = DEFAULT_CLOCK_HZ) -> TransferModel:
    """The direct dedicated switch ports: 2 bytes/port/cycle.

    For the paper's Ring-8 this evaluates to 3.2 GB/s at 200 MHz, the
    "about 3 Gbytes/s" theoretical maximum of §5.1.
    """
    if n_ports < 1:
        raise HostError(f"need at least one port, got {n_ports}")
    return TransferModel(
        name=f"on-chip direct ports (x{n_ports})",
        bandwidth_bytes_per_s=n_ports * BYTES_PER_WORD * clock_hz,
    )


#: Ring-8 direct-port path of §5.1 (~3 GB/s at 200 MHz).
ONCHIP_PORTS = onchip_ports(8)

#: The prototype's PCI-class bus of §5.1 (250 MB/s, typical ~1 us setup).
PCI_BUS = TransferModel(
    name="PCI host bus",
    bandwidth_bytes_per_s=250_000_000,
    latency_s=1e-6,
)
