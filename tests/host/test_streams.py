"""Tests for the data controller: stream channels and output taps."""

import pytest

from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import PortSource, make_ring
from repro.host.streams import (
    BatchStreamChannel,
    DataController,
    OutputTap,
    StreamChannel,
)
from repro.errors import HostError


class TestStreamChannel:
    def test_presents_head_until_advance(self):
        ch = StreamChannel([1, 2, 3])
        assert ch.current() == 1
        assert ch.current() == 1
        ch.advance()
        assert ch.current() == 2

    def test_underrun_presents_idle(self):
        ch = StreamChannel(idle_value=9)
        assert ch.current() == 9
        assert ch.underruns == 1

    def test_advance_on_empty_is_noop(self):
        ch = StreamChannel()
        ch.advance()
        assert ch.delivered == 0

    def test_delivered_counter(self):
        ch = StreamChannel([1, 2])
        ch.advance()
        ch.advance()
        ch.advance()
        assert ch.delivered == 2

    def test_push_single_int(self):
        ch = StreamChannel()
        ch.push(5)
        assert ch.pending() == 1

    def test_push_validates(self):
        with pytest.raises(ValueError):
            StreamChannel([70000])


class TestOutputTap:
    def test_collects_in_order(self):
        tap = OutputTap(0, 0)
        for v in (1, 2, 3):
            tap.observe(v)
        assert tap.samples == [1, 2, 3]

    def test_skip(self):
        tap = OutputTap(0, 0, skip=2)
        for v in (1, 2, 3, 4):
            tap.observe(v)
        assert tap.samples == [3, 4]

    def test_every(self):
        tap = OutputTap(0, 0, every=3)
        for v in range(9):
            tap.observe(v)
        assert tap.samples == [0, 3, 6]

    def test_skip_and_every_combined(self):
        tap = OutputTap(0, 0, skip=1, every=2)
        for v in range(8):
            tap.observe(v)
        assert tap.samples == [1, 3, 5, 7]

    def test_limit(self):
        tap = OutputTap(0, 0, limit=2)
        for v in range(5):
            tap.observe(v)
        assert tap.samples == [0, 1]
        assert tap.full

    def test_unlimited_never_full(self):
        tap = OutputTap(0, 0)
        tap.observe(1)
        assert not tap.full

    def test_validation(self):
        with pytest.raises(HostError):
            OutputTap(0, 0, skip=-1)
        with pytest.raises(HostError):
            OutputTap(0, 0, every=0)
        with pytest.raises(HostError):
            OutputTap(0, 0, limit=-1)


class TestDataController:
    def test_channels_created_on_demand(self):
        dc = DataController()
        assert dc.channel(3).pending() == 0

    def test_channel_index_validated(self):
        with pytest.raises(HostError):
            DataController().channel(-1)

    def test_host_in_reads_current(self):
        dc = DataController()
        dc.stream(0, [7, 8])
        assert dc.host_in(0) == 7

    def test_advance_moves_all_channels(self):
        dc = DataController()
        dc.stream(0, [1, 2])
        dc.stream(1, [10, 20])
        dc.advance()
        assert dc.host_in(0) == 2
        assert dc.host_in(1) == 20

    def test_collect_samples_dnode_out(self):
        ring = make_ring(4)
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=42))
        dc = DataController()
        tap = dc.add_tap(0, 0)
        ring.step()
        dc.collect(ring)
        assert tap.samples == [42]

    def test_word_counters(self):
        dc = DataController()
        dc.stream(0, [1, 2, 3])
        dc.advance()
        dc.advance()
        tap = dc.add_tap(0, 0)
        tap.observe(5)
        assert dc.total_words_in() == 2
        assert dc.total_words_out() == 1


class TestUnderrunOncePerCycle:
    """A dry port is level-sensitive: however many agents read it within
    one cycle, it counts at most one underrun until the next clock edge.
    Regression for the double-count bug where every ``current()`` on a
    dry channel bumped the counter."""

    def test_scalar_repeated_reads_count_one(self):
        ch = StreamChannel(idle_value=9)
        for _ in range(5):
            assert ch.current() == 9
        assert ch.underruns == 1
        ch.advance()
        ch.current()
        ch.current()
        assert ch.underruns == 2

    def test_scalar_underrun_resets_when_words_arrive(self):
        ch = StreamChannel()
        ch.current()
        ch.push(7)
        assert ch.current() == 7
        ch.advance()
        ch.current()
        assert ch.underruns == 2

    def test_batch_repeated_reads_count_one_per_lane(self):
        ch = BatchStreamChannel(3)
        ch.push([1, 2], lane=0)
        ch.current()
        ch.current()
        assert ch.underruns == [0, 1, 1]
        ch.advance()
        for _ in range(3):
            ch.current()
        assert ch.underruns == [0, 2, 2]
        ch.advance()
        ch.current()
        assert ch.underruns == [1, 3, 3]

    def test_fanned_out_host_route_counts_once_per_cycle(self):
        """One HOST channel routed into both switch ports of a Dnode is
        read twice per fabric cycle; the dry channel must still count
        exactly one underrun per cycle of the traced run."""
        ring = make_ring(4)
        ring.config.write_switch_route(0, 0, 1, PortSource.host(0))
        ring.config.write_switch_route(0, 0, 2, PortSource.host(0))
        dc = DataController()
        dc.channel(0)  # materialize the dry channel
        dc.add_tap(0, 0)  # force per-cycle servicing through the system
        from repro.host.system import RingSystem
        system = RingSystem(ring)
        system.data = dc
        system.run(6)
        assert dc.channel(0).underruns == 6


class TestCaptureStateIsDeepCopy:
    """capture_state must hand back fully decoupled state: mutating the
    checkpoint never leaks into the live controller and vice versa."""

    def test_scalar_checkpoint_is_decoupled(self):
        dc = DataController()
        dc.stream(0, [1, 2, 3])
        tap = dc.add_tap(0, 0)
        tap.observe(42)
        state = dc.capture_state()
        state["channels"][0]["queue"].append(999)
        state["taps"][0]["samples"].append(999)
        assert dc.channel(0).pending() == 3
        assert tap.samples == [42]
        dc.channel(0).advance()
        tap.observe(43)
        assert state["channels"][0]["queue"] == [1, 2, 3, 999]
        assert state["taps"][0]["samples"] == [42, 999]

    def test_batch_checkpoint_is_decoupled(self):
        dc = DataController(batch=2)
        dc.stream(0, [5, 6])
        tap = dc.add_tap(0, 0)
        tap.observe([10, 20])
        state = dc.capture_state()
        state["channels"][0]["lanes"][1].append(999)
        state["taps"][0]["samples"][0].append(999)
        assert dc.channel(0).lane_pending(1) == 2
        assert tap.lane(0) == [10]

    def test_restore_decouples_from_checkpoint(self):
        dc = DataController()
        dc.stream(0, [1, 2])
        state = dc.capture_state()
        dc.restore_state(state)
        state["channels"][0]["queue"].append(999)
        assert dc.channel(0).pending() == 2


class TestShardRunAccounting:
    """absorb_shard_run == the same number of live advance() clocks."""

    def _live_twin(self, batch: int):
        dc = DataController(batch=batch)
        dc.stream(0, [1, 2, 3])
        if batch > 1:
            dc.stream(1, [4], lane=0)
        else:
            dc.stream(1, [4])
        return dc

    @pytest.mark.parametrize("batch", [1, 3])
    def test_matches_per_cycle_advance(self, batch):
        cycles = 5
        live = self._live_twin(batch)
        for _ in range(cycles):
            live.host_in(0)
            live.host_in(1)
            live.advance()
        chunked = self._live_twin(batch)
        chunked.absorb_shard_run(cycles, read_channels={0, 1})
        for index in (0, 1):
            a, b = live.channel(index), chunked.channel(index)
            assert a.delivered == b.delivered
            assert a.underruns == b.underruns
            assert a.pending() == b.pending()

    def test_unrouted_channels_advance_without_underruns(self):
        dc = self._live_twin(1)
        dc.absorb_shard_run(6, read_channels={0})
        assert dc.channel(1).delivered == 1
        assert dc.channel(1).underruns == 0
        assert dc.channel(0).underruns == 3

    def test_rejects_negative_executed(self):
        with pytest.raises(HostError):
            DataController().absorb_shard_run(-1, read_channels=())
