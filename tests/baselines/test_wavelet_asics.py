"""Tests for the Table 2 wavelet-ASIC characteristic models."""

import pytest

from repro.baselines.wavelet_asics import WAVELET_CIRCUITS, WaveletCircuit
from repro.errors import SimulationError


class TestPublishedCharacteristics:
    def test_navarro_row(self):
        c = WAVELET_CIRCUITS["navarro"]
        assert c.technology == "0.7um"
        assert c.area_mm2 == 48.4
        assert c.frequency_hz == 50e6
        assert c.memory_bits == (768 + 30) * 16

    def test_diou_row(self):
        c = WAVELET_CIRCUITS["diou"]
        assert c.technology == "0.25um"
        assert c.area_mm2 == 2.2
        assert c.frequency_hz == 150e6
        assert c.memory_bits == 897 * 8

    def test_neither_is_flexible(self):
        assert not any(c.flexible for c in WAVELET_CIRCUITS.values())


class TestRates:
    def test_one_pixel_per_cycle(self):
        for c in WAVELET_CIRCUITS.values():
            assert c.pixel_rate_hz() == c.frequency_hz

    def test_image_time(self):
        c = WaveletCircuit("x", "t", 1.0, 100e6, 0)
        assert c.time_for_image_s(1000, 1000) == pytest.approx(0.01)

    def test_image_validated(self):
        with pytest.raises(SimulationError):
            WAVELET_CIRCUITS["diou"].time_for_image_s(0, 10)

    def test_ring_outpaces_both_at_200mhz(self):
        """Table 2's shape: the Ring's 200 MHz x 1 px/cycle beats both
        dedicated circuits' throughput while staying programmable."""
        ring_rate = 200e6
        assert all(ring_rate > c.pixel_rate_hz()
                   for c in WAVELET_CIRCUITS.values())
