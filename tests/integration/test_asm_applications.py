"""End-to-end tests: assembly source -> object bytes -> running system.

These walk the full paper flow of §3: the host assembles an application,
uploads the object code (management code + configuration), and the
accelerator computes while the controller manages the fabric.
"""

import pytest

from repro.asm import assemble, load_system
from repro.asm.objcode import ObjectCode
from repro.kernels.reference import fir as ref_fir


class TestScaleAndOffsetApp:
    """y = (x + 5) * 3 computed by a two-stage pipeline."""

    SRC = """
.ring boot
dnode 0.0 global
    add out, in1, #5
dnode 1.0 global
    mul out, in1, #3
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0

.risc
    waiti 20
    halt
"""

    def _run(self, values):
        obj = ObjectCode.from_bytes(
            assemble(self.SRC, layers=4, width=2).to_bytes())
        system = load_system(obj)
        system.data.stream(0, values)
        tap = system.data.add_tap(1, 0, skip=1, limit=len(values))
        system.run_until_halt()
        return tap.samples

    def test_computes_expected_function(self):
        assert self._run([10, 20, 30]) == [45, 75, 105]


class TestDynamicReconfigurationApp:
    """The controller swaps a Dnode's function mid-stream — the paper's
    hardware-multiplexing operating mode."""

    SRC = """
.ring boot
dnode 0.0 global
    add out, in1, #100
switch 0
    route 0.1 <- host0

.risc
    cfgword doubler, shl out, in1, #1
    waiti 5
    cfgdi d0.0, doubler
    waiti 5
    halt
"""

    def test_function_changes_mid_stream(self):
        system = load_system(assemble(self.SRC, layers=4, width=2))
        system.data.stream(0, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        tap = system.data.add_tap(0, 0, limit=10)
        system.run_until_halt()
        # first 5 cycles: x+100; afterwards: x*2
        assert tap.samples[:5] == [101, 102, 103, 104, 105]
        assert tap.samples[5:] == [12, 14, 16, 18, 20]


class TestLocalModeApp:
    """A stand-alone local-mode kernel assembled from source: the Dnode
    alternates accumulate/output with no controller at all."""

    SRC = """
.ring boot
dnode 0.0 local
    mac r0, fifo1, fifo2 [pop1,pop2,wout]
"""

    def test_runs_without_controller(self):
        system = load_system(assemble(self.SRC, layers=4, width=2))
        assert system.controller is None
        system.ring.push_fifo(0, 0, 1, [1, 2, 3])
        system.ring.push_fifo(0, 0, 2, [10, 10, 10])
        system.run(3)
        assert system.ring.dnode(0, 0).out == 60


class TestMailboxEchoApp:
    """Controller <-> host mailbox round trip: reads words from the host,
    transforms, sends them back (the paper's 'control the data
    communications between the reconfigurable core and the host CPU')."""

    SRC = """
.risc
loop:   bfe 0, done
        inw r1, 0
        addi r1, r1, 1
        outw 0, r1
        jmp loop
done:   halt
"""

    def test_echo_plus_one(self):
        system = load_system(assemble(self.SRC, layers=4, width=2))
        ctrl = system.controller
        for v in (10, 20, 30):
            ctrl.host_send(0, v)
        system.run_until_halt()
        received = []
        while True:
            v = ctrl.host_receive(0)
            if v is None:
                break
            received.append(v)
        assert received == [11, 21, 31]


class TestAssembledFirMatchesKernel:
    """A 3-tap FIR written entirely in assembly reproduces the reference,
    demonstrating the Rp-based re-timing is expressible in the language."""

    SRC = """
.ring boot
dnode 0.0 global
    mov out, in1
dnode 0.1 global
    mul out, in1, #2
dnode 1.0 global
    mov out, rp(1,1)
dnode 1.1 global
    madd out, in1, rp(1,1), #-3
dnode 2.0 global
    mov out, rp(1,1)
dnode 2.1 global
    madd out, in1, rp(1,1), #4
switch 0
    route 0.1 <- host0
    route 1.1 <- host0
switch 1
    route 1.1 <- up1
switch 2
    route 1.1 <- up1
"""

    def test_matches_reference_fir(self):
        signal = [3, -1, 4, 1, -5, 9, 2, -6]
        system = load_system(assemble(self.SRC, layers=4, width=2))
        system.data.stream(0, [v & 0xFFFF for v in signal])
        tap = system.data.add_tap(2, 1, skip=2, limit=len(signal))
        system.run(len(signal) + 3)
        from repro import word

        outputs = [word.to_signed(v) for v in tap.samples]
        assert outputs == ref_fir(signal, [2, -3, 4])
