"""Seeded fault campaigns: inject → detect → rollback-replay → verify.

A :class:`FaultCampaign` sweeps fault sites x injection cycles x seeds
against a *golden run* of the identical configuration and stimulus:

1. The golden ring runs the full window once, recording its state digest
   at every checkpoint boundary and at the end.
2. Each trial gets a fresh ring from the same factory, a
   :class:`~repro.robustness.faults.FaultInjector` seeded from the
   campaign seed, and a :class:`~repro.robustness.checkpoint.CheckpointManager`.
   One fault is injected at the planned cycle; at every checkpoint
   boundary the trial digest is compared with the golden digest —
   mismatch means the fault was *detected*, triggering rollback to the
   last good checkpoint and deterministic replay.
3. A trial is *recovered* when its post-replay digest matches the golden
   digest at the detection boundary and its final digest matches the
   golden final digest — bit-identity, not approximate agreement.

The whole campaign is deterministic: the same seed over the same
factory/driver enumerates the same sites, plans the same events, and
produces the same :meth:`CampaignResult.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.ring import Ring
from repro.core.snapshot import state_digest
from repro.robustness.checkpoint import (
    CheckpointManager,
    Driver,
    default_driver,
)
from repro.robustness.faults import FaultEvent, FaultInjector, FaultKind
from repro.errors import ConfigurationError

#: Builds one freshly configured ring; every call must configure
#: identically (campaigns compare trial state against a golden instance).
RingFactory = Callable[[], Ring]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one injected fault."""

    trial: int
    seed: int
    event: FaultEvent
    applied: bool          # the fault landed in live state
    detected: bool         # a checkpoint digest diverged from golden
    recovered: bool        # replay restored bit-identity through the end
    detection_cycle: int   # boundary where divergence was seen (-1: never)
    rollback_cycle: int    # checkpoint the recovery restored (-1: none)
    replayed_cycles: int

    @property
    def masked(self) -> bool:
        """The fault never became architecturally visible."""
        return not self.detected

    def describe(self) -> str:
        if self.detected:
            outcome = ("recovered" if self.recovered
                       else "RECOVERY FAILED")
            return (f"trial {self.trial}: {self.event.describe()} -> "
                    f"detected @cycle {self.detection_cycle}, rolled back "
                    f"to {self.rollback_cycle}, replayed "
                    f"{self.replayed_cycles}, {outcome}")
        status = "masked" if self.applied else "not applied"
        return f"trial {self.trial}: {self.event.describe()} -> {status}"


@dataclass
class CampaignResult:
    """Aggregate outcome of a :class:`FaultCampaign` run."""

    seed: int
    cycles: int
    checkpoint_every: int
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.trials)

    @property
    def detected(self) -> int:
        return sum(t.detected for t in self.trials)

    @property
    def recovered(self) -> int:
        return sum(t.recovered for t in self.trials)

    @property
    def masked(self) -> int:
        return sum(t.masked for t in self.trials)

    @property
    def all_recovered(self) -> bool:
        """Every detected fault recovered to bit-identity."""
        return all(t.recovered for t in self.trials if t.detected)

    def trace(self) -> Tuple[tuple, ...]:
        """Canonical recovery trace — equal for equal seeds.

        One tuple per trial: ``(trial, site, cycle, bit, applied,
        detected, detection_cycle, rollback_cycle, recovered)``.
        """
        return tuple(
            (t.trial, t.event.site.describe(), t.event.cycle, t.event.bit,
             t.applied, t.detected, t.detection_cycle, t.rollback_cycle,
             t.recovered)
            for t in self.trials)

    def summary(self) -> dict:
        """JSON-friendly rollup (used by the CLI and benchmarks)."""
        return {
            "seed": self.seed,
            "cycles": self.cycles,
            "checkpoint_every": self.checkpoint_every,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "masked": self.masked,
            "all_recovered": self.all_recovered,
        }


class FaultCampaign:
    """Sweep seeded faults against a golden run of one configuration.

    Args:
        factory: builds identically configured rings (golden + trials).
        cycles: simulation window per run.
        checkpoint_every: checkpoint/detection interval in cycles.
        seed: campaign seed; trial *i* uses ``seed + i``.
        trials: number of faults to inject (one per trial ring).
        kinds: restrict injected :class:`FaultKind`\\ s.
        driver: deterministic stimulus shared by golden and trial runs.
    """

    def __init__(self, factory: RingFactory, cycles: int,
                 checkpoint_every: int, seed: int, trials: int = 8,
                 kinds: Optional[Sequence[FaultKind]] = None,
                 driver: Optional[Driver] = None):
        if cycles < 1:
            raise ConfigurationError(
                f"campaign window must be >= 1 cycle, got {cycles}")
        if trials < 1:
            raise ConfigurationError(
                f"campaign needs >= 1 trial, got {trials}")
        self.factory = factory
        self.cycles = cycles
        self.checkpoint_every = checkpoint_every
        self.seed = seed
        self.trials = trials
        self.kinds = tuple(kinds) if kinds is not None else None
        self.driver = driver if driver is not None else default_driver

    # -- golden run ----------------------------------------------------

    def golden_digests(self) -> Dict[int, tuple]:
        """Digests of the uninjected run, keyed by boundary cycle.

        Includes cycle 0, every multiple of ``checkpoint_every``, and
        the final cycle.
        """
        ring = self.factory()
        digests = {0: state_digest(ring)}
        for cycle in range(self.cycles):
            self.driver(ring, cycle)
            if ring.cycles % self.checkpoint_every == 0 \
                    or ring.cycles == self.cycles:
                digests[ring.cycles] = state_digest(ring)
        return digests

    # -- trials --------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute every trial; returns the aggregate result."""
        golden = self.golden_digests()
        result = CampaignResult(seed=self.seed, cycles=self.cycles,
                                checkpoint_every=self.checkpoint_every)
        for index in range(self.trials):
            result.trials.append(self._run_trial(index, golden))
        return result

    def _run_trial(self, index: int,
                   golden: Dict[int, tuple]) -> TrialResult:
        trial_seed = self.seed + index
        ring = self.factory()
        injector = FaultInjector(ring, seed=trial_seed, kinds=self.kinds)
        # Inject strictly inside the window so there is always at least
        # one pre-fault checkpoint (cycle 0) and one post-fault boundary.
        last = max(self.cycles - 1, 0)
        [event] = injector.plan(1, 0, last)
        manager = CheckpointManager(ring, self.checkpoint_every,
                                    driver=self.driver, keep=2)
        applied = False
        detected = False
        recovered = False
        detection_cycle = -1
        rollback_cycle = -1
        replayed = 0
        for cycle in range(self.cycles):
            if cycle == event.cycle:
                applied = injector.inject(event).applied
            self.driver(ring, cycle)
            boundary = (ring.cycles % self.checkpoint_every == 0
                        or ring.cycles == self.cycles)
            if not boundary:
                continue
            expected = golden.get(ring.cycles)
            if expected is None:
                continue
            if state_digest(ring) == expected:
                if ring.cycles % self.checkpoint_every == 0:
                    manager.checkpoint()
                continue
            if not detected:
                # First divergence: roll back to the last good
                # checkpoint and replay deterministically.
                detected = True
                detection_cycle = ring.cycles
                checkpoint = manager.latest
                rollback_cycle = checkpoint.cycles
                digest = manager.rollback_replay(ring.cycles)
                replayed = ring.cycles - rollback_cycle
                if digest == expected:
                    if ring.cycles % self.checkpoint_every == 0:
                        manager.checkpoint()
                else:
                    break  # replay failed to converge; recovery failed
        final = golden.get(self.cycles)
        recovered = detected and state_digest(ring) == final
        return TrialResult(
            trial=index, seed=trial_seed, event=event, applied=applied,
            detected=detected, recovered=recovered,
            detection_cycle=detection_cycle, rollback_cycle=rollback_cycle,
            replayed_cycles=replayed)


__all__ = ["CampaignResult", "FaultCampaign", "RingFactory", "TrialResult"]
