"""Bit-identity proof: the pre-decoded fast path vs the interpreter.

Every test builds two rings with identical geometry and configuration —
one with ``fastpath=False`` (the reference interpreter) and one with the
default fast path — drives both with the same bus/host/FIFO stimulus, and
compares the complete observable state: cycle and underflow counters,
every register, OUT latch, local-sequencer counter and statistics field of
every Dnode, every feedback-pipeline tap of every switch, the remaining
contents of every FIFO, and the exact sequence of host-port reads.

Programs are randomised (seeded ``random`` plus a hypothesis sweep) over
global, local and mixed modes, all opcodes, FIFO and Rp-feedback sources,
host streams and the shared bus, with mid-run reconfiguration and resets
thrown in to exercise plan invalidation.
"""

import random

import pytest

from repro import word
from repro.core.isa import (
    ACCUMULATING_OPS,
    Dest,
    Flag,
    MicroWord,
    Opcode,
    Source,
)
from repro.core.dnode import DnodeMode
from repro.core.ring import Ring, RingGeometry
from repro.core.switch import PortSource
from repro.errors import SimulationError

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the test env
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# Random program / configuration generation
# ----------------------------------------------------------------------

_SOURCES = [
    Source.R0, Source.R1, Source.R2, Source.R3,
    Source.IN1, Source.IN2,
    Source.FIFO1, Source.FIFO2,
    Source.BUS, Source.IMM, Source.SELF, Source.ZERO,
] + [Source.rp(stage, lane) for stage in (1, 2, 3, 4) for lane in (1, 2)]

_OPS = list(Opcode)
_REG_DESTS = [Dest.R0, Dest.R1, Dest.R2, Dest.R3]
_DESTS = _REG_DESTS + [Dest.OUT, Dest.NONE]


def _random_word(rng: random.Random) -> MicroWord:
    op = rng.choice(_OPS)
    dst = rng.choice(_REG_DESTS if op in ACCUMULATING_OPS else _DESTS)
    flags = Flag.NONE
    if rng.random() < 0.30:
        flags |= Flag.WRITE_OUT
    if rng.random() < 0.30:
        flags |= Flag.POP_FIFO1
    if rng.random() < 0.20:
        flags |= Flag.POP_FIFO2
    return MicroWord(op, rng.choice(_SOURCES), rng.choice(_SOURCES), dst,
                     flags, imm=rng.randrange(1 << word.WIDTH))


def _random_route(rng: random.Random, width: int) -> PortSource:
    r = rng.random()
    if r < 0.35:
        return PortSource.up(rng.randrange(width))
    if r < 0.55:
        return PortSource.rp(rng.randrange(1, 5), rng.randrange(1, width + 1))
    if r < 0.65:
        return PortSource.host(rng.randrange(3))
    if r < 0.75:
        return PortSource.bus()
    return PortSource.zero()


def _apply_random_config(ring: Ring, rng: random.Random) -> None:
    """Drive one ring into a random configuration via the hooked paths.

    Called once per ring with a freshly-seeded generator so both members
    of a pair draw the identical sequence.
    """
    g = ring.geometry
    for layer in range(g.layers):
        for pos in range(g.width):
            if rng.random() < 0.5:
                ring.config.write_mode(layer, pos, DnodeMode.LOCAL)
                length = rng.randrange(1, 9)
                ring.config.write_local_program(
                    layer, pos, [_random_word(rng) for _ in range(length)])
            else:
                ring.config.write_mode(layer, pos, DnodeMode.GLOBAL)
                ring.config.write_microword(layer, pos, _random_word(rng))
            for channel in (1, 2):
                depth = rng.randrange(0, 12)
                if depth:
                    ring.push_fifo(
                        layer, pos, channel,
                        [rng.randrange(1 << word.WIDTH)
                         for _ in range(depth)])
    for k in range(g.layers):
        for pos in range(g.width):
            for port in (1, 2):
                ring.config.write_switch_route(
                    k, pos, port, _random_route(rng, g.width))


class _HostLog:
    """Host reader whose value depends on the full call history.

    If the two engines ever issue host-port reads in a different order or
    count, the returned words — and therefore the fabric state — diverge
    immediately, so the state comparison also proves call-for-call host
    equivalence.
    """

    def __init__(self):
        self.calls = []

    def __call__(self, channel: int) -> int:
        self.calls.append(channel)
        return (channel * 311 + len(self.calls) * 7) & word.MASK


# ----------------------------------------------------------------------
# State capture / comparison
# ----------------------------------------------------------------------


def _state(ring: Ring) -> dict:
    g = ring.geometry
    state = {
        "cycles": ring.cycles,
        "fifo_underflows": ring.fifo_underflows,
    }
    for dn in ring.all_dnodes():
        state[dn.name] = {
            "out": dn.out,
            "regs": dn.regs.snapshot(),
            "counter": dn.local.counter,
            "stats": (dn.stats.cycles, dn.stats.instructions,
                      dn.stats.arithmetic_ops, dn.stats.multiplies,
                      dn.stats.fifo_pops),
        }
    for k in range(g.layers):
        sw = ring.switch(k)
        state[f"switch{k}"] = [
            [sw.rp_read(stage, lane)
             for stage in range(1, g.pipeline_depth + 1)]
            for lane in range(1, g.width + 1)
        ]
    # FIFO deques are created on demand (the fast-path compiler touches
    # some the interpreter never would), so compare contents only.
    state["fifos"] = {
        key: list(queue) for key, queue in ring._fifos.items() if queue
    }
    return state


def _make_pair(seed: int, layers: int = 4) -> tuple:
    geometry = RingGeometry(layers=layers, width=2)
    reference = Ring(geometry, fastpath=False)
    fast = Ring(geometry, fastpath=True)
    _apply_random_config(reference, random.Random(seed))
    _apply_random_config(fast, random.Random(seed))
    return reference, fast


def _assert_equivalent(seed: int, cycles: int, layers: int = 4) -> None:
    reference, fast = _make_pair(seed, layers)
    ref_host, fast_host = _HostLog(), _HostLog()
    bus = (seed * 9973) & word.MASK
    reference.run(cycles, bus=bus, host_in=ref_host)
    fast.run(cycles, bus=bus, host_in=fast_host)
    if cycles >= 3:
        assert fast._plan is not None, "fast path never engaged"
    assert ref_host.calls == fast_host.calls
    assert _state(reference) == _state(fast)


# ----------------------------------------------------------------------
# Seeded-random equivalence sweeps
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_random_programs_bit_identical(seed):
    _assert_equivalent(seed, cycles=48)


@pytest.mark.parametrize("seed", range(5))
def test_random_programs_larger_ring(seed):
    _assert_equivalent(seed + 100, cycles=32, layers=8)


@pytest.mark.parametrize("seed", range(8))
def test_midrun_reconfiguration_invalidates_plan(seed):
    reference, fast = _make_pair(seed)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(15, host_in=ref_host)
    fast.run(15, host_in=fast_host)
    assert fast._plan is not None
    _apply_random_config(reference, random.Random(seed + 1000))
    _apply_random_config(fast, random.Random(seed + 1000))
    assert fast._plan is None, "reconfiguration must drop the plan"
    reference.run(15, host_in=ref_host)
    fast.run(15, host_in=fast_host)
    assert fast._plan is not None, "plan must be recompiled after stability"
    assert ref_host.calls == fast_host.calls
    assert _state(reference) == _state(fast)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("batch_size", [1, 3])
def test_midrun_reconfiguration_all_backends(seed, batch_size):
    """Reconfigure mid-run under all three engines, batch included.

    The batch engine must drop its compiled kernels on any configuration
    write (via the ring's invalidation listeners), keep the lane state,
    recompile exactly once on the next run, and end bit-identical to the
    interpreter and the scalar fast path — on every lane (the host
    stimulus is broadcast, so all lanes mirror the scalar run).
    """
    geometry = RingGeometry(layers=4, width=2)
    reference = Ring(geometry, fastpath=False)
    fast = Ring(geometry, fastpath=True)
    batch = Ring(geometry, backend="batch", batch_size=batch_size)
    # B=1 rides the scalar fast path unless the vector engine has been
    # handed out; this test exercises the engine, so engage it.
    batch.batch
    rings = (reference, fast, batch)
    hosts = [_HostLog() for _ in rings]
    for ring in rings:
        _apply_random_config(ring, random.Random(seed))
    for ring, host in zip(rings, hosts):
        ring.run(15, host_in=host)
    engine = batch._batch_engine
    assert engine is not None and engine._kernels is not None
    compiles = engine.compiles
    invalidations = engine.invalidations
    ring_invalidations = batch.plan_invalidations
    for ring in rings:
        _apply_random_config(ring, random.Random(seed + 1000))
    assert fast._plan is None, "reconfiguration must drop the plan"
    assert engine._kernels is None, (
        "reconfiguration must drop the batch kernels"
    )
    assert engine.invalidations > invalidations
    assert batch.plan_invalidations > ring_invalidations
    for ring, host in zip(rings, hosts):
        ring.run(15, host_in=host)
    assert engine.compiles == compiles + 1, "one recompile, once stable"
    assert hosts[1].calls == hosts[0].calls
    assert hosts[2].calls == hosts[0].calls
    want = _state(reference)
    assert _state(fast) == want
    assert _state(batch) == want  # lane 0, written back by run()
    for lane in range(batch_size):
        target = Ring(geometry)
        engine.store_lane(lane, target)
        assert _state(target) == want, f"lane {lane} diverged"


@pytest.mark.parametrize("seed", range(5))
def test_reset_midstream_stays_equivalent(seed):
    # reset() clears registers/pipelines/FIFOs *in place*, so an existing
    # compiled plan (whose closures bind those containers) stays valid.
    reference, fast = _make_pair(seed)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(12, host_in=ref_host)
    fast.run(12, host_in=fast_host)
    reference.reset()
    fast.reset()
    for ring in (reference, fast):
        ring.push_fifo(0, 0, 1, [7, 8, 9])
    reference.run(12, host_in=ref_host)
    fast.run(12, host_in=fast_host)
    assert ref_host.calls == fast_host.calls
    assert _state(reference) == _state(fast)


@pytest.mark.parametrize("seed", range(5))
def test_reset_with_live_fifo_handles_and_compiled_plan(seed):
    # Harder reset scenario: FIFOs already hold data when the plan
    # compiles (so the plan's pop/peek closures bind those exact deques),
    # then reset() empties them in place mid-run.  The plan survives and
    # must keep matching the interpreter on the refilled state.
    reference, fast = _make_pair(seed + 2000)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(9, host_in=ref_host)
    fast.run(9, host_in=fast_host)
    assert fast._plan is not None
    plan_before = fast._plan
    reference.reset()
    fast.reset()
    assert fast._plan is plan_before, \
        "reset clears state in place; it must not drop the plan"
    rng = random.Random(seed + 3000)
    refill = [rng.randrange(1 << word.WIDTH) for _ in range(6)]
    for ring in (reference, fast):
        ring.push_fifo(0, 0, 1, refill)
        ring.push_fifo(1, 1, 2, refill[:3])
    reference.run(9, host_in=ref_host)
    fast.run(9, host_in=fast_host)
    assert ref_host.calls == fast_host.calls
    assert _state(reference) == _state(fast)


@pytest.mark.parametrize("seed", range(5))
def test_reset_counters_identical_across_engines(seed):
    reference, fast = _make_pair(seed + 4000)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(8, bus=5, host_in=ref_host)
    fast.run(8, bus=5, host_in=fast_host)
    reference.reset()
    fast.reset()
    for ring in (reference, fast):
        assert ring.cycles == 0
        assert ring.fifo_underflows == 0
        assert ring.fifo_high_water == {}
        assert ring.last_bus == 0
    reference.run(8, host_in=ref_host)
    fast.run(8, host_in=fast_host)
    assert _state(reference) == _state(fast)


# ----------------------------------------------------------------------
# Sampled-trace equivalence: the chunk-running fast path must capture
# the same cycles with the same values as the per-cycle interpreter.
# ----------------------------------------------------------------------


def _traced_pair(seed, interval, start=None, stop=None):
    from repro.analysis.trace import Probe, SignalTrace
    reference, fast = _make_pair(seed)
    probes = [Probe.out(0, 0), Probe.out(2, 1), Probe.reg(1, 0, 2),
              Probe.bus()]
    traces = tuple(
        SignalTrace(ring, probes, interval=interval, start=start, stop=stop)
        for ring in (reference, fast))
    return reference, fast, traces


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("interval", [1, 3, 7, 16])
def test_sampled_trace_bit_identical_across_engines(seed, interval):
    reference, fast, (ref_trace, fast_trace) = _traced_pair(seed, interval)
    ref_host, fast_host = _HostLog(), _HostLog()
    bus = (seed * 7919) & word.MASK
    reference.run(40, bus=bus, host_in=ref_host)
    fast.run(40, bus=bus, host_in=fast_host)
    if interval > 1:
        assert fast._plan is not None, \
            "a sampled trace must not keep the ring off the fast path"
    assert fast_trace.sampled_at == ref_trace.sampled_at
    assert fast_trace.samples == ref_trace.samples
    assert _state(reference) == _state(fast)


@pytest.mark.parametrize("seed", range(4))
def test_windowed_trace_bit_identical_across_engines(seed):
    reference, fast, (ref_trace, fast_trace) = _traced_pair(
        seed + 500, interval=4, start=10, stop=30)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(40, host_in=ref_host)
    fast.run(40, host_in=fast_host)
    assert fast._plan is not None
    assert fast_trace.sampled_at == ref_trace.sampled_at == [12, 16, 20,
                                                             24, 28]
    assert fast_trace.samples == ref_trace.samples


@pytest.mark.parametrize("seed", range(3))
def test_trace_across_reset_bit_identical(seed):
    # reset() mid-run with a live sampled trace: both engines must keep
    # sampling the same post-reset cycle indices with identical values.
    reference, fast, (ref_trace, fast_trace) = _traced_pair(
        seed + 700, interval=5)
    ref_host, fast_host = _HostLog(), _HostLog()
    reference.run(13, host_in=ref_host)
    fast.run(13, host_in=fast_host)
    reference.reset()
    fast.reset()
    for ring in (reference, fast):
        ring.push_fifo(0, 0, 1, [11, 22, 33])
    reference.run(13, host_in=ref_host)
    fast.run(13, host_in=fast_host)
    assert fast_trace.sampled_at == ref_trace.sampled_at
    assert fast_trace.samples == ref_trace.samples
    assert _state(reference) == _state(fast)


def test_per_cycle_reconfiguration_never_compiles():
    # Hardware multiplexing: a configuration write every cycle keeps the
    # fabric permanently on the interpreter — no compile thrash.
    ring = Ring(RingGeometry(layers=4, width=2))
    for i in range(10):
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=i))
        ring.step()
        assert ring._plan is None
        assert ring.dnode(0, 0).out == i


def test_single_interpreted_cycle_before_compile():
    ring = Ring(RingGeometry(layers=4, width=2))
    ring.config.write_microword(0, 0, MicroWord(
        Opcode.ADD, Source.SELF, Source.IMM, dst=Dest.OUT, imm=1))
    ring.step()
    assert ring._plan is None          # config was dirty this cycle
    ring.step()
    assert ring._plan is not None      # stable for a full cycle: compiled
    ring.run(10)
    assert ring.dnode(0, 0).out == 12


def test_fastpath_disabled_never_compiles():
    ring = Ring(RingGeometry(layers=4, width=2), fastpath=False)
    ring.run(10)
    assert ring._plan is None


# ----------------------------------------------------------------------
# Error-path equivalence
# ----------------------------------------------------------------------


def _strict_pair():
    geometry = RingGeometry(layers=4, width=2)
    return (Ring(geometry, strict_fifos=True, fastpath=False),
            Ring(geometry, strict_fifos=True, fastpath=True))


def test_strict_fifo_peek_error_identical():
    reference, fast = _strict_pair()
    errors = []
    for ring in (reference, fast):
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.MOV, Source.FIFO1, dst=Dest.OUT, flags=Flag.POP_FIFO1))
        ring.push_fifo(0, 0, 1, [1, 2, 3])
        with pytest.raises(SimulationError) as excinfo:
            ring.run(10)
        errors.append(str(excinfo.value))
        assert ring.cycles == 3
    assert errors[0] == errors[1] == "D0.0 read empty FIFO1 at cycle 3"
    assert fast._plan is not None  # the error came from the compiled engine


def test_strict_fifo_pop_error_identical():
    reference, fast = _strict_pair()
    errors = []
    for ring in (reference, fast):
        # NOP reads nothing, so only the commit-phase pop sees the empty
        # FIFO — this exercises the pop thunk's strict raise.
        ring.config.write_microword(0, 0, MicroWord(
            Opcode.NOP, flags=Flag.POP_FIFO1))
        ring.push_fifo(0, 0, 1, [1, 2, 3])
        with pytest.raises(SimulationError) as excinfo:
            ring.run(10)
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1] == "D0.0 popped empty FIFO1 at cycle 3"


def test_missing_host_reader_error_identical():
    errors = []
    for fastpath in (False, True):
        ring = Ring(RingGeometry(layers=4, width=2), fastpath=fastpath)
        ring.config.write_switch_route(0, 0, 1, PortSource.host(2))
        with pytest.raises(SimulationError) as excinfo:
            ring.run(10)
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]
    assert "no host reader was supplied" in errors[0]


def test_shallow_pipeline_tap_error_identical():
    # Geometry with a 2-deep pipeline but a stage-4 route: the interpreter
    # raises at port resolution; the compiled plan must raise identically
    # (the fetch stays eager precisely because it is observable).
    errors = []
    for fastpath in (False, True):
        ring = Ring(RingGeometry(layers=4, width=2, pipeline_depth=2),
                    fastpath=fastpath)
        ring.config.write_switch_route(0, 0, 1, PortSource.rp(4, 1))
        with pytest.raises(SimulationError) as excinfo:
            ring.run(10)
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]
    assert "feedback stage 4 out of range" in errors[0]


# ----------------------------------------------------------------------
# Hypothesis sweep
# ----------------------------------------------------------------------


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           cycles=st.integers(min_value=3, max_value=64))
    def test_hypothesis_equivalence(seed, cycles):
        _assert_equivalent(seed, cycles)
