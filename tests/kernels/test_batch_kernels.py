"""Golden kernel tests on the batch backend: 8 streams, one fabric.

Each test runs a paper kernel (FIR / IIR / DCT) with batch_size=8 and a
*different* input stream per lane, then checks every lane bit-exactly
against the scalar golden model in :mod:`repro.kernels.reference` /
:func:`repro.kernels.dct.dct8_reference` — the end-to-end counterpart of
the per-opcode and per-cycle differential suites in
``tests/core/test_differential.py``.
"""

import pytest

from repro import word
from repro.core.ring import Ring, RingGeometry
from repro.host.system import RingSystem
from repro.kernels import reference
from repro.kernels.dct import build_dct_system, dct8_reference
from repro.kernels.fir import build_spatial_fir
from repro.kernels.iir import build_first_order_iir

BATCH = 8


def _lane_signal(lane: int, length: int, spread: int = 40):
    """A small deterministic signal that differs per lane."""
    return [((3 * i + 7 * lane + 5) % (2 * spread)) - spread
            for i in range(length)]


class TestBatchFir:
    TAPS = [3, -1, 4, 2]

    def test_eight_lanes_match_reference(self):
        n_taps = len(self.TAPS)
        ring = Ring(RingGeometry(layers=n_taps, width=2),
                    backend="batch", batch_size=BATCH)
        build_spatial_fir(self.TAPS, ring=ring)
        system = RingSystem(ring)
        length = 24
        signals = [_lane_signal(lane, length) for lane in range(BATCH)]
        for lane, signal in enumerate(signals):
            system.data.stream(0, [word.from_signed(v) for v in signal],
                               lane=lane)
        tap = system.data.add_tap(n_taps - 1, 1, skip=n_taps - 1,
                                  limit=length)
        system.run(length + n_taps)
        assert tap.full
        for lane, signal in enumerate(signals):
            got = [word.to_signed(v) for v in tap.lane(lane)]
            want = reference.fir(signal, self.TAPS)
            assert got == want, f"FIR lane {lane} diverged"
        # Lanes carried different data, so the streams must differ too.
        assert tap.lane(0) != tap.lane(1)


class TestBatchIir:
    B0, A1 = 3, -1

    def test_eight_lanes_match_reference(self):
        ring = Ring(RingGeometry(layers=2, width=2),
                    backend="batch", batch_size=BATCH)
        build_first_order_iir(self.B0, self.A1, ring=ring)
        system = RingSystem(ring)
        length = 20
        signals = [_lane_signal(lane, length, spread=25)
                   for lane in range(BATCH)]
        for lane, signal in enumerate(signals):
            system.data.stream(0, [word.from_signed(v) for v in signal],
                               lane=lane)
        tap = system.data.add_tap(1, 0, skip=1, limit=length)
        system.run(length + 2)
        for lane, signal in enumerate(signals):
            got = [word.to_signed(v) for v in tap.lane(lane)]
            want = reference.iir_first_order(signal, self.B0, self.A1)
            assert got == want, f"IIR lane {lane} diverged"


class TestBatchDct:
    GROUPS = 3

    def test_eight_lanes_match_reference(self):
        ring = Ring(RingGeometry.ring(16),
                    backend="batch", batch_size=BATCH)
        system = build_dct_system(ring)
        length = 8 * self.GROUPS
        signals = [_lane_signal(lane, length, spread=30)
                   for lane in range(BATCH)]
        engine = ring.batch
        taps = []
        for k in range(8):
            for lane, signal in enumerate(signals):
                engine.push_fifo(
                    k, 0, 1, [word.from_signed(v) for v in signal],
                    lane=lane)
            taps.append(system.data.add_tap(k, 0, skip=7, every=8,
                                            limit=self.GROUPS))
        system.run(length)
        for lane, signal in enumerate(signals):
            for group in range(self.GROUPS):
                want = dct8_reference(signal[8 * group:8 * group + 8])
                got = [word.to_signed(taps[k].lane(lane)[group])
                       for k in range(8)]
                assert got == want, (
                    f"DCT lane {lane} group {group} diverged"
                )


def test_batch_size_one_matches_scalar_system():
    """B=1 batch system and the plain scalar system agree end to end."""
    taps = [2, -3, 1]
    signal = _lane_signal(1, 16)
    results = []
    for kwargs in ({}, {"backend": "batch", "batch_size": 1}):
        ring = Ring(RingGeometry(layers=3, width=2), **kwargs)
        build_spatial_fir(taps, ring=ring)
        system = RingSystem(ring)
        system.data.stream(0, [word.from_signed(v) for v in signal])
        tap = system.data.add_tap(2, 1, skip=2, limit=len(signal))
        system.run(len(signal) + 3)
        samples = (tap.lane(0) if hasattr(tap, "lane")
                   else list(tap.samples))
        results.append([word.to_signed(v) for v in samples])
    assert results[0] == results[1] == [
        word.to_signed(word.wrap(v)) for v in reference.fir(signal, taps)]
