"""Tests for the Dnode datapath cell."""

import pytest

from repro import word
from repro.core.dnode import Dnode, DnodeInputs, DnodeMode
from repro.core.isa import Dest, Flag, MicroWord, Opcode, Source
from repro.errors import ConfigurationError


def step(dn, mw=None, **inputs):
    """Configure (optionally), evaluate and commit one cycle."""
    if mw is not None:
        dn.configure(mw)
    dn.evaluate(DnodeInputs(**inputs))
    return dn.commit()


class TestConfiguration:
    def test_powers_on_global_nop(self):
        dn = Dnode()
        assert dn.mode is DnodeMode.GLOBAL
        assert dn.active_microword().op is Opcode.NOP

    def test_configure_type_checked(self):
        with pytest.raises(ConfigurationError):
            Dnode().configure("add out, in1, in2")

    def test_set_mode_type_checked(self):
        with pytest.raises(ConfigurationError):
            Dnode().set_mode("local")

    def test_active_word_follows_mode(self):
        dn = Dnode()
        dn.configure(MicroWord(Opcode.ADD, Source.IN1, Source.IN2,
                               Dest.OUT))
        dn.local.load_program([MicroWord(Opcode.SUB, Source.IN1,
                                         Source.IN2, Dest.OUT)])
        assert dn.active_microword().op is Opcode.ADD
        dn.set_mode(DnodeMode.LOCAL)
        assert dn.active_microword().op is Opcode.SUB

    def test_name_defaults_to_coordinates(self):
        assert Dnode(2, 1).name == "D2.1"


class TestExecution:
    def test_out_is_master_slave(self):
        dn = Dnode()
        dn.configure(MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT))
        dn.evaluate(DnodeInputs(in1=42))
        assert dn.out == 0      # not yet committed
        dn.commit()
        assert dn.out == 42

    def test_add_from_inputs(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.ADD, Source.IN1, Source.IN2, Dest.OUT),
             in1=3, in2=4)
        assert dn.out == 7

    def test_imm_source(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.ADD, Source.IN1, Source.IMM, Dest.OUT,
                           imm=10), in1=5)
        assert dn.out == 15

    def test_bus_source(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.BUS, dst=Dest.OUT), bus=77)
        assert dn.out == 77

    def test_zero_source(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.ZERO, dst=Dest.OUT))
        assert dn.out == 0

    def test_self_source_reads_own_out(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT), in1=5)
        step(dn, MicroWord(Opcode.ADD, Source.SELF, Source.IMM, Dest.OUT,
                           imm=1))
        assert dn.out == 6

    def test_register_destination(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.IN1, dst=Dest.R2), in1=9)
        assert dn.regs.read(2) == 9
        assert dn.out == 0  # OUT untouched

    def test_write_out_flag_mirrors(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.IN1, dst=Dest.R2,
                           flags=Flag.WRITE_OUT), in1=9)
        assert dn.regs.read(2) == 9
        assert dn.out == 9

    def test_none_destination_discards(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.IN1, dst=Dest.NONE), in1=9)
        assert dn.out == 0
        assert dn.regs.snapshot() == [0, 0, 0, 0]

    def test_mac_accumulates_in_register(self):
        dn = Dnode()
        mw = MicroWord(Opcode.MAC, Source.IN1, Source.IN2, Dest.R0)
        step(dn, mw, in1=3, in2=4)
        step(dn, mw, in1=5, in2=6)
        assert dn.regs.read(0) == 42

    def test_rp_source_uses_callback(self):
        dn = Dnode()
        calls = []

        def rp(stage, lane):
            calls.append((stage, lane))
            return 11

        step(dn, MicroWord(Opcode.MOV, Source.rp(3, 2), dst=Dest.OUT),
             rp_read=rp)
        assert dn.out == 11
        assert calls == [(3, 2)]

    def test_fifo_peek_and_pop_flags(self):
        dn = Dnode()
        mw = MicroWord(Opcode.ADD, Source.FIFO1, Source.FIFO2, Dest.OUT,
                       flags=Flag.POP_FIFO1 | Flag.POP_FIFO2)
        dn.configure(mw)
        dn.evaluate(DnodeInputs(fifo_peek=lambda ch: 10 * ch))
        pops = dn.commit()
        assert dn.out == 30
        assert set(pops) == {1, 2}

    def test_pops_reported_even_for_nop(self):
        dn = Dnode()
        dn.configure(MicroWord(flags=Flag.POP_FIFO1))
        dn.evaluate(DnodeInputs())
        assert dn.commit() == (1,)


class TestLocalMode:
    def test_local_loop_advances_each_cycle(self):
        dn = Dnode()
        dn.local.load_program([
            MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=1),
            MicroWord(Opcode.MOV, Source.IMM, dst=Dest.OUT, imm=2),
        ])
        dn.set_mode(DnodeMode.LOCAL)
        outs = []
        for _ in range(4):
            step(dn)
            outs.append(dn.out)
        assert outs == [1, 2, 1, 2]

    def test_global_mode_does_not_advance_counter(self):
        dn = Dnode()
        dn.local.load_program([MicroWord(), MicroWord()])
        step(dn, MicroWord())  # global NOP
        assert dn.local.counter == 0


class TestStats:
    def test_counts_instructions_and_ops(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MAC, Source.IN1, Source.IN2, Dest.R0),
             in1=2, in2=3)
        step(dn, MicroWord())  # NOP
        assert dn.stats.cycles == 2
        assert dn.stats.instructions == 1
        assert dn.stats.arithmetic_ops == 2  # MAC = mult + add
        assert dn.stats.multiplies == 1

    def test_mov_costs_no_arithmetic(self):
        dn = Dnode()
        step(dn, MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT), in1=1)
        assert dn.stats.instructions == 1
        assert dn.stats.arithmetic_ops == 0


class TestReset:
    def test_reset_clears_datapath_keeps_config(self):
        dn = Dnode()
        mw = MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT)
        step(dn, mw, in1=9)
        dn.reset()
        assert dn.out == 0
        assert dn.stats.cycles == 0
        assert dn.global_word == mw  # configuration survives

    def test_input_validation(self):
        dn = Dnode()
        dn.configure(MicroWord(Opcode.MOV, Source.IN1, dst=Dest.OUT))
        with pytest.raises(ValueError):
            dn.evaluate(DnodeInputs(in1=word.MASK + 1))
