"""Instruction set of the RISC configuration controller.

The controller is a small load/store RISC machine (16 registers x 16 bits,
one instruction per cycle) extended with the paper's *dedicated instruction
set* for dynamic configuration management:

* ``CFGD``/``CFGDI`` — write a configuration-ROM microword into a Dnode's
  global-mode slot (register-indirect / immediate forms; the indirect form
  is what lets a small loop reconfigure an arbitrarily large ring);
* ``CFGL``/``CFGLIM``/``CFGMODE`` — program a Dnode's local sequencer and
  execution mode;
* ``CFGS`` — write a switch routing entry;
* ``CFGPLANE`` — swap the *entire* fabric configuration in one cycle, the
  paper's "able to change up to the entire content of the [configuration
  memory]" wide path;
* ``BUSW`` — drive the shared bus seen by every Dnode;
* ``INW``/``OUTW``/``BFE`` — host mailbox communication.

Instructions are 32 bits: a 6-bit opcode followed by op-specific fields
packed MSB-first (see ``FORMATS``).  :func:`encode_instruction` /
:func:`decode_instruction` convert between the dataclass and binary forms;
the assembler emits binaries, the loader decodes them back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

NUM_REGISTERS = 16
INSTRUCTION_BITS = 32

#: Controller register width (same 16-bit datapath as the ring).
REG_MASK = 0xFFFF


class ROp(enum.IntEnum):
    """Controller opcodes."""

    NOP = 0
    HALT = 1
    LDI = 2       # rd <- imm16
    MOV = 3       # rd <- rs
    ADD = 4       # rd <- rs + rt
    SUB = 5
    AND = 6
    OR = 7
    XOR = 8
    SHL = 9       # rd <- rs << (rt & 15)
    SHR = 10
    MUL = 11      # rd <- low16(rs * rt)
    ADDI = 12     # rd <- rs + simm12
    BEQ = 13      # if rs == rt: pc += soff12
    BNE = 14
    BLT = 15      # signed compare
    BGE = 16
    JMP = 17      # pc <- addr16
    JAL = 18      # r15 <- pc + 1; pc <- addr16
    JR = 19       # pc <- rs
    LW = 20       # rd <- dmem[rs + simm12]
    SW = 21       # dmem[rs + simm12] <- rt
    SAR = 22      # rd <- rs >> (rt & 15), arithmetic (sign-extending)
    # --- dedicated configuration instructions -------------------------
    CFGDI = 32    # dnode10 <- cfgrom[cfg12]          (immediate)
    CFGD = 33     # dnode r[rs] <- cfgrom[r[rt]]      (register indirect)
    CFGL = 34     # dnode10 local slot3 <- cfgrom[cfg12]
    CFGLIM = 35   # dnode10 LIMIT <- limit4
    CFGMODE = 36  # dnode10 mode <- mode1 (0 global, 1 local)
    CFGS = 37     # switch8 pos3 port2 <- cfgrom[cfg12] (a route word)
    CFGPLANE = 38 # apply plane table entry plane8
    CFGIMM = 39   # dnode10 <- cfgrom[cfg12] with its immediate field
                  # replaced by r[rs] (adaptive coefficients)
    # --- bus / host communication --------------------------------------
    BUSW = 48     # drive shared bus with r[rs] from the next cycle
    INW = 49      # rd <- pop host mailbox channel ch4 (stalls while empty)
    OUTW = 50     # push r[rs] to host mailbox channel ch4
    BFE = 51      # if mailbox channel ch4 empty: pc += soff12
    WAITI = 52    # stall for imm16 cycles
    RDD = 53      # rd <- OUT register of dnode10 (read over the shared
                  # bus: the paper's "optional RISC communications")


#: Per-opcode field layout: ordered (field name, bit width, signed) tuples,
#: packed MSB-first immediately below the opcode.
FORMATS: Dict[ROp, Tuple[Tuple[str, int, bool], ...]] = {
    ROp.NOP: (),
    ROp.HALT: (),
    ROp.LDI: (("rd", 4, False), ("imm", 16, False)),
    ROp.MOV: (("rd", 4, False), ("rs", 4, False)),
    ROp.ADD: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.SUB: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.AND: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.OR: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.XOR: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.SHL: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.SHR: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.MUL: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.ADDI: (("rd", 4, False), ("rs", 4, False), ("imm", 12, True)),
    ROp.BEQ: (("rs", 4, False), ("rt", 4, False), ("imm", 12, True)),
    ROp.BNE: (("rs", 4, False), ("rt", 4, False), ("imm", 12, True)),
    ROp.BLT: (("rs", 4, False), ("rt", 4, False), ("imm", 12, True)),
    ROp.BGE: (("rs", 4, False), ("rt", 4, False), ("imm", 12, True)),
    ROp.JMP: (("imm", 16, False),),
    ROp.JAL: (("imm", 16, False),),
    ROp.JR: (("rs", 4, False),),
    ROp.SAR: (("rd", 4, False), ("rs", 4, False), ("rt", 4, False)),
    ROp.LW: (("rd", 4, False), ("rs", 4, False), ("imm", 12, True)),
    ROp.SW: (("rt", 4, False), ("rs", 4, False), ("imm", 12, True)),
    ROp.CFGDI: (("dnode", 10, False), ("cfg", 12, False)),
    ROp.CFGD: (("rs", 4, False), ("rt", 4, False)),
    ROp.CFGL: (("dnode", 10, False), ("slot", 3, False), ("cfg", 12, False)),
    ROp.CFGLIM: (("dnode", 10, False), ("limit", 4, False)),
    ROp.CFGMODE: (("dnode", 10, False), ("mode", 1, False)),
    ROp.CFGS: (("sw", 8, False), ("pos", 3, False), ("port", 2, False),
               ("cfg", 12, False)),
    ROp.CFGPLANE: (("plane", 8, False),),
    ROp.CFGIMM: (("dnode", 10, False), ("cfg", 12, False),
                 ("rs", 4, False)),
    ROp.BUSW: (("rs", 4, False),),
    ROp.INW: (("rd", 4, False), ("ch", 4, False)),
    ROp.OUTW: (("rs", 4, False), ("ch", 4, False)),
    ROp.BFE: (("ch", 4, False), ("imm", 12, True)),
    ROp.WAITI: (("imm", 16, False),),
    ROp.RDD: (("rd", 4, False), ("dnode", 10, False)),
}


@dataclass(frozen=True)
class Instruction:
    """One controller instruction with symbolic fields.

    Only the fields named by the opcode's format are meaningful; the rest
    stay at their defaults and are not encoded.
    """

    op: ROp
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    dnode: int = 0
    cfg: int = 0
    slot: int = 0
    limit: int = 1
    mode: int = 0
    sw: int = 0
    pos: int = 0
    port: int = 1
    plane: int = 0
    ch: int = 0

    def __post_init__(self) -> None:
        for name in ("rd", "rs", "rt"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGISTERS:
                raise ConfigurationError(
                    f"{self.op.name}: register {name}={value} out of range "
                    f"0..{NUM_REGISTERS - 1}"
                )
        for name, width, signed in FORMATS[self.op]:
            value = getattr(self, name)
            lo = -(1 << (width - 1)) if signed else 0
            hi = (1 << (width - 1)) - 1 if signed else (1 << width) - 1
            if not lo <= value <= hi:
                raise ConfigurationError(
                    f"{self.op.name}: field {name}={value} outside "
                    f"[{lo}, {hi}]"
                )

    def __str__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name, _, _ in FORMATS[self.op]
        )
        return f"{self.op.name.lower()} {fields}".strip()


def encode_instruction(instr: Instruction) -> int:
    """Pack an :class:`Instruction` into its 32-bit binary form."""
    raw = int(instr.op) << (INSTRUCTION_BITS - 6)
    shift = INSTRUCTION_BITS - 6
    for name, width, signed in FORMATS[instr.op]:
        shift -= width
        value = getattr(instr, name)
        if signed:
            value &= (1 << width) - 1
        raw |= value << shift
    return raw


def decode_instruction(raw: int) -> Instruction:
    """Unpack a 32-bit binary word into an :class:`Instruction`."""
    if not isinstance(raw, int) or raw < 0 or raw >= (1 << INSTRUCTION_BITS):
        raise ConfigurationError(
            f"instruction must fit in 32 bits, got {raw!r}"
        )
    code = raw >> (INSTRUCTION_BITS - 6)
    try:
        op = ROp(code)
    except ValueError as exc:
        raise ConfigurationError(f"illegal opcode {code}") from exc
    fields = {}
    shift = INSTRUCTION_BITS - 6
    for name, width, signed in FORMATS[op]:
        shift -= width
        value = (raw >> shift) & ((1 << width) - 1)
        if signed and value & (1 << (width - 1)):
            value -= 1 << width
        fields[name] = value
    return Instruction(op, **fields)


def encode_program(program: List[Instruction]) -> List[int]:
    """Encode a whole controller program to binary words."""
    return [encode_instruction(i) for i in program]


def decode_program(words: List[int]) -> List[Instruction]:
    """Decode binary words back to instructions."""
    return [decode_instruction(w) for w in words]
