"""Configuration controller: the custom RISC core managing the ring.

Paper §3: "We also use a custom RISC core with a dedicated instruction set
as configuration controller; its task is to manage dynamically the
configuration of the network and also to control the data communications
between the reconfigurable core and the host CPU."

* :mod:`repro.controller.isa` — the controller instruction set, including
  the dedicated configuration-management instructions.
* :mod:`repro.controller.core` — the cycle-accurate controller simulator.
"""

from repro.controller.isa import Instruction, ROp, encode_instruction, decode_instruction
from repro.controller.core import (
    ConfigCommand,
    ConfigTargetKind,
    ControllerState,
    RiscController,
)

__all__ = [
    "Instruction",
    "ROp",
    "encode_instruction",
    "decode_instruction",
    "ConfigCommand",
    "ConfigTargetKind",
    "ControllerState",
    "RiscController",
]
