"""Table 1 — motion-estimation performance.

Paper row set: cycles needed for matching an 8x8 reference block against
its +/-8-pixel search area, on the dedicated ASIC [7], the Systolic
Ring, and Intel MMX code [8].  The reproduced shape:

* ASIC << Ring << MMX in cycles,
* the Ring "almost 8 times faster than an MMX solution",
* the ASIC several times faster than the Ring (hardware, no flexibility).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.baselines.asic_me import asic_block_match
from repro.baselines.mmx import mmx_block_match
from repro.kernels.motion_estimation import cycle_model, full_search_me
from repro.kernels.reference import full_search


def test_table1_ring_fabric(benchmark, me_workload):
    """Benchmark the cycle-accurate Ring-16 run and check exactness."""
    block, area = me_workload
    result = benchmark(full_search_me, block, area)
    _, _, golden = full_search(block, area)
    assert np.array_equal(result.sad_map, golden)
    assert result.cycles == cycle_model() == 2511
    benchmark.extra_info["fabric_cycles"] = result.cycles


def test_table1_mmx_baseline(benchmark, me_workload):
    block, area = me_workload
    result = benchmark(mmx_block_match, block.astype(np.uint8),
                       area.astype(np.uint8))
    _, _, golden = full_search(block, area)
    assert np.array_equal(result.sad_map, golden)
    benchmark.extra_info["modelled_cycles"] = result.cycles


def test_table1_asic_baseline(benchmark, me_workload):
    block, area = me_workload
    result = benchmark(asic_block_match, block, area)
    benchmark.extra_info["modelled_cycles"] = result.cycles


def test_table1_shape(me_workload):
    """The published comparison's shape must hold."""
    block, area = me_workload
    ring = full_search_me(block, area)
    mmx = mmx_block_match(block.astype(np.uint8), area.astype(np.uint8))
    asic = asic_block_match(block, area)

    assert asic.cycles < ring.cycles < mmx.cycles
    ring_vs_mmx = mmx.cycles / ring.cycles
    assert 6.0 <= ring_vs_mmx <= 10.0, "paper: 'almost 8 times faster'"
    assert ring.cycles / asic.cycles > 4, "paper: ASIC 'much faster'"

    emit(render_table(
        ["engine", "cycles", "vs Ring"],
        [
            ["ASIC [7]", asic.cycles, f"{asic.cycles / ring.cycles:.2f}x"],
            ["Systolic Ring-16", ring.cycles, "1.00x"],
            ["Intel MMX", mmx.cycles, f"{ring_vs_mmx:.2f}x"],
        ],
        title="Table 1 (reproduced) — 8x8 block, 289 candidates"))
