"""Tests for the full assembler (source -> ObjectCode)."""

import pytest

from repro.asm.assembler import assemble
from repro.controller.isa import ROp, decode_program
from repro.core.isa import Opcode, decode as decode_microword
from repro.core.switch import PortSource, decode_route
from repro.errors import AssemblerError


FULL = """
.ring boot
dnode 0.0 global
    add out, in1, #5
dnode 1.0 local
    mul out, in1, #3
    nop
switch 0
    route 0.1 <- host0
switch 1
    route 0.1 <- up0

.ring alt
dnode 0.0 global
    sub out, in1, #5

.risc
        cfgword patch, add out, in1, #7
        cfgroute tap, rp(2,1)
start:  ldi r1, 10
loop:   addi r1, r1, -1
        bne r1, r2, loop
        cfgdi d0.0, patch
        cfgs s1.0.2, tap
        cfgplane alt
        halt
"""


class TestAssembleFull:
    def setup_method(self):
        self.obj = assemble(FULL, layers=4, width=2)

    def test_geometry_recorded(self):
        assert (self.obj.layers, self.obj.width) == (4, 2)

    def test_two_planes_first_initial(self):
        assert [p.name for p in self.obj.planes] == ["boot", "alt"]
        assert self.obj.initial_plane == 0

    def test_plane_contents(self):
        boot = self.obj.planes[0]
        assert len(boot.dnode_words) == 1
        assert len(boot.local_slots) == 2
        assert boot.local_limits == [(2, 2)]   # dnode 1.0 = flat 2
        assert len(boot.routes) == 2
        assert dict(boot.modes) == {0: 0, 2: 1}

    def test_rom_deduplication(self):
        # "add out, in1, #5" appears once even if referenced repeatedly
        src = ".ring\ndnode 0.0\n    nop\ndnode 1.0\n    nop\n"
        obj = assemble(src, layers=4)
        nops = [e for e in obj.cfg_rom
                if decode_microword(e).op is Opcode.NOP]
        assert len(nops) == 1

    def test_program_decodes(self):
        program = decode_program(self.obj.program)
        ops = [i.op for i in program]
        assert ops == [ROp.LDI, ROp.ADDI, ROp.BNE, ROp.CFGDI, ROp.CFGS,
                       ROp.CFGPLANE, ROp.HALT]

    def test_branch_offset_resolved(self):
        program = decode_program(self.obj.program)
        bne = program[2]
        assert bne.imm == -2  # back to addr 1 from addr 2: 1 - 2 - 1

    def test_cfg_names_resolved(self):
        program = decode_program(self.obj.program)
        cfgdi = program[3]
        patched = decode_microword(self.obj.cfg_rom[cfgdi.cfg])
        assert patched.imm == 7
        cfgs = program[4]
        assert decode_route(self.obj.cfg_rom[cfgs.cfg]) == \
            PortSource.rp(2, 1)

    def test_plane_reference_resolved(self):
        program = decode_program(self.obj.program)
        assert program[5].plane == 1

    def test_symbols_exported(self):
        assert self.obj.symbols["start"] == 0
        assert self.obj.symbols["loop"] == 1


class TestErrors:
    def test_dnode_outside_geometry(self):
        with pytest.raises(AssemblerError, match="outside"):
            assemble(".ring\ndnode 9.0\n    nop\n", layers=4)

    def test_switch_outside_geometry(self):
        with pytest.raises(AssemblerError, match="outside"):
            assemble(".ring\nswitch 7\n    route 0.1 <- up0\n", layers=4)

    def test_global_dnode_needs_one_op(self):
        with pytest.raises(AssemblerError, match="exactly 1"):
            assemble(".ring\ndnode 0.0 global\n    nop\n    nop\n",
                     layers=4)

    def test_local_program_slot_limit(self):
        ops = "\n".join(["    nop"] * 9)
        with pytest.raises(AssemblerError, match="1..8"):
            assemble(f".ring\ndnode 0.0 local\n{ops}\n", layers=4)

    def test_duplicate_plane_name(self):
        with pytest.raises(AssemblerError, match="duplicate plane"):
            assemble(".ring x\n.ring x\n", layers=4)

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble(".risc\na: nop\na: nop\n", layers=4)

    def test_duplicate_cfg_name(self):
        src = ".risc\ncfgword x, nop\ncfgword x, nop\n"
        with pytest.raises(AssemblerError, match="duplicate cfg"):
            assemble(src, layers=4)

    def test_undefined_cfg_name(self):
        with pytest.raises(AssemblerError, match="undefined cfg"):
            assemble(".risc\ncfgdi d0.0, ghost\n", layers=4)

    def test_unknown_plane(self):
        with pytest.raises(AssemblerError, match="unknown plane"):
            assemble(".risc\ncfgplane ghost\n", layers=4)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(".risc\nfrob r1\n", layers=4)

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble(".risc\nldi r16, 0\n", layers=4)

    def test_bad_dnode_ref(self):
        with pytest.raises(AssemblerError, match="dnode"):
            assemble(".risc\ncfgword w, nop\ncfgdi q0.0, w\n", layers=4)

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble(".risc\nldi r1\n", layers=4)

    def test_cfgmode_operand(self):
        with pytest.raises(AssemblerError, match="global|local"):
            assemble(".risc\ncfgmode d0.0, sideways\n", layers=4)

    def test_error_carries_line_number(self):
        try:
            assemble(".risc\nnop\nfrob r1\n", layers=4)
        except AssemblerError as exc:
            assert exc.line == 3
        else:
            pytest.fail("expected AssemblerError")


class TestMnemonics:
    """Each mnemonic assembles to the right opcode/fields."""

    def _one(self, text, layers=4):
        obj = assemble(f".risc\n{text}\n", layers=layers)
        return decode_program(obj.program)[0]

    def test_nop_halt(self):
        assert self._one("nop").op is ROp.NOP
        assert self._one("halt").op is ROp.HALT

    def test_alu_three_reg(self):
        instr = self._one("add r1, r2, r3")
        assert (instr.op, instr.rd, instr.rs, instr.rt) == \
            (ROp.ADD, 1, 2, 3)

    def test_memory_ops(self):
        lw = self._one("lw r1, r2, 4")
        assert (lw.op, lw.rd, lw.rs, lw.imm) == (ROp.LW, 1, 2, 4)
        sw = self._one("sw r1, r2, -4")
        assert (sw.op, sw.rt, sw.rs, sw.imm) == (ROp.SW, 1, 2, -4)

    def test_io_ops(self):
        assert self._one("busw r3").rs == 3
        inw = self._one("inw r1, 2")
        assert (inw.op, inw.rd, inw.ch) == (ROp.INW, 1, 2)
        outw = self._one("outw 1, r4")
        assert (outw.op, outw.ch, outw.rs) == (ROp.OUTW, 1, 4)

    def test_waiti(self):
        assert self._one("waiti 100").imm == 100

    def test_jr(self):
        assert self._one("jr r15").rs == 15

    def test_cfgd_register_form(self):
        instr = self._one("cfgd r1, r2")
        assert (instr.op, instr.rs, instr.rt) == (ROp.CFGD, 1, 2)

    def test_cfgl_with_slot(self):
        obj = assemble(
            ".risc\ncfgword w, nop\ncfgl d1.1, 3, w\n", layers=4)
        instr = decode_program(obj.program)[0]
        assert (instr.op, instr.dnode, instr.slot) == (ROp.CFGL, 3, 3)

    def test_cfglim(self):
        instr = self._one("cfglim d0.0, 4")
        assert (instr.op, instr.limit) == (ROp.CFGLIM, 4)

    def test_cfgmode(self):
        instr = self._one("cfgmode d2.1, local")
        assert (instr.op, instr.dnode, instr.mode) == (ROp.CFGMODE, 5, 1)

    def test_bfe(self):
        obj = assemble(".risc\nx: bfe 0, x\n", layers=4)
        instr = decode_program(obj.program)[0]
        assert (instr.op, instr.ch, instr.imm) == (ROp.BFE, 0, -1)


class TestAdaptiveMnemonics:
    """rdd / cfgimm / sar — the adaptive-reconfiguration extension."""

    def _one(self, extra, text):
        obj = assemble(f".risc\n{extra}\n{text}\nhalt\n", layers=4)
        return decode_program(obj.program)

    def test_rdd(self):
        program = self._one("", "rdd r3, d1.1")
        assert (program[0].op, program[0].rd, program[0].dnode) == \
            (ROp.RDD, 3, 3)

    def test_cfgimm(self):
        program = self._one("cfgword t, mul out, bus, #0",
                            "cfgimm d0.1, t, r5")
        instr = program[0]
        assert (instr.op, instr.dnode, instr.rs) == (ROp.CFGIMM, 1, 5)

    def test_sar(self):
        program = self._one("", "sar r1, r2, r3")
        assert program[0].op == ROp.SAR

    def test_disassembly_of_new_ops(self):
        from repro.asm.disasm import disassemble

        src = (".risc\ncfgword t, mul out, bus, #0\n"
               "rdd r3, d1.1\ncfgimm d0.0, t, r2\nsar r1, r1, r2\nhalt\n")
        listing = disassemble(assemble(src, layers=4))
        assert "rdd r3, d1.1" in listing
        assert "cfgimm d0.0, [mul out, bus, #0], r2" in listing
        assert "sar r1, r1, r2" in listing
