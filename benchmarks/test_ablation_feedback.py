"""Ablation A2 — the feedback pipelines (§4.2's reverse dataflow).

The switches' feedback pipelines replace long routing with local delay
lines ("the required delays on recursive branch are automatically
achieved in them").  This ablation quantifies two consequences:

* **delay capacity**: a depth-P pipeline lets one Dnode provide up to
  ``1 + P`` cycles of delay, so an N-word FIFO costs
  ``1 + ceil(N / (1 + P))`` Dnodes instead of ``N + 1`` — measured via
  the FIFO-emulation planner;
* **FIR mappability**: the spatial FIR needs exactly one Rp tap per
  layer to re-time the sample stream; with the pipelines removed
  (depth 0) the mapping is impossible beyond one tap, with depth >= 1
  any tap count up to the layer count maps at 1 sample/cycle.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.kernels.fifo_emulation import delay_line, plan_delay
from repro.kernels.fir import spatial_fir
from repro.kernels.reference import fir as ref_fir

SIGNAL = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, -8]


def test_ablation_delay_capacity(benchmark):
    out = benchmark(delay_line, SIGNAL, 12)
    assert out == ([0] * 12 + SIGNAL)[:len(SIGNAL)]


def test_ablation_dnode_cost_vs_depth():
    """Dnodes needed for an N-cycle FIFO, with vs without the pipelines."""
    rows = []
    for depth_words in (4, 8, 16, 32):
        with_pipes = plan_delay(depth_words).dnodes_used
        without_pipes = depth_words + 1  # one register per Dnode
        rows.append([depth_words, with_pipes, without_pipes,
                     without_pipes / with_pipes])
        assert with_pipes < without_pipes
    emit(render_table(
        ["FIFO words", "Dnodes (with Rp)", "Dnodes (no Rp)", "saving"],
        rows, title="A2 (ablation) — feedback pipelines as delay lines"))
    # saving grows towards the asymptote of 1 + pipeline depth = 5x
    savings = [row[3] for row in rows]
    assert savings == sorted(savings)
    assert savings[-1] > 4.0


@pytest.mark.parametrize("taps", [[5], [5, -2], [5, -2, 3, 1, -1, 2, 7, 4]])
def test_ablation_fir_maps_at_full_rate(taps):
    """With the pipelines, any tap count up to the layer count maps at
    1 sample/cycle and stays bit-exact."""
    result = spatial_fir(taps, SIGNAL)
    assert result.outputs == ref_fir(SIGNAL, taps)
    assert result.samples_per_cycle == 1.0


def test_ablation_fir_needs_exactly_one_tap_stage():
    """Every FIR layer reads Rp stage 1 only — the architecture could
    not re-time the streams with shallower (depth-0) pipelines, and
    needs no deeper ones: the paper's depth-4 choice is generous."""
    from repro.core.isa import Source
    from repro.kernels.fir import build_spatial_fir

    system = build_spatial_fir([1, 2, 3, 4], None)
    stages_used = set()
    for layer in range(1, 4):
        for pos in (0, 1):
            mw = system.ring.dnode(layer, pos).global_word
            for src in (mw.src_a, mw.src_b):
                if src.is_feedback:
                    stages_used.add(src.feedback_stage)
    assert stages_used == {1}
