"""Tests for the inter-layer switch: routing, pipelines, route encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.switch import (
    PortKind,
    PortSource,
    Switch,
    SwitchConfig,
    decode_route,
    encode_route,
)
from repro.errors import ConfigurationError, SimulationError


class TestPortSource:
    def test_constructors(self):
        assert PortSource.zero().kind is PortKind.ZERO
        assert PortSource.up(1).index == 1
        assert PortSource.host(3).index == 3
        assert PortSource.bus().kind is PortKind.BUS
        rp = PortSource.rp(2, 1)
        assert (rp.index, rp.lane) == (2, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PortSource.up(-1)
        with pytest.raises(ConfigurationError):
            PortSource.rp(0, 1)
        with pytest.raises(ConfigurationError):
            PortSource.rp(5, 1)
        with pytest.raises(ConfigurationError):
            PortSource.rp(1, 0)
        with pytest.raises(ConfigurationError):
            PortSource.host(-1)

    def test_str_forms(self):
        assert str(PortSource.up(0)) == "up0"
        assert str(PortSource.rp(1, 2)) == "rp(1,2)"
        assert str(PortSource.host(4)) == "host4"
        assert str(PortSource.zero()) == "zero"


_route_sources = st.one_of(
    st.just(PortSource.zero()),
    st.just(PortSource.bus()),
    st.integers(min_value=0, max_value=255).map(PortSource.up),
    st.integers(min_value=0, max_value=255).map(PortSource.host),
    st.tuples(st.integers(min_value=1, max_value=4),
              st.integers(min_value=1, max_value=31)).map(
        lambda t: PortSource.rp(*t)),
)


class TestRouteEncoding:
    @given(_route_sources)
    def test_roundtrip(self, src):
        assert decode_route(encode_route(src)) == src

    @given(_route_sources)
    def test_fits_16_bits(self, src):
        assert 0 <= encode_route(src) < (1 << 16)

    def test_decode_rejects_illegal_kind(self):
        with pytest.raises(ConfigurationError):
            decode_route(7 << 13)

    def test_decode_rejects_oversize(self):
        with pytest.raises(ConfigurationError):
            decode_route(1 << 16)


class TestSwitchConfig:
    def test_default_is_zero(self):
        cfg = SwitchConfig(2)
        assert cfg.source_for(0, 1) == PortSource.zero()

    def test_route_and_lookup(self):
        cfg = SwitchConfig(2)
        cfg.route(1, 2, PortSource.up(0))
        assert cfg.source_for(1, 2) == PortSource.up(0)
        assert cfg.source_for(1, 1) == PortSource.zero()

    def test_straight_identity(self):
        cfg = SwitchConfig.straight(3)
        for p in range(3):
            assert cfg.source_for(p, 1) == PortSource.up(p)

    def test_position_bounds(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(2).route(2, 1, PortSource.zero())

    def test_port_must_be_1_or_2(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(2).route(0, 3, PortSource.zero())

    def test_up_index_bounded_by_width(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(2).route(0, 1, PortSource.up(2))

    def test_rp_lane_bounded_by_width(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(2).route(0, 1, PortSource.rp(1, 3))

    def test_clear(self):
        cfg = SwitchConfig(2)
        cfg.route(0, 1, PortSource.up(1))
        cfg.clear()
        assert cfg.source_for(0, 1) == PortSource.zero()

    def test_copy_is_independent(self):
        cfg = SwitchConfig(2)
        cfg.route(0, 1, PortSource.up(1))
        clone = cfg.copy()
        cfg.route(0, 1, PortSource.up(0))
        assert clone.source_for(0, 1) == PortSource.up(1)

    def test_type_checked(self):
        with pytest.raises(ConfigurationError):
            SwitchConfig(2).route(0, 1, "up0")


class TestFeedbackPipelines:
    def test_initially_zero(self):
        sw = Switch(0, 2)
        assert sw.rp_read(1, 1) == 0
        assert sw.rp_read(4, 2) == 0

    def test_shift_semantics(self):
        sw = Switch(0, 2)
        sw.shift([10, 20])
        sw.shift([11, 21])
        sw.shift([12, 22])
        # Rp(i, lane): lane output i shifts ago
        assert sw.rp_read(1, 1) == 12
        assert sw.rp_read(2, 1) == 11
        assert sw.rp_read(3, 1) == 10
        assert sw.rp_read(1, 2) == 22
        assert sw.rp_read(4, 1) == 0  # not yet filled

    def test_depth_limit(self):
        sw = Switch(0, 2)
        for i in range(6):
            sw.shift([i, 0])
        assert sw.rp_read(4, 1) == 2  # oldest retained

    def test_stage_bounds(self):
        sw = Switch(0, 2)
        with pytest.raises(SimulationError):
            sw.rp_read(0, 1)
        with pytest.raises(SimulationError):
            sw.rp_read(5, 1)

    def test_lane_bounds(self):
        sw = Switch(0, 2)
        with pytest.raises(SimulationError):
            sw.rp_read(1, 3)

    def test_shift_arity_checked(self):
        sw = Switch(0, 2)
        with pytest.raises(SimulationError):
            sw.shift([1])

    def test_shift_value_checked(self):
        sw = Switch(0, 2)
        with pytest.raises(ValueError):
            sw.shift([1, -1])

    def test_reset_flushes(self):
        sw = Switch(0, 2)
        sw.shift([5, 6])
        sw.config.route(0, 1, PortSource.up(1))
        sw.reset()
        assert sw.rp_read(1, 1) == 0
        # routing survives reset
        assert sw.config.source_for(0, 1) == PortSource.up(1)

    def test_custom_pipeline_depth(self):
        sw = Switch(0, 1, pipeline_depth=2)
        sw.shift([1])
        sw.shift([2])
        sw.shift([3])
        assert sw.rp_read(2, 1) == 2
        with pytest.raises(SimulationError):
            sw.rp_read(3, 1)


class TestRotatingPipelineBuffer:
    """The O(1) ring-buffer shift must stay bit-identical to the naive
    insert-at-front/drop-at-back pipeline it replaced."""

    def test_matches_naive_shift_model(self):
        depth = 4
        sw = Switch(0, 2, pipeline_depth=depth)
        naive = [[0] * depth for _ in range(2)]
        for i in range(3 * depth + 1):  # several full head wraparounds
            values = [(i * 3 + 1) & 0xFFFF, (i * 5 + 2) & 0xFFFF]
            sw.shift(values)
            for lane in range(2):
                naive[lane].insert(0, values[lane])
                naive[lane].pop()
            for stage in range(1, depth + 1):
                for lane in (1, 2):
                    assert sw.rp_read(stage, lane) == naive[lane - 1][stage - 1]

    def test_reset_preserves_pipe_identity(self):
        # The fast-path engine closes over the pipeline lists, so reset
        # must clear them in place rather than replace them.
        sw = Switch(0, 2)
        pipes = sw._pipes
        lanes = list(pipes)
        sw.shift([5, 6])
        sw.reset()
        assert sw._pipes is pipes
        assert all(a is b for a, b in zip(sw._pipes, lanes))
        assert sw._head == 0


class TestConfigChangeHook:
    def test_route_and_clear_fire(self):
        calls = []
        cfg = SwitchConfig(2)
        cfg.on_change = lambda: calls.append(1)
        cfg.route(0, 1, PortSource.up(0))
        cfg.clear()
        assert len(calls) == 2

    def test_lookup_does_not_fire(self):
        calls = []
        cfg = SwitchConfig(2)
        cfg.on_change = lambda: calls.append(1)
        cfg.source_for(0, 1)
        assert calls == []
