"""Compiler autopilot: measured speedup over the default mapping.

The tentpole perf claim: for library kernel graphs, the autotuner's
measured-throughput search finds a mapping at least 1.5x faster than the
default ``compile_graph`` emission (in practice the native / macro-fused
engines land 5-10x), every winner proven bit-identical to the golden
evaluator, and a repeat submission pays ~zero search via the
graph+fabric-fingerprint memo.

Results land in ``BENCH_autotune.json`` so CI archives a perf data point
per PR.  Run with ``pytest -s benchmarks/test_autotune.py`` for the
table.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.analysis.metrics import collect_metrics
from repro.compiler.autotune import autotune_graph, reset_autotune_state
from repro.compiler.library import build_graph, library_streams
from repro.core import nativepath
from repro.core.ring import Ring, RingGeometry

#: Acceptance floor: winner cycles/s over the default mapping, required
#: on every benchmarked kernel graph (the issue asks for >= 2 graphs).
TARGET_SPEEDUP = 1.5

#: Kernel graphs the autopilot must beat the floor on.
KERNELS = ("fir8", "dct4")

#: Measurement budget per candidate (scoring runs inside the search).
SCORE_CYCLES = 20_000
REPEATS = 3

#: Samples for the final bit-identity demonstration per kernel.
VERIFY_SAMPLES = 48

#: Where the recorded numbers land (repo root, picked up by CI).
BENCH_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_autotune.json"


def test_autotune_speedup_and_memoized_resubmission():
    reset_autotune_state()
    record = {
        "workload": "library-kernel-autotune",
        "score_cycles": SCORE_CYCLES,
        "target_speedup": TARGET_SPEEDUP,
        "numba_available": nativepath.numba_available(),
        "kernels": {},
    }
    rows = []
    for name in KERNELS:
        graph = build_graph(name)
        first = autotune_graph(graph, score_cycles=SCORE_CYCLES,
                               repeats=REPEATS,
                               verify_samples=VERIFY_SAMPLES)
        assert not first.cache_hit

        # Bit-identity: the winner reproduces the golden evaluator.
        streams = library_streams(graph, VERIFY_SAMPLES)
        bit_identical = \
            first.program.run(streams) == graph.evaluate(streams)
        assert bit_identical, f"{name}: tuned mapping diverged"

        # Memoized resubmission: same graph, fresh object, ~zero search.
        second = autotune_graph(build_graph(name),
                                score_cycles=SCORE_CYCLES,
                                repeats=REPEATS,
                                verify_samples=VERIFY_SAMPLES)
        assert second.cache_hit and second.mapping == first.mapping
        assert second.search_ms < first.search_ms / 10, (
            f"{name}: memo hit took {second.search_ms:.1f} ms vs "
            f"{first.search_ms:.1f} ms search"
        )

        record["kernels"][name] = {
            "mapping": first.mapping.describe(),
            "cycles_per_second": round(first.cycles_per_second),
            "baseline_cycles_per_second":
                round(first.baseline_cycles_per_second),
            "speedup": round(first.speedup, 2),
            "candidates": len(first.candidates),
            "search_ms": round(first.search_ms, 1),
            "resubmit_search_ms": round(second.search_ms, 2),
            "bit_identical": bit_identical,
        }
        rows.append([name, first.mapping.describe(),
                     f"{first.cycles_per_second:,.0f}",
                     f"{first.speedup:.1f}x",
                     f"{first.search_ms:.0f}",
                     f"{second.search_ms:.2f}"])

    snapshot = collect_metrics(Ring(RingGeometry(layers=2, width=2)))
    data = json.loads(snapshot.to_json())
    assert data["autotune_cache_hits_total"] >= 1
    record["autotune_cache_hits_total"] = \
        data["autotune_cache_hits_total"]
    record["autotune_candidates_evaluated_total"] = \
        data["autotune_candidates_evaluated_total"]

    emit(render_table(
        ["graph", "winner", "cyc/s", "vs default", "search ms",
         "resubmit ms"],
        rows,
        title=f"compiler autopilot, {SCORE_CYCLES:,} scored cycles per "
              f"candidate (best of {REPEATS})",
    ))
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")

    for name, stats in record["kernels"].items():
        assert stats["speedup"] >= TARGET_SPEEDUP, (
            f"{name}: autotuned mapping sustained only "
            f"{stats['speedup']:.2f}x the default compile_graph "
            f"emission (target {TARGET_SPEEDUP}x)"
        )
