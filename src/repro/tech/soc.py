"""Fig. 7: the "foreseeable SoC" floor-plan budget.

The paper sketches a 4 mm x 3 mm (12 mm^2) 0.18 um SoC combining an ARM7
CPU with a Ring-64 accelerator plus flash and converters.  This module
budgets that die from the area model and published IP sizes, checking the
combination actually fits — which is the figure's whole claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.ring import RingGeometry
from repro.errors import TechnologyError
from repro.tech.area import core_area_mm2

#: ARM7TDMI hard-macro area at 0.18 um, as printed in Fig. 7.
ARM7TDMI_MM2 = 0.54

#: Fixed peripheral estimates for the sketched system (mm^2 at 0.18 um).
DEFAULT_PERIPHERALS: Dict[str, float] = {
    "flash": 2.0,
    "sram": 1.2,
    "can": 0.3,
    "dac/adc": 0.5,
    "pads/misc": 1.5,
}


@dataclass
class SocBudget:
    """A die budget: named blocks vs available area."""

    die_width_mm: float
    die_height_mm: float
    blocks: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def die_mm2(self) -> float:
        return self.die_width_mm * self.die_height_mm

    @property
    def used_mm2(self) -> float:
        return sum(area for _, area in self.blocks)

    @property
    def free_mm2(self) -> float:
        return self.die_mm2 - self.used_mm2

    @property
    def fits(self) -> bool:
        return self.free_mm2 >= 0.0

    def add(self, name: str, area_mm2: float) -> None:
        if area_mm2 < 0:
            raise TechnologyError(
                f"block {name!r} has negative area {area_mm2}"
            )
        self.blocks.append((name, area_mm2))

    def block_area(self, name: str) -> float:
        for block_name, area in self.blocks:
            if block_name == name:
                return area
        raise TechnologyError(f"no block named {name!r}")

    def __str__(self) -> str:
        lines = [
            f"SoC {self.die_width_mm} x {self.die_height_mm} mm "
            f"({self.die_mm2:.1f} mm^2)"
        ]
        for name, area in self.blocks:
            lines.append(f"  {name:<14} {area:6.2f} mm^2")
        lines.append(
            f"  {'free':<14} {self.free_mm2:6.2f} mm^2 "
            f"({'fits' if self.fits else 'OVERFLOWS'})"
        )
        return "\n".join(lines)


def foreseeable_soc(ring_dnodes: int = 64, node: str = "0.18um",
                    die_width_mm: float = 4.0,
                    die_height_mm: float = 3.0,
                    peripherals: Dict[str, float] = None) -> SocBudget:
    """Build the Fig. 7 budget: ARM7 + Ring-N + peripherals on one die."""
    budget = SocBudget(die_width_mm, die_height_mm)
    budget.add("arm7tdmi", ARM7TDMI_MM2)
    ring_report = core_area_mm2(RingGeometry.ring(ring_dnodes), node)
    budget.add(f"ring-{ring_dnodes}", ring_report.total_mm2)
    for name, area in (peripherals or DEFAULT_PERIPHERALS).items():
        budget.add(name, area)
    return budget
