"""Tests for the two-level source parser (structure only)."""

import pytest

from repro.asm.parser import parse_source
from repro.errors import AssemblerError


class TestSections:
    def test_empty_source(self):
        src = parse_source("")
        assert src.ring_sections == []
        assert src.risc_statements == []

    def test_comment_only(self):
        src = parse_source("; just a comment\n   ; another\n")
        assert src.ring_sections == []

    def test_named_ring_section(self):
        src = parse_source(".ring boot\n")
        assert src.ring_sections[0].name == "boot"

    def test_default_ring_name(self):
        src = parse_source(".ring\n.ring\n")
        names = [s.name for s in src.ring_sections]
        assert names == ["plane0", "plane1"]

    def test_statement_before_section_rejected(self):
        with pytest.raises(AssemblerError, match="before any"):
            parse_source("ldi r1, 5\n")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            parse_source(".rings\n")


class TestRingSection:
    SRC = """
.ring main
dnode 0.0 global
    add out, in1, in2
dnode 1.1 local
    mov r1, fifo1 [pop1]
    mac r0, r1, r1
switch 0
    route 0.1 <- host0
    route 1.2 <- rp(2,1)
"""

    def test_dnode_blocks(self):
        section = parse_source(self.SRC).ring_sections[0]
        assert len(section.dnodes) == 2
        first, second = section.dnodes
        assert (first.layer, first.position, first.mode) == (0, 0, "global")
        assert first.ops == ["add out, in1, in2"]
        assert (second.layer, second.position, second.mode) == (1, 1,
                                                                "local")
        assert len(second.ops) == 2

    def test_default_mode_is_global(self):
        src = parse_source(".ring\ndnode 0.0\n    nop\n")
        assert src.ring_sections[0].dnodes[0].mode == "global"

    def test_routes_attach_to_switch_header(self):
        section = parse_source(self.SRC).ring_sections[0]
        real = [r for r in section.routes if r.position >= 0]
        assert [(r.switch, r.position, r.port) for r in real] == \
            [(0, 0, 1), (0, 1, 2)]
        assert real[1].source_text == "rp(2,1)"

    def test_route_without_switch_header(self):
        with pytest.raises(AssemblerError, match="switch"):
            parse_source(".ring\nroute 0.1 <- host0\n")

    def test_junk_statement_rejected(self):
        with pytest.raises(AssemblerError, match="unexpected"):
            parse_source(".ring\nswizzle 1\n")

    def test_op_lines_recorded(self):
        section = parse_source(self.SRC).ring_sections[0]
        assert len(section.dnodes[1].op_lines) == 2


class TestRiscSection:
    def test_labels(self):
        src = parse_source(".risc\nstart: ldi r1, 5\n  jmp start\n")
        stmts = src.risc_statements
        assert stmts[0].labels == ["start"]
        assert stmts[0].mnemonic == "ldi"
        assert stmts[1].operands == ["start"]

    def test_label_on_own_line(self):
        src = parse_source(".risc\nloop:\n  nop\n")
        assert src.risc_statements[0].labels == ["loop"]

    def test_stacked_labels(self):
        src = parse_source(".risc\na: b: nop\n")
        assert src.risc_statements[0].labels == ["a", "b"]

    def test_dangling_label_rejected(self):
        with pytest.raises(AssemblerError, match="dangling"):
            parse_source(".risc\nend:\n")

    def test_operand_split_preserves_parens(self):
        src = parse_source(".risc\ncfgword x, mov out, rp(1,2)\n")
        stmt = src.risc_statements[0]
        assert "rp(1,2)" in stmt.operands

    def test_comments_stripped(self):
        src = parse_source(".risc\nnop ; does nothing\n")
        assert src.risc_statements[0].mnemonic == "nop"
        assert src.risc_statements[0].operands == []

    def test_line_numbers(self):
        src = parse_source("\n\n.risc\nnop\n")
        assert src.risc_statements[0].line == 4
