"""Tests for the 8-point DCT kernel (local-sequencer showcase)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.kernels.dct import (
    BASIS,
    N,
    SCALE,
    build_dct_system,
    coefficient_program,
    dct8_fabric,
    dct8_float,
    dct8_reference,
)

pixel_groups = st.lists(st.integers(min_value=-255, max_value=255),
                        min_size=8, max_size=8)


class TestBasis:
    def test_shape_and_scale(self):
        assert len(BASIS) == N
        assert all(len(row) == N for row in BASIS)
        assert all(abs(c) <= SCALE for row in BASIS for c in row)

    def test_dc_row_is_constant(self):
        assert len(set(BASIS[0])) == 1

    def test_rows_nearly_orthogonal(self):
        m = np.array(BASIS, dtype=float)
        gram = m @ m.T
        off = gram - np.diag(np.diag(gram))
        assert np.max(np.abs(off)) < 0.05 * np.max(np.diag(gram))

    def test_no_16bit_overflow_possible(self):
        worst = max(sum(abs(c) for c in row) * 255 for row in BASIS)
        assert worst <= 32767


class TestReference:
    def test_dc_of_constant_signal(self):
        out = dct8_reference([100] * 8)
        assert out[1:] == [0] * 7
        assert out[0] == BASIS[0][0] * 8 * 100

    @given(pixel_groups)
    @settings(max_examples=50)
    def test_close_to_float_transform(self, samples):
        fixed = np.array(dct8_reference(samples)) / SCALE
        exact = np.array(dct8_float(samples))
        assert np.max(np.abs(fixed - exact)) <= 8 * 0.5 * 255 / SCALE

    def test_length_validated(self):
        with pytest.raises(SimulationError):
            dct8_reference([1, 2, 3])


class TestFabric:
    def test_single_group(self, rng):
        samples = [int(v) for v in rng.integers(-255, 256, 8)]
        result = dct8_fabric(samples)
        assert result.coefficients[0].tolist() == dct8_reference(samples)

    def test_streamed_groups(self, rng):
        samples = [int(v) for v in rng.integers(-255, 256, 40)]
        result = dct8_fabric(samples)
        for g in range(5):
            assert result.coefficients[g].tolist() == \
                dct8_reference(samples[g * 8:(g + 1) * 8])

    def test_one_sample_per_cycle(self, rng):
        samples = [int(v) for v in rng.integers(0, 256, 32)]
        result = dct8_fabric(samples)
        assert result.cycles == len(samples)
        assert result.samples_per_cycle == 1.0

    def test_uses_eight_dnodes_stand_alone(self, rng):
        samples = [int(v) for v in rng.integers(0, 256, 8)]
        assert dct8_fabric(samples).dnodes_used == 8

    def test_program_fills_all_slots(self):
        for k in range(N):
            assert len(coefficient_program(k)) == 8

    def test_group_multiple_validated(self):
        with pytest.raises(SimulationError, match="multiple"):
            dct8_fabric([1] * 12)

    def test_small_ring_rejected(self):
        from repro.core.ring import Ring, RingGeometry
        with pytest.raises(SimulationError, match="layers"):
            build_dct_system(Ring(RingGeometry.ring(8)))

    @given(pixel_groups)
    @settings(max_examples=10, deadline=None)
    def test_property_matches_reference(self, samples):
        result = dct8_fabric(samples)
        assert result.coefficients[0].tolist() == dct8_reference(samples)
