"""Gain staging: voltage-controlled amplifier and N-input mixer.

* :func:`vca_graph` — ``y = ((x * g) >> 16) << 1`` with the Q15 gain
  stream on channel 1 (32767 ~ unity).  MULH keeps the product exact
  (no overflow possible); the SHL restores unity scale.
* :func:`mixer_graph` — ``y = sum_i ((x_i * G_i) >> 16)`` over N input
  channels with compile-time Q15 gains, summed by a left-fold ADD chain
  (wrap semantics identical to :func:`repro.kernels.reference.mix`).

Both compile through ``compile_graph``/``autotune`` like any library
graph; the VCA is also the building block the scenario pipelines use for
envelopes and master gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compiler.codegen import compile_graph
from repro.compiler.graph import CompileError, DataflowGraph
from repro.core.ring import Ring

#: Default 4-channel mixer gains (Q15: ~0.61, 0.49, 0.37, 0.73).
MIXER4_GAINS = (20000, 16000, 12000, 24000)


@dataclass
class MixResult:
    """Outcome of a fabric VCA/mixer run."""

    samples: List[int]
    dnodes_used: int
    latency: int


def vca_graph() -> DataflowGraph:
    """VCA: signal on channel 0, Q15 gain stream on channel 1."""
    g = DataflowGraph()
    x, gain = g.input(0), g.input(1)
    g.output(g.op("shl", g.op("mulh", x, gain), g.const(1)))
    return g


def mixer_graph(gains: Sequence[int] = MIXER4_GAINS) -> DataflowGraph:
    """N-input mixer: channel *i* weighted by compile-time Q15 gain i."""
    if not gains:
        raise CompileError("mixer needs at least one gain")
    g = DataflowGraph()
    terms = [g.op("mulh", g.input(i), g.const(int(gain)))
             for i, gain in enumerate(gains)]
    acc = terms[0]
    for term in terms[1:]:
        acc = g.op("add", acc, term)
    g.output(acc)
    return g


def vca_fabric(signal: Sequence[int], gains: Sequence[int],
               ring: Optional[Ring] = None,
               **compile_kwargs) -> MixResult:
    """Amplify *signal* by the Q15 *gains* stream on the fabric.

    Bit-exact against :func:`repro.kernels.reference.vca`.
    """
    graph = vca_graph()
    program = compile_graph(graph, **compile_kwargs)
    outs = program.run({0: list(signal), 1: list(gains)}, ring=ring)
    return MixResult(samples=outs[graph.outputs[0]],
                     dnodes_used=program.dnodes_used,
                     latency=program.latency)


def mixer_fabric(signals: Sequence[Sequence[int]],
                 gains: Sequence[int] = MIXER4_GAINS,
                 ring: Optional[Ring] = None,
                 **compile_kwargs) -> MixResult:
    """Mix N signal streams with Q15 *gains* on the fabric.

    Bit-exact against :func:`repro.kernels.reference.mix`.
    """
    if len(signals) != len(gains):
        raise CompileError(
            f"{len(signals)} signals vs {len(gains)} gains")
    graph = mixer_graph(gains)
    program = compile_graph(graph, **compile_kwargs)
    streams = {i: list(s) for i, s in enumerate(signals)}
    outs = program.run(streams, ring=ring)
    return MixResult(samples=outs[graph.outputs[0]],
                     dnodes_used=program.dnodes_used,
                     latency=program.latency)
