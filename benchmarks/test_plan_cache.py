"""Plan cache under reconfiguration churn + macro-step fusion throughput.

Two perf claims from the plan-cache work are pinned here:

1. **Churn**: a workload that hardware-multiplexes between two known
   contexts every few cycles pays a full plan compile per switch with
   the cache disabled, but only a fingerprint lookup with it enabled.
   The acceptance floor is 5x cycles/s cache-on vs cache-off.
2. **Macro-stepping**: on a steady-state FIR the fused macro kernels
   (K cycles of straight-line generated source per Python dispatch)
   must beat the per-cycle fast path; K is swept over {1, 8, 64} where
   K=1 *is* the per-cycle fast path.

Everything lands in ``BENCH_plancache.json`` so CI archives a perf
data point per PR.  Run with ``pytest -s benchmarks/test_plan_cache.py``
for the tables.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro import word
from repro.analysis import render_table
from repro.core.isa import Dest, MicroWord, Opcode, Source
from repro.core.ring import Ring, RingGeometry
from repro.kernels.fir import build_spatial_fir

#: Acceptance floor: churn cycles/s with the plan cache enabled over the
#: cache-disabled recompile-on-every-switch baseline.  Measured ratios
#: are typically ~8x; 5x keeps the assertion robust on loaded CI.
TARGET_CHURN_SPEEDUP = 5.0

#: Cycles run in each context before switching to the other one.
CHURN_SPAN = 8

#: Macro-step sweep; K=1 is per-cycle fast-path dispatch.
MACRO_STEPS = (1, 8, 64)

#: Where the recorded numbers land (repo root, picked up by CI artifacts).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_plancache.json"

_TAPS = [3, -1, 4, 1, -5, 9, 2, -6]


def _fir_ring(**kwargs) -> Ring:
    ring = Ring(RingGeometry(layers=len(_TAPS), width=2), **kwargs)
    build_spatial_fir(_TAPS, ring=ring)
    return ring


def _host_zero(channel: int) -> int:
    return 0


def _switch_context(ring: Ring, which: int) -> None:
    """Flip the final accumulate tap between two coefficient sets.

    A one-word rewrite is exactly the paper's hardware-multiplexing
    move: the fabric alternates between two full-function contexts, and
    each rewrite invalidates the active plan.
    """
    coeff = word.from_signed(9 if which else -9)
    ring.config.write_microword(
        len(_TAPS) - 1, 1,
        MicroWord(Opcode.MADD, Source.rp(1, 1), Source.IN2, dst=Dest.OUT,
                  imm=coeff))


def _churn_cycles_per_second(cache: int, rounds: int = 150,
                             repeats: int = 3) -> tuple[float, int]:
    """Best-of-*repeats* throughput of an A/B context-switch loop.

    Returns (cycles/s, plan compiles over the whole run) — the compile
    count is the direct evidence of what the cache saves.
    """
    ring = _fir_ring(plan_cache=cache)
    for which in (0, 1):   # warm both contexts (and the cache, if any)
        _switch_context(ring, which)
        ring.run(CHURN_SPAN, host_in=_host_zero)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            for which in (0, 1):
                _switch_context(ring, which)
                ring.run(CHURN_SPAN, host_in=_host_zero)
        elapsed = time.perf_counter() - start
        best = max(best, rounds * 2 * CHURN_SPAN / elapsed)
    return best, ring.plan_compiles


def _steady_cycles_per_second(macro_step: int, cycles: int = 20_000,
                              repeats: int = 3) -> float:
    ring = _fir_ring(macro_step=macro_step if macro_step > 1 else 0)
    ring.run(4, host_in=_host_zero)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        ring.run(cycles, host_in=_host_zero)
        elapsed = time.perf_counter() - start
        best = max(best, cycles / elapsed)
    if macro_step > 1:
        assert ring.macro_cycles > 0, "fusion must actually engage"
    return best


def test_plan_cache_and_macro_step_throughput():
    churn_off, compiles_off = _churn_cycles_per_second(cache=0)
    churn_on, compiles_on = _churn_cycles_per_second(cache=8)
    churn_speedup = churn_on / churn_off

    emit(render_table(
        ["plan cache", "cyc/s", "plan compiles", "speedup"],
        [["off (0)", f"{churn_off:,.0f}", str(compiles_off), "1.0x"],
         ["on (8)", f"{churn_on:,.0f}", str(compiles_on),
          f"{churn_speedup:.1f}x"]],
        title=f"A/B reconfiguration churn (switch every {CHURN_SPAN} "
              f"cycles)",
    ))

    macro_rates = {k: _steady_cycles_per_second(k) for k in MACRO_STEPS}
    baseline = macro_rates[1]
    emit(render_table(
        ["macro step", "cyc/s", "vs per-cycle fast path"],
        [[f"K={k}", f"{rate:,.0f}", f"{rate / baseline:.1f}x"]
         for k, rate in macro_rates.items()],
        title="steady-state 8-tap FIR macro-step sweep",
    ))

    assert churn_speedup >= TARGET_CHURN_SPEEDUP, (
        f"plan cache sustained only {churn_speedup:.2f}x the "
        f"cache-disabled churn throughput (target "
        f"{TARGET_CHURN_SPEEDUP}x)"
    )
    assert macro_rates[64] > baseline, (
        f"macro K=64 ({macro_rates[64]:,.0f} cyc/s) must beat the "
        f"per-cycle fast path ({baseline:,.0f} cyc/s)"
    )

    BENCH_PATH.write_text(json.dumps({
        "benchmark": "plan_cache",
        "fabric": f"Ring-{len(_TAPS) * 2} spatial FIR ({len(_TAPS)} taps)",
        "churn_span_cycles": CHURN_SPAN,
        "churn_cycles_per_second": {
            "cache_off": round(churn_off),
            "cache_on": round(churn_on),
        },
        "churn_plan_compiles": {
            "cache_off": compiles_off,
            "cache_on": compiles_on,
        },
        "churn_speedup": round(churn_speedup, 2),
        "target_churn_speedup": TARGET_CHURN_SPEEDUP,
        "macro_step_cycles_per_second": {
            f"k{k}": round(rate) for k, rate in macro_rates.items()},
        "macro64_speedup_vs_fastpath": round(macro_rates[64] / baseline, 2),
    }, indent=2) + "\n")
    emit(f"wrote {BENCH_PATH.name}")
