"""Tests for the technology-node calibration."""

import pytest

from repro.tech.nodes import NODES, TABLE3_ANCHORS, TechNode, get_node
from repro.errors import TechnologyError


class TestCalibration:
    @pytest.mark.parametrize("name", ["0.25um", "0.18um"])
    def test_calibrated_nodes_exist(self, name):
        node = get_node(name)
        assert node.calibrated
        assert node.logic_um2_per_gate > 0
        assert node.mem_um2_per_bit > 0

    def test_frequency_anchor_reproduced(self):
        for name, (_, _, freq) in TABLE3_ANCHORS.items():
            assert get_node(name).frequency_hz() == pytest.approx(freq,
                                                                  rel=1e-6)

    def test_logic_area_scales_down(self):
        assert get_node("0.18um").logic_um2_per_gate < \
            get_node("0.25um").logic_um2_per_gate

    def test_extrapolated_nodes(self):
        assert not get_node("0.35um").calibrated
        assert not get_node("0.13um").calibrated

    def test_extrapolation_area_scaling(self):
        base = get_node("0.18um")
        small = get_node("0.13um")
        expected = base.logic_um2_per_gate * (0.13 / 0.18) ** 2
        assert small.logic_um2_per_gate == pytest.approx(expected)

    def test_extrapolated_wire_penalty_grows(self):
        assert get_node("0.13um").wire_penalty_ps > \
            get_node("0.18um").wire_penalty_ps


class TestInterface:
    def test_unknown_node(self):
        with pytest.raises(TechnologyError, match="unknown node"):
            get_node("7nm")

    def test_area_helpers(self):
        node = get_node("0.25um")
        assert node.logic_area_um2(100) == \
            pytest.approx(100 * node.logic_um2_per_gate)
        assert node.memory_area_um2(64) == \
            pytest.approx(64 * node.mem_um2_per_bit)

    def test_cycle_time_with_extra_wire(self):
        node = get_node("0.18um")
        base = node.cycle_time_ps()
        assert node.cycle_time_ps(extra_wire_ps=100) == base + 100

    def test_all_nodes_have_positive_delay(self):
        for node in NODES.values():
            assert node.fo4_ps > 0
            assert node.frequency_hz() > 0

    def test_tech_node_is_frozen(self):
        node = get_node("0.18um")
        with pytest.raises(AttributeError):
            node.fo4_ps = 1.0
