"""Polyphase integer resamplers: 2x/3x up and down conversion.

Sample-rate conversion as compilable dataflow graphs, one polyphase
branch per output node:

* **2x up** — half-band interpolator: even phase is the delayed input
  (exact), odd phase the 4-tap ``(-1, 9, 9, -1)/16`` kernel (DC-exact:
  a constant input reconstructs bit-perfectly);
* **2x down** — triangle ``(1, 2, 1)/4`` anti-alias filter decimated on
  the odd phase;
* **3x up / 3x down** — Q8 linear-interpolation thirds
  (``85/171/256``) and the ``(85, 86, 85)/256`` decimator.

Each graph streams one *input* sample per cycle; the host interleaves
(upsamplers) or decimates (downsamplers, tap ``every=``) the phase
outputs.  All arithmetic wraps mod 2^16 exactly like the golden models
in :mod:`repro.kernels.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compiler.codegen import compile_graph
from repro.compiler.graph import CompileError, DataflowGraph
from repro.core.ring import Ring


@dataclass
class ResampleResult:
    """Outcome of a fabric resampling run."""

    samples: List[int]
    factor: str
    dnodes_used: int
    latency: int


def upsample2_graph() -> DataflowGraph:
    """Half-band 2x interpolator: outputs are the even/odd phases."""
    g = DataflowGraph()
    x = g.input(0)
    d1, d2, d3 = g.delay(x, 1), g.delay(x, 2), g.delay(x, 3)
    g.output(g.op("mov", d1))                      # even: x[n-1]
    s1 = g.op("add", d1, d2)
    s2 = g.op("add", x, d3)
    t = g.op("sub", g.op("mul", s1, g.const(9)), s2)
    g.output(g.op("asr", g.op("add", t, g.const(8)), g.const(4)))
    return g


def downsample2_graph() -> DataflowGraph:
    """Triangle 2x decimator at full rate (host keeps the odd phase)."""
    g = DataflowGraph()
    x = g.input(0)
    d1, d2 = g.delay(x, 1), g.delay(x, 2)
    t = g.op("add", g.op("add", x, d2), g.op("shl", d1, g.const(1)))
    g.output(g.op("asr", g.op("add", t, g.const(2)), g.const(2)))
    return g


def upsample3_graph() -> DataflowGraph:
    """Q8 linear 3x interpolator: three phase outputs per input sample."""
    g = DataflowGraph()
    x = g.input(0)
    d1, d2 = g.delay(x, 1), g.delay(x, 2)
    g.output(g.op("mov", d1))                      # phase 0: x[n-1]
    for wa, wb in ((171, 85), (85, 171)):
        s = g.op("add", g.op("mul", d1, g.const(wa)),
                 g.op("mul", d2, g.const(wb)))
        g.output(g.op("asr", g.op("add", s, g.const(128)), g.const(8)))
    return g


def downsample3_graph() -> DataflowGraph:
    """Q8 3x decimator at full rate (host keeps every third sample)."""
    g = DataflowGraph()
    x = g.input(0)
    d1, d2 = g.delay(x, 1), g.delay(x, 2)
    t = g.op("add", g.op("mul", g.op("add", x, d2), g.const(85)),
             g.op("mul", d1, g.const(86)))
    g.output(g.op("asr", g.op("add", t, g.const(128)), g.const(8)))
    return g


def _run_graph(graph: DataflowGraph, signal: Sequence[int],
               ring: Optional[Ring], compile_kwargs: dict):
    program = compile_graph(graph, **compile_kwargs)
    outs = program.run(list(signal), ring=ring)
    return program, [outs[node] for node in graph.outputs]


def upsample2_fabric(signal: Sequence[int], ring: Optional[Ring] = None,
                     **compile_kwargs) -> ResampleResult:
    """2x upsample a stream; bit-exact against ``reference.upsample2``."""
    program, (even, odd) = _run_graph(upsample2_graph(), signal, ring,
                                      compile_kwargs)
    interleaved = [v for pair in zip(even, odd) for v in pair]
    return ResampleResult(samples=interleaved, factor="up2",
                          dnodes_used=program.dnodes_used,
                          latency=program.latency)


def downsample2_fabric(signal: Sequence[int],
                       ring: Optional[Ring] = None,
                       **compile_kwargs) -> ResampleResult:
    """2x decimate a stream; bit-exact against ``reference.downsample2``."""
    program, (full,) = _run_graph(downsample2_graph(), signal, ring,
                                  compile_kwargs)
    return ResampleResult(samples=full[1::2], factor="down2",
                          dnodes_used=program.dnodes_used,
                          latency=program.latency)


def upsample3_fabric(signal: Sequence[int], ring: Optional[Ring] = None,
                     **compile_kwargs) -> ResampleResult:
    """3x upsample a stream; bit-exact against ``reference.upsample3``."""
    program, (p0, p1, p2) = _run_graph(upsample3_graph(), signal, ring,
                                       compile_kwargs)
    interleaved = [v for triple in zip(p0, p1, p2) for v in triple]
    return ResampleResult(samples=interleaved, factor="up3",
                          dnodes_used=program.dnodes_used,
                          latency=program.latency)


def downsample3_fabric(signal: Sequence[int],
                       ring: Optional[Ring] = None,
                       **compile_kwargs) -> ResampleResult:
    """3x decimate a stream; bit-exact against ``reference.downsample3``."""
    program, (full,) = _run_graph(downsample3_graph(), signal, ring,
                                  compile_kwargs)
    return ResampleResult(samples=full[2::3], factor="down3",
                          dnodes_used=program.dnodes_used,
                          latency=program.latency)


#: factor name -> (graph builder, fabric runner); the scenario benchmark
#: and tests iterate this.
RESAMPLERS = {
    "up2": (upsample2_graph, upsample2_fabric),
    "down2": (downsample2_graph, downsample2_fabric),
    "up3": (upsample3_graph, upsample3_fabric),
    "down3": (downsample3_graph, downsample3_fabric),
}
