"""Configuration-fingerprinted LRU cache of compiled execution plans.

The paper's headline feature is *dynamic* reconfiguration: the RISC
configuration controller rewrites Dnode microinstructions every cycle
(hardware multiplexing) or swaps between a small working set of contexts.
Compiled engines (fast-path plans, batch kernel sets, macro-step kernels)
are pure functions of the fabric *configuration* — they close over the
persistent state containers (register lists, OUT latches, FIFO deques,
pipeline buffers) and read the runtime values through them — so a plan
compiled for a configuration stays valid whenever that exact
configuration is restored.  This module provides the two pieces that
exploit it:

* a **stable configuration fingerprint**: every Dnode contributes its
  mode plus the microwords that can actually execute (the global word in
  global mode; LIMIT and the active local slots in local mode), every
  switch contributes its non-zero routes.  Components cache their tuple
  and drop it on their own mutation hook, so assembling the full
  fingerprint is O(components) tuple packing with no re-hashing of
  unchanged parts;
* a bounded :class:`PlanCache` (LRU on an ``OrderedDict``) keyed by those
  fingerprints, with hit/miss/eviction counters surfaced through
  :mod:`repro.analysis.metrics`.

The cache also remembers recently *missed* fingerprints: the first time a
configuration appears the ring keeps its deferred compile-after-one-
stable-cycle policy (so a never-repeating per-cycle reconfiguration
stream still pays zero compiles), but a fingerprint that misses twice is
evidently part of a multiplexing working set and is compiled immediately
— from then on every switch back to it re-adopts the cached plan with
zero interpreted cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.errors import ConfigurationError

#: Default number of compiled plans a ring retains (``Ring(plan_cache=)``).
DEFAULT_CAPACITY = 8

_MISSING = object()


class PlanCache:
    """Bounded LRU mapping configuration fingerprints to compiled plans.

    Capacity 0 disables the cache entirely: lookups miss without counting
    and stores are dropped, restoring the pre-cache recompile-on-every-
    switch behaviour (the benchmark baseline).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions",
                 "_entries", "_missed", "_missed_capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 0:
            raise ConfigurationError(
                f"plan cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        # Fingerprints that have missed at least once (bounded FIFO).
        self._missed: "OrderedDict[Hashable, bool]" = OrderedDict()
        self._missed_capacity = max(4 * capacity, 16)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def keys(self):
        """Cache keys in LRU order (oldest first); test/debug helper."""
        return list(self._entries.keys())

    def get(self, key: Hashable) -> Optional[Any]:
        """Look *key* up, counting a hit (and refreshing LRU) or a miss."""
        if not self.capacity:
            return None
        entry = self._entries.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def note_miss(self, key: Hashable) -> bool:
        """Record that *key* missed; True when it had missed before.

        A True return means the configuration is recurring (part of a
        multiplexing working set) and is worth compiling eagerly instead
        of waiting out the stable-cycle deferral.
        """
        if not self.capacity:
            return False
        if key in self._missed:
            self._missed.move_to_end(key)
            return True
        self._missed[key] = True
        if len(self._missed) > self._missed_capacity:
            self._missed.popitem(last=False)
        return False

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the LRU one past capacity.

        A stored key is no longer "missed": its pending-miss record is
        purged, so if the entry is later evicted the configuration starts
        over with the deferred compile policy instead of inheriting a
        stale second-miss promotion.
        """
        if not self.capacity:
            return
        self._missed.pop(key, None)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: Hashable) -> None:
        """Drop one entry if present (no eviction accounting).

        The missed-fingerprint record goes with it: a discarded plan's
        configuration must re-earn eager compilation, not trigger it
        spuriously on its next appearance.
        """
        self._entries.pop(key, None)
        self._missed.pop(key, None)

    def snapshot_counters(self) -> dict:
        """Plain-data view of the lifetime counters (serving telemetry).

        Farm workers report these across process boundaries so the front
        door can compute warm-hit ratios per worker without reaching
        into live cache objects.
        """
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop every entry and the missed-fingerprint memory.

        The hit/miss/eviction counters are preserved — they are lifetime
        statistics, not content."""
        self._entries.clear()
        self._missed.clear()

    def __repr__(self) -> str:
        return (
            f"PlanCache(capacity={self.capacity}, size={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


__all__ = ["PlanCache", "DEFAULT_CAPACITY"]
