"""Dataflow compiler and profiler for the Systolic Ring.

The paper's conclusion names the missing piece of the 2002 system: "Our
future work takes place in the realization of an efficient
compiling/profiling tool, the key to success of reconfigurable computing
architectures."  This package builds that tool:

* :mod:`repro.compiler.graph` — a small dataflow-graph IR (streams,
  constants, operators, explicit delays) with a golden evaluator;
* :mod:`repro.compiler.schedule` — levelling, pass-node insertion and
  lane assignment onto a ring geometry, using the feedback pipelines for
  free re-timing delays;
* :mod:`repro.compiler.codegen` — emission of fabric configuration
  (microwords + switch routes + taps), runnable directly or exported as
  two-level assembly text;
* :mod:`repro.compiler.profiler` — per-Dnode utilisation and operator-mix
  reports from simulator statistics.

Typical use::

    from repro.compiler import DataflowGraph, compile_graph

    g = DataflowGraph()
    x = g.input(0)
    y = g.op("mul", x, g.const(3))
    g.output(g.op("add", y, g.delay(x, 1)))
    program = compile_graph(g)
    outputs = program.run([5, 7, 9])     # == golden evaluation
"""

from repro.compiler.graph import DataflowGraph, Node, NodeKind
from repro.compiler.schedule import Placement, schedule
from repro.compiler.codegen import CompiledProgram, compile_graph
from repro.compiler.profiler import profile_report, utilization_by_dnode

__all__ = [
    "DataflowGraph",
    "Node",
    "NodeKind",
    "Placement",
    "schedule",
    "CompiledProgram",
    "compile_graph",
    "profile_report",
    "utilization_by_dnode",
]
