"""Ablation A5 (extension) — the compiling tool vs hand mapping.

The paper's conclusion argues the compiler is "the key to success of
reconfigurable computing architectures".  This ablation compares the
automatically compiled version of a kernel against the hand mapping:
both must be bit-exact, both hit 1 sample/cycle, and the compiler's
resource overhead (pass nodes it inserts that a human would fold away)
is quantified.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.compiler import DataflowGraph, compile_graph
from repro.kernels.fir import spatial_fir
from repro.kernels.reference import fir as ref_fir

SIGNAL = [3, -1, 4, 1, -5, 9, 2, -6, 5, 3, 5, -8, 7, 0, 2, -4]


def _compiled_fir2(taps):
    """y = c0*x + c1*x[n-1] as a dataflow graph."""
    g = DataflowGraph()
    x = g.input(0)
    y = g.output(g.op("add", g.op("mul", x, g.const(taps[0])),
                      g.op("mul", g.delay(x, 1), g.const(taps[1]))))
    return g, y


def test_compiler_compile_time(benchmark):
    g, _ = _compiled_fir2([2, -3])
    prog = benchmark(compile_graph, g)
    assert prog.dnodes_used >= 3


def test_compiled_run(benchmark):
    g, y = _compiled_fir2([2, -3])
    prog = compile_graph(g)
    outputs = benchmark(prog.run, {0: SIGNAL})
    assert outputs[y] == ref_fir(SIGNAL, [2, -3])


def test_ablation_compiler_vs_hand_shape():
    taps = [2, -3]
    g, y = _compiled_fir2(taps)
    prog = compile_graph(g)
    compiled_out = prog.run({0: SIGNAL})[y]
    hand = spatial_fir(taps, SIGNAL)

    assert compiled_out == hand.outputs == ref_fir(SIGNAL, taps)

    ops = sum(1 for p in prog.placement.phys if p.graph_node is not None)
    passes = prog.dnodes_used - ops
    emit(render_table(
        ["mapping", "Dnodes", "operators", "pass nodes",
         "samples/cycle", "bit-exact"],
        [
            ["hand (kernels.fir)", hand.dnodes_used, hand.dnodes_used,
             0, hand.samples_per_cycle, "yes"],
            ["compiled (repro.compiler)", prog.dnodes_used, ops, passes,
             1.0, "yes"],
        ],
        title="A5 (extension) — compiler vs hand mapping, 2-tap FIR"))

    # The compiler spends at most ~2x the hand mapping's resources on
    # this kernel while matching its throughput exactly.
    assert prog.dnodes_used <= 2 * hand.dnodes_used


def test_compiler_absorbs_delays_for_free():
    """Stream delays compile onto the feedback pipelines: a d=4 delay
    costs zero extra Dnodes compared with d=1."""
    def prog_for(d):
        g = DataflowGraph()
        x = g.input(0)
        g.output(g.op("add", x, g.delay(x, d)))
        return compile_graph(g)

    assert prog_for(4).dnodes_used == prog_for(1).dnodes_used
