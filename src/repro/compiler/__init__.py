"""Dataflow compiler and profiler for the Systolic Ring.

The paper's conclusion names the missing piece of the 2002 system: "Our
future work takes place in the realization of an efficient
compiling/profiling tool, the key to success of reconfigurable computing
architectures."  This package builds that tool:

* :mod:`repro.compiler.graph` — a small dataflow-graph IR (streams,
  constants, operators, explicit delays) with a golden evaluator;
* :mod:`repro.compiler.schedule` — levelling, pass-node insertion and
  lane assignment onto a ring geometry, using the feedback pipelines for
  free re-timing delays;
* :mod:`repro.compiler.codegen` — emission of fabric configuration
  (microwords + switch routes + taps), runnable directly or exported as
  two-level assembly text;
* :mod:`repro.compiler.profiler` — per-Dnode utilisation and operator-mix
  reports from simulator statistics, plus the measured-throughput scoring
  primitive;
* :mod:`repro.compiler.library` — named kernel graphs (FIR-8, DCT-4,
  complex multiply, envelope follower) with deterministic test streams;
* :mod:`repro.compiler.autotune` — the compiler autopilot: a
  measured-throughput search over mode x placement x engine mappings,
  verified bit-identical against the golden evaluator and memoized by
  graph+fabric fingerprint (``compile_graph(..., autotune=True)``).

Typical use::

    from repro.compiler import DataflowGraph, compile_graph

    g = DataflowGraph()
    x = g.input(0)
    y = g.op("mul", x, g.const(3))
    g.output(g.op("add", y, g.delay(x, 1)))
    program = compile_graph(g)
    outputs = program.run([5, 7, 9])     # == golden evaluation
"""

from repro.compiler.graph import DataflowGraph, Node, NodeKind
from repro.compiler.schedule import LANE_ORDERS, Placement, schedule
from repro.compiler.codegen import MODES, CompiledProgram, compile_graph
from repro.compiler.profiler import (measured_cycles_per_second,
                                     profile_report, utilization_by_dnode)
from repro.compiler.library import GRAPH_LIBRARY, build_graph, library_streams
from repro.compiler.autotune import (AutotuneResult, Mapping,
                                     autotune_graph, fuzz_conformance)

__all__ = [
    "DataflowGraph",
    "Node",
    "NodeKind",
    "Placement",
    "schedule",
    "LANE_ORDERS",
    "CompiledProgram",
    "compile_graph",
    "MODES",
    "profile_report",
    "utilization_by_dnode",
    "measured_cycles_per_second",
    "GRAPH_LIBRARY",
    "build_graph",
    "library_streams",
    "AutotuneResult",
    "Mapping",
    "autotune_graph",
    "fuzz_conformance",
]
