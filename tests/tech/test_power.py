"""Tests for the dynamic-power extension model."""

import pytest

from repro.core.ring import RingGeometry
from repro.tech.power import (
    PENTIUM_II_450_POWER_W,
    core_power,
    gate_capacitance_f,
    mips_per_watt,
    switch_energy_j,
)
from repro.errors import TechnologyError


class TestSwitchEnergy:
    def test_scales_with_vdd_squared(self):
        e025 = switch_energy_j("0.25um")
        e018 = switch_energy_j("0.18um")
        expected = (gate_capacitance_f(0.18) * 1.8 ** 2) / \
            (gate_capacitance_f(0.25) * 2.5 ** 2)
        assert e018 / e025 == pytest.approx(expected)

    def test_smaller_node_cheaper_per_toggle(self):
        assert switch_energy_j("0.13um") < switch_energy_j("0.18um") < \
            switch_energy_j("0.25um") < switch_energy_j("0.35um")


class TestCorePower:
    def test_ring8_in_plausible_band(self):
        """A Ring-8 core at 200 MHz sits in the tens-of-mW class."""
        estimate = core_power(RingGeometry.ring(8), "0.18um")
        assert 0.02 < estimate.total_w < 0.3

    def test_scales_with_frequency(self):
        g = RingGeometry.ring(8)
        p1 = core_power(g, "0.18um", frequency_hz=100e6)
        p2 = core_power(g, "0.18um", frequency_hz=200e6)
        assert p2.dynamic_w == pytest.approx(2 * p1.dynamic_w)

    def test_scales_with_activity(self):
        g = RingGeometry.ring(8)
        idle = core_power(g, "0.18um", activity=0.05)
        busy = core_power(g, "0.18um", activity=0.25)
        assert busy.dynamic_w > 4 * idle.dynamic_w

    def test_scales_with_size(self):
        p8 = core_power(RingGeometry.ring(8), "0.18um").total_w
        p64 = core_power(RingGeometry.ring(64), "0.18um").total_w
        assert 5 < p64 / p8 < 8.5   # sub-linear: shared controller

    def test_leakage_is_small(self):
        estimate = core_power(RingGeometry.ring(8), "0.18um")
        assert estimate.leakage_w < 0.1 * estimate.dynamic_w

    def test_validation(self):
        g = RingGeometry.ring(8)
        with pytest.raises(TechnologyError):
            core_power(g, "0.18um", activity=0.0)
        with pytest.raises(TechnologyError):
            core_power(g, "0.18um", frequency_hz=0)


class TestEfficiency:
    def test_orders_of_magnitude_vs_cpu(self):
        """The motivating gap: the fabric is 100-10000x more efficient
        than the era's CPU on dataflow work."""
        from repro.baselines.scalar_cpu import PENTIUM_II_450

        ring = mips_per_watt(8)
        cpu = PENTIUM_II_450.sustained_mips / PENTIUM_II_450_POWER_W
        assert 100 < ring / cpu < 10_000

    def test_efficiency_improves_with_size(self):
        """Shared controller amortises: bigger rings do more per watt."""
        assert mips_per_watt(64) > mips_per_watt(8)
