"""Tests for the RISC configuration controller simulator."""

import pytest

from repro.controller.core import ConfigTargetKind, RiscController
from repro.controller.isa import Instruction, ROp
from repro.core.isa import Dest, MicroWord, Opcode, Source, encode
from repro.core.switch import PortSource, encode_route
from repro.errors import SimulationError


def run(program, cfg_rom=None, max_cycles=10_000, **kwargs):
    ctrl = RiscController(program, cfg_rom=cfg_rom, **kwargs)
    ctrl.run_until_halt(max_cycles)
    return ctrl


class TestAluAndMoves:
    def test_ldi_mov(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=123),
            Instruction(ROp.MOV, rd=2, rs=1),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[1] == 123
        assert ctrl.regs[2] == 123

    def test_ldi_wraps_to_16_bits(self):
        ctrl = run([Instruction(ROp.LDI, rd=1, imm=0xFFFF),
                    Instruction(ROp.HALT)])
        assert ctrl.regs[1] == 0xFFFF

    @pytest.mark.parametrize("op,a,b,expected", [
        (ROp.ADD, 7, 3, 10),
        (ROp.SUB, 7, 3, 4),
        (ROp.SUB, 3, 7, 0xFFFC),
        (ROp.AND, 0xF0, 0x3C, 0x30),
        (ROp.OR, 0xF0, 0x0C, 0xFC),
        (ROp.XOR, 0xFF, 0x0F, 0xF0),
        (ROp.SHL, 1, 4, 16),
        (ROp.SHR, 16, 4, 1),
        (ROp.MUL, 300, 300, (300 * 300) & 0xFFFF),
    ])
    def test_alu_ops(self, op, a, b, expected):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=a),
            Instruction(ROp.LDI, rd=2, imm=b),
            Instruction(op, rd=3, rs=1, rt=2),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == expected

    def test_addi_negative(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=5),
            Instruction(ROp.ADDI, rd=1, rs=1, imm=-3),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[1] == 2


class TestControlFlow:
    def test_countdown_loop(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=5),
            Instruction(ROp.LDI, rd=2, imm=0),
            Instruction(ROp.LDI, rd=3, imm=0),
            # loop:
            Instruction(ROp.ADDI, rd=3, rs=3, imm=2),
            Instruction(ROp.ADDI, rd=1, rs=1, imm=-1),
            Instruction(ROp.BNE, rs=1, rt=2, imm=-3),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == 10

    def test_beq_taken_and_not(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=4),
            Instruction(ROp.LDI, rd=2, imm=4),
            Instruction(ROp.BEQ, rs=1, rt=2, imm=1),
            Instruction(ROp.LDI, rd=3, imm=99),   # skipped
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == 0

    def test_blt_signed(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=0xFFFF),  # -1
            Instruction(ROp.LDI, rd=2, imm=1),
            Instruction(ROp.BLT, rs=1, rt=2, imm=1),
            Instruction(ROp.LDI, rd=3, imm=99),      # skipped: -1 < 1
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == 0

    def test_bge(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=5),
            Instruction(ROp.BGE, rs=1, rt=2, imm=1),
            Instruction(ROp.LDI, rd=3, imm=99),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == 0

    def test_jmp(self):
        ctrl = run([
            Instruction(ROp.JMP, imm=2),
            Instruction(ROp.LDI, rd=1, imm=99),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[1] == 0

    def test_jal_jr_subroutine(self):
        ctrl = run([
            Instruction(ROp.JAL, imm=3),          # call
            Instruction(ROp.LDI, rd=2, imm=7),    # return lands here
            Instruction(ROp.HALT),
            Instruction(ROp.LDI, rd=1, imm=5),    # subroutine
            Instruction(ROp.JR, rs=15),
        ])
        assert ctrl.regs[1] == 5
        assert ctrl.regs[2] == 7

    def test_pc_out_of_range_raises(self):
        ctrl = RiscController([Instruction(ROp.JMP, imm=100)])
        ctrl.step()
        with pytest.raises(SimulationError, match="PC"):
            ctrl.step()

    def test_runaway_detected(self):
        ctrl = RiscController([Instruction(ROp.JMP, imm=0)])
        with pytest.raises(SimulationError, match="halt"):
            ctrl.run_until_halt(max_cycles=100)


class TestMemory:
    def test_store_load(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=42),
            Instruction(ROp.LDI, rd=2, imm=100),
            Instruction(ROp.SW, rt=1, rs=2, imm=5),
            Instruction(ROp.LW, rd=3, rs=2, imm=5),
            Instruction(ROp.HALT),
        ])
        assert ctrl.dmem[105] == 42
        assert ctrl.regs[3] == 42

    def test_out_of_bounds_access(self):
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=0xFFFF),
            Instruction(ROp.LW, rd=2, rs=1, imm=0),
        ], dmem_words=16)
        ctrl.step()
        with pytest.raises(SimulationError, match="memory"):
            ctrl.step()


class TestConfigInstructions:
    ROM = [
        encode(MicroWord(Opcode.ADD, Source.IN1, Source.IN2, Dest.OUT)),
        encode_route(PortSource.host(3)),
    ]

    def test_cfgdi_emits_resolved_microword(self):
        ctrl = RiscController([Instruction(ROp.CFGDI, dnode=5, cfg=0)],
                              cfg_rom=self.ROM)
        commands = ctrl.step()
        assert len(commands) == 1
        cmd = commands[0]
        assert cmd.kind is ConfigTargetKind.DNODE_WORD
        assert cmd.dnode == 5
        assert cmd.microword.op is Opcode.ADD

    def test_cfgd_register_indirect(self):
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=3),
            Instruction(ROp.LDI, rd=2, imm=0),
            Instruction(ROp.CFGD, rs=1, rt=2),
        ], cfg_rom=self.ROM)
        ctrl.step(); ctrl.step()
        commands = ctrl.step()
        assert commands[0].dnode == 3

    def test_cfgs_emits_route(self):
        ctrl = RiscController(
            [Instruction(ROp.CFGS, sw=2, pos=1, port=2, cfg=1)],
            cfg_rom=self.ROM)
        cmd = ctrl.step()[0]
        assert cmd.kind is ConfigTargetKind.SWITCH_ROUTE
        assert (cmd.sw, cmd.pos, cmd.port) == (2, 1, 2)
        assert cmd.route == PortSource.host(3)

    def test_cfgl_cfglim_cfgmode(self):
        ctrl = RiscController([
            Instruction(ROp.CFGL, dnode=1, slot=4, cfg=0),
            Instruction(ROp.CFGLIM, dnode=1, limit=5),
            Instruction(ROp.CFGMODE, dnode=1, mode=1),
        ], cfg_rom=self.ROM)
        c1 = ctrl.step()[0]
        c2 = ctrl.step()[0]
        c3 = ctrl.step()[0]
        assert c1.kind is ConfigTargetKind.LOCAL_SLOT and c1.slot == 4
        assert c2.kind is ConfigTargetKind.LOCAL_LIMIT and c2.limit == 5
        assert c3.kind is ConfigTargetKind.MODE and c3.mode == 1

    def test_cfgplane(self):
        ctrl = RiscController([Instruction(ROp.CFGPLANE, plane=2)])
        cmd = ctrl.step()[0]
        assert cmd.kind is ConfigTargetKind.PLANE
        assert cmd.plane == 2

    def test_rom_index_validated(self):
        ctrl = RiscController([Instruction(ROp.CFGDI, dnode=0, cfg=9)],
                              cfg_rom=self.ROM)
        with pytest.raises(SimulationError, match="ROM"):
            ctrl.step()

    def test_config_command_counter(self):
        ctrl = RiscController([Instruction(ROp.CFGDI, dnode=0, cfg=0),
                               Instruction(ROp.HALT)],
                              cfg_rom=self.ROM)
        ctrl.run_until_halt()
        assert ctrl.state.config_commands == 1


class TestHostIo:
    def test_busw_drives_bus(self):
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=77),
            Instruction(ROp.BUSW, rs=1),
            Instruction(ROp.HALT),
        ])
        ctrl.run_until_halt()
        assert ctrl.bus_out == 77
        assert ctrl.state.bus_writes == 1

    def test_inw_pops_mailbox(self):
        ctrl = RiscController([Instruction(ROp.INW, rd=1, ch=0),
                               Instruction(ROp.HALT)])
        ctrl.host_send(0, 31)
        ctrl.run_until_halt()
        assert ctrl.regs[1] == 31

    def test_inw_stalls_until_data(self):
        ctrl = RiscController([Instruction(ROp.INW, rd=1, ch=0),
                               Instruction(ROp.HALT)])
        ctrl.step()
        ctrl.step()
        assert ctrl.pc == 0 and ctrl.state.stalls == 2
        ctrl.host_send(0, 9)
        ctrl.step()
        assert ctrl.regs[1] == 9 and ctrl.pc == 1

    def test_outw_pushes_mailbox(self):
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=55),
            Instruction(ROp.OUTW, ch=2, rs=1),
            Instruction(ROp.HALT),
        ])
        ctrl.run_until_halt()
        assert ctrl.host_receive(2) == 55
        assert ctrl.host_receive(2) is None

    def test_bfe_branches_on_empty(self):
        ctrl = run([
            Instruction(ROp.BFE, ch=0, imm=1),
            Instruction(ROp.LDI, rd=1, imm=99),  # skipped (empty)
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[1] == 0

    def test_bfe_falls_through_with_data(self):
        ctrl = RiscController([
            Instruction(ROp.BFE, ch=0, imm=1),
            Instruction(ROp.LDI, rd=1, imm=99),
            Instruction(ROp.HALT),
        ])
        ctrl.host_send(0, 1)
        ctrl.run_until_halt()
        assert ctrl.regs[1] == 99

    def test_mailbox_channel_validated(self):
        ctrl = RiscController([Instruction(ROp.HALT)])
        with pytest.raises(SimulationError):
            ctrl.host_send(99, 0)


class TestTiming:
    def test_waiti_occupies_cycles(self):
        ctrl = RiscController([Instruction(ROp.WAITI, imm=5),
                               Instruction(ROp.HALT)])
        cycles = ctrl.run_until_halt()
        assert cycles == 6  # 5 wait cycles + halt

    def test_one_instruction_per_cycle(self):
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=1),
            Instruction(ROp.NOP),
            Instruction(ROp.HALT),
        ])
        assert ctrl.run_until_halt() == 3

    def test_halted_steps_are_free(self):
        ctrl = RiscController([Instruction(ROp.HALT)])
        ctrl.run_until_halt()
        assert ctrl.step() == []
        assert ctrl.halted

    def test_empty_program_rejected(self):
        with pytest.raises(SimulationError):
            RiscController([])


class TestFabricReadback:
    """RDD / CFGIMM: the bidirectional shared-bus extension."""

    def test_rdd_requires_attached_fabric(self):
        ctrl = RiscController([Instruction(ROp.RDD, rd=1, dnode=0)])
        with pytest.raises(SimulationError, match="fabric"):
            ctrl.step()

    def test_rdd_reads_dnode_out(self):
        ctrl = RiscController([Instruction(ROp.RDD, rd=1, dnode=5),
                               Instruction(ROp.HALT)])
        ctrl.fabric_reader = lambda dnode: 1000 + dnode
        ctrl.run_until_halt()
        assert ctrl.regs[1] == 1005

    def test_cfgimm_patches_immediate(self):
        from repro.core.isa import Dest, Source
        rom = [encode(MicroWord(Opcode.MUL, Source.BUS, Source.IMM,
                                Dest.OUT, imm=0))]
        ctrl = RiscController([
            Instruction(ROp.LDI, rd=1, imm=321),
            Instruction(ROp.CFGIMM, dnode=2, cfg=0, rs=1),
        ], cfg_rom=rom)
        ctrl.step()
        cmd = ctrl.step()[0]
        assert cmd.kind is ConfigTargetKind.DNODE_WORD
        assert cmd.dnode == 2
        assert cmd.microword.imm == 321
        assert cmd.microword.op is Opcode.MUL

    def test_sar_is_arithmetic(self):
        ctrl = run([
            Instruction(ROp.LDI, rd=1, imm=0xFFE0),  # -32
            Instruction(ROp.LDI, rd=2, imm=3),
            Instruction(ROp.SAR, rd=3, rs=1, rt=2),
            Instruction(ROp.SHR, rd=4, rs=1, rt=2),
            Instruction(ROp.HALT),
        ])
        assert ctrl.regs[3] == 0xFFFC           # -4 (sign extended)
        assert ctrl.regs[4] == 0x1FFC           # logical shift differs

    def test_system_wires_fabric_reader(self):
        from repro.core.ring import make_ring
        from repro.host.system import RingSystem

        ring = make_ring(4)
        ring.dnode(1, 1)._out = 42
        ctrl = RiscController([Instruction(ROp.RDD, rd=1, dnode=3),
                               Instruction(ROp.HALT)])
        system = RingSystem(ring, ctrl)
        system.run_until_halt()
        assert ctrl.regs[1] == 42
