"""Fault injection, checkpointing, and recovery for the ring fabric.

The paper's scalability argument rests on the fabric staying correct
while it is dynamically reconfigured; this package adds the matching
robustness story — what happens when state is corrupted or a Dnode
misbehaves — working identically across all four execution engines
(interpreter, fast path, batch, macro-step):

* :mod:`repro.robustness.faults` — seeded, deterministic fault models:
  SEU bit-flips in register files, OUT registers, switch feedback
  pipelines, FIFO words and the configuration plane, stuck-at/disabled
  Dnodes, and dropped host stream words.  Configuration faults are
  applied through :class:`~repro.core.config_memory.ConfigMemory`, so
  the existing invalidation-listener hooks fire and compiled plans are
  correctly dropped.
* :mod:`repro.robustness.checkpoint` — periodic checkpointing built on
  :func:`repro.core.snapshot.capture`/``restore`` with rollback-replay
  recovery, plus graceful degradation (remap around a disabled Dnode)
  with a measured throughput report.
* :mod:`repro.robustness.campaign` — :class:`FaultCampaign`, sweeping
  fault sites x injection cycles x seeds with golden-run detection and
  bit-identity verification of every recovery.
"""

from repro.robustness.campaign import CampaignResult, FaultCampaign, TrialResult
from repro.robustness.checkpoint import (
    CheckpointManager,
    ThroughputReport,
    degradation_report,
    disable_dnode,
    remap_around,
    rollback_replay,
    throughput,
)
from repro.robustness.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSite,
    enumerate_sites,
)

__all__ = [
    "CampaignResult",
    "CheckpointManager",
    "FaultCampaign",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSite",
    "ThroughputReport",
    "TrialResult",
    "degradation_report",
    "disable_dnode",
    "enumerate_sites",
    "remap_around",
    "rollback_replay",
    "throughput",
]
